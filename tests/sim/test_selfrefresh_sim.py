"""Tests for the trace-driven self-refresh simulator (Figure 14)."""

import numpy as np
import pytest

from repro.dram.geometry import DramGeometry
from repro.sim.selfrefresh_sim import (PAPER_CAPACITY_POINTS,
                                       SelfRefreshSimConfig,
                                       SelfRefreshSimulator, config_for_point)
from repro.units import GIB, MIB


def small_config(**overrides):
    defaults = dict(
        geometry=DramGeometry(channels=2, ranks_per_channel=4,
                              rank_bytes=128 * MIB),
        allocated_bytes=544 * MIB,
        workloads=("data-caching", "media-streaming"),
        aggregate_bandwidth_gbs=0.3,
        duration_s=8.0,
        au_bytes=32 * MIB,
        group_granularity=1,
        seed=0)
    defaults.update(overrides)
    return SelfRefreshSimConfig(**defaults)


class TestConfigPoints:
    def test_known_points(self):
        assert set(PAPER_CAPACITY_POINTS) == {"208gb", "224gb", "240gb",
                                              "304gb"}

    def test_unknown_point_rejected(self):
        with pytest.raises(KeyError):
            config_for_point("999gb")

    def test_scaled_capacity_ratio(self):
        config = config_for_point("208gb")
        ratio = config.allocated_bytes / config.geometry.total_bytes
        assert ratio == pytest.approx(208 / 384, abs=0.02)

    def test_bandwidth_scaled(self):
        config = config_for_point("208gb")
        assert config.aggregate_bandwidth_gbs == pytest.approx(
            30.0 * config.geometry.total_bytes / (384 * GIB))


class TestSmallRun:
    @pytest.fixture(scope="class")
    def result(self):
        return SelfRefreshSimulator(small_config()).run()

    def test_runs_and_records_steps(self, result):
        assert len(result.steps) == int(8.0 / 0.05)

    def test_savings_bounded(self, result):
        times, savings = result.savings_timeseries()
        assert (savings <= 1.0).all()
        assert savings.min() > -0.5

    def test_baseline_power_positive(self, result):
        assert result.baseline_power > 0

    def test_self_refresh_engages(self, result):
        """With generous free space some rank reaches self-refresh."""
        assert result.sr_entries > 0
        assert max(step.sr_ranks for step in result.steps) > 0

    def test_savings_when_stable(self, result):
        if result.ever_stable:
            assert result.stable_savings > 0.0
            assert result.warmup_s < 8.0


class TestPlacement:
    def test_scatter_preserves_mappings(self):
        simulator = SelfRefreshSimulator(small_config())
        controller, handles = simulator._build_controller()
        layout = controller.host_layout
        for handle in handles:
            for au_id in handle.au_ids:
                for offset in range(layout.segments_per_au):
                    hsn = layout.pack_hsn(handle.host_id, au_id, offset)
                    dsn = controller.tables.walk(hsn).dsn
                    assert controller.tables.hsn_of_dsn(dsn) == hsn

    def test_scatter_balances_channels(self):
        simulator = SelfRefreshSimulator(small_config())
        controller, _ = simulator._build_controller()
        counts = [controller.allocator.channel_allocated(channel)
                  for channel in range(2)]
        assert counts[0] == counts[1]

    def test_scatter_spreads_over_ranks(self):
        simulator = SelfRefreshSimulator(small_config())
        controller, _ = simulator._build_controller()
        assert controller.power_down is not None
        used_ranks = {rank_id
                      for rank_id in controller.power_down.active_rank_ids()
                      if controller.allocator.usage(rank_id).allocated > 0}
        assert len(used_ranks) >= 4  # not packed into a rank per channel

    def test_pack_placement_available(self):
        simulator = SelfRefreshSimulator(small_config(placement="pack"))
        controller, _ = simulator._build_controller()
        assert controller.reserved_bytes() == 544 * MIB

    def test_unknown_placement_rejected(self):
        simulator = SelfRefreshSimulator(small_config(placement="bogus"))
        with pytest.raises(ValueError):
            simulator._build_controller()


class TestAllocationExactness:
    def test_allocated_bytes_hit_target(self):
        simulator = SelfRefreshSimulator(small_config())
        controller, handles = simulator._build_controller()
        assert sum(handle.reserved_bytes for handle in handles) == 544 * MIB

    def test_too_small_allocation_rejected(self):
        config = small_config(allocated_bytes=32 * MIB,
                              workloads=("data-caching", "media-streaming",
                                         "web-search"))
        with pytest.raises(ValueError):
            SelfRefreshSimulator(config)._build_controller()


class TestDeterminism:
    def test_same_seed_reproduces(self):
        a = SelfRefreshSimulator(small_config(duration_s=3.0)).run()
        b = SelfRefreshSimulator(small_config(duration_s=3.0)).run()
        assert a.stable_savings == pytest.approx(b.stable_savings)
        assert a.sr_entries == b.sr_entries


class TestPlannerAblation:
    def test_planner_off_never_sleeps_under_load(self):
        import dataclasses
        config = dataclasses.replace(small_config(duration_s=3.0,
                                                  aggregate_bandwidth_gbs=1.0),
                                     sr_planning=False)
        result = SelfRefreshSimulator(config).run()
        # At this load every rank is touched within each 50 ms window, so
        # without planning nothing ever reaches self-refresh.
        assert result.sr_entries == 0
