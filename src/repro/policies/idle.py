"""Per-rank idle-gap histograms feeding adaptive demotion.

Both controller hosts report one observation per completed park (see
:meth:`repro.policies.protocol.Policy.observe_idle_gap`): how many
nanoseconds a rank actually stayed in MPSM/self-refresh before being
woken.  :class:`RankIdleTracker` keeps a bounded history per
``(site, channel, rank)`` and answers with the median — robust to the
occasional marathon park that would wreck a mean — which is the only
statistic the adaptive policies consult.
"""

from __future__ import annotations

import statistics
from collections import deque


class RankIdleTracker:
    """Bounded per-rank history of observed idle gaps.

    Args:
        history: Observations retained per ``(site, channel, rank)``;
            older samples fall off the deque.
    """

    def __init__(self, history: int = 32):
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self.history = history
        self._gaps: dict[tuple[str, int, int], deque[float]] = {}

    def observe(self, site: str, channel: int, rank: int,
                gap_ns: float) -> None:
        """Record one completed park of ``gap_ns`` nanoseconds."""
        key = (site, channel, rank)
        bucket = self._gaps.get(key)
        if bucket is None:
            bucket = deque(maxlen=self.history)
            self._gaps[key] = bucket
        bucket.append(gap_ns)

    def samples(self, site: str, channel: int, rank: int) -> int:
        """Observations currently held for the rank at ``site``."""
        bucket = self._gaps.get((site, channel, rank))
        return len(bucket) if bucket is not None else 0

    def typical_gap_ns(self, site: str, channel: int,
                       rank: int) -> float | None:
        """Median observed gap, or ``None`` with no observations."""
        bucket = self._gaps.get((site, channel, rank))
        if not bucket:
            return None
        return statistics.median(bucket)


__all__ = ["RankIdleTracker"]
