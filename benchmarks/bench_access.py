"""Scalar vs batch access-datapath throughput benchmark.

Writes ``BENCH_access.json`` at the repository root comparing the
per-access ``DtlController.access`` loop against the vectorised
``access_batch`` on the same trace, for two workloads:

* **datapath** — power policies off, zipf 1.5: the pure translation
  datapath (SMC + tables + routing) with thousands of cold segments
  forced through the table-walk path.  This is the stress case for the
  SMC's set-indexed batch lookup and the number to watch when touching
  ``segment_cache.py``.
* **mixed** — the production shape: self-refresh *and* power-down
  policies on, every channel profiling with a victim rank selected,
  migrations in flight with partial progress (so foreground writes run
  the abort/redirect protocol), 30% writes, zipf 2.0.  Segment-level
  reuse is high (cacheline streams land in 2 MiB segments), so the hot
  set fits the SMC and the scalar loop's per-access policy work —
  profiling checks, write routing, wake screening — dominates; the
  batch path amortises all of it.  **This is the gated leg.**

Each leg runs the scalar loop under full telemetry (the configuration
any pre-batch simulation ran under) and the batch path on the telemetry
fast path (null metrics registry, disabled event trace).  Batch runs are
best-of-3 on a fresh controller each time; sub-100 ms wall times are
otherwise too jittery to gate on.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_access.py

CI gates on the mixed-leg speedup::

    PYTHONPATH=src python benchmarks/bench_access.py --check-speedup 30
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
import warnings
from pathlib import Path

import numpy as np

from repro.core.config import DtlConfig
from repro.core.controller import DtlController
from repro.errors import PerformanceWarning
from repro.telemetry import EventTrace, MetricsRegistry

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_access.json"

NUM_ACCESSES = 200_000
NUM_AUS = 4
WRITE_FRACTION = 0.3
SEED = 0
#: Segment-popularity skew for the datapath leg.  1.5 keeps the SMC hot
#: (the design point of Table 3) while still forcing thousands of cold
#: segments through the table-walk path.
DATAPATH_ZIPF = 1.5
#: Skew for the mixed leg.  2.0 concentrates the stream on a few hundred
#: segments — the regime the SMC is sized for — so the comparison
#: isolates the per-access policy overhead the batch path amortises.
MIXED_ZIPF = 2.0
#: Tracked migrations live during the mixed run; one gains a
#: ``lines_done`` watermark so conflicting writes exercise the abort
#: path, not just redirects.
MIGRATIONS_IN_FLIGHT = 3
#: Scalar warmup accesses that seed the window counts before the victim
#: rank is selected (an all-zero window degenerates to "victim = rank
#: 0", which is where all the traffic is).
MIXED_WARMUP = 2_000
BATCH_REPEATS = 3


def _datapath_config() -> DtlConfig:
    return DtlConfig(enable_self_refresh=False, enable_power_down=False)


def _mixed_config() -> DtlConfig:
    return DtlConfig()  # both policies on, paper-default timers


def _trace(config: DtlConfig, zipf_exponent: float,
           ) -> tuple[np.ndarray, np.ndarray]:
    """Zipf-reuse HPAs over a multi-AU footprint plus a write mask."""
    rng = np.random.default_rng(SEED)
    segment = config.geometry.segment_bytes
    segments = NUM_AUS * config.au_bytes // segment
    hot = rng.zipf(zipf_exponent, NUM_ACCESSES) % segments
    hpas = (hot * segment + rng.integers(0, segment, NUM_ACCESSES)
            ).astype(np.int64)
    return hpas, rng.random(NUM_ACCESSES) < WRITE_FRACTION


def _build(config: DtlConfig, telemetry: bool) -> DtlController:
    if telemetry:
        controller = DtlController(config)
    else:
        controller = DtlController(config, metrics=MetricsRegistry.null(),
                                   trace=EventTrace.disabled())
    controller.allocate_vm(0, NUM_AUS * config.au_bytes)
    return controller


def _setup_mixed(controller: DtlController, hpas: np.ndarray) -> None:
    """Migrations in flight + every channel profiling, pre-measurement."""
    live = controller.tables.live_dsns()
    free = [dsn for dsn in range(controller.geometry.total_segments)
            if not controller.tables.is_dsn_live(dsn)]
    submitted = 0
    for dsn in live:
        if submitted >= MIGRATIONS_IN_FLIGHT:
            break
        channel = controller.device_layout.channel_of_dsn(dsn)
        partner = next((f for f in free
                        if controller.device_layout.channel_of_dsn(f)
                        == channel), None)
        if partner is None:
            continue
        free.remove(partner)
        controller.migration.submit(
            controller.tables.hsn_of_dsn(dsn), dsn, partner)
        submitted += 1
    assert submitted == MIGRATIONS_IN_FLIGHT
    controller.migration.step_channel(0, lines=5)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PerformanceWarning)
        for hpa in hpas[:MIXED_WARMUP].tolist():
            controller.access(0, hpa, False, now_ns=0.0)
    controller.end_window()
    controller.tick(0.0)
    assert all(controller.self_refresh.phase(c).value == "profiling"
               for c in range(controller.geometry.channels))


def bench_scalar(config: DtlConfig, hpas: np.ndarray, writes: np.ndarray,
                 mixed: bool) -> float:
    controller = _build(config, telemetry=True)
    if mixed:
        _setup_mixed(controller, hpas)
    hpa_list = [int(h) for h in hpas]
    write_list = [bool(w) for w in writes]
    with warnings.catch_warnings():
        # The loop is exactly what the warning tells users to stop doing.
        warnings.simplefilter("ignore", PerformanceWarning)
        start = time.perf_counter()
        for hpa, write in zip(hpa_list, write_list):
            controller.access(0, hpa, write, now_ns=1000.0)
        return time.perf_counter() - start


def bench_batch(config: DtlConfig, hpas: np.ndarray, writes: np.ndarray,
                mixed: bool) -> float:
    best = float("inf")
    for _ in range(BATCH_REPEATS):
        controller = _build(config, telemetry=False)
        if mixed:
            _setup_mixed(controller, hpas)
        start = time.perf_counter()
        controller.access_batch(0, hpas, writes, now_ns=1000.0)
        best = min(best, time.perf_counter() - start)
    return best


def run_leg(name: str, config: DtlConfig, zipf_exponent: float,
            mixed: bool) -> dict:
    hpas, writes = _trace(config, zipf_exponent)
    distinct = len(np.unique(hpas // config.geometry.segment_bytes))
    print(f"{name}: {NUM_ACCESSES} accesses, {distinct} distinct segments, "
          f"zipf {zipf_exponent}")
    scalar_s = bench_scalar(config, hpas, writes, mixed)
    scalar_rate = NUM_ACCESSES / scalar_s
    print(f"  scalar  {scalar_s:.3f}s  {scalar_rate:,.0f} acc/s")
    batch_s = bench_batch(config, hpas, writes, mixed)
    batch_rate = NUM_ACCESSES / batch_s
    speedup = scalar_s / batch_s
    print(f"  batch   {batch_s:.3f}s  {batch_rate:,.0f} acc/s  "
          f"speedup {speedup:.1f}x")
    return {
        "zipf_exponent": zipf_exponent,
        "distinct_segments": distinct,
        "scalar": {
            "wall_s": round(scalar_s, 3),
            "accesses_per_s": round(scalar_rate),
        },
        "batch": {
            "wall_s": round(batch_s, 3),
            "accesses_per_s": round(batch_rate),
        },
        "speedup": round(speedup, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless the mixed leg's batch "
                             "path is >= X times the scalar loop")
    args = parser.parse_args(argv)

    datapath = run_leg("datapath", _datapath_config(), DATAPATH_ZIPF,
                       mixed=False)
    mixed = run_leg("mixed", _mixed_config(), MIXED_ZIPF, mixed=True)

    document = {
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "trace": {
            "accesses": NUM_ACCESSES,
            "aus": NUM_AUS,
            "write_fraction": WRITE_FRACTION,
            "seed": SEED,
            "mixed_migrations_in_flight": MIGRATIONS_IN_FLIGHT,
        },
        "datapath": datapath,
        "mixed": mixed,
        # Top-level speedup is the gated (mixed) leg.
        "speedup": mixed["speedup"],
    }
    OUTPUT.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    if args.check_speedup is not None \
            and mixed["speedup"] < args.check_speedup:
        print(f"FAIL: mixed speedup {mixed['speedup']:.1f}x is below the "
              f"{args.check_speedup:.1f}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
