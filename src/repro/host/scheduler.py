"""VM scheduler for one server / memory-pool node.

Replays a list of :class:`~repro.host.vm.VmSpec` onto a node with fixed
vCPU and memory capacity, exactly as the paper's Figure 1 methodology
describes: 400 VMs sampled from the Azure distribution are scheduled for
six hours on a 48-vCPU / 384 GB node.  VMs that do not fit at arrival wait
in a FIFO queue until capacity frees (their lifetime starts when they are
admitted).

The scheduler produces:

* a start/stop event stream (consumed by the power-down simulator), and
* a memory/vCPU usage time series sampled at the trace's 5-minute
  granularity (Figure 1).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.host.vm import VmEvent, VmSpec
from repro.units import GIB

FIVE_MINUTES_S = 300.0


@dataclass
class SchedulerConfig:
    """Node capacity (Figure 1: 48 vCPUs, 384 GB)."""

    vcpus: int = 48
    memory_bytes: int = 384 * GIB
    duration_s: float = 6 * 3600.0
    sample_interval_s: float = FIVE_MINUTES_S


@dataclass
class UsageSample:
    """Resource usage at one sample instant."""

    time_s: float
    memory_bytes: int
    vcpus: int
    live_vms: int

    def memory_fraction(self, capacity_bytes: int) -> float:
        """Memory usage as a fraction of node capacity."""
        return self.memory_bytes / capacity_bytes


@dataclass
class ScheduleResult:
    """Everything the scheduler produced for one run."""

    config: SchedulerConfig
    events: list[VmEvent]
    samples: list[UsageSample]
    admitted: int
    rejected: int

    def mean_memory_fraction(self) -> float:
        """Time-averaged memory utilisation (the Figure 1 headline)."""
        if not self.samples:
            return 0.0
        total = sum(sample.memory_bytes for sample in self.samples)
        return total / (len(self.samples) * self.config.memory_bytes)

    def peak_memory_fraction(self) -> float:
        """Peak memory utilisation over the run."""
        if not self.samples:
            return 0.0
        return max(sample.memory_bytes
                   for sample in self.samples) / self.config.memory_bytes


class VmScheduler:
    """FIFO admission scheduler with fixed capacity."""

    def __init__(self, config: SchedulerConfig | None = None):
        self.config = config or SchedulerConfig()

    def run(self, specs: list[VmSpec]) -> ScheduleResult:
        """Schedule ``specs`` over the configured duration."""
        config = self.config
        arrivals = deque(sorted(specs, key=lambda spec: spec.arrival_s))
        pending: deque[VmSpec] = deque()
        # Min-heap of (stop_time, seq, spec) for live VMs.
        live: list[tuple[float, int, VmSpec]] = []
        seq = 0
        used_mem = 0
        used_cpu = 0
        events: list[VmEvent] = []
        samples: list[UsageSample] = []
        admitted = 0
        rejected = 0

        def fits(spec: VmSpec) -> bool:
            return (used_mem + spec.memory_bytes <= config.memory_bytes
                    and used_cpu + spec.vcpus <= config.vcpus)

        def admit(spec: VmSpec, now_s: float) -> None:
            nonlocal used_mem, used_cpu, seq, admitted
            used_mem += spec.memory_bytes
            used_cpu += spec.vcpus
            heapq.heappush(live, (now_s + spec.lifetime_s, seq, spec))
            seq += 1
            admitted += 1
            events.append(VmEvent(time_s=now_s, kind="start", spec=spec))

        def drain_departures(now_s: float) -> None:
            nonlocal used_mem, used_cpu
            while live and live[0][0] <= now_s:
                stop_time, _, spec = heapq.heappop(live)
                used_mem -= spec.memory_bytes
                used_cpu -= spec.vcpus
                events.append(VmEvent(time_s=stop_time, kind="stop",
                                      spec=spec))

        def drain_pending(now_s: float) -> None:
            while pending and fits(pending[0]):
                admit(pending.popleft(), now_s)

        time_s = 0.0
        while time_s <= config.duration_s:
            drain_departures(time_s)
            while arrivals and arrivals[0].arrival_s <= time_s:
                spec = arrivals.popleft()
                if spec.memory_bytes > config.memory_bytes or \
                        spec.vcpus > config.vcpus:
                    rejected += 1
                    continue
                if fits(spec) and not pending:
                    admit(spec, time_s)
                else:
                    pending.append(spec)
            drain_pending(time_s)
            samples.append(UsageSample(
                time_s=time_s, memory_bytes=used_mem, vcpus=used_cpu,
                live_vms=len(live)))
            time_s += config.sample_interval_s

        events.sort()
        return ScheduleResult(config=config, events=events, samples=samples,
                              admitted=admitted, rejected=rejected)


__all__ = [
    "FIVE_MINUTES_S",
    "SchedulerConfig",
    "UsageSample",
    "ScheduleResult",
    "VmScheduler",
]
