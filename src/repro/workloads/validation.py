"""One-call validation of the synthetic workloads against the paper.

The whole reproduction leans on the synthetic CloudSuite stand-ins
matching the paper's published characteristics.  This module bundles the
checks into a single report so any re-calibration (or a new workload
profile) can be validated at once:

* **MAPKI** against Table 4,
* **large-stride share** against Figure 9's qualitative classes,
* **cold-segment fractions** at 2 MB and 4 MB against Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units import GIB
from repro.workloads.cloudsuite import (PROFILES, SEGMENT_BYTES,
                                        TRACED_BENCHMARKS, TraceGenerator,
                                        WorkloadProfile)

#: Table 4 reference values.
PAPER_MAPKI = {
    "data-analytics": 1.9, "data-caching": 1.5, "data-serving": 4.2,
    "django-workload": 0.8, "fb-oss-performance": 3.6,
    "graph-analytics": 6.5, "in-memory-analytics": 2.5,
    "media-streaming": 4.6, "web-search": 0.7, "web-serving": 0.7,
}

#: Figure 10 averages.
PAPER_COLD_2MB = 0.615
PAPER_COLD_4MB = 0.332

#: Figure 9's narrow-standalone-stride benchmarks.
NARROW_STRIDE_BENCHMARKS = ("data-serving", "media-streaming",
                            "web-serving")


@dataclass
class WorkloadCheck:
    """Measured characteristics of one workload's generated trace."""

    name: str
    mapki: float
    mapki_target: float
    large_stride_share: float
    cold_2mb: float
    cold_4mb: float

    @property
    def mapki_error(self) -> float:
        """Relative MAPKI error vs Table 4."""
        return abs(self.mapki - self.mapki_target) / self.mapki_target


@dataclass
class ValidationReport:
    """Aggregate validation outcome."""

    checks: list[WorkloadCheck] = field(default_factory=list)

    @property
    def mean_cold_2mb(self) -> float:
        """Fleet-average cold fraction at 2 MB (paper: 61.5 %)."""
        return float(np.mean([check.cold_2mb for check in self.checks]))

    @property
    def mean_cold_4mb(self) -> float:
        """Fleet-average cold fraction at 4 MB (paper: 33.2 %)."""
        return float(np.mean([check.cold_4mb for check in self.checks]))

    @property
    def max_mapki_error(self) -> float:
        """Worst relative MAPKI error across workloads."""
        return max(check.mapki_error for check in self.checks)

    def problems(self, mapki_tolerance: float = 0.10,
                 cold_band: float = 0.10) -> list[str]:
        """Human-readable list of calibration violations (empty = good)."""
        issues = []
        for check in self.checks:
            if check.mapki_error > mapki_tolerance:
                issues.append(
                    f"{check.name}: MAPKI {check.mapki:.2f} vs "
                    f"{check.mapki_target:.1f}")
            narrow = check.name in NARROW_STRIDE_BENCHMARKS
            if narrow and check.large_stride_share > 0.45:
                issues.append(f"{check.name}: narrow-stride benchmark has "
                              f"{check.large_stride_share:.0%} large strides")
            if not narrow and check.large_stride_share < 0.45:
                issues.append(f"{check.name}: wide-stride benchmark has "
                              f"only {check.large_stride_share:.0%} "
                              "large strides")
        if abs(self.mean_cold_2mb - PAPER_COLD_2MB) > cold_band:
            issues.append(f"mean cold@2MB {self.mean_cold_2mb:.1%} vs "
                          f"paper {PAPER_COLD_2MB:.1%}")
        if abs(self.mean_cold_4mb - PAPER_COLD_4MB) > cold_band:
            issues.append(f"mean cold@4MB {self.mean_cold_4mb:.1%} vs "
                          f"paper {PAPER_COLD_4MB:.1%}")
        return issues


def check_workload(profile: WorkloadProfile, footprint_bytes: int = 2 * GIB,
                   target_instructions: float = 120e6,
                   seed: int = 0) -> WorkloadCheck:
    """Generate one trace and measure its calibration metrics."""
    generator = TraceGenerator(profile, footprint_bytes=footprint_bytes,
                               seed=seed)
    accesses = max(1000, int(target_instructions * profile.mapki / 1000))
    trace = generator.generate(accesses)
    distribution = trace.stride_distribution()
    return WorkloadCheck(
        name=profile.name,
        mapki=trace.mapki,
        mapki_target=PAPER_MAPKI[profile.name],
        large_stride_share=distribution.get(">=4194304", 0.0),
        cold_2mb=trace.cold_segment_fraction(
            SEGMENT_BYTES, total_segments=generator.num_segments),
        cold_4mb=trace.cold_segment_fraction(
            2 * SEGMENT_BYTES, total_segments=generator.num_segments // 2))


def validate_workloads(names: tuple[str, ...] = TRACED_BENCHMARKS,
                       footprint_bytes: int = 2 * GIB,
                       target_instructions: float = 120e6,
                       ) -> ValidationReport:
    """Validate every named workload; returns the aggregate report."""
    report = ValidationReport()
    for index, name in enumerate(names):
        report.checks.append(check_workload(
            PROFILES[name], footprint_bytes=footprint_bytes,
            target_instructions=target_instructions, seed=index))
    return report


__all__ = [
    "PAPER_MAPKI",
    "PAPER_COLD_2MB",
    "PAPER_COLD_4MB",
    "NARROW_STRIDE_BENCHMARKS",
    "WorkloadCheck",
    "ValidationReport",
    "check_workload",
    "validate_workloads",
]
