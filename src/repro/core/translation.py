"""The DTL translation engine: SMC in front of the table walk.

Latency model (Section 6.1):

* L1 SMC hit: 1 cycle at 1.5 GHz.
* L1 miss, L2 hit: + 7 cycles.
* Full miss: + 2 SRAM accesses (1 cycle each) + 1 DRAM access to the
  segment mapping table (121 ns).

:meth:`TranslationEngine.measured_amat_ns` evaluates the paper's AMAT
equations (1)–(2) over the engine's own measured hit/miss ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.addressing import HostAddressLayout
from repro.core.segment_cache import (SegmentCacheConfig, SegmentMappingCache,
                                      cycles_to_ns)
from repro.core.tables import TranslationTables
from repro.dram.timing import NATIVE_DRAM_LATENCY_NS
from repro.telemetry import EventTrace, MetricsRegistry

SRAM_ACCESS_CYCLES = 1


@dataclass
class Translation:
    """Result of translating one HPA."""

    hpa: int
    hsn: int
    dsn: int
    dpa_offset: int
    latency_ns: float
    l1_hit: bool
    l2_hit: bool

    @property
    def smc_miss(self) -> bool:
        """True when the full table walk was taken."""
        return not (self.l1_hit or self.l2_hit)


class TranslationEngine:
    """HPA -> DPA translation with latency accounting."""

    def __init__(self, layout: HostAddressLayout,
                 tables: TranslationTables | None = None,
                 cache_config: SegmentCacheConfig | None = None,
                 table_dram_latency_ns: float = NATIVE_DRAM_LATENCY_NS,
                 registry: MetricsRegistry | None = None,
                 trace: EventTrace | None = None):
        self.layout = layout
        self.tables = tables if tables is not None else TranslationTables(layout)
        registry = registry if registry is not None else MetricsRegistry()
        self.smc = SegmentMappingCache(cache_config, registry=registry,
                                       trace=trace)
        self.table_dram_latency_ns = table_dram_latency_ns
        self._translations = registry.counter("translation.count")
        self._table_walks = registry.counter("translation.table_walks")
        self._latency_total = registry.counter("translation.latency_total_ns")
        self._latency_hist = registry.histogram("translation.latency_ns")

    @property
    def translation_count(self) -> int:
        """Translations performed (registry counter view)."""
        return self._translations.value

    @translation_count.setter
    def translation_count(self, value: int) -> None:
        self._translations.set(value)

    @property
    def total_latency_ns(self) -> float:
        """Cumulative translation latency (registry counter view)."""
        return self._latency_total.value

    @total_latency_ns.setter
    def total_latency_ns(self, value: float) -> None:
        self._latency_total.set(value)

    @property
    def table_walks(self) -> int:
        """Full three-level walks taken (== SMC full misses)."""
        return self._table_walks.value

    @property
    def miss_penalty_ns(self) -> float:
        """Latency of the full table walk beyond the L2 lookup."""
        sram_ns = cycles_to_ns(2 * SRAM_ACCESS_CYCLES,
                               self.smc.config.clock_ghz)
        return sram_ns + self.table_dram_latency_ns

    def translate_hsn(self, hsn: int) -> tuple[int, float, bool, bool]:
        """Translate one HSN; returns ``(dsn, latency_ns, l1_hit, l2_hit)``."""
        result = self.smc.lookup(hsn)
        # hit_latency_ns charges only the SMC probes; the table-walk
        # penalty is added exactly once, below, on a full miss.
        latency_ns = self.smc.hit_latency_ns(result)
        if result.dsn is not None:
            dsn = result.dsn
        else:
            walk = self.tables.walk(hsn)
            dsn = walk.dsn
            latency_ns += self.miss_penalty_ns
            self.smc.fill(hsn, dsn)
            self._table_walks.inc()
        self._translations.inc()
        self._latency_total.inc(latency_ns)
        self._latency_hist.observe(latency_ns)
        return dsn, latency_ns, result.l1_hit, result.l2_hit

    def translate_hsn_batch(self, hsns: np.ndarray,
                            ) -> tuple[np.ndarray, np.ndarray,
                                       np.ndarray, np.ndarray]:
        """Vectorised :meth:`translate_hsn` over an HSN array.

        Returns ``(dsns, latencies_ns, l1_hits, l2_hits)``.  DSNs, hit
        classes, per-access latency values, cache/walk counters, and SMC
        state are identical to the scalar loop; the registry's latency
        *total* accumulates in one addition per batch, so it can differ
        from the sequential sum in the last ULPs (see docs/PERF.md).
        """
        def _resolve(hsn: int) -> int:
            return self.tables.walk(hsn).dsn

        dsns, l1_hits, l2_hits = self.smc.lookup_batch(
            hsns, _resolve, resolve_batch=self.tables.walk_batch)
        latencies = self.smc.latency_ns_batch(l1_hits, l2_hits)
        misses = ~(l1_hits | l2_hits)
        if misses.any():
            latencies = latencies + misses * self.miss_penalty_ns
            self._table_walks.inc(int(misses.sum()))
        self._translations.inc(len(dsns))
        self._latency_total.inc(float(latencies.sum()))
        self._latency_hist.observe_batch(latencies)
        return dsns, latencies, l1_hits, l2_hits

    def translate(self, hpa: int) -> Translation:
        """Translate a full host physical address."""
        hsn = self.layout.hsn_of_hpa(hpa)
        offset = self.layout.offset_of_hpa(hpa)
        dsn, latency_ns, l1_hit, l2_hit = self.translate_hsn(hsn)
        return Translation(hpa=hpa, hsn=hsn, dsn=dsn, dpa_offset=offset,
                           latency_ns=latency_ns, l1_hit=l1_hit,
                           l2_hit=l2_hit)

    def invalidate(self, hsn: int) -> bool:
        """Invalidate the SMC entry for ``hsn`` (after a mapping update)."""
        return self.smc.invalidate(hsn)

    # -- serialisation -----------------------------------------------------------

    def state_dict(self) -> dict:
        """SMC state; the latency counters restore through the registry."""
        return {"smc": self.smc.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        self.smc.load_state_dict(state["smc"])

    # -- measured AMAT (Section 6.1) -------------------------------------------

    def measured_amat_ns(self) -> float:
        """Average translation latency using the paper's AMAT equations.

        ``Addr_translation = L1_hit_time + L1_miss_ratio x (L2_hit_time +
        L2_miss_ratio x L2_miss_penalty)``
        """
        config = self.smc.config
        l1_miss = self.smc.l1.stats.miss_ratio
        l2_miss = self.smc.l2.stats.miss_ratio
        return config.l1_hit_ns + l1_miss * (
            config.l2_hit_ns + l2_miss * self.miss_penalty_ns)

    def mean_observed_latency_ns(self) -> float:
        """Mean of the actually accumulated per-translation latencies."""
        if not self.translation_count:
            return 0.0
        return self.total_latency_ns / self.translation_count


__all__ = ["SRAM_ACCESS_CYCLES", "Translation", "TranslationEngine"]
