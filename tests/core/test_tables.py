"""Tests for the three-level translation tables and reverse map."""

import pytest

from repro.core.addressing import HostAddressLayout
from repro.core.tables import TranslationTables, UNMAPPED, WalkResult
from repro.dram.geometry import DramGeometry
from repro.errors import AddressError, AllocationError, TranslationError
from repro.units import GIB, MIB


@pytest.fixture
def layout():
    return HostAddressLayout(DramGeometry(rank_bytes=1 * GIB),
                             au_bytes=64 * MIB)


@pytest.fixture
def tables(layout):
    tables = TranslationTables(layout)
    tables.allocate_au(0, 0)
    return tables


class TestAuLifecycle:
    def test_allocate_and_list(self, tables):
        tables.allocate_au(0, 3)
        assert tables.au_ids(0) == [0, 3]

    def test_double_allocate_rejected(self, tables):
        with pytest.raises(AllocationError):
            tables.allocate_au(0, 0)

    def test_au_id_range(self, tables):
        with pytest.raises(AddressError):
            tables.allocate_au(0, 10 ** 9)

    def test_host_id_range(self, tables):
        with pytest.raises(AddressError):
            tables.register_host(16)

    def test_free_au_returns_dsns(self, tables, layout):
        hsn = layout.pack_hsn(0, 0, 5)
        tables.map_segment(hsn, 1234)
        freed = tables.free_au(0, 0)
        assert freed == [1234]
        assert not tables.is_dsn_live(1234)

    def test_free_unallocated_au_rejected(self, tables):
        with pytest.raises(TranslationError):
            tables.free_au(0, 7)


class TestMapping:
    def test_map_and_walk(self, tables, layout):
        hsn = layout.pack_hsn(0, 0, 2)
        tables.map_segment(hsn, 42)
        result = tables.walk(hsn)
        assert isinstance(result, WalkResult)
        assert result.dsn == 42
        assert result.sram_accesses == 2
        assert result.dram_accesses == 1

    def test_double_map_rejected(self, tables, layout):
        hsn = layout.pack_hsn(0, 0, 2)
        tables.map_segment(hsn, 42)
        with pytest.raises(TranslationError):
            tables.map_segment(hsn, 43)

    def test_dsn_reuse_rejected(self, tables, layout):
        tables.map_segment(layout.pack_hsn(0, 0, 1), 42)
        with pytest.raises(TranslationError):
            tables.map_segment(layout.pack_hsn(0, 0, 2), 42)

    def test_walk_unmapped_raises(self, tables, layout):
        with pytest.raises(TranslationError):
            tables.walk(layout.pack_hsn(0, 0, 9))

    def test_try_walk_returns_none(self, tables, layout):
        assert tables.try_walk(layout.pack_hsn(0, 0, 9)) is None

    def test_unmap(self, tables, layout):
        hsn = layout.pack_hsn(0, 0, 2)
        tables.map_segment(hsn, 42)
        assert tables.unmap_segment(hsn) == 42
        assert tables.try_walk(hsn) is None

    def test_unmap_unmapped_raises(self, tables, layout):
        with pytest.raises(TranslationError):
            tables.unmap_segment(layout.pack_hsn(0, 0, 2))


class TestRemapAndSwap:
    def test_remap(self, tables, layout):
        hsn = layout.pack_hsn(0, 0, 2)
        tables.map_segment(hsn, 42)
        old = tables.remap_segment(hsn, 77)
        assert old == 42
        assert tables.walk(hsn).dsn == 77
        assert tables.hsn_of_dsn(77) == hsn
        assert not tables.is_dsn_live(42)

    def test_remap_to_used_dsn_rejected(self, tables, layout):
        tables.map_segment(layout.pack_hsn(0, 0, 1), 42)
        tables.map_segment(layout.pack_hsn(0, 0, 2), 43)
        with pytest.raises(TranslationError):
            tables.remap_segment(layout.pack_hsn(0, 0, 1), 43)

    def test_swap(self, tables, layout):
        hsn_a = layout.pack_hsn(0, 0, 1)
        hsn_b = layout.pack_hsn(0, 0, 2)
        tables.map_segment(hsn_a, 100)
        tables.map_segment(hsn_b, 200)
        tables.swap_segments(hsn_a, hsn_b)
        assert tables.walk(hsn_a).dsn == 200
        assert tables.walk(hsn_b).dsn == 100
        assert tables.hsn_of_dsn(100) == hsn_b
        assert tables.hsn_of_dsn(200) == hsn_a


class TestReverseMap:
    def test_reverse_lookup(self, tables, layout):
        hsn = layout.pack_hsn(0, 0, 3)
        tables.map_segment(hsn, 55)
        assert tables.hsn_of_dsn(55) == hsn

    def test_reverse_lookup_missing(self, tables):
        with pytest.raises(TranslationError):
            tables.hsn_of_dsn(999)

    def test_live_dsns(self, tables, layout):
        tables.map_segment(layout.pack_hsn(0, 0, 1), 9)
        tables.map_segment(layout.pack_hsn(0, 0, 2), 4)
        assert tables.live_dsns() == [4, 9]
        assert tables.mapped_segment_count == 2

    def test_consistency_after_operations(self, tables, layout):
        """Forward and reverse maps stay inverse of each other."""
        hsns = [layout.pack_hsn(0, 0, index) for index in range(8)]
        for index, hsn in enumerate(hsns):
            tables.map_segment(hsn, 1000 + index)
        tables.swap_segments(hsns[0], hsns[1])
        tables.remap_segment(hsns[2], 2000)
        tables.unmap_segment(hsns[3])
        for hsn in hsns[:3] + hsns[4:]:
            dsn = tables.walk(hsn).dsn
            assert tables.hsn_of_dsn(dsn) == hsn
