"""Rank-level power-down over a six-hour cloud VM schedule (Figure 12).

Generates an Azure-like VM arrival/departure trace, schedules it on a
48-vCPU / 384 GB memory-pool node, and replays it through the DTL
controller twice — once with rank-level power-down enabled and once with
the all-ranks-standby baseline — then prints the interval power trace and
the headline energy savings.

Run:  python examples/vm_consolidation.py            (full 6 h schedule)
      python examples/vm_consolidation.py --quick    (1 h, 80 VMs)
"""

import sys

from repro.host.scheduler import SchedulerConfig
from repro.sim.experiments import run_experiment
from repro.sim.powerdown_sim import (PowerDownSimConfig, background_power_savings,
                                     energy_savings, power_savings)
from repro.units import GIB
from repro.workloads.azure import AzureTraceConfig

def main() -> None:
    quick = "--quick" in sys.argv
    if quick:
        config = PowerDownSimConfig(
            azure=AzureTraceConfig(num_vms=80, duration_s=3600.0),
            scheduler=SchedulerConfig(duration_s=3600.0))
    else:
        config = PowerDownSimConfig()

    print("Scheduling the VM trace through the DTL (this replays every "
          "allocation, migration, and power transition)...")
    pair = run_experiment("powerdown_comparison", config)
    baseline, dtl = pair.baseline, pair.dtl

    print(f"\n{'time':>6s} {'VMs':>4s} {'resv GiB':>9s} {'ranks/ch':>9s} "
          f"{'power RSU':>10s} {'migration':>10s}")
    for record in dtl.intervals[:: max(1, len(dtl.intervals) // 24)]:
        print(f"{record.time_s / 60:5.0f}m {record.live_vms:4d} "
              f"{record.reserved_bytes / GIB:9.1f} "
              f"{record.active_ranks_per_channel:9d} "
              f"{record.total_power:10.2f} "
              f"{record.migration_power:10.3f}")

    print(f"\nMean active ranks/channel: {dtl.mean_active_ranks:.2f} "
          f"(baseline keeps all {config.geometry.ranks_per_channel})")
    print(f"Segments migrated: {dtl.migrated_bytes / GIB:.1f} GiB over "
          f"{dtl.power_transitions} power transitions "
          f"({dtl.migration_time_s:.1f} s of background copying)")
    print(f"Execution-time factor: {dtl.execution_time_factor:.4f} "
          f"(paper: 1.016)")
    print(f"\nDRAM energy savings:      {100 * energy_savings(baseline, dtl):5.1f}%"
          f"  (paper: 31.6%)")
    print(f"DRAM power savings:       {100 * power_savings(baseline, dtl):5.1f}%"
          f"  (paper: 32.7%)")
    print(f"Background power savings: "
          f"{100 * background_power_savings(baseline, dtl):5.1f}%"
          f"  (paper: 35.3%)")

if __name__ == "__main__":
    main()
