"""Tests for the trace-driven rank sweep."""

import pytest

from repro.sim.rank_sweep import (RankSweepConfig, TraceRankSweep,
                                  mean_trace_driven_slowdown)
from repro.workloads.cloudsuite import PROFILES


@pytest.fixture(scope="module")
def sweep():
    return TraceRankSweep(PROFILES["graph-analytics"], num_accesses=20_000)


class TestMeasurement:
    def test_baseline_slowdown_zero(self, sweep):
        assert sweep.slowdowns((8,))[8] == pytest.approx(0.0)

    def test_monotone_in_rank_count(self, sweep):
        slowdowns = sweep.slowdowns((8, 4, 2))
        assert slowdowns[8] <= slowdowns[4] <= slowdowns[2]

    def test_queue_grows_with_fewer_ranks(self, sweep):
        wide = sweep.measure(8)
        narrow = sweep.measure(2)
        assert narrow.mean_queue_ns > wide.mean_queue_ns

    def test_service_time_plausible(self, sweep):
        point = sweep.measure(4)
        timing = sweep.config.timing
        assert timing.row_hit_latency_ns() < point.mean_service_ns \
            <= timing.row_conflict_latency_ns()

    def test_interpolated_odd_rank_count(self, sweep):
        points = sweep.sweep((6,))
        low = sweep.measure(4)
        high = sweep.measure(8)
        assert min(low.time_per_ki_ns, high.time_per_ki_ns) <= \
            points[6].time_per_ki_ns <= \
            max(low.time_per_ki_ns, high.time_per_ki_ns)

    def test_small_loss_at_two_ranks(self, sweep):
        """The headline: the trace-driven method also finds sub-percent
        losses at 2 ranks (Figure 2's claim, paper: 0.7 % mean)."""
        slowdown = sweep.slowdowns((2,))[2]
        assert 0.0 <= slowdown < 0.03


class TestAggregates:
    def test_mean_over_workloads(self):
        mean = mean_trace_driven_slowdown(2, workloads=("graph-analytics",
                                                        "data-caching"),
                                          num_accesses=15_000)
        assert 0.0 <= mean < 0.02

    def test_memory_heavy_workload_suffers_more(self):
        heavy = TraceRankSweep(PROFILES["graph-analytics"],
                               num_accesses=15_000).slowdowns((2,))[2]
        light = TraceRankSweep(PROFILES["web-search"],
                               num_accesses=15_000).slowdowns((2,))[2]
        assert heavy >= light


class TestInterleavingComparison:
    def test_cxl_smaller_than_local(self):
        from repro.sim.rank_sweep import interleaving_comparison
        result = interleaving_comparison(PROFILES["graph-analytics"],
                                         num_accesses=15_000)
        assert 0.0 <= result["cxl"] <= result["local"]

    def test_cost_is_small(self):
        from repro.sim.rank_sweep import interleaving_comparison
        result = interleaving_comparison(PROFILES["graph-analytics"],
                                         num_accesses=15_000)
        assert result["local"] < 0.05
