"""Ablation: sensitivity to the access-pattern-stability assumption.

Section 6.3 leans on a measured property [TPP]: "data access patterns in
the data center remain relatively stable for a long period (minutes to
hours)", which is what lets the victim rank *stay* in self-refresh.
This ablation rotates the hot set at increasing rates and shows the
stable-phase savings eroding and wakeups multiplying — quantifying how
much the paper's result depends on that assumption.
"""

import dataclasses

from repro.sim.selfrefresh_sim import SelfRefreshSimulator, config_for_point
from repro.workloads.drift import DriftConfig

from conftest import report

DURATION_S = 40.0


def run(period_s: float | None):
    base = config_for_point("208gb", duration_s=DURATION_S)
    drift = (None if period_s is None
             else DriftConfig(period_s=period_s, fraction=0.15))
    return SelfRefreshSimulator(dataclasses.replace(base, drift=drift)).run()


def test_ablation_hot_set_drift(benchmark):
    def sweep():
        return {label: run(period)
                for label, period in (("stable (paper)", None),
                                      ("drift / 30s", 30.0),
                                      ("drift / 5s", 5.0))}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(label, f"{r.stable_savings:.1%}", str(r.sr_exits),
             f"{r.migrated_bytes / 2**20:.0f} MiB")
            for label, r in results.items()]
    report("Ablation: hot-set drift vs self-refresh stability", rows,
           header=("regime", "stable savings", "wakeups", "migrated"))
    stable = results["stable (paper)"]
    slow = results["drift / 30s"]
    fast = results["drift / 5s"]
    # Savings erode monotonically with drift rate...
    assert stable.stable_savings >= slow.stable_savings \
        >= fast.stable_savings - 0.01
    # ...and wakeups multiply.
    assert slow.sr_exits > 2 * stable.sr_exits
    assert fast.sr_exits > slow.sr_exits
    # Even under fast drift the mechanism degrades gracefully (it keeps
    # re-consolidating rather than collapsing).
    assert fast.stable_savings > 0.0


def test_ablation_drift_costs_migration():
    stable = run(None)
    drifting = run(10.0)
    assert drifting.migrated_bytes > stable.migrated_bytes
