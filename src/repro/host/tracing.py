"""Post-cache trace recording — the reproduction's stand-in for Pin.

The paper collects physical-address traces with a Pin tool and filters
them through a cache simulation (Section 5.2).  :class:`TraceRecorder`
wires those two steps together: feed it raw host accesses (or a whole
synthetic trace) and it returns the post-cache :class:`~repro.workloads.
trace.Trace` that reaches the memory device, with instruction counts
carried through from the input stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.host.caches import CacheHierarchy, PAPER_CACHE_LEVELS
from repro.units import CACHELINE_BYTES
from repro.workloads.trace import Trace


@dataclass
class TraceRecorder:
    """Runs host accesses through the cache hierarchy, records survivors.

    Attributes:
        hierarchy: Cache hierarchy doing the filtering (Table 3 defaults).
    """

    hierarchy: CacheHierarchy = field(
        default_factory=lambda: CacheHierarchy(PAPER_CACHE_LEVELS))
    _addresses: list[int] = field(default_factory=list)
    _is_write: list[bool] = field(default_factory=list)
    _instr_deltas: list[int] = field(default_factory=list)
    _pending_instructions: int = 0
    host_accesses: int = 0

    def record(self, address: int, is_write: bool = False,
               instructions_since_last: int = 0) -> int:
        """Feed one host access; returns post-cache requests it caused."""
        self.host_accesses += 1
        self._pending_instructions += instructions_since_last
        requests = self.hierarchy.access(address, is_write)
        for request in requests:
            self._addresses.append(request.address)
            self._is_write.append(request.is_write)
            self._instr_deltas.append(self._pending_instructions)
            self._pending_instructions = 0
        return len(requests)

    def record_trace(self, trace: Trace) -> int:
        """Feed a whole (pre-cache) trace; returns post-cache requests."""
        total = 0
        for index in range(len(trace)):
            total += self.record(int(trace.addresses[index]),
                                 bool(trace.is_write[index]),
                                 int(trace.instr_deltas[index]))
        return total

    def finish(self, name: str = "post-cache") -> Trace:
        """Materialise the recorded post-cache trace."""
        return Trace(
            addresses=np.asarray(self._addresses, dtype=np.uint64),
            is_write=np.asarray(self._is_write, dtype=bool),
            instr_deltas=np.asarray(self._instr_deltas, dtype=np.uint32),
            name=name)

    @property
    def filter_ratio(self) -> float:
        """Fraction of host accesses absorbed by the caches."""
        if not self.host_accesses:
            return 0.0
        return 1.0 - len(self._addresses) / self.host_accesses


__all__ = ["TraceRecorder"]
