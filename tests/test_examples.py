"""Smoke tests: every shipped example runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 300.0):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Final rank census" in result.stdout

    def test_capacity_planning(self):
        result = run_example("capacity_planning.py", "256")
        assert result.returncode == 0, result.stderr
        assert "Controller @7nm" in result.stdout

    def test_pooled_rack(self):
        result = run_example("pooled_rack.py")
        assert result.returncode == 0, result.stderr
        assert "verified reachable" in result.stdout

    @pytest.mark.slow
    def test_vm_consolidation_quick(self):
        result = run_example("vm_consolidation.py", "--quick",
                             timeout=500.0)
        assert result.returncode == 0, result.stderr
        assert "DRAM energy savings" in result.stdout

    @pytest.mark.slow
    def test_hotness_selfrefresh(self):
        result = run_example("hotness_selfrefresh.py", "208gb",
                             timeout=500.0)
        assert result.returncode == 0, result.stderr
        assert "Stable-phase savings" in result.stdout

    @pytest.mark.slow
    def test_datacenter_tco(self):
        result = run_example("datacenter_tco.py", "2", timeout=500.0)
        assert result.returncode == 0, result.stderr
        assert "annual cost saved" in result.stdout
