"""Tests for the VM scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.host.scheduler import SchedulerConfig, VmScheduler
from repro.host.vm import VmEvent, VmSpec
from repro.units import GIB


def spec(name, vcpus=2, mem_gib=8, lifetime_s=600.0, arrival_s=0.0):
    return VmSpec(vm_name=name, vcpus=vcpus, memory_bytes=mem_gib * GIB,
                  lifetime_s=lifetime_s, arrival_s=arrival_s)


@pytest.fixture
def scheduler():
    return VmScheduler(SchedulerConfig(vcpus=8, memory_bytes=32 * GIB,
                                       duration_s=3600.0))


class TestAdmission:
    def test_admits_fitting_vms(self, scheduler):
        result = scheduler.run([spec("a"), spec("b")])
        assert result.admitted == 2
        assert result.rejected == 0

    def test_rejects_oversized_vm(self, scheduler):
        result = scheduler.run([spec("huge", vcpus=64)])
        assert result.rejected == 1
        assert result.admitted == 0

    def test_queues_when_full(self, scheduler):
        # Two 16 GiB VMs fill memory; the third waits for a departure.
        specs = [spec("a", mem_gib=16, lifetime_s=600),
                 spec("b", mem_gib=16, lifetime_s=600),
                 spec("c", mem_gib=16, lifetime_s=600, arrival_s=60)]
        result = scheduler.run(specs)
        assert result.admitted == 3
        starts = {e.spec.vm_name: e.time_s for e in result.events
                  if e.kind == "start"}
        assert starts["c"] >= 600.0

    def test_fifo_pending_order(self, scheduler):
        specs = [spec("a", mem_gib=32, lifetime_s=600),
                 spec("b", mem_gib=16, lifetime_s=300, arrival_s=10),
                 spec("c", mem_gib=4, lifetime_s=300, arrival_s=20)]
        result = scheduler.run(specs)
        starts = {e.spec.vm_name: e.time_s for e in result.events
                  if e.kind == "start"}
        # c fits immediately but must not jump the FIFO queue ahead of b.
        assert starts["b"] <= starts["c"]


class TestCapacityInvariant:
    @given(st.lists(st.tuples(st.integers(1, 8), st.integers(1, 16),
                              st.integers(1, 6), st.floats(0, 3000)),
                    min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_usage_never_exceeds_capacity(self, raw):
        config = SchedulerConfig(vcpus=8, memory_bytes=32 * GIB,
                                 duration_s=3600.0)
        specs = [VmSpec(vm_name=f"vm{i}", vcpus=v, memory_bytes=m * GIB,
                        lifetime_s=300.0 * l, arrival_s=a)
                 for i, (v, m, l, a) in enumerate(raw)]
        result = VmScheduler(config).run(specs)
        for sample in result.samples:
            assert sample.memory_bytes <= config.memory_bytes
            assert sample.vcpus <= config.vcpus


class TestSamplesAndEvents:
    def test_sample_count(self, scheduler):
        result = scheduler.run([])
        assert len(result.samples) == 13  # 0..3600 every 300 s

    def test_events_sorted(self, scheduler):
        result = scheduler.run([spec(f"v{i}", lifetime_s=300.0 * (i + 1),
                                     arrival_s=100.0 * i)
                                for i in range(5)])
        times = [event.time_s for event in result.events]
        assert times == sorted(times)

    def test_stop_events_balance_starts(self, scheduler):
        result = scheduler.run([spec("a", lifetime_s=300)])
        kinds = [event.kind for event in result.events]
        assert kinds.count("start") == 1
        assert kinds.count("stop") == 1

    def test_mean_memory_fraction(self, scheduler):
        result = scheduler.run([spec("a", mem_gib=16, lifetime_s=10_000.0)])
        assert result.mean_memory_fraction() == pytest.approx(0.5, abs=0.05)

    def test_peak_memory_fraction(self, scheduler):
        result = scheduler.run([spec("a", mem_gib=16, lifetime_s=600.0)])
        assert result.peak_memory_fraction() == pytest.approx(0.5)


class TestVmTypes:
    def test_spec_properties(self):
        s = spec("x", mem_gib=4, lifetime_s=900, arrival_s=100)
        assert s.memory_gib == 4.0
        assert s.departure_s == 1000.0

    def test_event_ordering_stops_first(self):
        s = spec("x")
        stop = VmEvent(time_s=10.0, kind="stop", spec=s)
        start = VmEvent(time_s=10.0, kind="start", spec=s)
        assert stop < start
