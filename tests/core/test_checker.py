"""Tests for the cross-structure invariant checker."""

import pytest

from repro.core.checker import (AuditReport, ConsistencyChecker,
                                ConsistencyError, check)
from repro.core.config import DtlConfig
from repro.core.controller import DtlController
from repro.dram.geometry import DramGeometry
from repro.dram.power import PowerState
from repro.units import GIB, MIB


@pytest.fixture
def controller():
    return DtlController(DtlConfig(
        geometry=DramGeometry(rank_bytes=256 * MIB), au_bytes=64 * MIB))


class TestCleanStates:
    def test_fresh_controller(self, controller):
        report = check(controller)
        assert report.ok
        assert report.checked_mappings == 0

    def test_after_allocation(self, controller):
        controller.allocate_vm(0, 256 * MIB)
        report = check(controller)
        assert report.ok
        assert report.checked_mappings == 128

    def test_after_full_lifecycle(self, controller):
        vm_a = controller.allocate_vm(0, 512 * MIB, now_s=0.0)
        vm_b = controller.allocate_vm(1, 256 * MIB, now_s=1.0)
        controller.deallocate_vm(vm_a, now_s=2.0)
        controller.allocate_vm(0, 128 * MIB, now_s=3.0)
        assert check(controller).ok

    def test_after_accesses(self, controller):
        vm = controller.allocate_vm(0, 128 * MIB)
        for offset in range(16):
            controller.access(0, controller.hpa_of(vm.au_ids[0], offset))
        report = check(controller)
        assert report.ok
        assert report.checked_smc_entries > 0

    def test_after_retirement_with_tolerance(self, controller):
        vm = controller.allocate_vm(0, 512 * MIB)
        controller.retire_rank(0, 7, now_s=1.0)
        # Retirement may not disturb balance when the rank was empty.
        assert check(controller).ok


class TestDetectsCorruption:
    def test_stale_smc_entry(self, controller):
        vm = controller.allocate_vm(0, 64 * MIB)
        hpa = controller.hpa_of(vm.au_ids[0], 0)
        result = controller.access(0, hpa)
        hsn = controller.tables.hsn_of_dsn(result.dsn)
        # Corrupt: remap behind the SMC's back (no invalidation).
        free_dsn = controller.allocator.free_dsns_in_rank(
            (result.channel, result.rank))[0]
        controller.allocator.reserve_specific(free_dsn)
        controller.tables.remap_segment(hsn, free_dsn)
        controller.allocator.free([result.dsn])
        with pytest.raises(ConsistencyError, match="SMC"):
            check(controller)

    def test_mapping_without_allocation(self, controller):
        controller.tables.allocate_au(0, 0)
        controller.tables.map_segment(
            controller.host_layout.pack_hsn(0, 0, 0), 17)
        with pytest.raises(ConsistencyError, match="not allocated"):
            check(controller)

    def test_allocation_without_mapping(self, controller):
        controller.allocator.allocate_in_rank((0, 0), 1)
        with pytest.raises(ConsistencyError, match="not mapped"):
            check(controller)

    def test_mpsm_rank_with_data(self, controller):
        vm = controller.allocate_vm(0, 64 * MIB)
        # Forcibly park a data-holding rank in MPSM.
        rank_id = next(rank_id
                       for rank_id in controller.allocator._allocated
                       if controller.allocator.usage(rank_id).allocated)
        controller.device.set_rank_state(rank_id, PowerState.MPSM, 1.0)
        with pytest.raises(ConsistencyError, match="MPSM"):
            check(controller)

    def test_unbalanced_channels(self, controller):
        controller.allocator.allocate_in_rank((0, 0), 4)
        # Map them so allocation agreement holds.
        controller.tables.allocate_au(0, 0)
        for offset, dsn in enumerate(
                controller.allocator.allocated_in_rank((0, 0))):
            controller.tables.map_segment(
                controller.host_layout.pack_hsn(0, 0, offset), dsn)
        with pytest.raises(ConsistencyError, match="unbalanced"):
            check(controller)
        # ... but passes with enough tolerance.
        report = ConsistencyChecker(controller).audit(balance_tolerance=4)
        assert report.ok


class TestReport:
    def test_report_collects_multiple_violations(self, controller):
        controller.allocator.allocate_in_rank((0, 0), 1)
        controller.allocator.allocate_in_rank((1, 1), 1)
        report = ConsistencyChecker(controller).audit(balance_tolerance=64)
        assert len(report.violations) == 2
        assert not report.ok
