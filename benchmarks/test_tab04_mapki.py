"""Table 4: memory accesses per kilo-instruction (MAPKI).

The synthetic generators are parameterised by the published MAPKI values;
this benchmark verifies generated traces actually exhibit them, and that
the replay-rate adjustment of Section 5.2 (targeting >30 GB/s, i.e. an
effective MAPKI of 15.2) is reachable.
"""

import pytest

from repro.workloads.cloudsuite import PROFILES, make_trace

from conftest import report

PAPER_MAPKI = {
    "data-analytics": 1.9, "data-caching": 1.5, "data-serving": 4.2,
    "django-workload": 0.8, "fb-oss-performance": 3.6,
    "graph-analytics": 6.5, "in-memory-analytics": 2.5,
    "media-streaming": 4.6, "web-search": 0.7, "web-serving": 0.7,
}


def measure():
    return {name: make_trace(name, 60_000, seed=index).mapki
            for index, name in enumerate(sorted(PROFILES))}


def test_tab04_mapki(benchmark):
    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [(name, f"{measured[name]:.2f}", f"{PAPER_MAPKI[name]:.1f}")
            for name in sorted(measured)]
    report("Table 4: MAPKI", rows, header=("workload", "measured", "paper"))
    for name, value in measured.items():
        assert value == pytest.approx(PAPER_MAPKI[name], rel=0.08), name


def test_tab04_ordering_preserved():
    measured = measure()
    assert measured["graph-analytics"] == max(measured.values())
    assert measured["web-search"] < 1.0


def test_tab04_replay_boost_reaches_30gbs():
    """Section 5.2: at MAPKI 15.2 the mix sustains >30 GB/s."""
    instr_per_s = 48 * 2.7e9 * 0.8  # 48 vCPUs as in the testbed
    bandwidth = 15.2 / 1000.0 * instr_per_s * 64 / 1e9
    assert bandwidth > 30.0
