"""Synthetic Azure-like VM trace generator (Figure 1 methodology).

The paper samples 400 VMs from the Microsoft Azure public dataset
(Cortez et al., SOSP'17) "following the same original distribution" of
vCPU count, vMemory size, and lifetime, and schedules them for six hours
on a 48-vCPU / 384 GB node.  The dataset itself is not redistributable
here, so this module synthesises traces with the dataset's published
shape:

* vCPU counts are small and heavily skewed towards 1–2 cores;
* vMemory is a per-core ratio in the 2–8 GB/vCPU range (the paper
  provisions 8 GB/vCPU on its node, within the typical 4–11 GB/vCPU);
* lifetimes are multiples of 5 minutes with a short-lived majority and a
  heavy tail (most Azure VMs live under 15 minutes; a small fraction runs
  for many hours);
* arrivals are uniform over the trace interval.

The default parameters are calibrated so the scheduled node reproduces the
Figure 1 headline: average memory usage below 50 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.host.vm import VmSpec
from repro.units import GIB
from repro.workloads.cloudsuite import PROFILES

FIVE_MINUTES_S = 300.0


@dataclass(frozen=True)
class AzureTraceConfig:
    """Knobs of the synthetic Azure VM trace.

    Distributions default to the published Azure dataset shape; all are
    ``(values, probabilities)`` pairs.
    """

    num_vms: int = 400
    duration_s: float = 6 * 3600.0
    vcpu_values: tuple[int, ...] = (1, 2, 4, 8, 16, 24)
    vcpu_probs: tuple[float, ...] = (0.40, 0.28, 0.18, 0.09, 0.04, 0.01)
    gib_per_vcpu_values: tuple[int, ...] = (2, 4, 8)
    gib_per_vcpu_probs: tuple[float, ...] = (0.32, 0.40, 0.28)
    lifetime_minutes_values: tuple[int, ...] = (
        5, 10, 15, 20, 30, 60, 120, 240, 360)
    lifetime_minutes_probs: tuple[float, ...] = (
        0.40, 0.22, 0.10, 0.08, 0.08, 0.06, 0.04, 0.015, 0.005)

    def __post_init__(self) -> None:
        for name in ("vcpu", "gib_per_vcpu", "lifetime_minutes"):
            values = getattr(self, f"{name}_values")
            probs = getattr(self, f"{name}_probs")
            if len(values) != len(probs):
                raise ValueError(f"{name}: values/probs length mismatch")
            if abs(sum(probs) - 1.0) > 1e-9:
                raise ValueError(f"{name}: probabilities must sum to 1")

    def mean_vcpus(self) -> float:
        """Expected vCPUs per VM."""
        return float(np.dot(self.vcpu_values, self.vcpu_probs))

    def mean_memory_bytes(self) -> float:
        """Expected vMemory per VM."""
        return (self.mean_vcpus()
                * float(np.dot(self.gib_per_vcpu_values,
                               self.gib_per_vcpu_probs)) * GIB)

    def mean_lifetime_s(self) -> float:
        """Expected VM lifetime in seconds."""
        return float(np.dot(self.lifetime_minutes_values,
                            self.lifetime_minutes_probs)) * 60.0


def generate_vm_trace(config: AzureTraceConfig | None = None,
                      seed: int | np.random.Generator = 0) -> list[VmSpec]:
    """Sample a synthetic Azure-like VM trace.

    Returns:
        VM specs sorted by arrival time.  Lifetimes are multiples of five
        minutes, memory is a whole number of GiB, and each VM is tagged
        with a CloudSuite workload drawn uniformly (Section 5.1: "the
        workload running on each VM is randomly selected from CloudSuite").
    """
    config = config or AzureTraceConfig()
    rng = (seed if isinstance(seed, np.random.Generator)
           else np.random.default_rng(seed))
    n = config.num_vms
    vcpus = rng.choice(config.vcpu_values, size=n, p=config.vcpu_probs)
    gib_per_vcpu = rng.choice(config.gib_per_vcpu_values, size=n,
                              p=config.gib_per_vcpu_probs)
    lifetimes = rng.choice(config.lifetime_minutes_values, size=n,
                           p=config.lifetime_minutes_probs) * 60.0
    arrivals = np.sort(rng.uniform(0.0, config.duration_s, size=n))
    workloads = rng.choice(sorted(PROFILES), size=n)
    specs = [
        VmSpec(vm_name=f"vm-{index:04d}",
               vcpus=int(vcpus[index]),
               memory_bytes=int(vcpus[index]) * int(gib_per_vcpu[index]) * GIB,
               lifetime_s=float(lifetimes[index]),
               arrival_s=float(arrivals[index]),
               workload=str(workloads[index]))
        for index in range(n)
    ]
    return specs


__all__ = ["FIVE_MINUTES_S", "AzureTraceConfig", "generate_vm_trace"]
