"""Segment allocator: per-rank free/allocated segment queues.

Implements the paper's balancing policy (Section 4.3):

* Every channel contributes an **equal number of free segments** to each
  allocation so per-VM channel bandwidth stays balanced.
* Within a channel, the free queue of the rank with the **highest capacity
  utilisation** (among ranks allowed to serve allocations) has priority —
  this packs data into few ranks and minimises later migration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.addressing import DeviceAddressLayout
from repro.dram.geometry import DramGeometry
from repro.errors import AllocationError

RankId = tuple[int, int]


@dataclass
class RankUsage:
    """Allocation snapshot of one rank."""

    rank_id: RankId
    allocated: int
    free: int

    @property
    def capacity(self) -> int:
        """Total segments in the rank."""
        return self.allocated + self.free

    @property
    def utilization(self) -> float:
        """Fraction of segments allocated."""
        return self.allocated / self.capacity if self.capacity else 0.0


class SegmentAllocator:
    """Tracks free and allocated segments for every rank in the device."""

    def __init__(self, geometry: DramGeometry):
        self.geometry = geometry
        self.layout = DeviceAddressLayout(geometry)
        self._free: dict[RankId, deque[int]] = {}
        self._allocated: dict[RankId, set[int]] = {}
        indices = np.arange(geometry.segments_per_rank, dtype=np.int64)
        for channel in range(geometry.channels):
            for rank in range(geometry.ranks_per_channel):
                packed = self.layout.pack_dsn_batch(channel, rank, indices)
                self._free[(channel, rank)] = deque(packed.tolist())
                self._allocated[(channel, rank)] = set()

    # -- queries --------------------------------------------------------------

    def rank_of_dsn(self, dsn: int) -> RankId:
        """``(channel, rank)`` owning segment ``dsn``."""
        location = self.layout.unpack_dsn(dsn)
        return location.rank_id

    def ranks_of_dsns(self, dsns: list[int]) -> list[RankId]:
        """``(channel, rank)`` pairs owning each segment in ``dsns``."""
        if not dsns:
            return []
        channels, ranks, _ = self.layout.unpack_dsn_batch(
            np.asarray(dsns, dtype=np.int64))
        return list(zip(channels.tolist(), ranks.tolist()))

    def usage(self, rank_id: RankId) -> RankUsage:
        """Allocation snapshot of one rank."""
        return RankUsage(rank_id=rank_id,
                         allocated=len(self._allocated[rank_id]),
                         free=len(self._free[rank_id]))

    def allocated_in_rank(self, rank_id: RankId) -> list[int]:
        """DSNs currently allocated in ``rank_id`` (sorted)."""
        return sorted(self._allocated[rank_id])

    def free_dsns_in_rank(self, rank_id: RankId) -> list[int]:
        """Free DSNs of ``rank_id`` in queue order."""
        return list(self._free[rank_id])

    def free_in_rank(self, rank_id: RankId) -> int:
        """Number of free segments in ``rank_id``."""
        return len(self._free[rank_id])

    def allocated_count(self) -> int:
        """Total allocated segments in the device."""
        return sum(len(dsns) for dsns in self._allocated.values())

    def free_count(self, allowed_ranks: set[RankId] | None = None) -> int:
        """Total free segments (optionally restricted to ``allowed_ranks``)."""
        items = self._free.items()
        return sum(len(queue) for rank_id, queue in items
                   if allowed_ranks is None or rank_id in allowed_ranks)

    def channel_allocated(self, channel: int) -> int:
        """Allocated segments on one channel."""
        return sum(len(self._allocated[(channel, rank)])
                   for rank in range(self.geometry.ranks_per_channel))

    def is_allocated(self, dsn: int) -> bool:
        """True if segment ``dsn`` is currently allocated."""
        return dsn in self._allocated[self.rank_of_dsn(dsn)]

    # -- allocation -------------------------------------------------------------

    def _pick_rank(self, channel: int,
                   allowed_ranks: set[RankId]) -> RankId | None:
        """Most-utilised allowed rank on ``channel`` that still has space."""
        best: RankId | None = None
        best_util = -1.0
        for rank in range(self.geometry.ranks_per_channel):
            rank_id = (channel, rank)
            if rank_id not in allowed_ranks or not self._free[rank_id]:
                continue
            util = self.usage(rank_id).utilization
            if util > best_util:
                best, best_util = rank_id, util
        return best

    def allocate(self, num_segments: int,
                 allowed_ranks: set[RankId] | None = None) -> list[int]:
        """Allocate ``num_segments`` segments, spread evenly over channels.

        Args:
            num_segments: Must be a multiple of the channel count so each
                channel contributes equally (AUs always satisfy this).
            allowed_ranks: Ranks permitted to serve the allocation (e.g. the
                currently active ranks).  Defaults to all ranks.

        Returns:
            The allocated DSNs.

        Raises:
            AllocationError: when the request cannot be satisfied; the
                allocator state is left unchanged in that case.
        """
        channels = self.geometry.channels
        if num_segments % channels:
            raise AllocationError(
                f"allocation of {num_segments} segments does not divide "
                f"evenly over {channels} channels")
        if allowed_ranks is None:
            allowed_ranks = set(self._free)
        per_channel = num_segments // channels
        for channel in range(channels):
            available = sum(
                len(self._free[(channel, rank)])
                for rank in range(self.geometry.ranks_per_channel)
                if (channel, rank) in allowed_ranks)
            if available < per_channel:
                raise AllocationError(
                    f"channel {channel} has only {available} free segments "
                    f"in allowed ranks, need {per_channel}")
        per_channel_dsns: list[list[int]] = []
        for channel in range(channels):
            dsns: list[int] = []
            remaining = per_channel
            while remaining:
                rank_id = self._pick_rank(channel, allowed_ranks)
                if rank_id is None:  # pragma: no cover - guarded above
                    raise AllocationError("allocator invariant violated")
                take = min(remaining, len(self._free[rank_id]))
                for _ in range(take):
                    dsn = self._free[rank_id].popleft()
                    self._allocated[rank_id].add(dsn)
                    dsns.append(dsn)
                remaining -= take
            per_channel_dsns.append(dsns)
        # Interleave round-robin so consecutive host segments land on
        # consecutive channels (Figure 6's segment-granular channel
        # interleaving).
        return [per_channel_dsns[index % channels][index // channels]
                for index in range(num_segments)]

    def allocate_in_rank(self, rank_id: RankId, num_segments: int) -> list[int]:
        """Allocate segments from a single specific rank (migration target)."""
        queue = self._free[rank_id]
        if len(queue) < num_segments:
            raise AllocationError(
                f"rank {rank_id} has {len(queue)} free segments, "
                f"need {num_segments}")
        dsns = [queue.popleft() for _ in range(num_segments)]
        self._allocated[rank_id].update(dsns)
        return dsns

    def reserve_specific(self, dsn: int) -> None:
        """Allocate one specific free segment (migration destinations)."""
        rank_id = self.rank_of_dsn(dsn)
        try:
            self._free[rank_id].remove(dsn)
        except ValueError:
            raise AllocationError(f"DSN {dsn:#x} is not free") from None
        self._allocated[rank_id].add(dsn)

    def free(self, dsns: list[int]) -> None:
        """Return segments to their ranks' free queues."""
        for dsn, rank_id in zip(dsns, self.ranks_of_dsns(dsns)):
            allocated = self._allocated[rank_id]
            if dsn not in allocated:
                raise AllocationError(f"DSN {dsn:#x} is not allocated")
            allocated.remove(dsn)
            self._free[rank_id].append(dsn)

    # -- serialisation -----------------------------------------------------------

    def state_dict(self) -> dict:
        """Free-queue order and allocated sets, as plain data."""
        return {"free": {rank_id: list(queue)
                         for rank_id, queue in self._free.items()},
                "allocated": {rank_id: sorted(dsns)
                              for rank_id, dsns in self._allocated.items()}}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (same geometry required)."""
        if set(state["free"]) != set(self._free):
            raise ValueError(
                "rank set mismatch: checkpoint was taken with a "
                "different DRAM geometry")
        self._free = {rank_id: deque(dsns)
                      for rank_id, dsns in state["free"].items()}
        self._allocated = {rank_id: set(dsns)
                           for rank_id, dsns in state["allocated"].items()}

    def move_allocation(self, old_dsn: int, new_dsn: int) -> None:
        """Transfer an allocation between segments after a migration copy.

        ``new_dsn`` must already be allocated (reserved by the migration
        engine); ``old_dsn`` is released.
        """
        new_rank = self.rank_of_dsn(new_dsn)
        if new_dsn not in self._allocated[new_rank]:
            raise AllocationError(f"target DSN {new_dsn:#x} is not reserved")
        self.free([old_dsn])


__all__ = ["RankId", "RankUsage", "SegmentAllocator"]
