"""Figure-series extraction: plot-ready data for every figure.

Each ``figure*_series`` function runs (or accepts) the relevant
experiment and returns a :class:`FigureSeries` — named x/y arrays plus
labels — so users can plot with any tool.  For environments without a
plotting stack, :func:`ascii_chart` renders a quick bar/line view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.host.scheduler import VmScheduler
from repro.sim.perf_model import PerformanceModel
from repro.sim.powerdown_sim import PowerDownResult
from repro.sim.selfrefresh_sim import SelfRefreshResult
from repro.workloads.azure import generate_vm_trace


@dataclass
class FigureSeries:
    """One plottable series set.

    Attributes:
        figure: Paper figure id ("fig1", "fig12a", ...).
        x_label / y_label: Axis names.
        x: Shared x values.
        series: Mapping of legend label to y values (same length as x).
    """

    figure: str
    x_label: str
    y_label: str
    x: np.ndarray
    series: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, values in self.series.items():
            if len(values) != len(self.x):
                raise ValueError(
                    f"series {label!r} length {len(values)} != x length "
                    f"{len(self.x)}")


def figure1_series(seed: int = 0) -> FigureSeries:
    """Azure schedule memory usage over time (Figure 1)."""
    result = VmScheduler().run(generate_vm_trace(seed=seed))
    times = np.array([sample.time_s / 60.0 for sample in result.samples])
    usage = np.array([sample.memory_fraction(result.config.memory_bytes)
                      for sample in result.samples])
    return FigureSeries(figure="fig1", x_label="time (min)",
                        y_label="memory usage", x=times,
                        series={"usage": usage})


def figure2_series() -> FigureSeries:
    """Mean slowdown vs active ranks per channel (Figure 2)."""
    model = PerformanceModel()
    ranks = np.array([8, 6, 4, 2])
    slowdowns = np.array([model.mean_rank_sweep_slowdown(int(r))
                          for r in ranks])
    return FigureSeries(figure="fig2", x_label="ranks/channel",
                        y_label="slowdown", x=ranks,
                        series={"mean": slowdowns})


def figure11a_series(power_model=None) -> FigureSeries:
    """Normalised background power vs active ranks (Figure 11a)."""
    from repro.dram.geometry import DramGeometry
    from repro.dram.power import DramPowerModel
    from repro.units import GIB
    model = power_model or DramPowerModel(
        geometry=DramGeometry(rank_bytes=16 * GIB))
    ranks = np.array([2, 4, 6, 8])
    full = model.background_power_active_ranks(8)
    values = np.array([model.background_power_active_ranks(int(r)) / full
                       for r in ranks])
    return FigureSeries(figure="fig11a", x_label="active ranks/channel",
                        y_label="normalised background power", x=ranks,
                        series={"background": values})


def figure12a_series(result: PowerDownResult) -> FigureSeries:
    """Runtime power trace with migration pulses (Figure 12a)."""
    times = np.array([record.time_s / 60.0 for record in result.intervals])
    return FigureSeries(
        figure="fig12a", x_label="time (min)", y_label="power (RSU)",
        x=times,
        series={
            "total": np.array([r.total_power for r in result.intervals]),
            "background": np.array([r.background_power
                                    for r in result.intervals]),
            "migration": np.array([r.migration_power
                                   for r in result.intervals]),
        })


def figure14_series(result: SelfRefreshResult) -> FigureSeries:
    """Savings trajectory: warmup then stable phase (Figure 14)."""
    times, savings = result.savings_timeseries()
    sr_ranks = np.array([step.sr_ranks for step in result.steps],
                        dtype=float)
    return FigureSeries(figure="fig14", x_label="time (s)",
                        y_label="energy savings", x=times,
                        series={"savings": savings,
                                "sr_ranks": sr_ranks})


def ascii_chart(series: FigureSeries, label: str | None = None,
                width: int = 60, height: int = 12) -> str:
    """Render one series as a crude ASCII line chart."""
    label = label or next(iter(series.series))
    values = np.asarray(series.series[label], dtype=float)
    if not len(values):
        return "(empty series)"
    # Downsample to the target width.
    if len(values) > width:
        edges = np.linspace(0, len(values), width + 1).astype(int)
        values = np.array([values[a:b].mean() if b > a else values[a - 1]
                           for a, b in zip(edges, edges[1:])])
    low, high = float(values.min()), float(values.max())
    span = high - low
    rows = []
    for level in range(height, 0, -1):
        if span == 0.0:
            # Flat series: draw one mid-height line.
            rows.append(("#" if level == height // 2 else " ") * len(values))
            continue
        threshold = low + span * (level - 0.5) / height
        rows.append("".join("#" if value >= threshold else " "
                            for value in values))
    header = (f"{series.figure}: {label}  "
              f"[{low:.3g} .. {high:.3g}] {series.y_label}")
    return "\n".join([header] + rows + ["-" * len(values)])


__all__ = [
    "FigureSeries",
    "figure1_series",
    "figure2_series",
    "figure11a_series",
    "figure12a_series",
    "figure14_series",
    "ascii_chart",
]
