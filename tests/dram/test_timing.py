"""Tests for DDR4 timing parameters."""

import pytest

from repro.dram.timing import (CXL_MEMORY_LATENCY_NS, DDR4_2933, DramTiming,
                               NATIVE_DRAM_LATENCY_NS)


class TestPaperLatencies:
    def test_table1_values(self):
        assert NATIVE_DRAM_LATENCY_NS == 121.0
        assert CXL_MEMORY_LATENCY_NS == 210.0

    def test_cxl_slower_than_native(self):
        assert CXL_MEMORY_LATENCY_NS > NATIVE_DRAM_LATENCY_NS


class TestDdr4Timing:
    def test_data_rate(self):
        assert DDR4_2933.data_rate_mts == pytest.approx(2933.0)

    def test_channel_bandwidth(self):
        # DDR4-2933 x 8 bytes ~= 23.5 GB/s per channel.
        assert DDR4_2933.channel_peak_bandwidth_gbs == pytest.approx(
            23.46, abs=0.1)

    def test_latency_ordering(self):
        t = DDR4_2933
        assert (t.row_hit_latency_ns() < t.row_miss_latency_ns()
                < t.row_conflict_latency_ns())

    def test_refresh_overhead_small(self):
        assert 0.01 < DDR4_2933.refresh_overhead_fraction() < 0.1

    def test_transfer_time_scales(self):
        t = DDR4_2933
        assert t.transfer_time_ns(128) == pytest.approx(
            2 * t.transfer_time_ns(64))

    def test_transfer_time_rounds_up_to_lines(self):
        t = DDR4_2933
        assert t.transfer_time_ns(65) == pytest.approx(t.transfer_time_ns(128))

    def test_custom_timing(self):
        slow = DramTiming(clock_mhz=800.0)
        assert slow.channel_peak_bandwidth_gbs < \
            DDR4_2933.channel_peak_bandwidth_gbs
