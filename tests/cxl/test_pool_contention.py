"""Tests for shared-fabric contention on the pooled-memory node.

Covers the M/D/1 queueing math in :func:`repro.cxl.pool.pool_contention`,
the utilisation cap, config validation, multi-host reservation pressure
on :class:`MemoryPool`, and ``PoolStats.utilization`` as surfaced
through the rack wiring (``FleetResult.rack_summaries``).
"""

from __future__ import annotations

import pytest

from repro.core.config import DtlConfig
from repro.cxl.pool import (MemoryPool, PoolContentionConfig, PoolStats,
                            pool_contention)
from repro.dram.geometry import DramGeometry
from repro.errors import AllocationError, ConfigurationError
from repro.units import GIB, MIB


class TestContentionMath:
    def test_zero_demand_is_uncontended(self):
        contention = pool_contention(0.0)
        assert contention.utilization == 0.0
        assert contention.queue_delay_ns == 0.0
        assert contention.slowdown == 1.0
        assert not contention.saturated

    def test_md1_mean_wait_formula(self):
        config = PoolContentionConfig(bandwidth_gbs=100.0,
                                      service_ns=200.0)
        contention = pool_contention(50.0, config)
        rho = 0.5
        expected_wait = 200.0 * rho / (2.0 * (1.0 - rho))
        assert contention.utilization == pytest.approx(rho)
        assert contention.queue_delay_ns == pytest.approx(expected_wait)
        assert contention.slowdown == pytest.approx(
            (200.0 + expected_wait) / 200.0)

    def test_slowdown_monotonic_in_demand(self):
        slowdowns = [pool_contention(demand).slowdown
                     for demand in (0.0, 32.0, 64.0, 96.0, 120.0)]
        assert slowdowns == sorted(slowdowns)
        assert slowdowns[0] == 1.0 < slowdowns[-1]

    def test_demand_beyond_cap_saturates(self):
        config = PoolContentionConfig(bandwidth_gbs=100.0,
                                      max_utilization=0.9)
        contention = pool_contention(500.0, config)
        assert contention.utilization == 0.9  # clipped, not 5.0
        assert contention.saturated
        # Finite delay even at 5x overload: credit backpressure, not an
        # unbounded queue.
        assert contention.queue_delay_ns < float("inf")
        at_cap = pool_contention(90.0, config)
        assert contention.queue_delay_ns == at_cap.queue_delay_ns
        assert not at_cap.saturated

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            pool_contention(-1.0)


class TestContentionConfig:
    def test_defaults_are_valid(self):
        config = PoolContentionConfig()
        assert config.bandwidth_gbs > 0
        assert 0.0 < config.max_utilization < 1.0

    @pytest.mark.parametrize("bandwidth", [0.0, -8.0])
    def test_rejects_nonpositive_bandwidth(self, bandwidth):
        with pytest.raises(ConfigurationError):
            PoolContentionConfig(bandwidth_gbs=bandwidth)

    @pytest.mark.parametrize("cap", [0.0, 1.0, 1.5])
    def test_rejects_degenerate_utilization_cap(self, cap):
        with pytest.raises(ConfigurationError):
            PoolContentionConfig(max_utilization=cap)


def _make_pool(devices=2, placement="pack"):
    config = DtlConfig(geometry=DramGeometry(rank_bytes=256 * MIB),
                       au_bytes=64 * MIB, group_granularity=2)
    return MemoryPool([config] * devices, placement=placement)


class TestMultiHostPressure:
    """Several compute hosts reserving against one pool node, Figure 3
    style: utilisation climbs host by host until the pool refuses."""

    def test_utilization_climbs_with_each_host(self):
        pool = _make_pool(devices=2)  # 16 GiB total
        utilisations = [pool.stats().utilization]
        for host_id in range(4):
            pool.allocate_vm(host_id, 3 * GIB, now_s=float(host_id))
            utilisations.append(pool.stats().utilization)
        assert utilisations == sorted(utilisations)
        assert utilisations[-1] == pytest.approx(12 / 16)

    def test_pressure_eventually_rejects(self):
        pool = _make_pool(devices=2)
        placed = 0
        with pytest.raises(AllocationError):
            for host_id in range(16):
                pool.allocate_vm(host_id, 3 * GIB)
                placed += 1
        # 4 x 3 GiB fit in 2 x 8 GiB devices (2 GiB of stranded slack
        # per device can't hold a fifth).
        assert placed == 4
        assert pool.stats().utilization == pytest.approx(12 / 16)

    def test_departures_release_pressure(self):
        pool = _make_pool(devices=2)
        handles = [pool.allocate_vm(host, 3 * GIB, now_s=float(host))
                   for host in range(4)]
        high = pool.stats().utilization
        for handle in handles[:2]:
            pool.deallocate_vm(handle, now_s=10.0)
        low = pool.stats().utilization
        assert low == pytest.approx(high / 2)
        # Freed capacity is immediately placeable by a new host.
        pool.allocate_vm(9, 3 * GIB, now_s=11.0)
        assert pool.stats().utilization == pytest.approx(high * 0.75)


class TestPoolStatsUtilization:
    def test_empty_pool_is_zero(self):
        assert PoolStats(devices=1, total_bytes=0,
                         reserved_bytes=0).utilization == 0.0

    def test_rack_wiring_reports_occupancy(self):
        """rack_summaries() surfaces each rack's pool occupancy through
        the same PoolStats type the MemoryPool reports."""
        from repro.host.scheduler import SchedulerConfig
        from repro.sim.fleet import FleetSimulator, RackConfig
        from repro.sim.powerdown_sim import PowerDownSimConfig
        from repro.workloads.azure import AzureTraceConfig

        node = PowerDownSimConfig(
            azure=AzureTraceConfig(num_vms=8, duration_s=600.0),
            scheduler=SchedulerConfig(duration_s=600.0))
        config = RackConfig(num_nodes=4, node=node, shard_size=2,
                            hosts_per_rack=2)
        result = FleetSimulator(config).run()
        racks = result.rack_summaries()
        assert len(racks) == 2
        for rack in racks:
            stats = rack.pool_stats()
            assert stats.devices == 2
            assert stats.total_bytes == 2 * node.geometry.total_bytes
            assert 0.0 < stats.utilization < 1.0
            assert stats.reserved_bytes == int(round(rack.reserved_bytes))
