"""Tests for the controller statistics snapshot."""

import json

import pytest

from repro.core.config import DtlConfig
from repro.core.controller import DtlController
from repro.core.stats import snapshot
from repro.dram.geometry import DramGeometry
from repro.units import MIB


@pytest.fixture
def controller():
    return DtlController(DtlConfig(
        geometry=DramGeometry(rank_bytes=256 * MIB), au_bytes=64 * MIB))


class TestSnapshot:
    def test_fresh_controller(self, controller):
        stats = snapshot(controller)
        assert stats.translation["count"] == 0
        assert stats.allocation["segments_allocated"] == 0
        assert stats.power["ranks_standby"] == 32

    def test_reflects_activity(self, controller):
        vm = controller.allocate_vm(0, 128 * MIB)
        for offset in range(8):
            controller.access(0, controller.hpa_of(vm.au_ids[0], offset))
        stats = snapshot(controller)
        assert stats.translation["count"] == 8
        assert stats.allocation["live_vms"] == 1
        assert stats.allocation["reserved_bytes"] == 128 * MIB
        assert 0 < stats.allocation["utilization"] < 1

    def test_power_counters_after_dealloc(self, controller):
        vm = controller.allocate_vm(0, 1024 * MIB)
        controller.deallocate_vm(vm, now_s=1.0)
        stats = snapshot(controller)
        assert stats.power["ranks_mpsm"] > 0
        assert stats.power["transitions"] > 0

    def test_flat_namespacing(self, controller):
        flat = snapshot(controller).flat()
        assert "translation.count" in flat
        assert "power.ranks_standby" in flat
        assert all("." in key for key in flat)

    def test_json_serialisable(self, controller):
        controller.allocate_vm(0, 64 * MIB)
        json.dumps(snapshot(controller).flat())

    def test_policies_disabled(self):
        controller = DtlController(DtlConfig(
            geometry=DramGeometry(rank_bytes=256 * MIB), au_bytes=64 * MIB,
            enable_power_down=False, enable_self_refresh=False))
        stats = snapshot(controller)
        assert stats.self_refresh == {}
        assert "active_ranks_per_channel" not in stats.power

    def test_retirement_counted(self, controller):
        controller.retire_rank(0, 7)
        assert snapshot(controller).power["quarantined"] == 1
