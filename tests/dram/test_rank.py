"""Tests for the per-rank power state machine."""

import pytest

from repro.dram.power import PowerState, STATE_POWER
from repro.dram.rank import Rank
from repro.errors import PowerStateError


@pytest.fixture
def rank():
    return Rank(channel=0, index=3)


class TestIdentity:
    def test_rank_id(self, rank):
        assert rank.rank_id == (0, 3)

    def test_starts_in_standby(self, rank):
        assert rank.state is PowerState.STANDBY


class TestTransitions:
    def test_residency_tracking(self, rank):
        rank.set_state(PowerState.SELF_REFRESH, now_s=10.0)
        rank.set_state(PowerState.STANDBY, now_s=25.0)
        rank.finalize(now_s=30.0)
        assert rank.residency_s[PowerState.STANDBY] == pytest.approx(15.0)
        assert rank.residency_s[PowerState.SELF_REFRESH] == pytest.approx(15.0)

    def test_exit_penalty_returned(self, rank):
        rank.set_state(PowerState.MPSM, now_s=0.0)
        penalty = rank.set_state(PowerState.STANDBY, now_s=1.0)
        assert penalty > 0
        assert rank.exit_penalty_total_ns == pytest.approx(penalty)

    def test_noop_transition_free(self, rank):
        assert rank.set_state(PowerState.STANDBY, now_s=5.0) == 0.0
        assert rank.transition_count == 0

    def test_illegal_transition(self, rank):
        rank.set_state(PowerState.SELF_REFRESH, now_s=0.0)
        with pytest.raises(PowerStateError):
            rank.set_state(PowerState.MPSM, now_s=1.0)

    def test_time_cannot_go_backwards(self, rank):
        rank.set_state(PowerState.SELF_REFRESH, now_s=10.0)
        with pytest.raises(PowerStateError):
            rank.set_state(PowerState.STANDBY, now_s=5.0)

    def test_transition_count(self, rank):
        rank.set_state(PowerState.MPSM, now_s=1.0)
        rank.set_state(PowerState.STANDBY, now_s=2.0)
        assert rank.transition_count == 2


class TestAccesses:
    def test_counts(self, rank):
        rank.record_access()
        rank.record_access(5)
        assert rank.access_count == 6

    def test_mpsm_cannot_serve(self, rank):
        rank.set_state(PowerState.MPSM, now_s=0.0)
        with pytest.raises(PowerStateError):
            rank.record_access()

    def test_self_refresh_access_allowed_by_rank(self, rank):
        """The policy wakes the rank first; the rank itself allows it."""
        rank.set_state(PowerState.SELF_REFRESH, now_s=0.0)
        rank.record_access()
        assert rank.access_count == 1


class TestEnergy:
    def test_background_energy(self, rank):
        rank.set_state(PowerState.MPSM, now_s=100.0)
        rank.finalize(now_s=200.0)
        energy = rank.background_energy(STATE_POWER)
        assert energy == pytest.approx(100.0 * 1.0 + 100.0 * 0.068)

    def test_finalize_time_check(self, rank):
        rank.set_state(PowerState.MPSM, now_s=10.0)
        with pytest.raises(PowerStateError):
            rank.finalize(now_s=5.0)
