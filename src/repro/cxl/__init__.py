"""CXL substrate: link model, pooled memory device, and multi-device pool."""

from repro.cxl.device import CxlMemoryDevice
from repro.cxl.link import CxlLinkConfig
from repro.cxl.pool import (MemoryPool, PoolContention,
                            PoolContentionConfig, PoolStats, PoolVmHandle,
                            pool_contention)

__all__ = ["CxlMemoryDevice", "CxlLinkConfig", "MemoryPool",
           "PoolContention", "PoolContentionConfig", "PoolStats",
           "PoolVmHandle", "pool_contention"]
