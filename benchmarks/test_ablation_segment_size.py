"""Ablation: address-mapping granularity (Section 4.1's design choice).

The paper picks 2 MB segments to balance three forces:

* smaller segments -> more cold segments survive remapping (Figure 10);
* larger segments -> smaller mapping tables (Table 5);
* segments must stay below the dominant >=4 MB access stride so channel
  interleaving still spreads adjacent accesses (Figure 9).

This ablation sweeps 1/2/4 MB and shows 2 MB sitting at the knee.
"""

import numpy as np

from repro.analysis.structures import StructureSizingModel
from repro.units import GIB, MIB, format_bytes
from repro.workloads.cloudsuite import PROFILES, TRACED_BENCHMARKS, TraceGenerator

from conftest import report


def cold_fraction_at(granularity_bytes: int) -> float:
    fractions = []
    for index, name in enumerate(TRACED_BENCHMARKS[:4]):
        generator = TraceGenerator(PROFILES[name], footprint_bytes=2 * GIB,
                                   seed=index)
        trace = generator.generate(
            int(120e6 * PROFILES[name].mapki / 1000))
        total = generator.num_segments * (2 * MIB) // granularity_bytes
        fractions.append(trace.cold_segment_fraction(
            granularity_bytes, total_segments=total))
    return float(np.mean(fractions))


def sram_cost_at(granularity_bytes: int) -> int:
    return StructureSizingModel(capacity_bytes=384 * GIB,
                                segment_bytes=granularity_bytes,
                                channels=6).sram_total_bytes()


def test_ablation_segment_size(benchmark):
    def sweep():
        return {size: (cold_fraction_at(size * MIB),
                       sram_cost_at(size * MIB))
                for size in (1, 2, 4)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(f"{size} MiB", f"{cold:.1%}", format_bytes(sram))
            for size, (cold, sram) in results.items()]
    report("Ablation: segment size (cold fraction vs SRAM cost)", rows,
           header=("segment", "cold segments", "on-chip SRAM"))

    cold = {size: values[0] for size, values in results.items()}
    sram = {size: values[1] for size, values in results.items()}
    # Finer granularity preserves more cold segments...
    assert cold[1] >= cold[2] >= cold[4]
    # ...but costs proportionally more SRAM.
    assert sram[1] > sram[2] > sram[4]
    # The paper's choice: 2 MB keeps most of the 1 MB cold fraction at
    # half the table cost.
    assert cold[2] > 0.8 * cold[1]
    assert sram[2] < 0.6 * sram[1]


def test_ablation_segment_below_dominant_stride():
    """Segments must stay below the dominant stride so consecutive
    accesses still spread over channels (Section 4.1)."""
    from repro.workloads.cloudsuite import make_trace
    trace = make_trace("graph-analytics", 50_000, seed=0)
    dist = trace.stride_distribution()
    assert dist[">=4194304"] > 0.5  # 4 MB+ dominates
    # Hence any segment size <= 4 MB (including the chosen 2 MB) keeps
    # adjacent jumps on different segments.
