"""Tests for the analytical models (Sections 6.1, 6.5, 6.6)."""

import pytest

from repro.analysis import (AmatModel, CONTROLLER_384GB, CONTROLLER_4TB,
                            ControllerModel, MODEL_384GB, MODEL_4TB,
                            PAPER_TABLE5, PAPER_TABLE6_384GB,
                            PAPER_TABLE6_4TB, StructureSizingModel,
                            sanity_check_40nm_scaling, technology_scale)
from repro.units import GIB, TIB


class TestAmat:
    def test_paper_amat(self):
        """Section 6.1: 214.2 ns AMAT, +4.2 ns over vanilla CXL."""
        model = AmatModel()
        assert model.amat_ns() == pytest.approx(214.2, abs=0.5)
        assert model.translation_overhead_ns() == pytest.approx(4.2, abs=0.2)

    def test_worst_case_increase(self):
        """Section 6.1: max increase 123.7 ns (full walk)."""
        assert AmatModel().max_overhead_ns() == pytest.approx(123.7, abs=5.0)

    def test_best_case_is_l1_hit(self):
        model = AmatModel()
        assert model.min_overhead_ns() == pytest.approx(0.67, abs=0.01)

    def test_execution_overhead(self):
        """Section 6.1: 0.18 % execution-time increase."""
        assert AmatModel().execution_time_overhead() == pytest.approx(
            0.0018, abs=0.0003)

    def test_overhead_grows_with_miss_ratio(self):
        good = AmatModel(l1_miss_ratio=0.05)
        bad = AmatModel(l1_miss_ratio=0.5)
        assert bad.translation_overhead_ns() > good.translation_overhead_ns()

    def test_miss_penalty_dominated_by_dram(self):
        model = AmatModel()
        assert model.miss_penalty_ns > model.table_dram_latency_ns


class TestTable5:
    @pytest.mark.parametrize("model,column", [(MODEL_384GB, "384GB"),
                                              (MODEL_4TB, "4TB")])
    def test_structure_sizes_match_paper(self, model, column):
        report = model.report()
        for name, expected in PAPER_TABLE5[column].items():
            assert report[name] == pytest.approx(expected, rel=0.15), name

    def test_l1_smc_exact(self):
        """The paper's 328 B L1 SMC is bit-exact in our layout."""
        assert MODEL_384GB.l1_smc_bytes() == 328
        assert MODEL_4TB.l1_smc_bytes() == 752

    def test_dram_overhead_negligible(self):
        """Section 6.6: metadata is ~0.0005 % of a 4 TB device."""
        assert MODEL_4TB.dram_overhead_fraction() < 1e-5

    def test_structures_scale_with_capacity(self):
        small = StructureSizingModel(capacity_bytes=384 * GIB)
        large = StructureSizingModel(capacity_bytes=4 * TIB)
        assert large.migration_table_bytes() > small.migration_table_bytes()
        assert large.sram_total_bytes() > small.sram_total_bytes()

    def test_sram_totals_near_paper(self):
        """Section 6.6: 0.5 MB -> 5.3 MB of on-chip SRAM."""
        assert MODEL_384GB.sram_total_bytes() == pytest.approx(
            0.5 * 2 ** 20, rel=0.2)
        assert MODEL_4TB.sram_total_bytes() == pytest.approx(
            5.3 * 2 ** 20, rel=0.25)

    def test_dram_totals_near_paper(self):
        """Section 6.6: 1.9 MB -> 22.6 MB of reserved DRAM."""
        assert MODEL_384GB.dram_total_bytes() == pytest.approx(
            1.9 * 2 ** 20, rel=0.2)
        assert MODEL_4TB.dram_total_bytes() == pytest.approx(
            22.6 * 2 ** 20, rel=0.2)


class TestTable6:
    def test_technology_scaling_law(self):
        assert technology_scale() == pytest.approx((7 / 40) ** 2)

    def test_40nm_cross_check(self):
        """Section 6.5: 0.8 W / 5.4 mm^2 at 40 nm -> ~25.7 mW / 0.165 mm^2."""
        power_mw, area_mm2 = sanity_check_40nm_scaling()
        assert power_mw == pytest.approx(25.7, rel=0.1)
        assert area_mm2 == pytest.approx(0.165, rel=0.05)

    @pytest.mark.parametrize("model,paper", [
        (CONTROLLER_384GB, PAPER_TABLE6_384GB),
        (CONTROLLER_4TB, PAPER_TABLE6_4TB),
    ])
    def test_component_breakdown(self, model, paper):
        report = model.report()
        for key in ("smc_mw", "sram_mw", "cpu_mw", "total_mw"):
            assert report[key] == pytest.approx(paper[key], rel=0.15), key
        assert report["total_mm2"] == pytest.approx(paper["total_mm2"],
                                                    rel=0.2)

    def test_bigger_sram_costs_more(self):
        assert CONTROLLER_4TB.total_power_mw() > \
            CONTROLLER_384GB.total_power_mw()
        assert CONTROLLER_4TB.total_area_mm2() > \
            CONTROLLER_384GB.total_area_mm2()

    def test_cpu_power_capacity_independent(self):
        assert CONTROLLER_4TB.cpu_power_mw() == \
            CONTROLLER_384GB.cpu_power_mw()

    def test_coarser_node_costs_more(self):
        coarse = ControllerModel(technology_nm=16.0)
        assert coarse.total_power_mw() > CONTROLLER_384GB.total_power_mw()
