"""Result cache: memory/disk round trips and failure degradation."""

from repro.exec.cache import CACHE_DIR_ENV, ResultCache


def test_memory_hit_and_miss():
    cache = ResultCache()
    hit, value = cache.get("k")
    assert not hit and value is None
    cache.put("k", {"x": 1})
    hit, value = cache.get("k")
    assert hit and value == {"x": 1}
    assert cache.hits == 1 and cache.misses == 1
    assert len(cache) == 1


def test_disk_round_trip(tmp_path):
    writer = ResultCache(tmp_path)
    writer.put("fleet-abc", [1, 2, 3])
    assert (tmp_path / "fleet-abc.pkl").exists()
    # A fresh cache (new process, conceptually) reads the same entry.
    reader = ResultCache(tmp_path)
    hit, value = reader.get("fleet-abc")
    assert hit and value == [1, 2, 3]
    assert len(reader) == 1


def test_directory_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    cache = ResultCache()
    assert cache.directory == tmp_path
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert ResultCache().directory is None


def test_corrupt_entry_degrades_to_miss(tmp_path):
    (tmp_path / "bad.pkl").write_bytes(b"this is not a pickle")
    cache = ResultCache(tmp_path)
    hit, value = cache.get("bad")
    assert not hit and value is None
    cache.put("bad", "fixed")  # overwrite repairs the entry
    assert ResultCache(tmp_path).get("bad") == (True, "fixed")


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("a", 1)
    cache.put("b", 2)
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0
    assert cache.get("a") == (False, None)
    assert not list(tmp_path.glob("*.pkl"))


def test_no_tmp_droppings(tmp_path):
    cache = ResultCache(tmp_path)
    for index in range(5):
        cache.put(f"k{index}", index)
    assert not list(tmp_path.glob("*.tmp"))
