"""Hot-set drift: time-varying workload behaviour.

The paper leans on a measured property of datacenter workloads: "data
access patterns remain relatively stable for a long period (minutes to
hours)" [TPP], which is what lets the victim rank *stay* in self-refresh
after warmup.  This module makes that assumption a knob: a
:class:`DriftingWorkload` wraps a
:class:`~repro.workloads.cloudsuite.TraceGenerator` and rotates a
fraction of the hot set into the cold set (and vice versa) every
``drift_period_s``, so experiments can measure how self-refresh stability
degrades as the stability assumption weakens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.cloudsuite import TraceGenerator, WorkloadProfile


@dataclass(frozen=True)
class DriftConfig:
    """How fast and how much the hot set moves.

    Attributes:
        period_s: Time between drift events (the paper's "minutes to
            hours" regime corresponds to large values).
        fraction: Share of the hot set replaced per event.
    """

    period_s: float = 600.0
    fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("drift period must be positive")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("drift fraction must be in [0, 1]")


class DriftingWorkload:
    """A workload whose hot set rotates over time.

    The segment *tiers* (hot / warm / frozen sizes) stay constant — only
    the membership rotates, which is exactly what invalidates a
    previously collected cold victim rank.
    """

    def __init__(self, profile: WorkloadProfile, footprint_bytes: int,
                 drift: DriftConfig | None = None,
                 seed: int | np.random.Generator = 0):
        self.profile = profile
        self.drift = drift or DriftConfig()
        self.rng = (seed if isinstance(seed, np.random.Generator)
                    else np.random.default_rng(seed))
        self.generator = TraceGenerator(profile, footprint_bytes,
                                        seed=self.rng)
        self._last_drift_s = 0.0
        self.drift_events = 0

    @classmethod
    def wrap(cls, generator: TraceGenerator, drift: DriftConfig,
             rng: np.random.Generator) -> "DriftingWorkload":
        """Wrap an existing generator instead of building a new one."""
        instance = cls.__new__(cls)
        instance.profile = generator.profile
        instance.drift = drift
        instance.rng = rng
        instance.generator = generator
        instance._last_drift_s = 0.0
        instance.drift_events = 0
        return instance

    # -- time ------------------------------------------------------------------

    def advance_to(self, now_s: float) -> int:
        """Apply every drift event due by ``now_s``; returns how many."""
        applied = 0
        while now_s - self._last_drift_s >= self.drift.period_s:
            self._last_drift_s += self.drift.period_s
            self._rotate()
            applied += 1
        self.drift_events += applied
        return applied

    def _rotate(self) -> None:
        """Swap a fraction of hot segments with frozen segments."""
        generator = self.generator
        hot = generator.hot_segments
        frozen = generator.frozen_segments
        count = min(len(hot), len(frozen),
                    max(1, round(self.drift.fraction * len(hot))))
        if count == 0:
            return
        hot_out = self.rng.choice(len(hot), size=count, replace=False)
        frozen_in = self.rng.choice(len(frozen), size=count, replace=False)
        new_hot = hot.copy()
        new_frozen = frozen.copy()
        new_hot[hot_out], new_frozen[frozen_in] = (frozen[frozen_in],
                                                   hot[hot_out])
        generator.hot_segments = np.sort(new_hot)
        generator.frozen_segments = np.sort(new_frozen)
        # Re-derive the frozen sub-tiers over the new membership.
        deep_count = len(generator.deep_cold_segments)
        shuffled = self.rng.permutation(new_frozen)
        generator.deep_cold_segments = np.sort(shuffled[:deep_count])
        generator.shallow_frozen_segments = np.sort(shuffled[deep_count:])

    # -- views -----------------------------------------------------------------

    def segment_access_rates(self) -> np.ndarray:
        """Current per-segment access shares (sums to 1)."""
        return self.generator.segment_access_rates()

    @property
    def num_segments(self) -> int:
        """Footprint size in segments."""
        return self.generator.num_segments


__all__ = ["DriftConfig", "DriftingWorkload"]
