"""Package-surface tests: exports, errors, versioning."""

import pytest

import repro
from repro import errors


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_exports(self):
        assert callable(repro.DtlController)
        assert callable(repro.CxlMemoryDevice)
        assert callable(repro.DtlConfig)
        assert callable(repro.DramGeometry)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestSubpackageExports:
    @pytest.mark.parametrize("module_name", [
        "repro.core", "repro.dram", "repro.cxl", "repro.host",
        "repro.workloads", "repro.sim", "repro.analysis", "repro.baselines",
    ])
    def test_all_lists_resolve(self, module_name):
        import importlib
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert getattr(module, name) is not None, \
                f"{module_name}.{name} missing"


class TestErrorHierarchy:
    @pytest.mark.parametrize("error_type", [
        errors.ConfigurationError, errors.AddressError,
        errors.TranslationError, errors.AllocationError,
        errors.MigrationError, errors.PowerStateError,
    ])
    def test_all_inherit_repro_error(self, error_type):
        assert issubclass(error_type, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise error_type("boom")

    def test_consistency_error_in_hierarchy(self):
        from repro.core.checker import ConsistencyError
        assert issubclass(ConsistencyError, errors.ReproError)

    def test_catchable_as_exception(self):
        assert issubclass(errors.ReproError, Exception)
