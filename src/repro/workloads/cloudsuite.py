"""CloudSuite-like synthetic workload generators.

The paper traces 8–10 CloudSuite benchmarks with Pin and replays their
post-cache traces (Section 5.2).  CloudSuite itself cannot run here, so
each benchmark is replaced by a parameterised synthetic generator whose
published characteristics are inputs:

* **MAPKI** — memory accesses per kilo-instruction, Table 4.
* **Post-cache stride distribution** — Figure 9 (three benchmarks have
  narrow standalone strides: Data-serving, Media-streaming, Web-serving;
  the rest are dominated by >=4 MB strides).
* **Segment hotness** — Figure 10: on average 61.5 % of 2 MB segments are
  cold (minimum reuse distance above 10 M instructions).

The generators are deterministic given a seed, and the *mixed*-trace
behaviour of Figure 9 (89.3 % of strides >=4 MB for the 8-app mix) emerges
from interleaving rather than being configured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.units import CACHELINE_BYTES, GIB, MIB
from repro.workloads.trace import Trace

SEGMENT_BYTES = 2 * MIB

#: Stride bucket upper edges used by the generators and Figure 9:
#: [64 B, 4 KiB), [4 KiB, 64 KiB), [64 KiB, 1 MiB), [1 MiB, 4 MiB), >=4 MiB.
STRIDE_BUCKET_EDGES = (CACHELINE_BYTES, 4096, 65536, 1 << 20, 1 << 22)


@dataclass(frozen=True)
class WorkloadProfile:
    """Synthetic stand-in for one CloudSuite benchmark.

    Attributes:
        name: Benchmark name (CloudSuite spelling, lower-case).
        mapki: Memory accesses per kilo-instruction (Table 4).
        stride_probs: Probability of each stride bucket; the last bucket
            (>= 4 MiB) produces a jump to a new segment.
        hot_segment_fraction: Fraction of the footprint's 2 MiB segments
            that are hot.
        hot_access_prob: Probability an access (segment jump) targets the
            hot set.
        warm_fraction: Fraction of the *cold* set that still receives the
            rare off-hot accesses; the remainder is frozen (resident but
            untouched in steady state).
        deep_cold_fraction: Fraction of the *frozen* tier that stays quiet
            even under the paper's boosted replay rate (Section 5.2) —
            segments with reuse distances so long that no access lands in
            any 50 ms profiling window.  The rest of the frozen tier is
            touched occasionally when traces are replayed at >30 GB/s.
        write_fraction: Store share of post-cache accesses.
        footprint_bytes: Default resident working set of one instance.
        ipc: Mean instructions per cycle (used to convert MAPKI into
            bandwidth for the power model).
    """

    name: str
    mapki: float
    stride_probs: tuple[float, ...]
    hot_segment_fraction: float
    hot_access_prob: float = 0.97
    warm_fraction: float = 0.10
    deep_cold_fraction: float = 0.23
    write_fraction: float = 0.3
    footprint_bytes: int = 16 * GIB
    ipc: float = 0.8

    def __post_init__(self) -> None:
        if len(self.stride_probs) != len(STRIDE_BUCKET_EDGES):
            raise ConfigurationError(
                f"{self.name}: need {len(STRIDE_BUCKET_EDGES)} bucket probs")
        if abs(sum(self.stride_probs) - 1.0) > 1e-9:
            raise ConfigurationError(f"{self.name}: bucket probs must sum to 1")
        if not 0.0 < self.hot_segment_fraction <= 1.0:
            raise ConfigurationError(
                f"{self.name}: hot_segment_fraction out of (0, 1]")

    def bandwidth_gbs(self, vcpus: int, clock_ghz: float = 2.7,
                      utilization: float = 0.5) -> float:
        """Post-cache bandwidth of one instance (Section 5.1 power model).

        ``MAPKI x instruction rate x 64 B``, with ``utilization`` modelling
        the fraction of cycles the vCPUs are actually retiring.
        """
        instr_per_s = vcpus * clock_ghz * 1e9 * self.ipc * utilization
        return self.mapki / 1000.0 * instr_per_s * CACHELINE_BYTES / 1e9


def _profile(name: str, mapki: float, large_stride_share: float,
             hot_fraction: float, **kwargs) -> WorkloadProfile:
    """Helper: split the non-jump probability over the small buckets."""
    small = 1.0 - large_stride_share
    # Weight small strides towards the cacheline/page buckets, as post-LLC
    # traces of server workloads show.
    weights = np.array([0.45, 0.30, 0.15, 0.10])
    probs = tuple(small * weights / weights.sum()) + (large_stride_share,)
    return WorkloadProfile(name=name, mapki=mapki, stride_probs=probs,
                           hot_segment_fraction=hot_fraction, **kwargs)


#: Table 4 benchmarks.  ``large_stride_share`` encodes Figure 9:
#: Data-serving, Media-streaming and Web-serving have narrow standalone
#: strides; every other benchmark is dominated by >=4 MB strides.
PROFILES: dict[str, WorkloadProfile] = {
    profile.name: profile for profile in (
        _profile("data-analytics", 1.9, 0.62, 0.34, deep_cold_fraction=0.23),
        _profile("data-caching", 1.5, 0.58, 0.25, deep_cold_fraction=0.49),
        _profile("data-serving", 4.2, 0.22, 0.29, deep_cold_fraction=0.16),
        _profile("django-workload", 0.8, 0.60, 0.37, deep_cold_fraction=0.29),
        _profile("fb-oss-performance", 3.6, 0.64, 0.33,
                 deep_cold_fraction=0.08),
        _profile("graph-analytics", 6.5, 0.72, 0.41, deep_cold_fraction=0.026),
        _profile("in-memory-analytics", 2.5, 0.66, 0.31,
                 deep_cold_fraction=0.13),
        _profile("media-streaming", 4.6, 0.24, 0.25, deep_cold_fraction=0.46),
        _profile("web-search", 0.7, 0.55, 0.37, deep_cold_fraction=0.23),
        _profile("web-serving", 0.7, 0.20, 0.29, deep_cold_fraction=0.42),
    )
}

#: The 8 benchmarks the paper collects full traces for (Section 5.2 /
#: Figure 9) — Table 4 lists 10, of which 8 "run to completion on Pintool".
TRACED_BENCHMARKS = (
    "data-analytics", "data-caching", "data-serving", "django-workload",
    "fb-oss-performance", "graph-analytics", "in-memory-analytics",
    "media-streaming",
)


class TraceGenerator:
    """Vectorised post-cache trace synthesis for one workload profile."""

    def __init__(self, profile: WorkloadProfile,
                 footprint_bytes: int | None = None,
                 seed: int | np.random.Generator = 0):
        self.profile = profile
        self.footprint_bytes = footprint_bytes or profile.footprint_bytes
        if self.footprint_bytes < 2 * SEGMENT_BYTES:
            raise ConfigurationError("footprint must span several segments")
        self.rng = (seed if isinstance(seed, np.random.Generator)
                    else np.random.default_rng(seed))
        self.num_segments = self.footprint_bytes // SEGMENT_BYTES
        hot_count = max(1, round(profile.hot_segment_fraction
                                 * self.num_segments))
        all_segments = self.rng.permutation(self.num_segments)
        self.hot_segments = np.sort(all_segments[:hot_count])
        cold = all_segments[hot_count:]
        # Cold data splits into a small *warm* tier that absorbs the rare
        # off-hot accesses (metadata sweeps, background jobs) and a
        # *frozen* remainder that is resident but untouched in steady
        # state.  The frozen tier is what gives Figure 10 its long reuse
        # distances at both 2 MB and 4 MB granularity.
        warm_count = max(1, round(profile.warm_fraction * len(cold))) \
            if len(cold) else 0
        self.warm_segments = np.sort(cold[:warm_count])
        frozen = cold[warm_count:]
        deep_count = round(profile.deep_cold_fraction * len(frozen))
        self.deep_cold_segments = np.sort(frozen[:deep_count])
        self.shallow_frozen_segments = np.sort(frozen[deep_count:])
        self.frozen_segments = np.sort(frozen)
        self.cold_segments = np.sort(cold)
        # Zipf-like popularity inside the hot set: a few very hot segments,
        # a long warm tail.
        ranks = np.arange(1, hot_count + 1, dtype=np.float64)
        weights = 1.0 / np.sqrt(ranks)
        self._hot_weights = weights / weights.sum()

    # -- helpers ------------------------------------------------------------------

    def _sample_strides(self, buckets: np.ndarray) -> np.ndarray:
        """Log-uniform stride magnitudes within each bucket."""
        edges = (0,) + STRIDE_BUCKET_EDGES
        lows = np.array([max(edges[index], CACHELINE_BYTES)
                         for index in range(len(edges) - 1)] + [0])
        highs = np.array(list(STRIDE_BUCKET_EDGES) + [0])
        strides = np.empty(len(buckets), dtype=np.int64)
        for bucket in range(len(STRIDE_BUCKET_EDGES)):
            mask = buckets == bucket
            count = int(mask.sum())
            if not count:
                continue
            low, high = lows[bucket], highs[bucket]
            raw = np.exp(self.rng.uniform(np.log(low), np.log(high),
                                          size=count))
            quantised = (raw // CACHELINE_BYTES).astype(np.int64) \
                * CACHELINE_BYTES
            # exp(log(low)) can land a hair below ``low``; clamp back into
            # the bucket so no zero strides escape.
            strides[mask] = np.clip(quantised, low,
                                    max(low, high - CACHELINE_BYTES))
        return strides

    def _sample_segments(self, count: int) -> np.ndarray:
        """Jump targets: hot set with ``hot_access_prob``, else cold."""
        take_hot = self.rng.random(count) < self.profile.hot_access_prob
        result = np.empty(count, dtype=np.int64)
        hot_n = int(take_hot.sum())
        if hot_n:
            result[take_hot] = self.rng.choice(
                self.hot_segments, size=hot_n, p=self._hot_weights)
        cold_n = count - hot_n
        if cold_n:
            if len(self.warm_segments):
                result[~take_hot] = self.rng.choice(self.warm_segments,
                                                    size=cold_n)
            else:
                result[~take_hot] = self.rng.choice(self.hot_segments,
                                                    size=cold_n)
        return result

    # -- generation ----------------------------------------------------------------

    def generate(self, num_accesses: int) -> Trace:
        """Produce a post-cache trace of ``num_accesses`` accesses."""
        profile = self.profile
        rng = self.rng
        n = num_accesses
        buckets = rng.choice(len(STRIDE_BUCKET_EDGES), size=n,
                             p=profile.stride_probs)
        jump_bucket = len(STRIDE_BUCKET_EDGES) - 1
        jumps = buckets == jump_bucket
        jumps[0] = True  # the stream starts with a placement
        strides = self._sample_strides(buckets)
        signs = rng.choice((-1, 1), size=n)
        small = np.where(jumps, 0, strides * signs)
        # Offsets accumulate within the current segment between jumps.
        group = np.cumsum(jumps) - 1
        cumulative = np.cumsum(small)
        group_starts = np.flatnonzero(jumps)
        base_cumulative = cumulative[group_starts][group]
        start_offsets = rng.integers(
            0, SEGMENT_BYTES // CACHELINE_BYTES,
            size=len(group_starts)) * CACHELINE_BYTES
        offsets = (start_offsets[group] + cumulative - base_cumulative) \
            % SEGMENT_BYTES
        segments = self._sample_segments(len(group_starts))[group]
        addresses = (segments * SEGMENT_BYTES + offsets).astype(np.uint64)
        is_write = rng.random(n) < profile.write_fraction
        # Geometric gaps reproduce the configured MAPKI in expectation.
        instr_deltas = rng.geometric(
            min(1.0, profile.mapki / 1000.0), size=n).astype(np.uint32)
        return Trace(addresses=addresses, is_write=is_write,
                     instr_deltas=instr_deltas, name=profile.name)

    def segment_access_rates(self) -> np.ndarray:
        """Per-segment share of accesses (sums to 1).

        This closed-form view of the generator feeds the windowed
        self-refresh simulator, which draws per-window access counts
        instead of replaying individual accesses.
        """
        rates = np.zeros(self.num_segments, dtype=np.float64)
        rates[self.hot_segments] = (self.profile.hot_access_prob
                                    * self._hot_weights)
        if len(self.warm_segments):
            rates[self.warm_segments] = ((1.0 - self.profile.hot_access_prob)
                                         / len(self.warm_segments))
        else:
            rates[self.hot_segments] += (
                (1.0 - self.profile.hot_access_prob) * self._hot_weights)
        return rates / rates.sum()


def make_trace(name: str, num_accesses: int, footprint_bytes: int | None = None,
               seed: int = 0) -> Trace:
    """Convenience: generate a trace for a named benchmark."""
    try:
        profile = PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choices: {sorted(PROFILES)}"
        ) from None
    return TraceGenerator(profile, footprint_bytes, seed).generate(
        num_accesses)


__all__ = [
    "SEGMENT_BYTES",
    "STRIDE_BUCKET_EDGES",
    "WorkloadProfile",
    "PROFILES",
    "TRACED_BENCHMARKS",
    "TraceGenerator",
    "make_trace",
]
