"""Bank-level row-buffer state tracking.

The schedule-level simulators use measured end-to-end latencies, but the
performance model's bank *service time* is an effective constant.  This
module grounds it: a :class:`BankState` grid tracks the open row of every
bank, classifies each access as a row hit / miss / conflict, and
:class:`RowBufferAnalyzer` turns a post-cache trace into hit-rate and
mean-service-time statistics under a configurable address mapping.

It doubles as the substrate for studying how the DTL's segment-granular
channel interleaving affects row locality compared to the conventional
cacheline-interleaved mapping (the paper's Figure 5 argument in
microcosm: interleaving trades row locality for parallelism).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.dram.geometry import DramGeometry
from repro.dram.timing import DDR4_2933, DramTiming
from repro.units import KIB, log2_int


class RowOutcome(enum.Enum):
    """Classification of one DRAM column access."""

    HIT = "hit"          # row already open
    MISS = "miss"        # bank idle (closed row)
    CONFLICT = "conflict"  # different row open: precharge first


@dataclass
class BankStats:
    """Access-outcome counters."""

    hits: int = 0
    misses: int = 0
    conflicts: int = 0

    @property
    def accesses(self) -> int:
        """Total classified accesses."""
        return self.hits + self.misses + self.conflicts

    @property
    def hit_ratio(self) -> float:
        """Row-buffer hit ratio."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def conflict_ratio(self) -> float:
        """Row-buffer conflict ratio."""
        return self.conflicts / self.accesses if self.accesses else 0.0


class BankState:
    """Open-row tracking for every bank in the device."""

    IDLE = -1

    def __init__(self, geometry: DramGeometry, row_bytes: int = 8 * KIB):
        self.geometry = geometry
        self.row_bytes = row_bytes
        total_banks = (geometry.channels * geometry.ranks_per_channel
                       * geometry.banks_per_rank)
        self._open_rows = np.full(total_banks, self.IDLE, dtype=np.int64)
        self.stats = BankStats()

    def _bank_index(self, channel: int, rank: int, bank: int) -> int:
        geo = self.geometry
        return ((channel * geo.ranks_per_channel + rank)
                * geo.banks_per_rank + bank)

    def access(self, channel: int, rank: int, bank: int,
               row: int) -> RowOutcome:
        """Classify one access and update the open row."""
        index = self._bank_index(channel, rank, bank)
        open_row = self._open_rows[index]
        self._open_rows[index] = row
        if open_row == self.IDLE:
            self.stats.misses += 1
            return RowOutcome.MISS
        if open_row == row:
            self.stats.hits += 1
            return RowOutcome.HIT
        self.stats.conflicts += 1
        return RowOutcome.CONFLICT

    def access_batch(self, bank_indices: np.ndarray, rows: np.ndarray,
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Classify a whole access stream; identical to :meth:`access`.

        ``bank_indices`` are flat bank indices (:meth:`_bank_index`
        applied to decoded addresses — see
        :meth:`AddressDecoder.decode_batch`).  Returns boolean
        ``(hits, misses, conflicts)`` masks over the input order.

        The stream is grouped per bank with a stable argsort: within one
        bank the previous open row of access *i* is simply row *i-1*
        (the group head compares against the live ``_open_rows`` entry),
        so the entire classification vectorises with one shift.
        """
        bank_indices = np.asarray(bank_indices, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.int64)
        prev_rows = np.empty(len(rows), dtype=np.int64)
        order = np.argsort(bank_indices, kind="stable")
        sorted_banks = bank_indices[order]
        sorted_rows = rows[order]
        # Previous row within each bank group = shifted rows; group heads
        # read the bank's current open row.
        shifted = np.empty(len(rows), dtype=np.int64)
        if len(rows):
            shifted[1:] = sorted_rows[:-1]
            shifted[0] = self.IDLE
            heads = np.empty(len(rows), dtype=bool)
            heads[0] = True
            heads[1:] = sorted_banks[1:] != sorted_banks[:-1]
            shifted[heads] = self._open_rows[sorted_banks[heads]]
            # Last access per bank (next head, shifted left) leaves its
            # row open.
            tails = np.roll(heads, -1)
            self._open_rows[sorted_banks[tails]] = sorted_rows[tails]
        prev_rows[order] = shifted
        misses = prev_rows == self.IDLE
        hits = ~misses & (prev_rows == rows)
        conflicts = ~misses & ~hits
        self.stats.misses += int(misses.sum())
        self.stats.hits += int(hits.sum())
        self.stats.conflicts += int(conflicts.sum())
        return hits, misses, conflicts

    def bank_index_batch(self, channels: np.ndarray, ranks: np.ndarray,
                         banks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_bank_index`."""
        geo = self.geometry
        return ((np.asarray(channels, dtype=np.int64)
                 * geo.ranks_per_channel
                 + np.asarray(ranks, dtype=np.int64))
                * geo.banks_per_rank + np.asarray(banks, dtype=np.int64))

    def precharge_all(self) -> None:
        """Close every row (e.g. after refresh)."""
        self._open_rows.fill(self.IDLE)

    def open_row(self, channel: int, rank: int, bank: int) -> int:
        """Currently open row of a bank (-1 when idle)."""
        return int(self._open_rows[self._bank_index(channel, rank, bank)])


@dataclass(frozen=True)
class DramAddress:
    """Decomposed device address for the bank model."""

    channel: int
    rank: int
    bank: int
    row: int


class AddressDecoder:
    """Map flat physical addresses onto (channel, rank, bank, row).

    Two mappings are provided:

    * ``"interleaved"`` — the conventional baseline: channel and bank bits
      directly above the cacheline offset, rank above them.
    * ``"dtl"`` — the DTL layout (Figure 6): channel bits above the 2 MiB
      segment offset, rank bits at the top; banks interleave on row
      boundaries inside a rank.
    """

    def __init__(self, geometry: DramGeometry, mapping: str = "dtl",
                 row_bytes: int = 8 * KIB):
        if mapping not in ("dtl", "interleaved"):
            raise ValueError(f"unknown mapping {mapping!r}")
        self.geometry = geometry
        self.mapping = mapping
        self.row_bytes = row_bytes
        self._row_bits = log2_int(row_bytes)

    def decode(self, address: int) -> DramAddress:
        """Decompose one byte address."""
        geo = self.geometry
        if self.mapping == "interleaved":
            block = address >> 6  # cacheline
            channel = block % geo.channels
            block //= geo.channels
            bank = block % geo.banks_per_rank
            block //= geo.banks_per_rank
            rank = block % geo.ranks_per_channel
            row = block // geo.ranks_per_channel
            return DramAddress(channel, rank, bank, int(row))
        segment = address // geo.segment_bytes
        offset = address % geo.segment_bytes
        channel = segment % geo.channels
        within_channel = segment // geo.channels
        rank = (within_channel // geo.segments_per_rank) \
            % geo.ranks_per_channel
        row_linear = (within_channel % geo.segments_per_rank) \
            * (geo.segment_bytes // self.row_bytes) \
            + (offset >> self._row_bits)
        bank = row_linear % geo.banks_per_rank
        row = row_linear // geo.banks_per_rank
        return DramAddress(channel, rank, bank, int(row))

    def decode_batch(self, addresses: np.ndarray,
                     ) -> tuple[np.ndarray, np.ndarray,
                                np.ndarray, np.ndarray]:
        """Vectorised :meth:`decode`: ``(channels, ranks, banks, rows)``."""
        geo = self.geometry
        addresses = np.asarray(addresses, dtype=np.int64)
        if self.mapping == "interleaved":
            block = addresses >> 6
            channels = block % geo.channels
            block = block // geo.channels
            banks = block % geo.banks_per_rank
            block = block // geo.banks_per_rank
            ranks = block % geo.ranks_per_channel
            rows = block // geo.ranks_per_channel
            return channels, ranks, banks, rows
        segments = addresses // geo.segment_bytes
        offsets = addresses % geo.segment_bytes
        channels = segments % geo.channels
        within_channel = segments // geo.channels
        ranks = (within_channel // geo.segments_per_rank) \
            % geo.ranks_per_channel
        row_linear = (within_channel % geo.segments_per_rank) \
            * (geo.segment_bytes // self.row_bytes) \
            + (offsets >> self._row_bits)
        banks = row_linear % geo.banks_per_rank
        rows = row_linear // geo.banks_per_rank
        return channels, ranks, banks, rows


class RowBufferAnalyzer:
    """Classify a whole trace and estimate the effective service time."""

    def __init__(self, geometry: DramGeometry, mapping: str = "dtl",
                 timing: DramTiming = DDR4_2933):
        self.geometry = geometry
        self.decoder = AddressDecoder(geometry, mapping)
        self.banks = BankState(geometry)
        self.timing = timing

    def run(self, addresses: np.ndarray) -> BankStats:
        """Classify every access of a flat address stream."""
        channels, ranks, banks, rows = self.decoder.decode_batch(addresses)
        indices = self.banks.bank_index_batch(channels, ranks, banks)
        self.banks.access_batch(indices, rows)
        return self.banks.stats

    def mean_service_time_ns(self) -> float:
        """Outcome-weighted mean bank service time.

        This is the quantity the performance model folds into one
        effective ``bank_service_ns`` constant.
        """
        stats = self.banks.stats
        if not stats.accesses:
            return self.timing.row_miss_latency_ns()
        hit = self.timing.row_hit_latency_ns()
        miss = self.timing.row_miss_latency_ns()
        conflict = self.timing.row_conflict_latency_ns()
        return (stats.hits * hit + stats.misses * miss
                + stats.conflicts * conflict) / stats.accesses


__all__ = [
    "RowOutcome",
    "BankStats",
    "BankState",
    "DramAddress",
    "AddressDecoder",
    "RowBufferAnalyzer",
]
