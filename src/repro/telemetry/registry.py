"""Named metrics: counters, gauges, and fixed-bucket latency histograms.

The :class:`MetricsRegistry` is the DTL's single measurement substrate:
every subsystem registers its counters here under a dotted name
(``smc.l1.hits``, ``migration.aborts``, ...) and the registry can export
everything at once as a :class:`Snapshot`.  Metric objects are cheap
mutable cells — incrementing a counter is one attribute addition, so the
registry is safe to leave enabled on the access hot path.

Nothing in this module imports from :mod:`repro.core`; the core
subsystems depend on telemetry, never the other way around.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError

#: Default histogram bucket upper bounds (ns): spans an L1 SMC hit
#: (~0.7 ns) through a CXL round-trip with a table walk (~400 ns).
DEFAULT_LATENCY_BUCKETS_NS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def set(self, value: int | float) -> None:
        """Overwrite the count (used by legacy stats-view setters)."""
        self.value = value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram (cumulative-style buckets, like Prometheus).

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str,
                 bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_NS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name!r} needs ascending, non-empty bounds")
        self.name = name
        self.bounds = tuple(float(bound) for bound in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def observe_batch(self, values: np.ndarray) -> None:
        """Record many samples in one vectorised pass.

        Bucket counts match a sequence of :meth:`observe` calls exactly
        (``np.searchsorted(side="left")`` is ``bisect_left``); ``total``
        accumulates in one addition, so it may differ from the sequential
        sum in the last ULPs.
        """
        values = np.asarray(values, dtype=np.float64)
        if not len(values):
            return
        indices = np.searchsorted(self.bounds, values, side="left")
        per_bucket = np.bincount(indices, minlength=len(self.counts))
        for bucket, count in enumerate(per_bucket):
            if count:
                self.counts[bucket] += int(count)
        self.count += len(values)
        self.total += float(values.sum())

    @property
    def mean(self) -> float:
        """Mean of all observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation with labelled buckets."""
        labels = [f"le_{bound:g}" for bound in self.bounds] + ["overflow"]
        return {"count": self.count, "sum": self.total, "mean": self.mean,
                "buckets": dict(zip(labels, self.counts))}

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


@dataclass
class Snapshot:
    """One point-in-time export of a registry (plus optional context).

    Attributes:
        counters: Counter name -> value.
        gauges: Gauge name -> value.
        histograms: Histogram name -> bucket dict.
        events: Event kind -> occurrence count (from an
            :class:`~repro.telemetry.events.EventTrace`).
        detail: Structured extras that are not flat metrics (e.g.
            per-rank power-state residency).
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (what :meth:`to_json` serialises)."""
        return {"counters": dict(self.counters), "gauges": dict(self.gauges),
                "histograms": dict(self.histograms),
                "events": dict(self.events), "detail": dict(self.detail)}

    def to_json(self, indent: int | None = None) -> str:
        """Serialise the snapshot as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class _NullCounter(Counter):
    """Counter that discards every update (telemetry fast path)."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass


class _NullGauge(Gauge):
    """Gauge that discards every update (telemetry fast path)."""

    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    """Histogram that discards every sample (telemetry fast path)."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_batch(self, values: np.ndarray) -> None:
        pass


class MetricsRegistry:
    """Get-or-create store of named metrics.

    Names are namespaced with dots by convention.  Re-registering an
    existing name returns the same object; registering a name as two
    different kinds is an error.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    @property
    def enabled(self) -> bool:
        """False on the null registry; accounting can be skipped entirely."""
        return True

    @staticmethod
    def null() -> "NullMetricsRegistry":
        """A registry whose metrics discard every update.

        Hand this to a :class:`~repro.core.controller.DtlController` (or
        any subsystem) to remove per-access accounting from the hot path:
        every ``counter()``/``gauge()``/``histogram()`` call returns a
        shared no-op object, so subsystems keep their unconditional
        ``.inc()`` calls but nothing is stored.  All read-backs report
        zero / empty.
        """
        return NullMetricsRegistry()

    def _check_free(self, name: str, kind: dict) -> None:
        for store in (self._counters, self._gauges, self._histograms):
            if store is not kind and name in store:
                raise ConfigurationError(
                    f"metric {name!r} already registered as another kind")

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if name not in self._counters:
            self._check_free(name, self._counters)
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        if name not in self._gauges:
            self._check_free(name, self._gauges)
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_NS,
                  ) -> Histogram:
        """Get or create the histogram called ``name``."""
        if name not in self._histograms:
            self._check_free(name, self._histograms)
            self._histograms[name] = Histogram(name, bounds)
        return self._histograms[name]

    # -- export ----------------------------------------------------------------

    def counter_values(self) -> dict[str, float]:
        """All counter values keyed by name."""
        return {name: counter.value
                for name, counter in sorted(self._counters.items())}

    def gauge_values(self) -> dict[str, float]:
        """All gauge values keyed by name."""
        return {name: gauge.value
                for name, gauge in sorted(self._gauges.items())}

    def histogram_values(self) -> dict[str, dict]:
        """All histograms keyed by name, in dict form."""
        return {name: histogram.to_dict()
                for name, histogram in sorted(self._histograms.items())}

    def snapshot(self, events: dict[str, int] | None = None,
                 detail: dict[str, Any] | None = None) -> Snapshot:
        """Export everything, optionally with event counts and detail."""
        return Snapshot(counters=self.counter_values(),
                        gauges=self.gauge_values(),
                        histograms=self.histogram_values(),
                        events=dict(events or {}),
                        detail=dict(detail or {}))

    # -- serialisation -----------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Every metric's current value, as plain data.

        This is the single restore point for all registry-backed stats
        views in the core (``MigrationStats``, ``CacheStats``, the
        policy hosts' demotion counters, ...): those objects hold
        references to the registry's ``Counter`` cells, so
        :meth:`load_state_dict` updates propagate to every view.
        """
        return {
            "counters": {name: counter.value
                         for name, counter in self._counters.items()},
            "gauges": {name: gauge.value
                       for name, gauge in self._gauges.items()},
            "histograms": {name: {"bounds": list(histogram.bounds),
                                  "counts": list(histogram.counts),
                                  "count": histogram.count,
                                  "total": histogram.total}
                           for name, histogram in self._histograms.items()},
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (creating metrics as needed)."""
        for name, value in state["counters"].items():
            self.counter(name).set(value)
        for name, value in state["gauges"].items():
            self.gauge(name).set(value)
        for name, data in state["histograms"].items():
            histogram = self.histogram(name, tuple(data["bounds"]))
            histogram.counts = list(data["counts"])
            histogram.count = data["count"]
            histogram.total = data["total"]


class NullMetricsRegistry(MetricsRegistry):
    """A :class:`MetricsRegistry` that records nothing.

    Every metric accessor returns a shared no-op object regardless of
    name, so subsystems written against the real registry run unchanged
    with zero accounting cost.  Exports are empty.
    """

    _COUNTER = _NullCounter("null")
    _GAUGE = _NullGauge("null")
    _HISTOGRAM = _NullHistogram("null")

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str) -> Counter:
        return self._COUNTER

    def gauge(self, name: str) -> Gauge:
        return self._GAUGE

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_NS,
                  ) -> Histogram:
        return self._HISTOGRAM


__all__ = [
    "DEFAULT_LATENCY_BUCKETS_NS",
    "Counter",
    "Gauge",
    "Histogram",
    "Snapshot",
    "MetricsRegistry",
    "NullMetricsRegistry",
]
