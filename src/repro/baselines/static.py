"""Vanilla (no-DTL) CXL memory device baseline.

A plain CXL expander translates HPA to DPA with a fixed linear mapping:
no segment indirection, no migration, no power policies — every rank must
stay in standby because any of it may be addressed at any time.  Used as
the energy/latency baseline in experiments and as a behavioural contrast
in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.interleaving import InterleavedMapping
from repro.core.addressing import SegmentLocation
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.timing import CXL_MEMORY_LATENCY_NS
from repro.errors import AllocationError


@dataclass
class StaticCxlDevice:
    """A conventional CXL memory expander (the paper's baseline system)."""

    geometry: DramGeometry
    cxl_latency_ns: float = CXL_MEMORY_LATENCY_NS
    mapping: InterleavedMapping = None  # type: ignore[assignment]
    device: DramDevice = None  # type: ignore[assignment]
    _allocated_bytes: int = 0

    def __post_init__(self) -> None:
        if self.mapping is None:
            self.mapping = InterleavedMapping(self.geometry)
        if self.device is None:
            self.device = DramDevice(geometry=self.geometry)

    def allocate(self, num_bytes: int) -> int:
        """Linear bump allocation; returns the region's base HPA."""
        if self._allocated_bytes + num_bytes > self.geometry.total_bytes:
            raise AllocationError("device is full")
        base = self._allocated_bytes
        self._allocated_bytes += num_bytes
        return base

    def free_bytes(self) -> int:
        """Unallocated capacity."""
        return self.geometry.total_bytes - self._allocated_bytes

    def access(self, hpa: int) -> tuple[SegmentLocation, float]:
        """Fixed-mapping access: no translation overhead, no power hooks."""
        location = self.mapping.locate(hpa)
        self.device.rank(location.channel, location.rank).record_access()
        return location, self.cxl_latency_ns

    def background_power(self) -> float:
        """All ranks in standby, always (RSU)."""
        return self.device.background_power()


__all__ = ["StaticCxlDevice"]
