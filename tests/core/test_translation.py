"""Tests for the translation engine and its latency accounting."""

import pytest

from repro.core.addressing import HostAddressLayout
from repro.core.segment_cache import SegmentCacheConfig
from repro.core.translation import TranslationEngine
from repro.dram.geometry import DramGeometry
from repro.dram.timing import NATIVE_DRAM_LATENCY_NS
from repro.errors import TranslationError
from repro.units import GIB, MIB


@pytest.fixture
def engine():
    layout = HostAddressLayout(DramGeometry(rank_bytes=1 * GIB),
                               au_bytes=64 * MIB)
    engine = TranslationEngine(layout)
    engine.tables.allocate_au(0, 0)
    for offset in range(32):
        engine.tables.map_segment(layout.pack_hsn(0, 0, offset), offset * 7)
    return engine


class TestLatencyAccounting:
    def test_first_access_pays_miss_penalty(self, engine):
        hsn = engine.layout.pack_hsn(0, 0, 0)
        _, latency, l1, l2 = engine.translate_hsn(hsn)
        assert not l1 and not l2
        assert latency == pytest.approx(
            engine.smc.config.l1_hit_ns + engine.smc.config.l2_hit_ns
            + engine.miss_penalty_ns)

    def test_second_access_hits_l1(self, engine):
        hsn = engine.layout.pack_hsn(0, 0, 0)
        engine.translate_hsn(hsn)
        _, latency, l1, _ = engine.translate_hsn(hsn)
        assert l1
        assert latency == pytest.approx(engine.smc.config.l1_hit_ns)

    def test_miss_penalty_includes_dram(self, engine):
        assert engine.miss_penalty_ns > NATIVE_DRAM_LATENCY_NS

    def test_counts_and_totals(self, engine):
        hsn = engine.layout.pack_hsn(0, 0, 1)
        engine.translate_hsn(hsn)
        engine.translate_hsn(hsn)
        assert engine.translation_count == 2
        assert engine.mean_observed_latency_ns() > 0

    def test_table_walk_probe_cycles_not_double_counted(self, engine):
        """Regression: a full miss charges the SMC probes once (via
        ``miss_probe_ns``) plus the walk penalty once — nothing twice."""
        hsn = engine.layout.pack_hsn(0, 0, 2)
        _, latency, l1, l2 = engine.translate_hsn(hsn)
        assert not l1 and not l2
        assert latency == pytest.approx(
            engine.smc.config.miss_probe_ns + engine.miss_penalty_ns)
        assert engine.total_latency_ns == pytest.approx(latency)
        assert engine.table_walks == 1
        # The L2-hit path must stay strictly cheaper than a full miss.
        assert engine.smc.config.miss_probe_ns + engine.miss_penalty_ns \
            > engine.smc.config.l1_hit_ns + engine.smc.config.l2_hit_ns


class TestTranslateFullAddress:
    def test_translation_fields(self, engine):
        hpa = engine.layout.hpa_of(engine.layout.pack_hsn(0, 0, 3), 4096)
        result = engine.translate(hpa)
        assert result.hsn == engine.layout.pack_hsn(0, 0, 3)
        assert result.dsn == 3 * 7
        assert result.dpa_offset == 4096
        assert result.smc_miss

    def test_unmapped_raises(self, engine):
        hpa = engine.layout.hpa_of(engine.layout.pack_hsn(0, 1, 0))
        with pytest.raises(TranslationError):
            engine.translate(hpa)


class TestInvalidation:
    def test_invalidate_forces_rewalk(self, engine):
        hsn = engine.layout.pack_hsn(0, 0, 5)
        engine.translate_hsn(hsn)
        engine.tables.remap_segment(hsn, 999)
        assert engine.invalidate(hsn)
        dsn, _, l1, l2 = engine.translate_hsn(hsn)
        assert dsn == 999
        assert not l1 and not l2

    def test_stale_mapping_without_invalidate(self, engine):
        """Demonstrates why migration must invalidate the SMC."""
        hsn = engine.layout.pack_hsn(0, 0, 5)
        engine.translate_hsn(hsn)
        engine.tables.remap_segment(hsn, 999)
        dsn, _, _, _ = engine.translate_hsn(hsn)
        assert dsn == 5 * 7  # stale!


class TestMeasuredAmat:
    def test_amat_formula_with_no_traffic(self, engine):
        # No lookups: miss ratios are 0, AMAT collapses to the L1 hit time.
        assert engine.measured_amat_ns() == pytest.approx(
            engine.smc.config.l1_hit_ns)

    def test_amat_grows_with_misses(self, engine):
        layout = engine.layout
        for offset in range(32):
            engine.translate_hsn(layout.pack_hsn(0, 0, offset))
        cold = engine.measured_amat_ns()
        for offset in range(32):
            engine.translate_hsn(layout.pack_hsn(0, 0, offset))
        warm = engine.measured_amat_ns()
        assert warm < cold

    def test_small_cache_increases_amat(self):
        layout = HostAddressLayout(DramGeometry(rank_bytes=1 * GIB),
                                   au_bytes=64 * MIB)
        tiny = TranslationEngine(layout, cache_config=SegmentCacheConfig(
            l1_entries=1, l2_entries=4, l2_ways=2))
        tiny.tables.allocate_au(0, 0)
        for offset in range(16):
            tiny.tables.map_segment(layout.pack_hsn(0, 0, offset), offset)
        for _ in range(3):
            for offset in range(16):
                tiny.translate_hsn(layout.pack_hsn(0, 0, offset))
        assert tiny.measured_amat_ns() > 50.0
