"""Tests for the atomic migration engine (Section 4.2)."""

import pytest

from repro.core.addressing import DeviceAddressLayout, SegmentLocation
from repro.core.migration import (MigrationEngine, MigrationRequest,
                                  WriteRouting)
from repro.dram.geometry import DramGeometry
from repro.errors import MigrationError
from repro.units import CACHELINE_BYTES, MIB


@pytest.fixture
def geometry():
    # Small segments keep line counts manageable: 128 KiB = 2048 lines.
    return DramGeometry(ranks_per_channel=4, rank_bytes=16 * MIB,
                        segment_bytes=128 * 1024)


@pytest.fixture
def layout(geometry):
    return DeviceAddressLayout(geometry)


@pytest.fixture
def engine(geometry):
    return MigrationEngine(geometry)


def dsn_at(layout, channel, rank, index):
    return layout.pack_dsn(SegmentLocation(channel, rank, index))


class TestSubmission:
    def test_submit_same_channel(self, engine, layout):
        request = engine.submit(1, dsn_at(layout, 0, 0, 0),
                                dsn_at(layout, 0, 1, 0))
        assert isinstance(request, MigrationRequest)
        assert engine.pending_count() == 1

    def test_cross_channel_rejected(self, engine, layout):
        with pytest.raises(MigrationError):
            engine.submit(1, dsn_at(layout, 0, 0, 0),
                          dsn_at(layout, 1, 0, 0))

    def test_duplicate_source_rejected(self, engine, layout):
        src = dsn_at(layout, 0, 0, 0)
        engine.submit(1, src, dsn_at(layout, 0, 1, 0))
        with pytest.raises(MigrationError):
            engine.submit(2, src, dsn_at(layout, 0, 2, 0))

    def test_request_lookup(self, engine, layout):
        src = dsn_at(layout, 0, 0, 0)
        request = engine.submit(1, src, dsn_at(layout, 0, 1, 0))
        assert engine.request_for(src) is request
        assert engine.request_for(999999) is None


class TestProgress:
    def test_step_copies_lines(self, engine, layout):
        engine.submit(1, dsn_at(layout, 0, 0, 0), dsn_at(layout, 0, 1, 0))
        copied = engine.step_channel(0, lines=10)
        assert copied == 10
        assert engine.stats.lines_copied == 10

    def test_foreground_busy_blocks_migration(self, engine, layout):
        engine.submit(1, dsn_at(layout, 0, 0, 0), dsn_at(layout, 0, 1, 0))
        assert engine.step_channel(0, foreground_busy=True, lines=10) == 0

    def test_completion_fires_callback(self, geometry, layout):
        completed = []
        engine = MigrationEngine(geometry, on_complete=completed.append)
        request = engine.submit(7, dsn_at(layout, 0, 0, 0),
                                dsn_at(layout, 0, 1, 0))
        engine.step_channel(0, lines=engine.lines_per_segment)
        # Copy finished: completion bit set, mapping update still pending
        # (Section 4.2 window).  Retirement happens on the next step.
        assert request.completion
        assert not completed
        engine.step_channel(0, lines=1)
        assert len(completed) == 1
        assert completed[0].hsn == 7
        assert completed[0].completion

    def test_completion_window_routes_writes_to_new_dsn(self, geometry,
                                                        layout):
        """Regression: the completion->retirement window must be reachable
        in the live path (not only by hand-setting the completion bit)."""
        completed = []
        engine = MigrationEngine(geometry, on_complete=completed.append)
        src = dsn_at(layout, 0, 0, 0)
        dst = dsn_at(layout, 0, 1, 0)
        engine.submit(7, src, dst)
        engine.step_channel(0, lines=engine.lines_per_segment)
        # A foreground write arriving in the window goes to the new copy.
        assert engine.on_foreground_write(src, 3) is WriteRouting.NEW_DSN
        assert engine.stats.foreground_redirects == 1
        assert not completed
        engine.step_channel(0, lines=1)
        assert len(completed) == 1
        # After retirement the old DSN no longer matches any request.
        assert engine.on_foreground_write(src, 3) is WriteRouting.OLD_DSN

    def test_drain_completes_everything(self, engine, layout):
        for index in range(3):
            engine.submit(index, dsn_at(layout, 0, 0, index),
                          dsn_at(layout, 0, 1, index))
        engine.submit(9, dsn_at(layout, 1, 0, 0), dsn_at(layout, 1, 1, 0))
        assert engine.drain() == 4
        assert engine.pending_count() == 0

    def test_step_all_skips_busy(self, engine, layout):
        engine.submit(1, dsn_at(layout, 0, 0, 0), dsn_at(layout, 0, 1, 0))
        engine.submit(2, dsn_at(layout, 1, 0, 0), dsn_at(layout, 1, 1, 0))
        copied = engine.step_all(busy_channels={0}, lines=5)
        assert copied == 5

    def test_bytes_copied(self, engine, layout):
        engine.submit(1, dsn_at(layout, 0, 0, 0), dsn_at(layout, 0, 1, 0))
        engine.drain()
        assert engine.stats.bytes_copied == engine.lines_per_segment \
            * CACHELINE_BYTES


class TestWriteConflictProtocol:
    """The four cases of Section 4.2's atomic-migration protocol."""

    def test_write_to_non_migrating_segment(self, engine):
        assert engine.on_foreground_write(12345, 0) is WriteRouting.OLD_DSN

    def test_write_after_completion_routes_to_new(self, geometry, layout):
        # No completion callback: the request keeps its completion bit
        # visible until the mapping update would retire it.
        engine = MigrationEngine(geometry, on_complete=None)
        src = dsn_at(layout, 0, 0, 0)
        request = engine.submit(1, src, dsn_at(layout, 0, 1, 0))
        request.lines_done = request.lines_total
        request.completion = True
        assert engine.on_foreground_write(src, 5) is WriteRouting.NEW_DSN
        assert engine.stats.foreground_redirects == 1

    def test_write_to_not_yet_copied_line_proceeds(self, engine, layout):
        src = dsn_at(layout, 0, 0, 0)
        engine.submit(1, src, dsn_at(layout, 0, 1, 0))
        engine.step_channel(0, lines=10)
        assert engine.on_foreground_write(src, 50) is WriteRouting.OLD_DSN
        assert engine.stats.aborts == 0

    def test_write_to_copied_line_aborts(self, engine, layout):
        src = dsn_at(layout, 0, 0, 0)
        request = engine.submit(1, src, dsn_at(layout, 0, 1, 0))
        engine.step_channel(0, lines=10)
        assert engine.on_foreground_write(src, 5) is WriteRouting.OLD_DSN
        assert engine.stats.aborts == 1
        assert request.lines_done == 0
        assert request.retries == 1

    def test_excess_retries_requeue_to_tail(self, engine, layout):
        src = dsn_at(layout, 0, 0, 0)
        request = engine.submit(1, src, dsn_at(layout, 0, 1, 0))
        other = engine.submit(2, dsn_at(layout, 0, 0, 1),
                              dsn_at(layout, 0, 1, 1))
        for _ in range(engine.max_retries + 1):
            engine.step_channel(0, lines=10)
            engine.on_foreground_write(src, 5)
        assert engine.stats.requeues == 1
        assert request.requeues == 1
        assert request.retries == 0
        # The other request now runs first.
        engine.step_channel(0, lines=engine.lines_per_segment)
        assert other.completion

    def test_line_index_range_checked(self, engine, layout):
        src = dsn_at(layout, 0, 0, 0)
        engine.submit(1, src, dsn_at(layout, 0, 1, 0))
        with pytest.raises(MigrationError):
            engine.on_foreground_write(src, engine.lines_per_segment)

    def test_migration_eventually_completes_despite_aborts(self, engine,
                                                           layout):
        """Correctness guarantee: retried migrations still finish."""
        src = dsn_at(layout, 0, 0, 0)
        request = engine.submit(1, src, dsn_at(layout, 0, 1, 0))
        engine.step_channel(0, lines=4)
        engine.on_foreground_write(src, 1)  # abort once
        engine.drain()
        assert request.completion
        assert engine.stats.segments_migrated == 1


class TestAbortRequeue:
    """Requeue behaviour when retries exceed ``max_retries`` (Section 4.2),
    for both an in-flight and a still-queued request."""

    def test_requeue_while_inflight_clears_register(self, engine, layout):
        src = dsn_at(layout, 0, 0, 0)
        request = engine.submit(1, src, dsn_at(layout, 0, 1, 0))
        engine.step_channel(0, lines=10)  # now in-flight
        request.retries = engine.max_retries
        engine.on_foreground_write(src, 5)  # abort pushes past the limit
        assert engine._inflight[0] is None
        assert engine._queues[0][-1] is request
        assert request.retries == 0
        assert request.requeues == 1
        assert engine.stats.requeues == 1
        assert engine.drain() == 1

    def test_requeue_while_queued_moves_to_tail_once(self, engine, layout):
        first = engine.submit(1, dsn_at(layout, 0, 0, 0),
                              dsn_at(layout, 0, 1, 0))
        second = engine.submit(2, dsn_at(layout, 0, 0, 1),
                               dsn_at(layout, 0, 1, 1))
        third = engine.submit(3, dsn_at(layout, 0, 0, 2),
                              dsn_at(layout, 0, 1, 2))
        engine.step_channel(0, lines=10)  # first becomes in-flight
        second.retries = engine.max_retries
        engine._abort(second)
        # Removed from its queue position and re-appended exactly once.
        assert list(engine._queues[0]) == [third, second]
        assert engine._inflight[0] is first
        assert second.requeues == 1
        assert second.retries == 0
        assert engine.drain() == 3

    def test_retries_below_limit_keep_request_in_place(self, engine, layout):
        src = dsn_at(layout, 0, 0, 0)
        request = engine.submit(1, src, dsn_at(layout, 0, 1, 0))
        engine.step_channel(0, lines=10)
        engine.on_foreground_write(src, 5)  # first abort: retries=1
        assert engine._inflight[0] is request
        assert engine.stats.requeues == 0


class TestCostModel:
    def test_migration_time(self, engine):
        # 2 GiB at 2 GB/s ~= 1.07 s.
        time_s = engine.migration_time_s(2 * 1024 ** 3, 2.0)
        assert time_s == pytest.approx(1.074, abs=0.01)

    def test_zero_bandwidth_rejected(self, engine):
        with pytest.raises(MigrationError):
            engine.migration_time_s(1024, 0.0)
