"""Async load generator for the DTL service.

Drives N concurrent tenants against a server — over TCP (``repro
loadgen`` against a live ``repro serve``) or in-process against a
:class:`~repro.server.server.DtlServer` (the soak experiment and the
benchmarks, where socket jitter would pollute the numbers).

Each tenant opens, allocates a few VMs, then issues a Zipf-skewed
stream of ``access_batch`` requests (hot segments stay hot, the access
pattern the DTL's profiling is built to exploit), interleaved with
occasional frees and re-allocations.  Requests carry logical
timestamps derived from the request index, so a loadgen run is a pure
function of its config — the same seed replays the same request
stream, which the drain/restore identity test leans on.

Wall-clock latency per request lands in a fixed-bounds histogram; the
:class:`LoadgenReport` carries throughput plus p50/p95/p99.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

import numpy as np

from repro.server.protocol import MAX_LINE_BYTES, decode_line, encode
from repro.units import MIB

#: Histogram bucket bounds for request wall latency (microseconds).
LATENCY_BOUNDS_US = (
    10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 50_000.0, 200_000.0)


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation campaign.

    Attributes:
        tenants: Concurrent tenant tasks.
        requests_per_tenant: ``access_batch`` requests per tenant.
        batch: Accesses per ``access_batch`` request.
        vms_per_tenant: VMs each tenant allocates up front.
        vm_bytes: Reservation size per VM.
        zipf_s: Zipf skew of the segment stream (1.0 ≈ realistic heat;
            higher concentrates harder).
        write_fraction: Fraction of accesses that are stores.
        churn_every: Free-and-reallocate one VM every this many
            requests (0 disables churn).
        seed: Seeds every tenant's stream (tenant index folded in).
        tick_s: Logical seconds each request advances a tenant's clock
            (drives token-bucket refill deterministically).
        tenant_prefix: Tenant names are ``{prefix}{index}``.
    """

    tenants: int = 8
    requests_per_tenant: int = 50
    batch: int = 256
    vms_per_tenant: int = 2
    vm_bytes: int = 2 * MIB
    zipf_s: float = 1.2
    write_fraction: float = 0.3
    churn_every: int = 16
    seed: int = 1234
    tick_s: float = 0.01
    tenant_prefix: str = "tenant-"

    def replace(self, **changes: Any) -> "LoadgenConfig":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)


@dataclass
class LoadgenReport:
    """What a campaign observed."""

    tenants: int
    requests: int = 0
    accesses: int = 0
    ok: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0
    latency_us: list[float] = field(default_factory=list)

    @property
    def requests_per_s(self) -> float:
        """Observed request throughput."""
        return self.requests / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def accesses_per_s(self) -> float:
        """Observed access throughput."""
        return self.accesses / self.elapsed_s if self.elapsed_s else 0.0

    def percentile(self, q: float) -> float:
        """Latency percentile in microseconds (0 if nothing measured)."""
        if not self.latency_us:
            return 0.0
        return float(np.percentile(np.asarray(self.latency_us), q))

    def histogram(self) -> dict[str, int]:
        """Latency counts per fixed bucket (``<=bound_us`` keys)."""
        counts = {f"<={bound:g}us": 0 for bound in LATENCY_BOUNDS_US}
        counts["inf"] = 0
        for value in self.latency_us:
            for bound in LATENCY_BOUNDS_US:
                if value <= bound:
                    counts[f"<={bound:g}us"] += 1
                    break
            else:
                counts["inf"] += 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        """Plain-data summary (the benchmark record)."""
        return {
            "tenants": self.tenants,
            "requests": self.requests,
            "accesses": self.accesses,
            "ok": self.ok,
            "rejected": dict(sorted(self.rejected.items())),
            "elapsed_s": self.elapsed_s,
            "requests_per_s": self.requests_per_s,
            "accesses_per_s": self.accesses_per_s,
            "latency_us": {
                "p50": self.percentile(50.0),
                "p95": self.percentile(95.0),
                "p99": self.percentile(99.0),
                "histogram": self.histogram(),
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        """JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


#: A request sink: takes one request dict, returns the response dict.
RequestFn = Callable[[dict[str, Any]], Awaitable[dict[str, Any]]]


class _TcpClient:
    """One NDJSON connection wrapped as a :data:`RequestFn`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "_TcpClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES)
        return cls(reader, writer)

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        self._writer.write(encode(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_line(line)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass


def _zipf_weights(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -s
    return weights / weights.sum()


async def _drive_tenant(config: LoadgenConfig, index: int,
                        request_fn: RequestFn,
                        report: LoadgenReport) -> None:
    """One tenant's whole session: open, allocate, stream, close."""
    name = f"{config.tenant_prefix}{index}"
    rng = np.random.default_rng(config.seed + 7919 * index)
    clock = float(index)  # tenants start phase-shifted

    async def call(message: dict[str, Any]) -> dict[str, Any]:
        nonlocal clock
        clock += config.tick_s
        message["tenant"] = name
        message["t"] = round(clock, 9)
        started = time.perf_counter()
        response = await request_fn(message)
        report.latency_us.append(
            (time.perf_counter() - started) * 1e6)
        report.requests += 1
        if response.get("ok"):
            report.ok += 1
        else:
            code = response.get("error", "unknown")
            report.rejected[code] = report.rejected.get(code, 0) + 1
        return response

    opened = await call({"op": "open_tenant"})
    if not opened.get("ok"):
        return
    vms: list[tuple[int, int]] = []  # (vm_id, segments)
    for _ in range(config.vms_per_tenant):
        response = await call({"op": "allocate", "bytes": config.vm_bytes})
        if response.get("ok"):
            vms.append((response["vm"], response["segments"]))
    if not vms:
        await call({"op": "close"})
        return

    for step in range(config.requests_per_tenant):
        vm_id, segments = vms[step % len(vms)]
        weights = _zipf_weights(segments, config.zipf_s)
        segment_draw = rng.choice(segments, size=config.batch, p=weights)
        writes = rng.random(config.batch) < config.write_fraction
        await call({
            "op": "access_batch", "vm": vm_id,
            "segments": [int(value) for value in segment_draw],
            "writes": [bool(value) for value in writes],
        })
        report.accesses += config.batch
        if config.churn_every and (step + 1) % config.churn_every == 0:
            victim_vm, _ = vms.pop(0)
            await call({"op": "free", "vm": victim_vm})
            response = await call({"op": "allocate",
                                   "bytes": config.vm_bytes})
            if response.get("ok"):
                vms.append((response["vm"], response["segments"]))
            if not vms:
                break
    await call({"op": "close"})


async def run_loadgen(config: LoadgenConfig,
                      request_fn: RequestFn | None = None,
                      host: str | None = None,
                      port: int | None = None) -> LoadgenReport:
    """Run a campaign against ``request_fn`` or a TCP endpoint.

    Exactly one target must be given: an in-process coroutine (a
    :meth:`DtlServer.handle_request <repro.server.server.DtlServer.\
handle_request>` bound method) or a ``host``/``port`` pair.
    """
    if (request_fn is None) == (host is None or port is None):
        raise ValueError("pass either request_fn or host+port")
    report = LoadgenReport(tenants=config.tenants)
    clients: list[_TcpClient] = []

    async def tenant_task(index: int) -> None:
        if request_fn is not None:
            sink = request_fn
        else:
            client = await _TcpClient.connect(host, port)
            clients.append(client)
            sink = client.request
        await _drive_tenant(config, index, sink, report)

    started = time.perf_counter()
    await asyncio.gather(*(tenant_task(index)
                           for index in range(config.tenants)))
    report.elapsed_s = time.perf_counter() - started
    for client in clients:
        await client.close()
    return report


def run_loadgen_sync(config: LoadgenConfig, host: str,
                     port: int) -> LoadgenReport:
    """Blocking wrapper over :func:`run_loadgen` for CLI use."""
    return asyncio.run(run_loadgen(config, host=host, port=port))


__all__ = [
    "LATENCY_BOUNDS_US",
    "LoadgenConfig",
    "LoadgenReport",
    "run_loadgen",
    "run_loadgen_sync",
]
