"""Average memory access time model (Section 6.1).

Implements the paper's equations (1) and (2):

``AMAT_CXL = CXL_mem_lat + Addr_translation``

``Addr_translation = L1_SMC_hit_time + L1_SMC_miss_ratio x
(L2_SMC_hit_time + L2_SMC_miss_ratio x L2_SMC_miss_penalty)``

With the paper's constants (1-cycle L1 / 7-cycle L2 at 1.5 GHz, miss
ratios 14.7 % / 15.4 %, and a miss penalty of two SRAM accesses plus one
DRAM access) the model yields a 4.2 ns average translation overhead and a
214.2 ns AMAT, inflating CloudSuite execution time by only 0.18 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.segment_cache import SegmentCacheConfig, cycles_to_ns
from repro.core.translation import SRAM_ACCESS_CYCLES
from repro.dram.timing import CXL_MEMORY_LATENCY_NS, NATIVE_DRAM_LATENCY_NS

#: SMC miss ratios the paper measured in simulation (Section 6.1).
PAPER_L1_SMC_MISS_RATIO = 0.147
PAPER_L2_SMC_MISS_RATIO = 0.154


@dataclass(frozen=True)
class AmatModel:
    """Parameterised Section 6.1 AMAT model.

    Attributes:
        cache: SMC latencies (Table 3 / Section 6.1 defaults).
        l1_miss_ratio: L1 SMC miss ratio.
        l2_miss_ratio: L2 SMC miss ratio (local, i.e. of L2 lookups).
        table_dram_latency_ns: Latency of the segment-mapping-table DRAM
            access on the full miss path.
        cxl_latency_ns: Vanilla CXL memory access latency (Table 1).
    """

    cache: SegmentCacheConfig = SegmentCacheConfig()
    l1_miss_ratio: float = PAPER_L1_SMC_MISS_RATIO
    l2_miss_ratio: float = PAPER_L2_SMC_MISS_RATIO
    table_dram_latency_ns: float = NATIVE_DRAM_LATENCY_NS
    cxl_latency_ns: float = CXL_MEMORY_LATENCY_NS

    @property
    def miss_penalty_ns(self) -> float:
        """Full miss path: two SRAM accesses + one DRAM access."""
        sram_ns = cycles_to_ns(2 * SRAM_ACCESS_CYCLES, self.cache.clock_ghz)
        return sram_ns + self.table_dram_latency_ns

    def translation_overhead_ns(self) -> float:
        """Equation (2): average address-translation latency."""
        return self.cache.l1_hit_ns + self.l1_miss_ratio * (
            self.cache.l2_hit_ns
            + self.l2_miss_ratio * self.miss_penalty_ns)

    def amat_ns(self) -> float:
        """Equation (1): CXL AMAT including translation."""
        return self.cxl_latency_ns + self.translation_overhead_ns()

    def max_overhead_ns(self) -> float:
        """Worst case: every lookup walks the full miss path."""
        return (self.cache.l1_hit_ns + self.cache.l2_hit_ns
                + self.miss_penalty_ns)

    def min_overhead_ns(self) -> float:
        """Best case: every lookup hits the L1 SMC."""
        return self.cache.l1_hit_ns

    def execution_time_overhead(self, memory_stall_share: float = 0.09) -> float:
        """Fractional execution-time increase from translation.

        The AMAT grows by ``overhead / cxl_latency``; only the memory-stall
        share of execution time scales with it.  CloudSuite's low MAPKI
        (Table 4) puts that share around 9 %, which reproduces the paper's
        0.18 % figure.
        """
        return (self.translation_overhead_ns()
                / self.cxl_latency_ns) * memory_stall_share


__all__ = [
    "PAPER_L1_SMC_MISS_RATIO",
    "PAPER_L2_SMC_MISS_RATIO",
    "AmatModel",
]
