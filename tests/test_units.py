"""Tests for repro.units helpers."""

import pytest

from repro import units


class TestConstants:
    def test_binary_sizes(self):
        assert units.KIB == 1024
        assert units.MIB == 1024 ** 2
        assert units.GIB == 1024 ** 3
        assert units.TIB == 1024 ** 4

    def test_cacheline(self):
        assert units.CACHELINE_BYTES == 64


class TestConversions:
    def test_ns_to_s(self):
        assert units.ns_to_s(1_000_000_000) == 1.0

    def test_s_to_ns(self):
        assert units.s_to_ns(2.0) == 2_000_000_000

    def test_roundtrip(self):
        assert units.ns_to_s(units.s_to_ns(3.5)) == pytest.approx(3.5)


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 1024, 1 << 40])
    def test_true_for_powers(self, value):
        assert units.is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 1023])
    def test_false_otherwise(self, value):
        assert not units.is_power_of_two(value)

    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (1024, 10)])
    def test_log2_int(self, value, expected):
        assert units.log2_int(value) == expected

    def test_log2_int_rejects_non_power(self):
        with pytest.raises(ValueError):
            units.log2_int(10)


class TestFormatBytes:
    @pytest.mark.parametrize("value,expected", [
        (512, "512B"),
        (2 * units.MIB, "2.0MiB"),
        (units.GIB, "1.0GiB"),
        (3 * units.TIB, "3.0TiB"),
    ])
    def test_formats(self, value, expected):
        assert units.format_bytes(value) == expected
