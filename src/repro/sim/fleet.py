"""Fleet-level study: many pool nodes, one datacenter.

Scales the Figure 12 experiment out: a fleet of memory-pool nodes each
runs its own Azure-like VM schedule through a DTL device, and the
per-node DRAM savings aggregate into the datacenter-level power/TCO
numbers the paper's introduction motivates (DRAM ~38 % of server power,
savings -> TCO).

Node heterogeneity comes from independent trace seeds: some nodes run
hot (little to power down), others sit half-empty — the fleet mean is
what a capacity planner sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tco import TcoModel
from repro.host.scheduler import SchedulerConfig
from repro.sim.powerdown_sim import (PowerDownResult, PowerDownSimConfig,
                                     PowerDownSimulator, energy_savings,
                                     run_comparison)
from repro.workloads.azure import AzureTraceConfig


@dataclass(frozen=True)
class FleetConfig:
    """A fleet of identical pool nodes with independent schedules.

    Attributes:
        num_nodes: Pool nodes simulated (each gets its own VM trace).
        node: Per-node simulation configuration template.
        base_seed: Node ``i`` uses seed ``base_seed + i``.
        tco: Cost model for the datacenter roll-up.
    """

    num_nodes: int = 8
    node: PowerDownSimConfig = field(default_factory=PowerDownSimConfig)
    base_seed: int = 0
    tco: TcoModel = field(default_factory=TcoModel)


@dataclass
class NodeOutcome:
    """One node's paired baseline/DTL results."""

    seed: int
    baseline: PowerDownResult
    dtl: PowerDownResult

    @property
    def energy_savings(self) -> float:
        """This node's DRAM energy saving."""
        return energy_savings(self.baseline, self.dtl)


@dataclass
class FleetResult:
    """Aggregate of every node's outcome."""

    config: FleetConfig
    nodes: list[NodeOutcome]

    @property
    def per_node_savings(self) -> np.ndarray:
        """Each node's DRAM energy saving."""
        return np.array([node.energy_savings for node in self.nodes])

    @property
    def fleet_savings(self) -> float:
        """Energy-weighted fleet-level DRAM saving."""
        baseline = sum(node.baseline.total_energy for node in self.nodes)
        dtl = sum(node.dtl.total_energy for node in self.nodes)
        return 1.0 - dtl / baseline

    def tco_report(self) -> dict[str, float]:
        """Datacenter-level roll-up through the TCO model."""
        return self.config.tco.report(self.fleet_savings)

    def telemetry_totals(self) -> dict[str, float]:
        """Fleet-wide sums of every node's DTL telemetry counters.

        Counters (accesses, SMC hits, migrated segments, power
        transitions, ...) add across nodes; gauges and residency do not,
        so only counters are aggregated here.
        """
        totals: dict[str, float] = {}
        for node in self.nodes:
            for name, value in node.dtl.telemetry.get(
                    "counters", {}).items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def summary_rows(self) -> list[tuple]:
        """Per-node + fleet rows for reporting."""
        rows = [(f"node {node.seed}", f"{node.energy_savings:.1%}",
                 f"{node.dtl.mean_active_ranks:.2f}")
                for node in self.nodes]
        rows.append(("fleet", f"{self.fleet_savings:.1%}", ""))
        return rows


class FleetSimulator:
    """Run the node-level comparison across the whole fleet."""

    def __init__(self, config: FleetConfig | None = None):
        self.config = config or FleetConfig()

    def run(self) -> FleetResult:
        """Simulate every node; returns the aggregate."""
        nodes = []
        template = self.config.node
        for index in range(self.config.num_nodes):
            seed = self.config.base_seed + index
            node_config = PowerDownSimConfig(
                geometry=template.geometry,
                scheduler=template.scheduler,
                azure=template.azure,
                enable_power_down=template.enable_power_down,
                group_granularity=template.group_granularity,
                spare_migration_bandwidth_gbs=
                template.spare_migration_bandwidth_gbs,
                seed=seed)
            baseline, dtl = run_comparison(node_config)
            nodes.append(NodeOutcome(seed=seed, baseline=baseline, dtl=dtl))
        return FleetResult(config=self.config, nodes=nodes)


def quick_fleet(num_nodes: int = 4, duration_s: float = 3600.0,
                num_vms: int = 60, base_seed: int = 0) -> FleetResult:
    """A small fleet on one-hour schedules (for tests and examples)."""
    node = PowerDownSimConfig(
        azure=AzureTraceConfig(num_vms=num_vms, duration_s=duration_s),
        scheduler=SchedulerConfig(duration_s=duration_s))
    return FleetSimulator(FleetConfig(num_nodes=num_nodes, node=node,
                                      base_seed=base_seed)).run()


__all__ = [
    "FleetConfig",
    "NodeOutcome",
    "FleetResult",
    "FleetSimulator",
    "quick_fleet",
]
