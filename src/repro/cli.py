"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro fig1                # Azure schedule memory usage
    python -m repro fig2                # rank-count sensitivity
    python -m repro fig5                # rank-interleaving cost
    python -m repro fig12 [--quick]     # power-down schedule experiment
    python -m repro fig14 [--point 208gb] [--duration 60]
    python -m repro fig15 [--duration 45]
    python -m repro fleet [--quick]     # racked fleet + TCO roll-up
    python -m repro fleet-soak [--quick]  # sharded soak under an RSS ceiling
    python -m repro chaos [--quick]     # fault-injection reliability soak
    python -m repro tournament [--quick]  # policy Pareto tournament
    python -m repro exp --list          # unified experiment registry
    python -m repro exp --name chaos --checkpoint run.ckpt --resume
    python -m repro cache prune --max-mb 256   # cap the on-disk cache
    python -m repro tables              # Tables 5 and 6 + Section 6.1
    python -m repro stats [--json]      # telemetry snapshot of a short run
    python -m repro stats --watch 2 --telemetry srv.json  # tail a server
    python -m repro serve --port 7123 --telemetry srv.json \
        --checkpoint srv.ckpt [--resume]       # online multi-tenant DTL
    python -m repro loadgen --tenants 8 --port 7123  # drive a server
    python -m repro all [--quick]       # everything, JSON to --output

Each subcommand prints a paper-vs-measured table; ``--output results.json``
additionally writes machine-readable records.

The heavy simulations dispatch through the unified experiment registry
(:mod:`repro.sim.experiments`) and the parallel executor
(:mod:`repro.exec`): ``--workers N`` (or ``REPRO_EXEC_WORKERS``) fans
multi-point commands out over processes, and a per-invocation result
cache keeps ``repro all`` from simulating the same capacity point twice
(fig14 and fig15 share their self-refresh runs).

``repro exp --checkpoint PATH`` runs the named experiment through the
stepping protocol (:mod:`repro.checkpoint`), persisting its state every
``--checkpoint-every`` units of work; ``--resume`` restarts a preempted
run from the saved state and is bit-identical to the uninterrupted run.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Any, Callable

import numpy as np

from repro.analysis import (AmatModel, CONTROLLER_384GB, CONTROLLER_4TB,
                            MODEL_384GB, MODEL_4TB)
from repro.exec import ExecConfig, ResultCache
from repro.faults import ChaosSoakConfig, armed
from repro.host.scheduler import SchedulerConfig, VmScheduler
from repro.sim.combined import figure15_summary
from repro.sim.experiments import EXPERIMENTS, run_experiments
from repro.sim.fleet import FleetSimulator, RackConfig
from repro.sim.fleet_soak import (FleetSoakConfig, FleetSoakExperiment,
                                  quick_soak_config)
from repro.sim.figures import (ascii_chart, figure1_series,
                               figure12a_series, figure14_series)
from repro.sim.perf_model import PerformanceModel
from repro.sim.powerdown_sim import (PowerDownSimConfig,
                                     background_power_savings, energy_savings,
                                     power_savings)
from repro.sim.results import (ExperimentRecord, flatten_powerdown,
                               flatten_selfrefresh, flatten_telemetry,
                               render_table, save_records)
from repro.sim.selfrefresh_sim import PAPER_CAPACITY_POINTS, config_for_point
from repro.units import GIB, format_bytes
from repro.workloads.azure import AzureTraceConfig, generate_vm_trace
from repro.workloads.validation import validate_workloads

#: Results computed earlier in this invocation (e.g. ``repro all``
#: warming every heavy simulation in parallel before the subcommands
#: format them; fig15 reusing fig14's self-refresh runs).
_SESSION_CACHE = ResultCache()


def _print(title: str, rows: list[tuple], header: tuple = ()) -> None:
    print(f"\n=== {title} ===")
    print(render_table(rows, header))


def _exec_config(args: argparse.Namespace) -> ExecConfig:
    """The executor config the CLI flags ask for."""
    return ExecConfig(workers=getattr(args, "workers", None))


def _run_experiments(requests: list[tuple[str, Any]],
                     args: argparse.Namespace) -> list[Any]:
    """Registry dispatch with the session cache; raises on failure."""
    outcomes = run_experiments(requests, exec_config=_exec_config(args),
                               cache=_SESSION_CACHE)
    return [outcome.unwrap() for outcome in outcomes]


def _run_experiment(name: str, config: Any,
                    args: argparse.Namespace) -> Any:
    """One cached experiment run."""
    return _run_experiments([(name, config)], args)[0]


# -- subcommands -----------------------------------------------------------------


def cmd_fig1(args: argparse.Namespace) -> list[ExperimentRecord]:
    result = VmScheduler().run(generate_vm_trace(seed=args.seed))
    fractions = [sample.memory_fraction(result.config.memory_bytes)
                 for sample in result.samples]
    mean = float(np.mean(fractions))
    _print("Figure 1: Azure schedule memory usage",
           [("mean usage", f"{mean:.1%}", "paper: <50%"),
            ("peak usage", f"{max(fractions):.1%}", ""),
            ("VMs admitted", str(result.admitted), "400 offered")],
           header=("metric", "measured", "paper"))
    if args.plot:
        print()
        print(ascii_chart(figure1_series(seed=args.seed)))
    return [ExperimentRecord("fig1", {"mean_usage": mean,
                                      "peak_usage": max(fractions)},
                             {"mean_usage": "<0.5"})]


def cmd_fig2(args: argparse.Namespace) -> list[ExperimentRecord]:
    model = PerformanceModel()
    rows = [(f"{ranks} ranks/ch",
             f"{model.mean_rank_sweep_slowdown(ranks):+.2%}")
            for ranks in (8, 6, 4, 2)]
    rows.append(("paper @2", "+0.7%"))
    _print("Figure 2: slowdown vs active ranks", rows,
           header=("config", "slowdown"))
    return [ExperimentRecord(
        "fig2",
        {f"slowdown_{r}ranks": model.mean_rank_sweep_slowdown(r)
         for r in (8, 6, 4, 2)},
        {"slowdown_2ranks": 0.007})]


def cmd_fig5(args: argparse.Namespace) -> list[ExperimentRecord]:
    model = PerformanceModel()
    local = model.mean_interleaving_slowdown(cxl=False)
    cxl = model.mean_interleaving_slowdown(cxl=True)
    _print("Figure 5: rank-interleaving off",
           [("local DRAM", f"{local:+.2%}", "+1.7%"),
            ("CXL memory", f"{cxl:+.2%}", "+1.4%")],
           header=("latency", "measured", "paper"))
    return [ExperimentRecord("fig5", {"local": local, "cxl": cxl},
                             {"local": 0.017, "cxl": 0.014})]


def _fig12_config(args: argparse.Namespace) -> PowerDownSimConfig:
    if args.quick:
        return PowerDownSimConfig(
            azure=AzureTraceConfig(num_vms=80, duration_s=3600.0),
            scheduler=SchedulerConfig(duration_s=3600.0), seed=args.seed)
    return PowerDownSimConfig(seed=args.seed)


def _fig14_points(args: argparse.Namespace) -> list[str]:
    return [args.point] if args.point else sorted(PAPER_CAPACITY_POINTS)


def _fig14_config(point: str, args: argparse.Namespace):
    return config_for_point(point, seed=args.seed,
                            duration_s=args.duration)


def cmd_fig12(args: argparse.Namespace) -> list[ExperimentRecord]:
    config = _fig12_config(args)
    print("Running the VM-schedule power-down simulation "
          f"({'1h quick' if args.quick else 'full 6h'})...")
    pair = _run_experiment("powerdown_comparison", config, args)
    baseline, dtl = pair.baseline, pair.dtl
    _print("Figures 12-13: rank-level power-down",
           [("energy savings", f"{energy_savings(baseline, dtl):.1%}",
             "31.6%"),
            ("power savings", f"{power_savings(baseline, dtl):.1%}",
             "32.7%"),
            ("background savings",
             f"{background_power_savings(baseline, dtl):.1%}", "35.3%"),
            ("exec-time cost", f"{dtl.execution_time_factor - 1:.2%}",
             "1.6%"),
            ("migrated", format_bytes(dtl.migrated_bytes), "")],
           header=("metric", "measured", "paper"))
    record = ExperimentRecord(
        "fig12", {"energy_savings": energy_savings(baseline, dtl),
                  "power_savings": power_savings(baseline, dtl),
                  "background_savings":
                      background_power_savings(baseline, dtl),
                  **{f"dtl_{k}": v
                     for k, v in flatten_powerdown(dtl).items()}},
        {"energy_savings": 0.316, "power_savings": 0.327,
         "background_savings": 0.353})
    if args.plot:
        print()
        print(ascii_chart(figure12a_series(dtl), label="total"))
    return [record]


def cmd_fig14(args: argparse.Namespace) -> list[ExperimentRecord]:
    points = _fig14_points(args)
    paper = {"208gb": "20.3%", "224gb": "mixed", "240gb": "fails",
             "304gb": "14.9%"}
    workers = _exec_config(args).resolved_workers()
    print(f"Simulating {len(points)} capacity point(s) "
          f"({args.duration:.0f}s replay, {workers} worker(s))...")
    results = _run_experiments(
        [("selfrefresh", _fig14_config(point, args)) for point in points],
        args)
    records = []
    rows = []
    for point, result in zip(points, results):
        warmup = (f"{result.warmup_s:.1f}s" if result.ever_stable
                  else "never")
        rows.append((point, f"{result.stable_savings:.1%}", warmup,
                     paper[point]))
        records.append(ExperimentRecord(
            f"fig14_{point}", flatten_selfrefresh(result),
            {"paper": paper[point]}))
        if args.plot:
            print()
            print(ascii_chart(figure14_series(result), label="savings"))
    _print("Figure 14: hotness-aware self-refresh", rows,
           header=("point", "stable savings", "warmup", "paper"))
    return records


def cmd_fig15(args: argparse.Namespace) -> list[ExperimentRecord]:
    print("Computing the combined Figure 15 summary...")
    summary = figure15_summary(
        seed=args.seed, duration_s=args.duration,
        run=lambda config: _run_experiment("selfrefresh", config, args))
    rows = [(entry.point, f"{entry.powerdown_savings:.1%}",
             f"{entry.selfrefresh_additional:.1%}",
             f"{entry.total_savings:.1%}") for entry in summary]
    rows.append(("paper", "20.2%", "-", "25.6-32.3% (6-rank)"))
    _print("Figure 15: combined savings", rows,
           header=("point", "power-down", "+self-refresh", "total"))
    return [ExperimentRecord(
        f"fig15_{entry.point}",
        {"powerdown": entry.powerdown_savings,
         "selfrefresh_additional": entry.selfrefresh_additional,
         "total": entry.total_savings}) for entry in summary]


def _fleet_config(args: argparse.Namespace) -> RackConfig:
    nodes = 2 if args.quick else 6
    node = PowerDownSimConfig(
        azure=AzureTraceConfig(num_vms=60, duration_s=3600.0),
        scheduler=SchedulerConfig(duration_s=3600.0))
    return RackConfig(num_nodes=nodes, node=node, base_seed=args.seed,
                      shard_size=2, hosts_per_rack=2)


def cmd_fleet(args: argparse.Namespace) -> list[ExperimentRecord]:
    config = _fleet_config(args)
    workers = _exec_config(args).resolved_workers()
    print(f"Simulating a {config.num_nodes}-node fleet "
          f"({config.hosts_per_rack} hosts/rack, 1-hour schedules each, "
          f"{workers} worker(s))...")
    fleet = FleetSimulator(config, exec_config=_exec_config(args)).run()
    rows = fleet.summary_rows()
    _print("Fleet-level DRAM savings", rows,
           header=("node", "savings", "mean ranks/ch"))
    rack = fleet.rack_report()
    _print("Rack-level CXL pool contention", [
        ("racks", f"{rack['num_racks']:.0f}", ""),
        ("contended savings", f"{rack['contended_fleet_savings']:.1%}",
         f"uncontended {rack['fleet_savings']:.1%}"),
        ("mean pool slowdown", f"{rack['mean_pool_slowdown']:.4f}x", ""),
        ("max pool utilization", f"{rack['max_pool_utilization']:.1%}",
         f"{rack['saturated_racks']:.0f} saturated"),
    ], header=("metric", "value", "note"))
    tco = fleet.tco_report()
    _print("Datacenter TCO roll-up", [
        ("server power saved", f"{tco['server_power_saved_w']:.1f} W",
         f"({tco['server_share_saved']:.1%} of server)"),
        ("facility power", f"{tco['fleet_power_saved_kw']:.0f} kW", ""),
        ("annual cost", f"${tco['annual_cost_saved_usd']:,.0f}", ""),
    ], header=("metric", "value", "note"))
    return [fleet.to_record()]


def cmd_fleet_soak(args: argparse.Namespace) -> list[ExperimentRecord]:
    """Sharded fleet soak: RSS ceiling + serial/parallel bit-identity."""
    if args.quick:
        config = quick_soak_config()
    else:
        config = FleetSoakConfig()
    if args.workers:
        config = dataclasses.replace(config, workers=args.workers)
    print(f"Fleet soak: {config.num_nodes} nodes in shards of "
          f"{config.shard_size}, RSS ceiling {config.rss_ceiling_mb:.0f} "
          f"MiB, parallel verify with {config.workers} worker(s)...")
    result = FleetSoakExperiment(config).run()
    parallel_wall = (f"{result.parallel_wall_s:.1f}s"
                     if result.parallel_wall_s is not None else "skipped")
    _print("Fleet soak", [
        ("fleet savings", f"{result.fleet_savings:.3%}", ""),
        ("bit-identical", str(result.bit_identical),
         "sharded-serial vs sharded-parallel"),
        ("peak RSS", f"{result.peak_rss_mb:.0f} MiB",
         f"ceiling {result.config.rss_ceiling_mb:.0f} MiB"),
        ("nodes ok / failed", f"{result.nodes_ok} / {result.nodes_failed}",
         ""),
        ("serial / parallel wall", f"{result.serial_wall_s:.1f}s / "
         f"{parallel_wall}", ""),
        ("bytes shipped", f"{result.result_bytes:,.0f}",
         f"{result.result_bytes / max(result.nodes_ok, 1):,.0f} per node"),
    ], header=("metric", "value", "note"))
    if not result.ok:
        raise SystemExit("fleet soak FAILED: "
                         + ("RSS over ceiling " if not result.within_ceiling
                            else "")
                         + ("savings not bit-identical"
                            if not result.bit_identical else ""))
    print("\nSoak passed: within memory ceiling, bit-identical savings.")
    return [result.to_record()]


def _quickstart_snapshot():
    """The quickstart scenario's telemetry snapshot (stats command)."""
    from repro.core.config import DtlConfig
    from repro.core.controller import DtlController
    from repro.dram.geometry import DramGeometry
    from repro.units import MIB

    controller = DtlController(DtlConfig(
        geometry=DramGeometry(rank_bytes=1 * GIB), au_bytes=512 * MIB))
    vm_a = controller.allocate_vm(0, 4 * GIB, now_s=0.0)
    vm_b = controller.allocate_vm(1, 2 * GIB, now_s=1.0)
    # One cold streaming pass, then a hot working set (SMC hits).
    for au_id in vm_a.au_ids:
        for offset in range(16):
            controller.access(0, controller.hpa_of(au_id, offset),
                              is_write=(offset % 4 == 0))
    hot = [controller.hpa_of(vm_b.au_ids[0], offset)
           for offset in range(16)]
    for _ in range(4):
        for hpa in hot:
            controller.access(1, hpa)
    controller.deallocate_vm(vm_a, now_s=100.0)
    controller.end_window()
    return controller.telemetry_snapshot(now_s=200.0)


def _watch_stats(args: argparse.Namespace) -> None:
    """Re-print a telemetry snapshot every ``--watch`` seconds.

    With ``--telemetry PATH`` the watch tails a live server's exporter
    file (already in :func:`~repro.server.protocol.render_snapshot`
    form); otherwise it re-renders the quickstart scenario.  Bounded by
    ``--iterations`` when given (CI/smoke), else runs until Ctrl-C.
    """
    import itertools
    import time as time_module

    from repro.server.protocol import render_snapshot
    iterations = (range(args.iterations) if args.iterations
                  else itertools.count())
    try:
        for index in iterations:
            if index:
                time_module.sleep(args.watch)
            if args.telemetry:
                try:
                    with open(args.telemetry) as handle:
                        document = handle.read().rstrip()
                except OSError as exc:
                    document = f"(telemetry not readable yet: {exc})"
            else:
                document = render_snapshot(_quickstart_snapshot())
            print(document, flush=True)
    except KeyboardInterrupt:
        pass


def cmd_stats(args: argparse.Namespace) -> list[ExperimentRecord]:
    """Dump (or ``--watch``: keep re-printing) a telemetry snapshot."""
    if args.watch:
        _watch_stats(args)
        return []
    snapshot = _quickstart_snapshot()
    if args.json:
        print(snapshot.to_json(indent=2))
    else:
        data = snapshot.to_dict()
        rows = [(name, f"{value:g}")
                for name, value in sorted(data["counters"].items())]
        _print("Telemetry counters", rows, header=("counter", "value"))
        gauges = [(name, f"{value:.4g}")
                  for name, value in sorted(data["gauges"].items())
                  if not name.startswith("dram.rank.")]
        _print("Gauges", gauges, header=("gauge", "value"))
        residency = data["detail"]["rank_residency_s"]
        rank_rows = [(key, *(f"{states.get(state, 0.0):.1f}"
                             for state in ("standby", "mpsm",
                                           "self_refresh")))
                     for key, states in sorted(residency.items())]
        _print("Per-rank residency (s)", rank_rows,
               header=("rank", "standby", "mpsm", "self_refresh"))
        events = [(kind, str(count))
                  for kind, count in sorted(data["events"].items())]
        _print("Trace events", events, header=("event", "count"))
    return [ExperimentRecord("stats", flatten_telemetry(
        snapshot.to_dict()))]


def cmd_serve(args: argparse.Namespace) -> list[ExperimentRecord]:
    """Run the online multi-tenant DTL service until SIGTERM/SIGINT."""
    from repro.server import ServerConfig, serve_forever
    config = ServerConfig(
        host=args.host, port=args.port, num_shards=args.shards,
        chaos=not args.no_chaos, chaos_seed=args.seed,
        telemetry_path=args.telemetry,
        telemetry_interval_s=args.telemetry_interval,
        checkpoint_path=args.checkpoint, seed=args.seed)
    code = serve_forever(config, resume=args.resume)
    if code:
        raise SystemExit(code)
    return []


def cmd_loadgen(args: argparse.Namespace) -> list[ExperimentRecord]:
    """Drive a running server with N concurrent tenant streams."""
    from repro.server import LoadgenConfig, run_loadgen_sync
    config = LoadgenConfig(tenants=args.tenants,
                           requests_per_tenant=args.requests,
                           batch=args.batch, seed=args.seed)
    # Banner to stderr so `--json` output stays machine-parseable.
    print(f"loadgen: {config.tenants} tenant(s) x "
          f"{config.requests_per_tenant} batches of {config.batch} "
          f"against {args.host}:{args.port}...", file=sys.stderr)
    report = run_loadgen_sync(config, args.host, args.port)
    if args.json:
        print(report.to_json())
    else:
        _print("Load generator", [
            ("requests", str(report.requests),
             f"{report.requests_per_s:,.0f}/s"),
            ("accesses", str(report.accesses),
             f"{report.accesses_per_s:,.0f}/s"),
            ("ok / rejected", f"{report.ok} / "
             f"{report.requests - report.ok}",
             ", ".join(f"{code}={count}" for code, count
                       in sorted(report.rejected.items())) or "-"),
            ("latency p50/p95/p99",
             f"{report.percentile(50):,.0f} / "
             f"{report.percentile(95):,.0f} / "
             f"{report.percentile(99):,.0f} us", ""),
        ], header=("metric", "value", "note"))
    summary = report.to_dict()
    summary.pop("latency_us", None)
    return [ExperimentRecord("loadgen", summary)]


def cmd_tables(args: argparse.Namespace) -> list[ExperimentRecord]:
    rows = [(name, format_bytes(size))
            for name, size in MODEL_384GB.report().items()]
    _print("Table 5 (384 GB column)", rows, header=("structure", "size"))
    rows = [(name, format_bytes(size))
            for name, size in MODEL_4TB.report().items()]
    _print("Table 5 (4 TB column)", rows, header=("structure", "size"))
    small, large = CONTROLLER_384GB.report(), CONTROLLER_4TB.report()
    _print("Table 6: controller @7nm",
           [("power", f"{small['total_mw']:.1f} mW",
             f"{large['total_mw']:.1f} mW"),
            ("area", f"{small['total_mm2']:.3f} mm2",
             f"{large['total_mm2']:.3f} mm2")],
           header=("metric", "384GB", "4TB"))
    amat = AmatModel()
    _print("Section 6.1: AMAT",
           [("overhead", f"{amat.translation_overhead_ns():.2f} ns",
             "4.2 ns"),
            ("AMAT", f"{amat.amat_ns():.1f} ns", "214.2 ns")],
           header=("metric", "measured", "paper"))
    return [ExperimentRecord("tables", {
        "table5_384gb": MODEL_384GB.report(),
        "table5_4tb": MODEL_4TB.report(),
        "table6_384gb": small, "table6_4tb": large,
        "amat_ns": amat.amat_ns()})]


def cmd_validate(args: argparse.Namespace) -> list[ExperimentRecord]:
    print("Validating workload calibration against Table 4 / Fig. 9 / "
          "Fig. 10...")
    result = validate_workloads()
    rows = [(check.name, f"{check.mapki:.2f}/{check.mapki_target:.1f}",
             f"{check.large_stride_share:.0%}", f"{check.cold_2mb:.0%}",
             f"{check.cold_4mb:.0%}") for check in result.checks]
    rows.append(("mean cold", "", "", f"{result.mean_cold_2mb:.1%} (61.5%)",
                 f"{result.mean_cold_4mb:.1%} (33.2%)"))
    _print("Workload calibration", rows,
           header=("workload", "MAPKI m/t", ">=4MB", "cold@2M", "cold@4M"))
    problems = result.problems()
    if problems:
        print("\nCALIBRATION PROBLEMS:")
        for problem in problems:
            print(f"  - {problem}")
    else:
        print("\nAll workloads within calibration tolerances.")
    return [ExperimentRecord("validate", {
        "max_mapki_error": result.max_mapki_error,
        "mean_cold_2mb": result.mean_cold_2mb,
        "mean_cold_4mb": result.mean_cold_4mb,
        "problems": problems})]


def _run_checkpointed(spec: Any, args: argparse.Namespace) -> Any:
    """Run one experiment through the stepping protocol with persistence."""
    import os

    from repro.sim.stepping import make_stepper, run_with_checkpoints
    resuming = args.resume and os.path.exists(args.checkpoint)
    every = args.checkpoint_every
    print(f"{'Resuming' if resuming else 'Running'} {spec.name} with "
          f"checkpoints at {args.checkpoint!r} "
          f"({'every ' + str(every) + ' steps' if every else 'final only'})"
          "...")
    stepper = make_stepper(spec.name, spec.tiny_config())
    return run_with_checkpoints(stepper, path=args.checkpoint,
                                every=every, resume=args.resume)


def cmd_exp(args: argparse.Namespace) -> list[ExperimentRecord]:
    """Run a registered experiment by name (on its smoke-test config)."""
    if args.list or not args.name:
        rows = [(spec.name, spec.config_type.__name__, spec.summary)
                for spec in EXPERIMENTS.values()]
        _print("Experiment registry", sorted(rows),
               header=("name", "config", "summary"))
        return []
    spec = EXPERIMENTS.get(args.name)
    if spec is None:
        raise SystemExit(f"unknown experiment {args.name!r}; "
                         f"choices: {sorted(EXPERIMENTS)}")
    if args.checkpoint:
        result = _run_checkpointed(spec, args)
    else:
        print(f"Running {spec.name} on its smoke-test config...")
        result = _run_experiment(spec.name, spec.tiny_config(), args)
    record = result.to_record()
    rows = [(key, f"{value:.6g}" if isinstance(value, float) else str(value))
            for key, value in sorted(record.metrics.items())]
    _print(f"Experiment: {spec.name}", rows, header=("metric", "value"))
    return [record]


def cmd_chaos(args: argparse.Namespace) -> list[ExperimentRecord]:
    """Fault-injection soak: escalating faults + consistency audits."""
    config = ChaosSoakConfig(seed=args.seed)
    if args.quick:
        config = config.replace(levels=2, batches_per_phase=4,
                                batch_size=32)
    plan = config.base_plan()
    print(f"Chaos soak: plan {plan.name!r} ({len(plan.specs)} fault "
          f"specs), {config.levels} escalation level(s)...")
    # Arm the plan ambiently so it participates in the result-cache key
    # (a cached fault-free run must never answer for a faulted one).
    with armed(plan):
        result = _run_experiment("chaos", config, args)
    report = result.report
    rows: list[tuple] = [
        ("faults injected", str(report.injected_total)),
        ("faults detected", str(report.detected)),
        ("faults recovered", str(report.recovered)),
        ("ecc corrected / uncorrected",
         f"{report.ecc_corrected} / {report.ecc_uncorrected}"),
        ("power-exit failures", str(report.power_exit_failures)),
        ("data-loss events", str(report.data_loss_events)),
        ("checker audits", str(report.checker_audits)),
        ("checker violations", str(len(report.checker_violations))),
    ]
    rows.extend((f"injected @ {point}", str(count))
                for point, count in sorted(report.injected.items()))
    if report.cxl_retry_counts:
        retries = ", ".join(f"{n}x{c}" for n, c in
                            sorted(report.cxl_retry_counts.items()))
        rows.append(("cxl retry histogram", retries))
    _print(f"Chaos soak reliability report ({plan.name})", rows,
           header=("metric", "value"))
    if report.checker_violations:
        print("\nCONSISTENCY VIOLATIONS:")
        for violation in report.checker_violations[:10]:
            print(f"  - {violation}")
        raise SystemExit(1)
    print(f"\nSoak passed: {report.checker_audits} audits, "
          "zero invariant violations, zero data loss.")
    return [result.to_record()]


def cmd_tournament(args: argparse.Namespace) -> list[ExperimentRecord]:
    """Policy tournament: savings/overhead Pareto front over the grid."""
    from repro.sim.tournament import (PolicyTournament, TournamentConfig,
                                      quick_tournament_config)
    config = (quick_tournament_config(seed=args.seed) if args.quick
              else TournamentConfig(seed=args.seed))
    cells = len(config.policies) * len(config.workloads)
    workers = _exec_config(args).resolved_workers()
    print(f"Tournament: {len(config.policies)} policies x "
          f"{len(config.workloads)} workload mixes = {cells} cells "
          f"({config.duration_s:.0f}s each, {workers} worker(s))...")
    result = PolicyTournament(config).run(exec_config=_exec_config(args),
                                          cache=_SESSION_CACHE)
    front = {(cell.policy, cell.workload) for cell in result.pareto_front()}
    rows = [(cell.policy, cell.workload, f"{cell.savings:.2%}",
             f"{cell.overhead:.4f}", str(cell.sr_entries),
             format_bytes(cell.migrated_bytes),
             "*" if (cell.policy, cell.workload) in front else "")
            for cell in result.cells]
    _print("Policy tournament (energy savings vs performance overhead)",
           rows, header=("policy", "mix", "savings", "overhead",
                         "sr entries", "migrated", "pareto"))
    mean_rows = [(policy, f"{means[0]:.2%}", f"{means[1]:.4f}")
                 for policy, means in result.policy_means().items()]
    _print("Per-policy means", mean_rows,
           header=("policy", "mean savings", "mean overhead"))
    for policy, label, error in result.failures:
        print(f"FAILED cell {policy}/{label}: {error}")
    if result.failures:
        raise SystemExit(1)
    return [result.to_record()]


def cmd_cache(args: argparse.Namespace) -> list[ExperimentRecord]:
    """Inspect or prune the on-disk result cache (REPRO_EXEC_CACHE_DIR)."""
    from repro.exec import EXEC_METRICS
    cache = ResultCache()
    if cache.directory is None:
        print("Result cache is memory-only: set REPRO_EXEC_CACHE_DIR to "
              "enable a persistent on-disk cache.")
        return []
    action = args.action or "stats"
    total = cache.total_bytes()
    evicted = 0
    if action == "prune":
        max_bytes = int(args.max_mb * 1024 * 1024)
        evicted = cache.prune(max_bytes)
        EXEC_METRICS.counter("exec.cache_evictions").inc(evicted)
        total = cache.total_bytes()
    elif action != "stats":
        raise SystemExit(f"unknown cache action {action!r}; "
                         "choices: ['prune', 'stats']")
    EXEC_METRICS.gauge("exec.cache_bytes").set(total)
    rows = [("directory", str(cache.directory), ""),
            ("entries", str(len(cache)), ""),
            ("size", format_bytes(total), "")]
    if action == "prune":
        rows.append(("evicted", str(evicted),
                     f"LRU by mtime, cap {args.max_mb:g} MiB"))
    _print("Result cache", rows, header=("metric", "value", "note"))
    return [ExperimentRecord("cache", {"cache_bytes": total,
                                       "entries": len(cache),
                                       "evicted": evicted})]


def cmd_all(args: argparse.Namespace) -> list[ExperimentRecord]:
    # Warm the session cache: every heavy simulation the subcommands
    # below will ask for, fanned out in one executor batch.  The
    # subcommands then format cache hits; fig15 additionally reuses
    # fig14's self-refresh runs outright.
    heavy: list[tuple[str, Any]] = [
        ("powerdown_comparison", _fig12_config(args))]
    heavy.extend(("selfrefresh", _fig14_config(point, args))
                 for point in _fig14_points(args))
    workers = _exec_config(args).resolved_workers()
    print(f"Precomputing {len(heavy)} simulations ({workers} worker(s))...")
    run_experiments(heavy, exec_config=_exec_config(args),
                    cache=_SESSION_CACHE)  # failures resurface below
    records = []
    for command in (cmd_fig1, cmd_fig2, cmd_fig5, cmd_fig12, cmd_fig14,
                    cmd_fig15, cmd_tables, cmd_stats):
        records.extend(command(args))
    return records


COMMANDS: dict[str, Callable[[argparse.Namespace],
                             list[ExperimentRecord]]] = {
    "fig1": cmd_fig1,
    "fig2": cmd_fig2,
    "fig5": cmd_fig5,
    "fig12": cmd_fig12,
    "fig14": cmd_fig14,
    "fig15": cmd_fig15,
    "fleet": cmd_fleet,
    "fleet-soak": cmd_fleet_soak,
    "chaos": cmd_chaos,
    "tournament": cmd_tournament,
    "exp": cmd_exp,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
    "cache": cmd_cache,
    "validate": cmd_validate,
    "tables": cmd_tables,
    "stats": cmd_stats,
    "all": cmd_all,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the DTL paper's experiments (ISCA 2023).")
    parser.add_argument("command", choices=sorted(COMMANDS),
                        help="experiment to run")
    parser.add_argument("action", nargs="?", default=None,
                        help="subaction for 'cache' (prune|stats)")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed (default 0)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the fig12 schedule to one hour")
    parser.add_argument("--point", choices=sorted(PAPER_CAPACITY_POINTS),
                        default=None,
                        help="single fig14 capacity point")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="fig14/fig15 simulated seconds (default 60)")
    parser.add_argument("--plot", action="store_true",
                        help="render ASCII charts for timeseries figures")
    parser.add_argument("--workers", type=int, default=None,
                        help="executor processes (default: "
                             "REPRO_EXEC_WORKERS, else serial)")
    parser.add_argument("--name", choices=sorted(EXPERIMENTS), default=None,
                        help="experiment to run with 'exp'")
    parser.add_argument("--list", action="store_true",
                        help="list the experiment registry with 'exp'")
    parser.add_argument("--json", action="store_true",
                        help="emit the stats snapshot / loadgen report "
                             "as raw JSON")
    parser.add_argument("--watch", type=float, default=0.0, metavar="N",
                        help="'stats': re-print the snapshot every N "
                             "seconds (with --telemetry PATH, tail a "
                             "server's exporter file)")
    parser.add_argument("--iterations", type=int, default=0,
                        help="bound --watch to this many prints "
                             "(default: until Ctrl-C)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="serve/loadgen TCP host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7123,
                        help="serve/loadgen TCP port (default 7123)")
    parser.add_argument("--shards", type=int, default=2,
                        help="'serve': controller shards (default 2)")
    parser.add_argument("--no-chaos", action="store_true",
                        help="'serve': disarm the always-on fault "
                             "injector")
    parser.add_argument("--telemetry", default=None, metavar="PATH",
                        help="'serve': exporter output file; "
                             "'stats --watch': file to tail")
    parser.add_argument("--telemetry-interval", type=float, default=5.0,
                        help="'serve': exporter period in seconds "
                             "(default 5)")
    parser.add_argument("--tenants", type=int, default=8,
                        help="'loadgen': concurrent tenants (default 8)")
    parser.add_argument("--requests", type=int, default=50,
                        help="'loadgen': access batches per tenant "
                             "(default 50)")
    parser.add_argument("--batch", type=int, default=256,
                        help="'loadgen': accesses per batch (default 256)")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="'exp': persist stepped run state to PATH; "
                             "'serve': drain checkpoint path")
    parser.add_argument("--resume", action="store_true",
                        help="resume 'exp'/'serve' from the --checkpoint "
                             "file when it exists")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        metavar="N",
                        help="save every N units of work "
                             "(default: only on completion)")
    parser.add_argument("--max-mb", type=float, default=256.0,
                        help="size cap for 'cache prune' (default 256)")
    parser.add_argument("--output", default=None,
                        help="write JSON records to this path")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    records = COMMANDS[args.command](args)
    if args.output:
        path = save_records(records, args.output)
        print(f"\nWrote {len(records)} records to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
