"""Hotness-aware self-refresh (Section 3.4).

Per channel, the policy runs a small state machine:

``PROFILING`` — at entry, the rank with the fewest accesses in the last
0.5 ms window becomes the *victim rank*.  A **migration table** (one entry
per segment: access bit + planned rank/segment) simulates a remapping plan:
every access to a segment whose *planned* location is the victim rank
triggers a CLOCK-style table update that plans the hot segment out of the
victim rank and a cold one in, and resets the profiling timer.  The *target
segment pointer* (TSP) walks the current target rank like the CLOCK hand,
clearing access bits until it finds a cold entry; the walk is bounded (the
paper bounds it at 40 ns, shorter than one DRAM access) and on timeout the
TSP moves to the next target rank round-robin.

``MIGRATING`` — once the hypothetical victim rank has been quiet for the
profiling threshold (50 ms), the planned swaps are executed: data moves
through the migration engine, HPA-to-DPA mappings are updated, and SMC
entries invalidated.

``SELF_REFRESH`` — the victim rank sits in self-refresh until one of its
segments is accessed, which wakes it (exit penalty) and restarts profiling.

The migration table is held in NumPy arrays (one slot per device segment)
so the trace-driven simulator can apply whole access windows at once
(:meth:`HotnessSelfRefreshPolicy.on_batch`); the per-access path
(:meth:`~HotnessSelfRefreshPolicy.on_access`) applies exactly the same
updates one at a time.

Victim-block choice, cold-partner search order, and the demotion depth at
SR entry are delegated to a pluggable :class:`repro.policies.Policy`; the
default :class:`~repro.policies.PaperPolicy` (fewest-window-accesses
victim, round-robin CLOCK search, always SELF_REFRESH) reproduces the
published behaviour bit-for-bit.  Policies see the migration table only
through the bounded :class:`_TspSearch` surface — never the arrays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.addressing import DeviceAddressLayout, SegmentLocation
from repro.core.allocator import SegmentAllocator
from repro.core.migration import MigrationEngine
from repro.core.tables import TranslationTables
from repro.core.translation import TranslationEngine
from repro.dram.device import DramDevice
from repro.dram.power import PowerState
from repro.policies import (
    DEFAULT_PROFILING_THRESHOLD_NS,
    DEFAULT_REVISIT_DELAY_NS,
    DEFAULT_TSP_SCAN_LIMIT,
    DEFAULT_WINDOW_NS,
    DemotionLevel,
    Policy,
    PolicyConfig,
    RankStats,
    make_policy,
)
from repro.telemetry import EventKind, EventTrace, MetricsRegistry


class ChannelPhase(enum.Enum):
    """Self-refresh state machine phases (per channel)."""

    IDLE = "idle"
    PROFILING = "profiling"
    SELF_REFRESH = "self_refresh"


@dataclass
class SelfRefreshEvent:
    """Record of one channel-level event for analysis."""

    time_ns: float
    channel: int
    kind: str  # "enter_sr" | "exit_sr" | "victim_selected"
    victim_rank: int
    swaps: int = 0
    migrated_bytes: int = 0


@dataclass
class _ChannelState:
    phase: ChannelPhase = ChannelPhase.IDLE
    victim_rank: int = -1
    victim_ranks: tuple[int, ...] = ()
    quiet_since_ns: float = 0.0
    window_counts: dict[int, int] = field(default_factory=dict)
    last_window_counts: dict[int, int] = field(default_factory=dict)
    target_ranks: list[int] = field(default_factory=list)
    target_cursor: int = 0
    tsp: dict[int, int] = field(default_factory=dict)
    last_sr_entry_ns: float = 0.0


class _TspSearch:
    """The :class:`repro.policies.ColdSearch` surface over one channel's
    migration table.

    Every scan stays bounded by ``tsp_scan_limit`` and clears access bits
    in passing, whichever order the policy walks the target ranks in.
    """

    __slots__ = ("_host", "_channel", "_state")

    def __init__(self, host: "HotnessSelfRefreshPolicy", channel: int,
                 state: _ChannelState):
        self._host = host
        self._channel = channel
        self._state = state

    @property
    def target_ranks(self) -> list[int]:
        return list(self._state.target_ranks)

    def window_count(self, rank: int) -> int:
        return self._state.window_counts.get(rank, 0)

    def last_window_count(self, rank: int) -> int:
        return self._state.last_window_counts.get(rank, 0)

    def clock_scan(self) -> int | None:
        return self._host._tsp_find_cold(self._channel, self._state)

    def scan_rank(self, rank: int) -> int | None:
        return self._host._tsp_scan_rank(self._channel, self._state, rank)


class HotnessSelfRefreshPolicy:
    """Per-channel hotness-aware self-refresh controller."""

    def __init__(self, device: DramDevice, allocator: SegmentAllocator,
                 tables: TranslationTables,
                 translation: TranslationEngine,
                 migration: MigrationEngine,
                 config: PolicyConfig | None = None, *,
                 policy: Policy | None = None,
                 registry: MetricsRegistry | None = None,
                 trace: EventTrace | None = None):
        if config is None:
            config = PolicyConfig()
        self.device = device
        self.geometry = device.geometry
        self.layout = DeviceAddressLayout(self.geometry)
        self.allocator = allocator
        self.tables = tables
        self.translation = translation
        self.migration = migration
        self.config = config
        self.policy = policy if policy is not None else make_policy(config)
        self.window_ns = config.window_ns
        self.profiling_threshold_ns = config.profiling_threshold_ns
        self.tsp_scan_limit = config.tsp_scan_limit
        self.revisit_delay_ns = (config.revisit_delay_ns
                                 if config.revisit_delay_ns is not None
                                 else 20 * config.profiling_threshold_ns)
        if device.geometry.ranks_per_channel % config.victim_granularity:
            raise ValueError(
                "victim_granularity must divide ranks_per_channel")
        self.victim_granularity = config.victim_granularity
        #: With planning disabled the migration table never swaps entries:
        #: a victim only reaches self-refresh if it is *naturally* quiet.
        #: Exists for the ablation that isolates the CLOCK planner's
        #: contribution.
        self.enable_planning = config.enable_planning
        total = self.geometry.total_segments
        # Migration table (Figure 8): one row per device segment.
        self.access_bits = np.zeros(total, dtype=bool)
        self.planned = np.arange(total, dtype=np.int64)
        self._rank_shift = (self.geometry.channel_bits
                            + self.geometry.segment_index_bits)
        #: Masks the shifted value down to the rank field.  A well-formed
        #: DSN has nothing above the rank bits, but decodes must not turn
        #: stray high bits (wider packed values, sentinel tags) into
        #: phantom rank indices — see DeviceAddressLayout.rank_of_dsn.
        self._rank_mask = (1 << self.geometry.rank_bits) - 1
        self._channel_mask = self.geometry.channels - 1
        #: Cap on scalar event replays per channel per batch before
        #: :meth:`on_access_batch` stops rescanning the tail and replays
        #: the remainder element-wise (pathological event density).
        self._batch_event_limit = 64
        self._channels = {channel: _ChannelState()
                          for channel in range(self.geometry.channels)}
        self.events: list[SelfRefreshEvent] = []
        registry = registry if registry is not None else MetricsRegistry()
        self._trace = trace
        self._sr_entries = registry.counter("sr.entries")
        self._sr_exits = registry.counter("sr.exits")
        self._victim_selections = registry.counter("sr.victim_selections")
        self._swaps_executed = registry.counter("sr.swaps")
        self._exit_penalty_ns = registry.counter("sr.exit_penalty_total_ns")
        self._migrated_bytes = registry.counter("sr.migrated_bytes")
        self._demotion_counters = {
            level: registry.counter(f"policy.demotion.{level.value}")
            for level in DemotionLevel}
        self._idle_gap_hist = registry.histogram("policy.rank_idle_gap_ns")
        # Armed fault injector (None = zero-overhead no-op hooks).
        self._faults = None

    def arm_faults(self, injector) -> None:
        """Attach (or with ``None`` detach) a fault injector."""
        self._faults = injector

    @property
    def exit_penalty_total_ns(self) -> float:
        """Cumulative SR exit penalty (registry counter view)."""
        return self._exit_penalty_ns.value

    @exit_penalty_total_ns.setter
    def exit_penalty_total_ns(self, value: float) -> None:
        self._exit_penalty_ns.set(value)

    @property
    def migrated_bytes_total(self) -> int:
        """Bytes moved by executed swap plans (registry counter view)."""
        return self._migrated_bytes.value

    @migrated_bytes_total.setter
    def migrated_bytes_total(self, value: int) -> None:
        self._migrated_bytes.set(value)

    # -- address helpers ---------------------------------------------------------

    def _rank_of(self, dsn: int) -> int:
        return (dsn >> self._rank_shift) & self._rank_mask

    def _channel_of(self, dsn: int) -> int:
        return dsn & self._channel_mask

    def _dsn(self, channel: int, rank: int, index: int) -> int:
        return self.layout.pack_dsn(SegmentLocation(channel, rank, index))

    def planned_rank(self, dsn: int) -> int:
        """Rank index the plan currently sends segment ``dsn`` to."""
        return self._rank_of(int(self.planned[dsn]))

    def _swap_entries(self, dsn_a: int, dsn_b: int) -> None:
        self.planned[dsn_a], self.planned[dsn_b] = (self.planned[dsn_b],
                                                    self.planned[dsn_a])

    # -- phase control --------------------------------------------------------------

    def active_ranks(self, channel: int) -> list[int]:
        """Ranks on ``channel`` not in MPSM (standby or self-refresh)."""
        return [rank.index for rank in self.device.ranks_in_channel(channel)
                if rank.state is not PowerState.MPSM]

    def _rank_stats(self, channel: int, rank: int,
                    state: _ChannelState) -> RankStats:
        """Snapshot one rank (window counters included) for the policy."""
        usage = self.allocator.usage((channel, rank))
        rank_obj = self.device.rank(channel, rank)
        return RankStats(
            channel=channel, rank=rank,
            allocated=usage.allocated,
            free=usage.capacity - usage.allocated,
            utilization=usage.utilization,
            access_count=rank_obj.access_count,
            window_count=state.window_counts.get(rank, 0),
            last_window_count=state.last_window_counts.get(rank, 0),
            state=rank_obj.state)

    def start_profiling(self, channel: int, now_ns: float) -> int | None:
        """Enter the profiling phase and pick a victim rank.

        The victim block is chosen by the policy (the paper's: fewest
        accesses in the last completed window).  Returns the victim rank
        index, or ``None`` when fewer than two blocks are in standby
        (nothing to consolidate into).
        """
        state = self._channels[channel]
        candidates = [rank for rank in self.active_ranks(channel)
                      if self.device.rank(channel, rank).state
                      is PowerState.STANDBY]
        # A victim unit is an aligned block of ``victim_granularity`` ranks
        # (a CKE pair on the paper's testbed, Section 5.1); every member
        # must be in standby.
        granularity = self.victim_granularity
        blocks = [tuple(range(start, start + granularity))
                  for start in range(0, self.geometry.ranks_per_channel,
                                     granularity)
                  if all(rank in candidates
                         for rank in range(start, start + granularity))]
        if len(blocks) < 2:
            state.phase = ChannelPhase.IDLE
            return None
        # Drop any plan left over from an interrupted profiling pass; the
        # migration table restarts from identity (Section 3.4: the table is
        # re-initialised around each migration).
        self._reset_channel_table(channel)
        stats = {rank: self._rank_stats(channel, rank, state)
                 for block in blocks for rank in block}
        victims = tuple(self.policy.sr_victim_block(channel, blocks, stats))
        if victims not in blocks:
            raise ValueError(
                f"policy {self.policy.name!r} returned victim block "
                f"{victims} not among candidates {blocks}")
        victim = victims[0]
        state.phase = ChannelPhase.PROFILING
        state.victim_rank = victim
        state.victim_ranks = victims
        state.quiet_since_ns = now_ns
        state.target_ranks = [rank for rank in candidates
                              if rank not in victims]
        # The TSP is a CLOCK hand: it persists across profiling rounds so
        # repeated searches keep exploring the target ranks instead of
        # rescanning the same entries.
        state.target_cursor %= len(state.target_ranks)
        for rank in state.target_ranks:
            state.tsp.setdefault(rank, 0)
        self.events.append(SelfRefreshEvent(
            time_ns=now_ns, channel=channel, kind="victim_selected",
            victim_rank=victim))
        self._victim_selections.inc()
        return victim

    # -- access path -------------------------------------------------------------------

    def on_access(self, dsn: int, now_ns: float) -> float:
        """Record one post-cache access to segment ``dsn``.

        Returns the latency penalty (ns) if the access woke a rank out of
        self-refresh, else 0.0.
        """
        channel = self._channel_of(dsn)
        rank = self._rank_of(dsn)
        state = self._channels[channel]
        penalty = self._wake_if_needed(channel, rank, state, now_ns)
        self.device.rank(channel, rank).record_access()
        state.window_counts[rank] = state.window_counts.get(rank, 0) + 1
        self.access_bits[dsn] = True
        if state.phase is ChannelPhase.PROFILING:
            self._profiling_update(dsn, state, rank, now_ns)
        return penalty

    def on_segment_moved(self, old_dsn: int, new_dsn: int) -> None:
        """CLOCK state follows the data when a segment migrates.

        The access bit tracks the *segment's contents*, not the physical
        slot: leaving a hot bit on the vacated slot (and a cold bit on
        the destination) makes the TSP mis-classify both on the next
        scan.  Called by the controller after every migration-engine
        completion; :meth:`_execute_swaps` and :meth:`_move` apply the
        same rule for the policy's own plan execution.
        """
        self.access_bits[new_dsn] = self.access_bits[old_dsn]
        self.access_bits[old_dsn] = False

    def on_access_batch(self, dsns: np.ndarray, now_ns: float) -> np.ndarray:
        """Scalar-identical batch variant of :meth:`on_access`.

        Equivalent to calling :meth:`on_access` once per element of
        ``dsns`` in order (per channel — accesses to different channels
        touch disjoint state, so only intra-channel order matters);
        returns the per-access wake penalties (ns).  Unlike
        :meth:`on_batch` — which applies windowed distinct-segment
        semantics — every repeat here counts.

        Only two kinds of access can mutate policy state mid-batch:

        * an access to a rank in self-refresh (wake + re-profile) or in
          MPSM (the rank raises), and
        * while the channel is PROFILING, an access to a segment whose
          *planned* location is the victim rank (CLOCK table swap, quiet
          timer reset).

        Those *events* replay through :meth:`on_access` one at a time;
        every stretch between events is applied in bulk (per-rank
        counters via bincount, access bits with one scatter).  Each
        event can change what counts as an event — a wake flips the
        channel into PROFILING, a table swap re-plans up to three
        segments — so the tail is re-screened after every replay.
        Events self-extinguish (a hot segment is planned out of the
        victim rank by its own hit), so the scan count stays small; a
        channel that somehow exceeds ``_batch_event_limit`` events
        replays its remaining tail element-wise.

        The event screen is policy-independent: a policy only changes
        *which* segments are planned into the victim ranks, and the
        screen reads the live ``planned`` array, so scalar/batch
        identity holds for every policy (proven over all registered
        policies in ``tests/policies/test_paper_identity.py``).
        """
        dsns = np.asarray(dsns, dtype=np.int64)
        penalties = np.zeros(len(dsns), dtype=np.float64)
        if not len(dsns):
            return penalties
        channels = dsns & self._channel_mask
        ranks = (dsns >> self._rank_shift) & self._rank_mask
        for channel in np.unique(channels):
            channel = int(channel)
            idx = np.nonzero(channels == channel)[0]
            self._run_channel_batch(channel, dsns[idx], ranks[idx], idx,
                                    penalties, now_ns)
        return penalties

    def _bulk_apply(self, channel: int, state: _ChannelState,
                    run_dsns: np.ndarray, run_ranks: np.ndarray) -> None:
        """Apply an event-free stretch of accesses on one channel.

        Order-free bookkeeping only: per-rank access counters, window
        counts, and access bits.  ``access_bits`` is indexed by the
        *packed device-global DSN* — the same index space the scalar
        path (``on_access``), the CLOCK sweep (``_tsp_find_cold`` via
        ``pack_dsn``), and ``on_batch`` all use, so one bit per device
        segment, not per rank-local index.
        """
        counts = np.bincount(run_ranks)
        window = state.window_counts
        for rank, count in enumerate(counts.tolist()):
            if count:
                self.device.rank(channel, rank).record_access(count)
                window[rank] = window.get(rank, 0) + count
        self.access_bits[run_dsns] = True

    def _run_channel_batch(self, channel: int, ch_dsns: np.ndarray,
                           ch_ranks: np.ndarray, idx: np.ndarray,
                           penalties: np.ndarray, now_ns: float) -> None:
        """Event-loop application of one channel's slice of a batch."""
        state = self._channels[channel]
        n = len(ch_dsns)
        p = 0
        events = 0
        while p < n:
            stateful_ranks = [
                rank.index for rank in self.device.ranks_in_channel(channel)
                if rank.state is PowerState.SELF_REFRESH
                or rank.state is PowerState.MPSM]
            profiling = (state.phase is ChannelPhase.PROFILING
                         and bool(state.victim_ranks))
            if not stateful_ranks and not profiling:
                self._bulk_apply(channel, state, ch_dsns[p:], ch_ranks[p:])
                return
            tail_dsns = ch_dsns[p:]
            ev = np.zeros(n - p, dtype=bool)
            if stateful_ranks:
                ev |= np.isin(ch_ranks[p:], stateful_ranks)
            if profiling:
                planned_ranks = ((self.planned[tail_dsns] >> self._rank_shift)
                                 & self._rank_mask)
                ev |= np.isin(planned_ranks, list(state.victim_ranks))
            if not ev.any():
                self._bulk_apply(channel, state, tail_dsns, ch_ranks[p:])
                return
            cut = int(np.argmax(ev))
            if cut:
                self._bulk_apply(channel, state, tail_dsns[:cut],
                                 ch_ranks[p:p + cut])
            pos = p + cut
            penalties[idx[pos]] = self.on_access(int(ch_dsns[pos]), now_ns)
            p = pos + 1
            events += 1
            if events >= self._batch_event_limit:
                for q in range(p, n):
                    penalties[idx[q]] = self.on_access(int(ch_dsns[q]),
                                                       now_ns)
                return

    def on_batch(self, dsns: np.ndarray, now_ns: float,
                 bit_dsns: np.ndarray | None = None) -> float:
        """Apply one access window's worth of *distinct touched segments*.

        Equivalent to calling :meth:`on_access` once per touched segment,
        but with the bulk bookkeeping (access bits, per-rank counters, SR
        wake detection) vectorised.  Returns total wake penalty (ns).

        Args:
            dsns: Segments touched during the batch interval (drive wakes,
                counters, and migration-table updates).
            bit_dsns: Segments whose access bit should be set.  When the
                batch interval is longer than the hardware's 0.5 ms access
                window, pass the sub-sample touched within one window here
                so the CLOCK's second-chance bits keep their hardware
                granularity; ``None`` sets bits for every touched segment.
        """
        if not len(dsns):
            return 0.0
        dsns = np.asarray(dsns, dtype=np.int64)
        if bit_dsns is None:
            self.access_bits[dsns] = True
        elif len(bit_dsns):
            self.access_bits[np.asarray(bit_dsns, dtype=np.int64)] = True
        channels = dsns & self._channel_mask
        ranks = (dsns >> self._rank_shift) & self._rank_mask
        penalty = 0.0
        for channel in range(self.geometry.channels):
            mask = channels == channel
            if not mask.any():
                continue
            state = self._channels[channel]
            channel_dsns = dsns[mask]
            channel_ranks = ranks[mask]
            for rank in np.unique(channel_ranks):
                rank = int(rank)
                count = int((channel_ranks == rank).sum())
                penalty += self._wake_if_needed(channel, rank, state, now_ns)
                self.device.rank(channel, rank).record_access(count)
                state.window_counts[rank] = (state.window_counts.get(rank, 0)
                                             + count)
            if state.phase is not ChannelPhase.PROFILING:
                continue
            # Only touches whose *planned* location is the victim rank
            # update the migration table / reset the timer.
            planned_ranks = ((self.planned[channel_dsns] >> self._rank_shift)
                             & self._rank_mask)
            hits = channel_dsns[np.isin(planned_ranks,
                                        list(state.victim_ranks))]
            for dsn in hits:
                self._profiling_update(int(dsn), state,
                                       self._rank_of(int(dsn)), now_ns)
        return penalty

    def _wake_if_needed(self, channel: int, rank: int, state: _ChannelState,
                        now_ns: float) -> float:
        rank_obj = self.device.rank(channel, rank)
        if rank_obj.state is not PowerState.SELF_REFRESH:
            return 0.0
        # The whole victim block wakes together: on the paper's testbed two
        # ranks share a CKE pin, so self-refresh exit is a pair operation.
        block_start = (rank // self.victim_granularity) * self.victim_granularity
        penalty = 0.0
        for member in range(block_start, block_start + self.victim_granularity):
            member_obj = self.device.rank(channel, member)
            if member_obj.state is not PowerState.SELF_REFRESH:
                continue
            penalty = max(penalty, self.device.set_rank_state(
                (channel, member), PowerState.STANDBY, now_ns / 1e9))
            self.events.append(SelfRefreshEvent(
                time_ns=now_ns, channel=channel, kind="exit_sr",
                victim_rank=member))
            self._sr_exits.inc()
            if self._trace is not None:
                self._trace.record(EventKind.SR_EXIT, time=now_ns,
                                   channel=channel, rank=member)
            # One completed residency: how long the rank actually slept
            # before this access woke it (feeds adaptive demotion).
            if state.last_sr_entry_ns > 0.0:
                gap_ns = now_ns - state.last_sr_entry_ns
                self._idle_gap_hist.observe(gap_ns)
                self.policy.observe_idle_gap("sr", channel, member, gap_ns)
        # Injected delayed/failed self-refresh exit (hook: sr.exit).
        if self._faults is not None:
            penalty += self._faults.on_power_exit("sr", penalty)
        self._exit_penalty_ns.inc(penalty)
        # Re-profile: the freshly woken block has the fewest recent accesses
        # so it is re-selected as the victim, and the few segments that woke
        # it are planned out — the paper's cheap re-entry path.
        self.start_profiling(channel, now_ns)
        return penalty

    def _profiling_update(self, dsn: int, state: _ChannelState, rank: int,
                          now_ns: float) -> None:
        victims = state.victim_ranks
        if self._rank_of(int(self.planned[dsn])) not in victims:
            return
        # Access hits the hypothetical victim rank: reset the quiet timer.
        state.quiet_since_ns = now_ns
        if not self.enable_planning:
            return
        channel = self._channel_of(dsn)
        search = _TspSearch(self, channel, state)
        if rank in victims and int(self.planned[dsn]) == dsn:
            # Case (b): hot segment physically in the victim rank, not yet
            # planned out.  Ask the policy for a cold partner.
            partner = self.policy.sr_cold_partner(channel, search)
            if partner is not None:
                self._swap_entries(dsn, partner)
        elif rank not in victims:
            # Case (c): a target-rank segment planned *into* the victim
            # rank turned out hot.  Restore the swap, then find a genuinely
            # cold partner for the victim-rank entry it was paired with.
            partner_victim_dsn = int(self.planned[dsn])
            self._swap_entries(dsn, partner_victim_dsn)
            replacement = self.policy.sr_cold_partner(channel, search)
            if replacement is not None:
                self._swap_entries(partner_victim_dsn, replacement)

    def _tsp_find_cold(self, channel: int, state: _ChannelState) -> int | None:
        """CLOCK scan for a cold, not-yet-planned entry in the target rank.

        Clears access bits as it passes hot entries (second chance);
        bounded by ``tsp_scan_limit`` examined entries, after which the TSP
        rotates to the next target rank (the paper's 40 ns timeout).
        """
        if not state.target_ranks:
            return None
        target = state.target_ranks[state.target_cursor]
        segments = self.geometry.segments_per_rank
        pointer = state.tsp[target]
        for _ in range(self.tsp_scan_limit):
            index = pointer % segments
            pointer += 1
            dsn = self._dsn(channel, target, index)
            if int(self.planned[dsn]) != dsn:
                continue  # already involved in a planned swap
            if self.access_bits[dsn]:
                self.access_bits[dsn] = False  # second chance
                continue
            state.tsp[target] = pointer
            # "A target rank is chosen in a round-robin manner among the
            # other active ranks": rotate after every selection so cold
            # segments are collected from all target ranks, not just the
            # first one with a cold-looking entry.
            state.target_cursor = ((state.target_cursor + 1)
                                   % len(state.target_ranks))
            return dsn
        # Timeout: remember progress and rotate to the next target rank.
        state.tsp[target] = pointer
        state.target_cursor = (state.target_cursor + 1) % len(state.target_ranks)
        return None

    def _tsp_scan_rank(self, channel: int, state: _ChannelState,
                       target: int) -> int | None:
        """Bounded CLOCK scan of one *specific* target rank.

        Same walk as :meth:`_tsp_find_cold` — persistent per-rank
        pointer, second-chance bit clearing, ``tsp_scan_limit`` bound —
        but the rank is the caller's choice and the round-robin cursor
        is left alone.  Policies that order target ranks themselves
        (e.g. DReAM's coldest-first) use this via ``ColdSearch``.
        """
        if target not in state.target_ranks:
            return None
        segments = self.geometry.segments_per_rank
        pointer = state.tsp.setdefault(target, 0)
        for _ in range(self.tsp_scan_limit):
            index = pointer % segments
            pointer += 1
            dsn = self._dsn(channel, target, index)
            if int(self.planned[dsn]) != dsn:
                continue
            if self.access_bits[dsn]:
                self.access_bits[dsn] = False
                continue
            state.tsp[target] = pointer
            return dsn
        state.tsp[target] = pointer
        return None

    # -- windows and timers ----------------------------------------------------------

    def end_window(self) -> None:
        """Close the current access-count window on every channel."""
        for channel, state in self._channels.items():
            state.last_window_counts = dict(state.window_counts)
            self.policy.observe_window(channel, state.last_window_counts)
            state.window_counts.clear()

    def tick(self, now_ns: float) -> list[SelfRefreshEvent]:
        """Advance timers; run migration + SR entry for quiet channels."""
        fired: list[SelfRefreshEvent] = []
        for channel, state in self._channels.items():
            if state.phase is ChannelPhase.IDLE:
                self.start_profiling(channel, now_ns)
                continue
            if state.phase is ChannelPhase.SELF_REFRESH:
                # The last victim has slept undisturbed for the revisit
                # delay: try to consolidate one more rank.
                if now_ns - state.last_sr_entry_ns >= self.revisit_delay_ns:
                    self.start_profiling(channel, now_ns)
                continue
            if state.phase is not ChannelPhase.PROFILING:
                continue
            if now_ns - state.quiet_since_ns >= self.profiling_threshold_ns:
                event = self._enter_self_refresh(channel, state, now_ns)
                if event is not None:
                    fired.append(event)
        return fired

    # -- migration phase --------------------------------------------------------------

    def _planned_swaps(self, channel: int,
                       state: _ChannelState) -> list[tuple[int, int]]:
        """(victim_dsn, partner_dsn) pairs whose plan differs from identity."""
        swaps = []
        for victim in state.victim_ranks:
            for index in range(self.geometry.segments_per_rank):
                dsn = self._dsn(channel, victim, index)
                planned = int(self.planned[dsn])
                if planned != dsn:
                    swaps.append((dsn, planned))
        return swaps

    def _reset_channel_table(self, channel: int) -> None:
        """Re-initialise planned locations for one channel.

        Only the rank/segment (planned) fields are reset, as in the paper;
        access bits are CLOCK state and persist.
        """
        geo = self.geometry
        for rank in range(geo.ranks_per_channel):
            base = self._dsn(channel, rank, 0)
            dsns = base + np.arange(geo.segments_per_rank) * geo.channels
            self.planned[dsns] = dsns

    def _enter_self_refresh(self, channel: int, state: _ChannelState,
                            now_ns: float) -> SelfRefreshEvent | None:
        # The power-down policy (or rank retirement) may have parked a
        # victim rank in MPSM since profiling began; the plan is stale —
        # restart with the surviving standby ranks.
        if any(self.device.rank(channel, rank).state
               is not PowerState.STANDBY for rank in state.victim_ranks):
            self.start_profiling(channel, now_ns)
            return None
        victim_stats = [self._rank_stats(channel, rank, state)
                        for rank in state.victim_ranks]
        level = self.policy.demotion_level("sr", victim_stats)
        self._demotion_counters[level].inc()
        if level is DemotionLevel.STAY_ACTIVE:
            # The policy predicts wake-thrash: skip this entry and re-arm
            # the quiet timer; the plan stays in place, so a genuinely
            # quiet block just re-fires one threshold later.
            state.quiet_since_ns = now_ns
            return None
        park_state = PowerState.SELF_REFRESH
        if level is DemotionLevel.MPSM:
            # MPSM loses contents; only an entirely *empty* victim block
            # can take it.  Live data downgrades to self-refresh.
            if all(stats.allocated == 0 for stats in victim_stats):
                park_state = PowerState.MPSM
        swaps = self._planned_swaps(channel, state)
        migrated_bytes = self._execute_swaps(swaps)
        self._reset_channel_table(channel)
        victim = state.victim_rank
        for rank in state.victim_ranks:
            self.device.set_rank_state((channel, rank),
                                       park_state, now_ns / 1e9)
        state.phase = ChannelPhase.SELF_REFRESH
        self._migrated_bytes.inc(migrated_bytes)
        self._sr_entries.inc(len(state.victim_ranks))
        self._swaps_executed.inc(len(swaps))
        event = SelfRefreshEvent(
            time_ns=now_ns, channel=channel, kind="enter_sr",
            victim_rank=victim, swaps=len(swaps),
            migrated_bytes=migrated_bytes)
        self.events.append(event)
        if self._trace is not None:
            self._trace.record(EventKind.SR_ENTER, time=now_ns,
                               channel=channel, rank=victim,
                               swaps=len(swaps),
                               migrated_bytes=migrated_bytes)
        state.last_sr_entry_ns = now_ns
        return event

    def _execute_swaps(self, swaps: list[tuple[int, int]]) -> int:
        """Perform the planned hot/cold exchanges with mapping updates.

        Swaps whose partner rank has left standby since the plan was made
        (powered down or retired by a concurrent policy) are dropped — the
        table resets right after, so the skipped entries simply retry in
        the next profiling round.  Swaps touching an in-flight migration
        endpoint are dropped for the same reason: a tracked *source* must
        keep its mapping until the engine retires it, and a tracked
        *target* is reserved (allocated but unmapped), not free.
        """
        busy: set[int] = set()
        for request in self.migration.tracked_requests():
            busy.add(request.old_dsn)
            busy.add(request.new_dsn)
        migrated = 0
        for victim_dsn, partner_dsn in swaps:
            if victim_dsn in busy or partner_dsn in busy:
                continue
            partner_rank = (self._channel_of(partner_dsn),
                            self._rank_of(partner_dsn))
            if self.device.rank(*partner_rank).state \
                    is not PowerState.STANDBY:
                continue
            victim_live = self.tables.is_dsn_live(victim_dsn)
            partner_live = self.tables.is_dsn_live(partner_dsn)
            if victim_live and partner_live:
                hsn_v = self.tables.hsn_of_dsn(victim_dsn)
                hsn_p = self.tables.hsn_of_dsn(partner_dsn)
                self.tables.swap_segments(hsn_v, hsn_p)
                self.translation.invalidate(hsn_v)
                self.translation.invalidate(hsn_p)
                # Access bits travel with the exchanged data.
                bits = self.access_bits
                bits[victim_dsn], bits[partner_dsn] = (
                    bool(bits[partner_dsn]), bool(bits[victim_dsn]))
                migrated += 2 * self.geometry.segment_bytes
            elif victim_live:
                self._move(victim_dsn, partner_dsn)
                migrated += self.geometry.segment_bytes
            elif partner_live:
                self._move(partner_dsn, victim_dsn)
                migrated += self.geometry.segment_bytes
        return migrated

    def _move(self, src_dsn: int, dst_dsn: int) -> None:
        """One-way copy of a live segment into a free slot."""
        self.allocator.reserve_specific(dst_dsn)
        hsn = self.tables.hsn_of_dsn(src_dsn)
        self.tables.remap_segment(hsn, dst_dsn)
        self.translation.invalidate(hsn)
        self.allocator.free([src_dsn])
        self.on_segment_moved(src_dsn, dst_dsn)

    # -- serialisation ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Migration table, per-channel state machines, and event log.

        Registry counters (sr.entries, sr.swaps, ...) live in the shared
        registry and restore through
        :meth:`~repro.telemetry.MetricsRegistry.load_state_dict`; the
        shared :class:`~repro.policies.Policy` instance is restored once
        by the controller.
        """
        return {
            "access_bits": self.access_bits.copy(),
            "planned": self.planned.copy(),
            "channels": {
                channel: {
                    "phase": state.phase.value,
                    "victim_rank": state.victim_rank,
                    "victim_ranks": list(state.victim_ranks),
                    "quiet_since_ns": state.quiet_since_ns,
                    "window_counts": dict(state.window_counts),
                    "last_window_counts": dict(state.last_window_counts),
                    "target_ranks": list(state.target_ranks),
                    "target_cursor": state.target_cursor,
                    "tsp": dict(state.tsp),
                    "last_sr_entry_ns": state.last_sr_entry_ns,
                }
                for channel, state in sorted(self._channels.items())},
            "events": [
                {"time_ns": event.time_ns, "channel": event.channel,
                 "kind": event.kind, "victim_rank": event.victim_rank,
                 "swaps": event.swaps,
                 "migrated_bytes": event.migrated_bytes}
                for event in self.events],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (same geometry required)."""
        if len(state["planned"]) != len(self.planned):
            raise ValueError(
                "migration table size mismatch: checkpoint was taken "
                "with a different DRAM geometry")
        if set(state["channels"]) != set(self._channels):
            raise ValueError(
                "channel set mismatch: checkpoint was taken with a "
                "different DRAM geometry")
        self.access_bits[:] = state["access_bits"]
        self.planned[:] = state["planned"]
        for channel, saved in state["channels"].items():
            chan = self._channels[channel]
            chan.phase = ChannelPhase(saved["phase"])
            chan.victim_rank = saved["victim_rank"]
            chan.victim_ranks = tuple(saved["victim_ranks"])
            chan.quiet_since_ns = saved["quiet_since_ns"]
            chan.window_counts = dict(saved["window_counts"])
            chan.last_window_counts = dict(saved["last_window_counts"])
            chan.target_ranks = list(saved["target_ranks"])
            chan.target_cursor = saved["target_cursor"]
            chan.tsp = dict(saved["tsp"])
            chan.last_sr_entry_ns = saved["last_sr_entry_ns"]
        self.events = [SelfRefreshEvent(**event)
                       for event in state["events"]]

    # -- introspection ------------------------------------------------------------------

    def phase(self, channel: int) -> ChannelPhase:
        """Current phase of ``channel``'s state machine."""
        return self._channels[channel].phase

    def victim_rank(self, channel: int) -> int:
        """Current (primary) victim rank of ``channel`` (-1 when none)."""
        return self._channels[channel].victim_rank

    def victim_ranks(self, channel: int) -> tuple[int, ...]:
        """Current victim rank block of ``channel`` (empty when none)."""
        return self._channels[channel].victim_ranks

    def sr_ranks(self, channel: int) -> list[int]:
        """Ranks of ``channel`` currently in self-refresh."""
        return [rank.index for rank in self.device.ranks_in_channel(channel)
                if rank.state is PowerState.SELF_REFRESH]

    def hypothetical_victim_size(self, channel: int) -> int:
        """Number of segments currently planned into the victim rank."""
        state = self._channels[channel]
        if not state.victim_ranks:
            return 0
        geo = self.geometry
        count = 0
        for rank in range(geo.ranks_per_channel):
            base = self._dsn(channel, rank, 0)
            dsns = base + np.arange(geo.segments_per_rank) * geo.channels
            count += int(np.isin((self.planned[dsns] >> self._rank_shift)
                                 & self._rank_mask,
                                 list(state.victim_ranks)).sum())
        return count


__all__ = [
    "DEFAULT_WINDOW_NS",
    "DEFAULT_PROFILING_THRESHOLD_NS",
    "DEFAULT_TSP_SCAN_LIMIT",
    "DEFAULT_REVISIT_DELAY_NS",
    "ChannelPhase",
    "SelfRefreshEvent",
    "HotnessSelfRefreshPolicy",
]
