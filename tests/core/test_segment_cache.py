"""Tests for the two-level segment mapping cache."""

import pytest
from hypothesis import given, strategies as st

from repro.core.segment_cache import (CacheStats, FullyAssociativeCache,
                                      SegmentCacheConfig, SegmentMappingCache,
                                      SetAssociativeCache, cycles_to_ns)
from repro.errors import ConfigurationError


class TestCycleConversion:
    def test_one_cycle_at_1p5ghz(self):
        assert cycles_to_ns(1) == pytest.approx(1 / 1.5)

    def test_seven_cycles(self):
        assert cycles_to_ns(7) == pytest.approx(7 / 1.5)


class TestCacheStats:
    def test_ratios(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_ratio == pytest.approx(0.75)
        assert stats.miss_ratio == pytest.approx(0.25)

    def test_empty(self):
        assert CacheStats().hit_ratio == 0.0


class TestFullyAssociative:
    def test_hit_after_insert(self):
        cache = FullyAssociativeCache(4)
        cache.insert(10, 100)
        assert cache.lookup(10) == 100
        assert cache.stats.hits == 1

    def test_miss(self):
        cache = FullyAssociativeCache(4)
        assert cache.lookup(10) is None
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = FullyAssociativeCache(2)
        cache.insert(1, 11)
        cache.insert(2, 22)
        cache.lookup(1)  # make 2 the LRU entry
        evicted = cache.insert(3, 33)
        assert evicted == (2, 22)
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_reinsert_updates_value(self):
        cache = FullyAssociativeCache(2)
        cache.insert(1, 11)
        cache.insert(1, 99)
        assert cache.lookup(1) == 99
        assert len(cache) == 1

    def test_invalidate(self):
        cache = FullyAssociativeCache(2)
        cache.insert(1, 11)
        assert cache.invalidate(1)
        assert not cache.invalidate(1)
        assert cache.stats.invalidations == 1

    def test_zero_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            FullyAssociativeCache(0)


class TestSetAssociative:
    def test_set_isolation(self):
        cache = SetAssociativeCache(entries=8, ways=2)  # 4 sets
        # Keys 0, 4, 8, 12 all map to set 0; two ways force eviction.
        cache.insert(0, 1)
        cache.insert(4, 2)
        cache.insert(8, 3)
        assert 0 not in cache  # LRU of set 0
        assert 4 in cache and 8 in cache

    def test_other_sets_unaffected(self):
        cache = SetAssociativeCache(entries=8, ways=2)
        cache.insert(1, 10)
        cache.insert(0, 1)
        cache.insert(4, 2)
        cache.insert(8, 3)
        assert cache.lookup(1) == 10

    def test_ways_must_divide(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(entries=10, ways=4)

    def test_len_counts_all_sets(self):
        cache = SetAssociativeCache(entries=8, ways=2)
        cache.insert(0, 1)
        cache.insert(1, 2)
        assert len(cache) == 2


class TestSegmentCacheConfig:
    def test_table3_defaults(self):
        config = SegmentCacheConfig()
        assert config.l1_entries == 64
        assert config.l2_entries == 1024
        assert config.l2_ways == 4

    def test_latencies(self):
        config = SegmentCacheConfig()
        assert config.l1_hit_ns == pytest.approx(1 / 1.5)
        assert config.l2_hit_ns == pytest.approx(7 / 1.5)


class TestTwoLevel:
    @pytest.fixture
    def smc(self):
        return SegmentMappingCache(SegmentCacheConfig(l1_entries=2,
                                                      l2_entries=8,
                                                      l2_ways=2))

    def test_fill_populates_both_levels(self, smc):
        smc.fill(5, 50)
        assert 5 in smc.l1 and 5 in smc.l2

    def test_l2_hit_promotes_to_l1(self, smc):
        smc.fill(1, 10)
        smc.fill(2, 20)
        smc.fill(3, 30)  # 1 evicted from tiny L1, still in L2
        assert 1 not in smc.l1
        result = smc.lookup(1)
        assert result.l2_hit and not result.l1_hit
        assert 1 in smc.l1

    def test_full_miss(self, smc):
        result = smc.lookup(99)
        assert result.full_miss
        assert result.dsn is None

    def test_invalidate_both_levels(self, smc):
        smc.fill(7, 70)
        assert smc.invalidate(7)
        assert 7 not in smc.l1 and 7 not in smc.l2
        assert not smc.invalidate(7)

    def test_hit_latency_composition(self, smc):
        smc.fill(1, 10)
        l1 = smc.lookup(1)
        assert smc.hit_latency_ns(l1) == pytest.approx(smc.config.l1_hit_ns)
        smc.fill(2, 20)
        smc.fill(3, 30)
        l2 = smc.lookup(1) if 1 not in smc.l1 else smc.lookup(99)
        assert smc.hit_latency_ns(l2) == pytest.approx(
            smc.config.l1_hit_ns + smc.config.l2_hit_ns)

    def test_full_miss_latency_is_probe_cost_only(self, smc):
        """Regression: the full-miss branch is explicit and charges the two
        probe latencies, never the table-walk penalty (that belongs to the
        translation engine)."""
        miss = smc.lookup(99)
        assert miss.full_miss
        assert smc.hit_latency_ns(miss) == pytest.approx(
            smc.config.miss_probe_ns)
        assert smc.config.miss_probe_ns == pytest.approx(
            smc.config.l1_hit_ns + smc.config.l2_hit_ns)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    def test_lookup_after_fill_always_hits(self, keys):
        """An immediately repeated lookup never misses (LRU keeps MRU)."""
        smc = SegmentMappingCache(SegmentCacheConfig(l1_entries=4,
                                                     l2_entries=16,
                                                     l2_ways=4))
        for key in keys:
            smc.fill(key, key * 10)
            result = smc.lookup(key)
            assert result.dsn == key * 10
            assert result.l1_hit


class TestInclusion:
    def test_l2_eviction_back_invalidates_l1(self):
        # 2 sets x 2 ways: even HSNs all land in set 0.
        smc = SegmentMappingCache(SegmentCacheConfig(l1_entries=4,
                                                     l2_entries=4,
                                                     l2_ways=2))
        smc.fill(0, 10)
        smc.fill(2, 12)
        smc.fill(4, 14)  # evicts HSN 0 from L2 set 0
        assert 0 not in smc.l2
        assert 0 not in smc.l1, "L1 entry outlived its L2 copy"
        assert smc.back_invalidations == 1
        assert smc.check_inclusion() == []

    def test_inclusion_holds_over_long_walk(self):
        """Regression (Table 3 geometry): walk more HSNs than L2 holds
        while keeping one entry hot in L1 *without* touching L2 (L1 hits
        never refresh L2's LRU), so its L2 copy ages out.  Every L1 entry
        must still be present in L2 afterwards."""
        smc = SegmentMappingCache()
        hot = 0
        smc.fill(hot, 1234)
        for hsn in range(1, 1500):
            smc.fill(hsn, hsn + 10)
            smc.lookup(hot)
        assert smc.back_invalidations >= 1
        assert smc.check_inclusion() == []
        assert set(smc.l1.hsns()) <= set(smc.l2.hsns())

    def test_promotion_cannot_break_inclusion(self):
        smc = SegmentMappingCache(SegmentCacheConfig(l1_entries=2,
                                                     l2_entries=8,
                                                     l2_ways=2))
        for hsn in range(6):
            smc.fill(hsn, hsn * 10)
        for hsn in range(6):
            smc.lookup(hsn)  # promotions churn L1
        assert smc.check_inclusion() == []


class TestRegistryBackedStats:
    def test_shared_registry_sees_cache_counters(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        smc = SegmentMappingCache(registry=registry)
        smc.fill(1, 10)
        smc.lookup(1)
        smc.lookup(99)
        counters = registry.counter_values()
        assert counters["smc.l1.hits"] == smc.l1.stats.hits == 1
        assert counters["smc.l1.misses"] == smc.l1.stats.misses == 1
        assert counters["smc.l2.misses"] == smc.l2.stats.misses == 1
