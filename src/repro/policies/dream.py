"""DReAM-style online re-arrangement (PAPERS.md).

DReAM continuously re-arranges addresses so accesses concentrate on a
shrinking set of hot ranks.  The swap machinery already exists in the
self-refresh host; what DReAM changes is *where cold partners come
from*.  The paper's CLOCK walks target ranks round-robin, which spreads
collection pressure evenly; DReAM instead biases collection toward the
*coldest* target ranks, so cold data pools rank-by-rank and whole ranks
empty of heat sooner.

Concretely: :meth:`sr_cold_partner` orders target ranks by observed
window traffic (current + last closed window, ascending, rank index
breaking ties) and scans them via
:meth:`~repro.policies.protocol.ColdSearch.scan_rank`, which keeps the
per-rank persistent pointer but skips the host's round-robin rotation.
A per-channel cursor paces the *starting* position through the ordered
list: draining one rank on every call would spin its CLOCK hand so fast
that access bits never re-set between passes, turning the second-chance
filter off and harvesting recently-hot partners that immediately bounce
back (restore-and-replan thrash).  With pacing, colder ranks still see
more collection pressure — they sort earlier, so more probe sequences
reach them first — but every hand keeps enough slack for the bits to
mean something.  Victim selection and demotion stay the paper's; this
isolates the re-arrangement idea for the tournament.
"""

from __future__ import annotations

from repro.policies.paper import PaperPolicy
from repro.policies.protocol import ColdSearch, PolicyConfig, register_policy


@register_policy
class DreamRemapPolicy(PaperPolicy):
    """Coldness-ordered cold-partner collection with hand pacing."""

    name = "dream"

    def __init__(self, config: PolicyConfig | None = None):
        super().__init__(config)
        #: Per-channel start position into the coldness-ordered rank list.
        self._cursors: dict[int, int] = {}

    def sr_cold_partner(self, channel: int,
                        search: ColdSearch) -> int | None:
        ordered = sorted(
            search.target_ranks,
            key=lambda rank: (
                search.window_count(rank) + search.last_window_count(rank),
                rank,
            ),
        )
        if not ordered:
            return None
        start = self._cursors.get(channel, 0) % len(ordered)
        for offset in range(len(ordered)):
            rank = ordered[(start + offset) % len(ordered)]
            dsn = search.scan_rank(rank)
            if dsn is not None:
                self._cursors[channel] = (start + offset + 1) % len(ordered)
                return dsn
        return None


__all__ = ["DreamRemapPolicy"]
