"""Figure 14: additional energy savings from hotness-aware self-refresh.

Paper (after rank-level power-down is applied):

* 208 GB / 6-rank: most mixes reach a stable ~20.3 % extra saving after a
  10-60 s warmup of iterative self-refresh enter/exit cycles;
* 224 GB: several mixes no longer stabilise;
* 240 GB (unallocated memory below half a rank-pair per channel): the
  profiling timer keeps resetting and self-refresh fails;
* 304 GB / 8-rank: up to 14.9 % savings.
"""

import pytest

from repro.sim.selfrefresh_sim import SelfRefreshSimulator, config_for_point

from conftest import report

PAPER = {"208gb": 0.203, "224gb": None, "240gb": 0.0, "304gb": 0.149}
DURATION_S = 60.0


@pytest.fixture(scope="module")
def results():
    out = {}
    for point in ("208gb", "224gb", "240gb", "304gb"):
        config = config_for_point(point, duration_s=DURATION_S)
        out[point] = SelfRefreshSimulator(config).run()
    return out


def test_fig14_capacity_sweep(benchmark, results):
    results = benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    rows = []
    for point, result in results.items():
        paper = PAPER[point]
        paper_text = f"{paper:.1%}" if paper is not None else "mixed"
        warmup = (f"{result.warmup_s:.1f}s" if result.ever_stable
                  else "never")
        rows.append((point, f"{result.active_ranks_per_channel}/ch",
                     f"{result.stable_savings:.1%}", warmup, paper_text))
    report("Figure 14: self-refresh savings by allocated capacity", rows,
           header=("point", "active", "stable", "warmup", "paper"))

    # Shape 1: low utilisation stabilises with solid savings.
    assert results["208gb"].ever_stable
    assert 0.10 < results["208gb"].stable_savings < 0.30
    # Shape 2: the 240 GB point fails (paper's missing bars).
    assert results["240gb"].stable_savings < 0.05
    # Shape 3: the 8-rank configuration still benefits, a bit less than
    # 208 GB (paper: 14.9 % vs 20.3 %).
    assert results["304gb"].ever_stable
    assert 0.07 < results["304gb"].stable_savings < 0.25
    assert results["304gb"].stable_savings < \
        results["208gb"].stable_savings + 0.02
    # Shape 4: savings fall monotonically with allocated capacity at
    # 6 ranks.
    assert results["208gb"].stable_savings >= \
        results["224gb"].stable_savings >= \
        results["240gb"].stable_savings - 0.01


def test_fig14_warmup_involves_iteration(results):
    """The warmup phase is an iterative enter/exit process (Section 6.3)."""
    result = results["208gb"]
    assert result.sr_entries > result.sr_exits - result.sr_entries
    assert result.sr_entries >= 4  # at least one consolidation per channel
    assert result.migrated_bytes > 0


def test_fig14_failure_mode_is_profiling_resets(results):
    """At 240 GB the channel stays in profiling: accesses to the
    hypothetical victim keep resetting the 50 ms timer."""
    result = results["240gb"]
    assert result.sr_entries <= 4  # essentially never enters
    tail = result.steps[-len(result.steps) // 3:]
    assert max(step.sr_ranks for step in tail) == 0
