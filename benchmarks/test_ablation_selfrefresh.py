"""Ablations on the hotness-aware self-refresh design choices.

* **Profiling threshold** (paper: 50 ms): too short enters self-refresh
  with poorly separated data (more wakeups); too long wastes standby
  time before sleeping.
* **Placement**: the DTL's packed allocation concentrates free space, so
  an empty rank sleeps immediately; random placement (the paper's
  trace-mixing setup) needs the CLOCK planner to collect cold segments.
* **Victim granularity**: CKE pairs double the per-victim saving but
  need twice the quiet-segment supply.
"""

import numpy as np
import pytest

from repro.sim.selfrefresh_sim import (SelfRefreshSimConfig,
                                       SelfRefreshSimulator, config_for_point)
from repro.units import NS_PER_MS

from conftest import report

DURATION_S = 30.0


def run(point="208gb", **overrides):
    base = config_for_point(point, duration_s=DURATION_S)
    fields = {name: getattr(base, name)
              for name in base.__dataclass_fields__}
    fields.update(overrides)
    return SelfRefreshSimulator(SelfRefreshSimConfig(**fields)).run()


def test_ablation_profiling_threshold(benchmark):
    def sweep():
        results = {}
        for ms in (10.0, 50.0, 200.0):
            results[ms] = run(step_ns=ms * NS_PER_MS)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(f"{ms:.0f} ms", f"{r.stable_savings:.1%}",
             str(r.sr_exits)) for ms, r in results.items()]
    report("Ablation: profiling threshold", rows,
           header=("threshold", "stable savings", "wakeups"))
    # All thresholds eventually stabilise at this capacity point...
    assert all(r.stable_savings > 0.05 for r in results.values())
    # ...but a hasty threshold enters with poorly separated data and pays
    # more enter/exit churn than the paper's 50 ms.
    assert results[10.0].sr_exits >= results[50.0].sr_exits


def test_ablation_placement(benchmark):
    def sweep():
        return {"scatter": run(placement="scatter"),
                "pack": run(placement="pack")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(name, f"{r.stable_savings:.1%}",
             f"{r.migrated_bytes / 2**20:.0f} MiB")
            for name, r in results.items()]
    report("Ablation: data placement", rows,
           header=("placement", "stable savings", "migrated"))
    # Packed placement leaves whole ranks free: self-refresh works with
    # far less migration than the scattered (paper-simulator) layout.
    assert results["pack"].stable_savings > 0.05
    assert results["pack"].migrated_bytes < results["scatter"].migrated_bytes


def test_ablation_victim_granularity(benchmark):
    def sweep():
        # group_granularity drives both the power-down unit and the SR
        # victim unit in the simulator config.
        single = run(group_granularity=1)
        pair = run(group_granularity=2)
        return {"single rank": single, "CKE pair": pair}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(name, f"{r.active_ranks_per_channel}/ch",
             f"{r.stable_savings:.1%}") for name, r in results.items()]
    report("Ablation: self-refresh victim granularity", rows,
           header=("victim unit", "active ranks", "stable savings"))
    # Both stabilise at 208 GB; the pair saves roughly twice per victim
    # (modulo the extra active ranks the single-rank power-down parks).
    assert results["CKE pair"].stable_savings > 0.10
    assert results["single rank"].ever_stable


def test_ablation_planner_contribution(benchmark):
    """Isolate the CLOCK migration-table planner: without it, a victim
    rank can only sleep if it happens to be naturally quiet for 50 ms —
    which at the boosted replay rate never happens.  The planner is the
    entire mechanism."""
    import dataclasses

    def sweep():
        with_planner = run()
        base = config_for_point("208gb", duration_s=DURATION_S)
        without = SelfRefreshSimulator(
            dataclasses.replace(base, sr_planning=False)).run()
        return {"with planner": with_planner, "without planner": without}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(name, f"{r.stable_savings:.1%}", str(r.sr_entries))
            for name, r in results.items()]
    report("Ablation: CLOCK planner contribution", rows,
           header=("config", "stable savings", "SR entries"))
    assert results["with planner"].stable_savings > 0.10
    assert results["without planner"].stable_savings < 0.01
    assert results["without planner"].sr_entries == 0
