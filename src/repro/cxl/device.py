"""CXL memory device: a DTL controller behind a CXL.mem link.

:class:`CxlMemoryDevice` is the outermost device abstraction: hosts issue
loads/stores against host physical addresses and the device returns data
placement and latency, with the CXL link delay composed in.  It is a thin
wrapper over :class:`~repro.core.controller.DtlController` that keeps the
link model separate from the translation layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DtlConfig
from repro.core.controller import AccessResult, DtlController, VmHandle
from repro.cxl.link import CxlLinkConfig
from repro.dram.timing import NATIVE_DRAM_LATENCY_NS


@dataclass
class CxlMemoryDevice:
    """A pooled CXL memory expander with an embedded DTL.

    Attributes:
        config: DTL configuration (geometry, policies, cache sizing).
        link: CXL link parameters.
    """

    config: DtlConfig = field(default_factory=DtlConfig)
    link: CxlLinkConfig = field(default_factory=CxlLinkConfig)
    controller: DtlController = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.controller is None:
            self.controller = DtlController(
                self.config,
                cxl_latency_ns=self.link.base_latency_ns
                + NATIVE_DRAM_LATENCY_NS)

    # -- host-facing API ---------------------------------------------------------

    def allocate_vm(self, host_id: int, reserved_bytes: int,
                    now_s: float = 0.0) -> VmHandle:
        """Reserve pooled memory for a VM on ``host_id``."""
        return self.controller.allocate_vm(host_id, reserved_bytes, now_s)

    def deallocate_vm(self, vm: VmHandle, now_s: float = 0.0):
        """Release a VM's reservation (may power ranks down)."""
        return self.controller.deallocate_vm(vm, now_s)

    def load(self, host_id: int, hpa: int, now_ns: float = 0.0) -> AccessResult:
        """A read through the CXL.mem path."""
        return self.controller.access(host_id, hpa, is_write=False,
                                      now_ns=now_ns)

    def store(self, host_id: int, hpa: int, now_ns: float = 0.0) -> AccessResult:
        """A write through the CXL.mem path."""
        return self.controller.access(host_id, hpa, is_write=True,
                                      now_ns=now_ns)

    # -- status ----------------------------------------------------------------------

    def power_summary(self) -> dict[str, float]:
        """Instantaneous background power and rank-state census."""
        device = self.controller.device
        counts = device.state_counts()
        return {
            "background_power_rsu": device.background_power(),
            **{f"ranks_{state.value}": float(count)
               for state, count in counts.items()},
        }


__all__ = ["CxlMemoryDevice"]
