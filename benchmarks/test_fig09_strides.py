"""Figure 9: post-cache memory access stride distribution.

Paper: >=4 MB strides dominate single-application traces; with the 8-app
mix, 89.3 % of accesses have strides above 4 MB — even benchmarks with
narrow standalone strides (Data-serving, Media-streaming, Web-serving)
lose their locality when co-scheduled.
"""

import numpy as np

from repro.workloads.cloudsuite import PROFILES, TRACED_BENCHMARKS, make_trace
from repro.workloads.trace import mix

from conftest import report

PAPER_MIX_LARGE_STRIDE = 0.893
ACCESSES_PER_TRACE = 40_000
LARGE = ">=4194304"


def build_traces():
    traces = []
    for index, name in enumerate(TRACED_BENCHMARKS):
        trace = make_trace(name, ACCESSES_PER_TRACE, seed=index)
        traces.append(trace.rebase(index << 36))
    return traces


def test_fig09_stride_distribution(benchmark):
    traces = benchmark.pedantic(build_traces, rounds=1, iterations=1)
    rows = []
    singles = {}
    for trace in traces:
        dist = trace.stride_distribution()
        singles[trace.name] = dist[LARGE]
        rows.append((trace.name, f"{dist[LARGE]:.1%}"))
    mixed = mix(traces, np.random.default_rng(0), name="mix8")
    mixed_large = mixed.stride_distribution()[LARGE]
    rows.append(("8-app mix", f"{mixed_large:.1%} (paper: 89.3%)"))
    report("Figure 9: share of >=4MB strides", rows,
           header=("trace", ">=4MB share"))

    # Shape 1: narrow-stride benchmarks stay below the wide-stride ones.
    for name in ("data-serving", "media-streaming"):
        assert singles[name] < 0.40
    for name in ("graph-analytics", "fb-oss-performance"):
        assert singles[name] > 0.50
    # Shape 2: mixing pushes the large-stride share far above any single
    # app, close to the paper's 89.3 %.
    assert mixed_large > max(singles.values())
    assert 0.80 < mixed_large < 1.0


def test_fig09_mixing_destroys_narrow_locality():
    """The paper's second observation: narrow-stride apps become
    wide-stride once multiple copies interleave."""
    narrow = make_trace("web-serving", ACCESSES_PER_TRACE, seed=0)
    copies = [make_trace("web-serving", ACCESSES_PER_TRACE,
                         seed=i).rebase(i << 36) for i in range(4)]
    mixed = mix(copies, np.random.default_rng(1))
    single_share = narrow.stride_distribution()[LARGE]
    mixed_share = mixed.stride_distribution()[LARGE]
    assert mixed_share > 2 * single_share
