"""Sizing model for the DTL's SRAM/DRAM structures (Table 5).

The paper sizes every structure for a 16-host device at 384 GB and a
hypothetical 4 TB scale-up.  All sizes derive from three widths:

* ``hsn_bits`` — host ID + AU ID + AU offset (Figure 4),
* ``dsn_bits`` — enough to name every 2 MB segment,
* a 64-bit base address for the table-base entries.

The bit-exact layouts below reproduce the paper's numbers: e.g. the
64-entry L1 segment mapping cache stores ``hsn + dsn + valid`` = 41 bits
per entry at 384 GB -> 328 B, exactly Table 5's figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import GIB, KIB, MIB, TIB


def _ceil_log2(value: int) -> int:
    if value <= 1:
        return 0
    return math.ceil(math.log2(value))


@dataclass(frozen=True)
class StructureSizingModel:
    """Compute Table 5 structure sizes for a device capacity.

    Attributes:
        capacity_bytes: Total DRAM behind the controller.
        segment_bytes: Translation granularity (2 MiB).
        au_bytes: Allocation unit (2 GiB).
        max_hosts: Hosts sharing the device (16 in Table 5).
        l1_smc_entries: L1 segment mapping cache entries.
        l2_smc_entries: L2 segment mapping cache entries.
        channels: DRAM channels (for the per-rank queue split).
        ranks_per_channel: Ranks per channel.
        base_addr_bits: Width of a table base address (+ flags).
    """

    capacity_bytes: int = 384 * GIB
    segment_bytes: int = 2 * MIB
    au_bytes: int = 2 * GIB
    max_hosts: int = 16
    l1_smc_entries: int = 64
    l2_smc_entries: int = 1024
    channels: int = 6
    ranks_per_channel: int = 8
    base_addr_bits: int = 69

    # -- derived widths -----------------------------------------------------

    @property
    def total_segments(self) -> int:
        """Segments in the device."""
        return self.capacity_bytes // self.segment_bytes

    @property
    def total_aus(self) -> int:
        """Allocation units in the device."""
        return self.capacity_bytes // self.au_bytes

    @property
    def dsn_bits(self) -> int:
        """Width of a DRAM segment number."""
        return _ceil_log2(self.total_segments)

    @property
    def au_id_bits(self) -> int:
        """Width of an AU ID."""
        return _ceil_log2(self.total_aus)

    @property
    def au_offset_bits(self) -> int:
        """Width of a segment offset within an AU."""
        return _ceil_log2(self.au_bytes // self.segment_bytes)

    @property
    def host_id_bits(self) -> int:
        """Width of the host ID."""
        return _ceil_log2(self.max_hosts)

    @property
    def hsn_bits(self) -> int:
        """Width of a host segment number."""
        return self.host_id_bits + self.au_id_bits + self.au_offset_bits

    @property
    def smc_entry_bits(self) -> int:
        """One SMC entry: HSN tag + DSN + valid."""
        return self.hsn_bits + self.dsn_bits + 1

    @property
    def migration_entry_bits(self) -> int:
        """One migration-table entry: access bit + rank/segment target.

        The target never leaves its channel, so the channel bits of the
        DSN are not stored; the access bit takes their place and the
        entry packs into ``dsn_bits`` total (matching Table 5's 18 bits
        at 384 GB).
        """
        channel_bits = _ceil_log2(self.channels)
        rank_bits = _ceil_log2(self.ranks_per_channel)
        segment_bits = self.dsn_bits - channel_bits - rank_bits
        return 1 + rank_bits + segment_bits + (channel_bits - 1)

    # -- Table 5 rows ----------------------------------------------------------

    def l1_smc_bytes(self) -> int:
        """L1 segment mapping cache size."""
        return self.l1_smc_entries * self.smc_entry_bits // 8

    def l2_smc_bytes(self) -> int:
        """L2 segment mapping cache size."""
        return self.l2_smc_entries * self.smc_entry_bits // 8

    def host_base_table_bytes(self) -> int:
        """Host base address table (SRAM)."""
        return self.max_hosts * self.base_addr_bits // 8

    def au_base_table_bytes(self) -> int:
        """Per-host AU tables (SRAM): one base address per possible AU."""
        entry_bits = self.base_addr_bits - 4  # shorter offsets within pool
        return self.max_hosts * self.total_aus * entry_bits // 8

    def migration_table_bytes(self) -> int:
        """Hot-cold migration table (SRAM)."""
        return self.total_segments * self.migration_entry_bits // 8

    def segment_mapping_table_bytes(self) -> int:
        """Segment mapping table (reserved DRAM): DSN + valid per segment."""
        return self.total_segments * (self.dsn_bits + 1) // 8

    def reverse_mapping_table_bytes(self) -> int:
        """Reverse mapping table (DRAM): HSN + valid per segment."""
        return self.total_segments * (self.hsn_bits + 1) // 8

    def segment_queue_bytes(self) -> int:
        """Free (or allocated) segment queues (DRAM): one DSN per segment."""
        return self.total_segments * self.dsn_bits // 8

    def free_au_queue_bytes(self) -> int:
        """Free AU queue (DRAM): one AU ID per AU."""
        return self.total_aus * self.au_id_bits // 8

    # -- aggregates --------------------------------------------------------------

    def sram_total_bytes(self) -> int:
        """All on-chip SRAM (caches + tables)."""
        return (self.l1_smc_bytes() + self.l2_smc_bytes()
                + self.host_base_table_bytes() + self.au_base_table_bytes()
                + self.migration_table_bytes())

    def dram_total_bytes(self) -> int:
        """All reserved-DRAM structures."""
        return (self.segment_mapping_table_bytes()
                + self.reverse_mapping_table_bytes()
                + 2 * self.segment_queue_bytes()
                + self.free_au_queue_bytes())

    def dram_overhead_fraction(self) -> float:
        """Reserved-DRAM metadata as a fraction of device capacity."""
        return self.dram_total_bytes() / self.capacity_bytes

    def report(self) -> dict[str, int]:
        """All Table 5 rows, in bytes."""
        return {
            "l1_smc": self.l1_smc_bytes(),
            "l2_smc": self.l2_smc_bytes(),
            "host_base_table": self.host_base_table_bytes(),
            "au_base_table": self.au_base_table_bytes(),
            "migration_table": self.migration_table_bytes(),
            "segment_mapping_table": self.segment_mapping_table_bytes(),
            "reverse_mapping_table": self.reverse_mapping_table_bytes(),
            "free_segment_queues": self.segment_queue_bytes(),
            "allocated_segment_queues": self.segment_queue_bytes(),
            "free_au_queue": self.free_au_queue_bytes(),
        }


#: Table 5's two columns.
MODEL_384GB = StructureSizingModel(capacity_bytes=384 * GIB, channels=6,
                                   ranks_per_channel=8)
MODEL_4TB = StructureSizingModel(capacity_bytes=4 * TIB, channels=8,
                                 ranks_per_channel=16, l1_smc_entries=128)

#: Table 5 reference values in bytes (for comparison in tests/benches).
PAPER_TABLE5 = {
    "384GB": {
        "l1_smc": 328,
        "l2_smc": int(5.1 * KIB),
        "host_base_table": 138,
        "au_base_table": int(24.4 * KIB),
        "migration_table": 432 * KIB,
        "segment_mapping_table": 456 * KIB,
        "reverse_mapping_table": 552 * KIB,
        "free_segment_queues": 432 * KIB,
        "allocated_segment_queues": 432 * KIB,
        "free_au_queue": 192,
    },
    "4TB": {
        "l1_smc": 752,
        "l2_smc": int(5.9 * KIB),
        "host_base_table": 138,
        "au_base_table": 260 * KIB,
        "migration_table": 5 * MIB,
        "segment_mapping_table": int(5.5 * MIB),
        "reverse_mapping_table": int(6.5 * MIB),
        "free_segment_queues": int(5.3 * MIB),
        "allocated_segment_queues": int(5.3 * MIB),
        "free_au_queue": int(2.8 * KIB),
    },
}


__all__ = [
    "StructureSizingModel",
    "MODEL_384GB",
    "MODEL_4TB",
    "PAPER_TABLE5",
]
