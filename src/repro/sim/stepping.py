"""Registry bridge to the stepping protocol.

Every experiment registered in :data:`repro.sim.experiments.EXPERIMENTS`
implements the :class:`~repro.checkpoint.stepping.Stepper` protocol —
``begin() -> state`` / ``advance(state) -> bool`` / ``finish(state) ->
result`` — and its ``run()`` is ``finish(drive(begin()))``, so a run
resumed from a mid-flight checkpoint is bit-identical to an
uninterrupted one by construction (and proven by the restore-at-step-k
suite in ``tests/checkpoint/``).

This module is where the CLI's ``repro exp --checkpoint/--resume`` path
and the test suite obtain steppers by name; it exists so that
:mod:`repro.checkpoint` (core machinery) never has to import
:mod:`repro.sim`.
"""

from __future__ import annotations

from typing import Any

from repro.checkpoint import (Checkpoint, Stepper, checkpoint_state,
                              resume_state, run_stepped, run_to_step,
                              run_with_checkpoints)
from repro.sim.experiments import EXPERIMENTS, make_experiment


def make_stepper(name: str, config: Any | None = None) -> Stepper:
    """Instantiate the named experiment as a stepper.

    Every registered experiment supports stepping; the isinstance check
    is a guard for future registrations that forget to.
    """
    experiment = make_experiment(name, config)
    if not isinstance(experiment, Stepper):
        raise TypeError(f"experiment {name!r} does not implement the "
                        "stepping protocol (begin/advance/finish)")
    return experiment


def stepper_names() -> list[str]:
    """Registered experiments that implement the stepping protocol."""
    return [name for name in sorted(EXPERIMENTS)
            if isinstance(make_experiment(
                name, EXPERIMENTS[name].tiny_config()), Stepper)]


__all__ = [
    "Checkpoint",
    "Stepper",
    "checkpoint_state",
    "make_stepper",
    "resume_state",
    "run_stepped",
    "run_to_step",
    "run_with_checkpoints",
    "stepper_names",
]
