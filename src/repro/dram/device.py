"""Whole-device DRAM model: a grid of ranks plus power/energy accounting.

:class:`DramDevice` owns one :class:`~repro.dram.rank.Rank` per
(channel, rank-index) slot, applies rank-group power transitions, and can
report instantaneous power or integrate energy over time through the
:class:`~repro.dram.power.DramPowerModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.geometry import DramGeometry
from repro.dram.power import DramPowerModel, PowerState
from repro.dram.rank import Rank
from repro.dram.timing import DDR4_2933, DramTiming
from repro.errors import PowerStateError
from repro.telemetry import EventKind, EventTrace, MetricsRegistry

RankId = tuple[int, int]


def rank_key(rank_id: RankId) -> str:
    """Metric-name-safe label for a rank, e.g. ``ch0r1``."""
    return f"ch{rank_id[0]}r{rank_id[1]}"


@dataclass
class DramDevice:
    """A DRAM subsystem of ``geometry.total_ranks`` ranks.

    Attributes:
        geometry: Structural parameters.
        power_model: Analytical power model (defaults to one calibrated to
            the paper's Table 2 / Figure 11 numbers).
        timing: DDR4 timing set.
    """

    geometry: DramGeometry
    power_model: DramPowerModel = None  # type: ignore[assignment]
    timing: DramTiming = DDR4_2933
    ranks: dict[RankId, Rank] = field(default_factory=dict)
    _registry: MetricsRegistry | None = field(default=None, repr=False)
    _trace: EventTrace | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.power_model is None:
            self.power_model = DramPowerModel(geometry=self.geometry)
        if self.power_model.geometry != self.geometry:
            raise ValueError("power model geometry does not match device")
        if not self.ranks:
            self.ranks = {
                (channel, index): Rank(channel=channel, index=index)
                for channel in range(self.geometry.channels)
                for index in range(self.geometry.ranks_per_channel)
            }

    # -- lookups ------------------------------------------------------------

    def rank(self, channel: int, index: int) -> Rank:
        """Return the rank at ``(channel, index)``."""
        try:
            return self.ranks[(channel, index)]
        except KeyError:
            raise KeyError(f"no rank ({channel}, {index})") from None

    def ranks_in_channel(self, channel: int) -> list[Rank]:
        """All ranks on one channel, ordered by index."""
        return [self.ranks[(channel, index)]
                for index in range(self.geometry.ranks_per_channel)]

    def rank_group(self, group_index: int) -> list[Rank]:
        """The rank-group with index ``group_index`` (one rank per channel)."""
        return [self.ranks[(channel, group_index)]
                for channel in range(self.geometry.channels)]

    def record_accesses(self, channels: np.ndarray,
                        ranks: np.ndarray) -> None:
        """Bulk-count accesses: one :meth:`Rank.record_access` per rank.

        Equivalent to ``rank(c, r).record_access()`` for every paired
        ``(c, r)`` element, but with per-rank totals accumulated by
        ``np.bincount`` first.
        """
        per_channel = self.geometry.ranks_per_channel
        codes = (np.asarray(channels, dtype=np.int64) * per_channel
                 + np.asarray(ranks, dtype=np.int64))
        for code, count in enumerate(np.bincount(codes)):
            if count:
                self.rank(code // per_channel,
                          code % per_channel).record_access(int(count))

    def state_counts(self) -> dict[PowerState, int]:
        """Number of ranks currently in each power state."""
        counts = {state: 0 for state in PowerState}
        for rank in self.ranks.values():
            counts[rank.state] += 1
        return counts

    def standby_ranks_per_channel(self, channel: int) -> int:
        """Count of standby (active) ranks on ``channel``."""
        return sum(1 for rank in self.ranks_in_channel(channel)
                   if rank.state is PowerState.STANDBY)

    # -- telemetry -----------------------------------------------------------

    def attach_telemetry(self, registry: MetricsRegistry,
                         trace: EventTrace | None = None) -> None:
        """Route power transitions into a shared registry + event trace."""
        self._registry = registry
        self._trace = trace

    def _transition(self, rank: Rank, state: PowerState,
                    now_s: float) -> float:
        """Apply one rank transition, recording telemetry when attached."""
        old_state = rank.state
        penalty_ns = rank.set_state(state, now_s)
        if old_state is state:
            return penalty_ns
        if self._registry is not None:
            self._registry.counter("dram.power_transitions").inc()
            self._registry.counter(
                f"dram.power_transitions.to_{state.name.lower()}").inc()
        if self._trace is not None:
            self._trace.record(EventKind.POWER_TRANSITION, time=now_s,
                               rank=rank_key(rank.rank_id),
                               from_state=old_state.name.lower(),
                               to_state=state.name.lower(),
                               penalty_ns=penalty_ns)
        return penalty_ns

    def record_ecc_error(self, rank_id: RankId, bits: int = 1,
                         now_s: float = 0.0) -> bool:
        """Account one ECC event on ``rank_id``; True when corrected.

        Single-bit errors are corrected in place (SECDED); multi-bit
        errors are detected-but-uncorrected and poison the line at the
        requester — either way the event is never silent, which is what
        the reliability report's data-loss assertion leans on.
        """
        corrected = bits < 2
        if self._registry is not None:
            self._registry.counter("dram.ecc.errors").inc()
            outcome = "corrected" if corrected else "uncorrected"
            self._registry.counter(f"dram.ecc.{outcome}").inc()
            self._registry.counter(
                f"dram.ecc.errors.{rank_key(rank_id)}").inc()
        if self._trace is not None:
            self._trace.record(EventKind.ECC_ERROR, time=now_s,
                               rank=rank_key(rank_id), bits=bits,
                               corrected=corrected)
        return corrected

    def residency_by_rank(self, now_s: float | None = None,
                          ) -> dict[str, dict[str, float]]:
        """Per-rank power-state residency seconds, keyed like ``ch0r1``.

        With ``now_s`` the open interval of each rank's current state is
        included (the ranks themselves are not mutated).
        """
        return {rank_key(rank_id): rank.residency_snapshot(now_s)
                for rank_id, rank in sorted(self.ranks.items())}

    # -- transitions ---------------------------------------------------------

    def set_rank_state(self, rank_id: RankId, state: PowerState,
                       now_s: float) -> float:
        """Transition a single rank; returns exit penalty in ns."""
        return self._transition(self.ranks[rank_id], state, now_s)

    def set_rank_group_state(self, group_index: int, state: PowerState,
                             now_s: float) -> float:
        """Transition a whole rank-group; returns the max exit penalty (ns).

        The paper transitions power state at rank-group granularity
        (Section 3.3) so channel bandwidth stays balanced.
        """
        penalties = [self._transition(rank, state, now_s)
                     for rank in self.rank_group(group_index)]
        return max(penalties)

    def set_virtual_rank_group_state(self, rank_ids: list[RankId],
                                     state: PowerState, now_s: float) -> float:
        """Transition a *virtual* rank-group (Section 4.3).

        A virtual rank-group takes one idle rank per channel, possibly with
        different rank indices.  Returns the max exit penalty (ns).

        Raises:
            PowerStateError: if the set does not contain exactly one rank
                per channel.
        """
        channels = sorted(channel for channel, _ in rank_ids)
        if channels != list(range(self.geometry.channels)):
            raise PowerStateError(
                "virtual rank-group must contain exactly one rank per channel, "
                f"got channels {channels}")
        penalties = [self._transition(self.ranks[rank_id], state, now_s)
                     for rank_id in rank_ids]
        return max(penalties)

    # -- power / energy -------------------------------------------------------

    def background_power(self) -> float:
        """Instantaneous background power (RSU) for the current states."""
        return self.power_model.background_power(self.state_counts())

    def total_power(self, bandwidth_gbs: float) -> float:
        """Instantaneous total power at the given consumed bandwidth (RSU)."""
        return self.background_power() + self.power_model.active_power(
            bandwidth_gbs)

    def finalize(self, now_s: float) -> None:
        """Close all ranks' residency intervals."""
        for rank in self.ranks.values():
            rank.finalize(now_s)

    def background_energy(self) -> float:
        """Total background energy accumulated so far (RSU-seconds).

        Call :meth:`finalize` first to close open residency intervals.
        """
        return sum(rank.background_energy(self.power_model.state_power)
                   for rank in self.ranks.values())

    # -- serialisation --------------------------------------------------------

    def state_dict(self) -> dict:
        """Every rank's power/residency state, as plain data.

        Transition counters live in the attached registry and restore
        through :meth:`~repro.telemetry.MetricsRegistry.load_state_dict`.
        """
        return {"ranks": {rank_id: rank.state_dict()
                          for rank_id, rank in sorted(self.ranks.items())}}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (same geometry required)."""
        if set(state["ranks"]) != set(self.ranks):
            raise ValueError(
                "rank set mismatch: checkpoint was taken with a "
                "different DRAM geometry")
        for rank_id, rank_state in state["ranks"].items():
            self.ranks[rank_id].load_state_dict(rank_state)


__all__ = ["DramDevice", "RankId", "rank_key"]
