"""Adaptive demotion: MPSM vs self-refresh from observed idle gaps.

The paper picks the park depth statically per deployment; Lu et al.
(PAPERS.md) argue the break-even point depends on how long ranks
actually stay idle.  MPSM draws 0.068 RSU against self-refresh's 0.2,
but costs a deeper 700 ns exit and loses contents — so short, frequent
parks want the shallow state and long quiet spells want the deep one.

This policy keeps the paper's victim selection and hotness prediction
untouched and swaps only :meth:`demotion_level`, reading the per-rank
idle-gap histograms that both hosts feed via ``observe_idle_gap``:

* power-down site: if the median observed park is shorter than
  ``short_park_ns``, park in SELF_REFRESH (cheap 500 ns exit) instead
  of MPSM; with no history yet, trust the paper's MPSM default.
* self-refresh site: if the median residency is shorter than
  ``sr_thrash_ns``, the block is wake-thrashing — answer STAY_ACTIVE
  and let the quiet timer re-arm rather than paying another
  entry/exit round-trip.
"""

from __future__ import annotations

from typing import Sequence

from repro.policies.idle import RankIdleTracker
from repro.policies.paper import PaperPolicy
from repro.policies.protocol import (
    DemotionLevel,
    PolicyConfig,
    RankStats,
    register_policy,
)


@register_policy
class AdaptiveDemotionPolicy(PaperPolicy):
    """Paper victim selection with idle-histogram-driven demotion."""

    name = "adaptive"

    def __init__(self, config: PolicyConfig | None = None):
        super().__init__(config)
        self.idle = RankIdleTracker(self.config.idle_history)

    def observe_idle_gap(self, site: str, channel: int, rank: int,
                         gap_ns: float) -> None:
        self.idle.observe(site, channel, rank, gap_ns)

    def _median_gap(self, site: str,
                    stats: Sequence[RankStats]) -> float | None:
        """Worst (smallest) per-rank median across the group, requiring
        ``min_idle_samples`` history on every rank; the group parks and
        wakes together, so its most restless member sets the depth."""
        worst: float | None = None
        for entry in stats:
            if (self.idle.samples(site, entry.channel, entry.rank)
                    < self.config.min_idle_samples):
                return None
            gap = self.idle.typical_gap_ns(site, entry.channel, entry.rank)
            if gap is None:
                return None
            if worst is None or gap < worst:
                worst = gap
        return worst

    def demotion_level(self, site: str,
                       stats: Sequence[RankStats]) -> DemotionLevel:
        gap = self._median_gap(site, stats)
        if site == "powerdown":
            if gap is not None and gap < self.config.short_park_ns:
                return DemotionLevel.SELF_REFRESH
            return DemotionLevel.MPSM
        if gap is not None and gap < self.config.sr_thrash_ns:
            return DemotionLevel.STAY_ACTIVE
        return DemotionLevel.SELF_REFRESH


__all__ = ["AdaptiveDemotionPolicy"]
