"""Parallel experiment execution: task runner, result cache, seeding.

The experiments in :mod:`repro.sim` are embarrassingly parallel — a
fleet is independent node simulations, a rank sweep is independent rank
counts, a sensitivity grid is independent constant pairs.  This package
gives them one shared executor:

* :func:`run_tasks` — ordered fan-out over a process pool with per-task
  timeout, bounded retry, serial fallback, and telemetry accounting;
* :class:`ResultCache` — on-disk result cache keyed by a stable hash of
  the experiment's config dataclass;
* :func:`derive_seed` — deterministic per-task seed derivation.

Nothing here imports from :mod:`repro.sim`; the simulators depend on the
executor, never the other way around.
"""

from repro.exec.cache import CACHE_DIR_ENV, ResultCache
from repro.exec.hashing import canonical, derive_seed, stable_hash, task_key
from repro.exec.runner import (EXEC_METRICS, ExecConfig, NESTED_ENV,
                               TaskOutcome, TaskSpec, WORKERS_ENV,
                               default_workers, run_tasks)
from repro.exec.sharding import (ShardPlan, ShardReducer, run_shard,
                                 shard_slices, shard_tasks)
from repro.exec.warmstart import (PrefixSpec, WarmStartPlan,
                                  clear_prefix_memo, prefix_memo_size,
                                  run_warm_task, warm_task_key,
                                  warm_task_spec)

__all__ = [
    "CACHE_DIR_ENV",
    "ResultCache",
    "canonical",
    "derive_seed",
    "stable_hash",
    "task_key",
    "EXEC_METRICS",
    "ExecConfig",
    "NESTED_ENV",
    "PrefixSpec",
    "ShardPlan",
    "ShardReducer",
    "TaskOutcome",
    "TaskSpec",
    "WORKERS_ENV",
    "WarmStartPlan",
    "clear_prefix_memo",
    "default_workers",
    "prefix_memo_size",
    "run_shard",
    "run_tasks",
    "run_warm_task",
    "shard_slices",
    "shard_tasks",
    "warm_task_key",
    "warm_task_spec",
]
