"""DRAM power model.

Reproduces the paper's power methodology (Section 5.1, Table 2, Figure 11):

* Per-rank *background* power depends only on the rank's power state —
  standby 1.0, self-refresh 0.2, MPSM 0.068 (normalised to standby).
* *Active* power scales near-linearly with the bandwidth actually consumed
  (Figure 11(b)), independent of how many ranks serve it.
* A small per-channel fixed overhead models clocking/register power that
  does not scale with rank count.

All powers are expressed in normalised "rank-standby units" (RSU): the
background power of one rank in standby is 1.0.  Absolute watts can be
obtained by multiplying with :attr:`DramPowerModel.rank_standby_watts`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dram.geometry import DramGeometry
from repro.errors import PowerStateError


class PowerState(enum.Enum):
    """JEDEC-style rank power states used by the paper (Section 2)."""

    STANDBY = "standby"
    SELF_REFRESH = "self_refresh"
    MPSM = "mpsm"

    def retains_data(self) -> bool:
        """MPSM is the only state without data retention."""
        return self is not PowerState.MPSM


#: Table 2 — normalised background power in each state.
STATE_POWER = {
    PowerState.STANDBY: 1.0,
    PowerState.SELF_REFRESH: 0.2,
    PowerState.MPSM: 0.068,
}

#: Legal state transitions.  MPSM responds only to ``MPSM_exit`` so a rank
#: must pass through standby between low-power states.
_LEGAL_TRANSITIONS = {
    PowerState.STANDBY: {PowerState.SELF_REFRESH, PowerState.MPSM,
                         PowerState.STANDBY},
    PowerState.SELF_REFRESH: {PowerState.STANDBY},
    PowerState.MPSM: {PowerState.STANDBY},
}

#: Exit penalties, "in the order of hundreds of nanoseconds" (Section 2,
#: Samsung datasheet [47]).
SELF_REFRESH_EXIT_NS = 500.0
MPSM_EXIT_NS = 700.0


def check_transition(old: PowerState, new: PowerState) -> None:
    """Raise :class:`PowerStateError` if ``old -> new`` is illegal."""
    if new not in _LEGAL_TRANSITIONS[old]:
        raise PowerStateError(f"illegal power transition {old.value} -> {new.value}")


def transition_exit_penalty_ns(old: PowerState, new: PowerState) -> float:
    """Latency penalty in nanoseconds for leaving a low-power state."""
    if old is PowerState.SELF_REFRESH and new is PowerState.STANDBY:
        return SELF_REFRESH_EXIT_NS
    if old is PowerState.MPSM and new is PowerState.STANDBY:
        return MPSM_EXIT_NS
    return 0.0


@dataclass(frozen=True)
class DramPowerModel:
    """Analytical DRAM power model calibrated to the paper's measurements.

    Attributes:
        geometry: Device geometry the model describes.
        state_power: Normalised background power per state (Table 2).
        channel_fixed_overhead: Per-channel background power that does not
            scale with rank count (clock/register power), in RSU.
        active_power_per_gbs: Active power per GB/s of consumed bandwidth,
            in RSU (Figure 11(b): near-linear scaling).
        rank_standby_watts: Absolute standby background power of one rank,
            used only when converting to watts.
    """

    geometry: DramGeometry
    state_power: dict[PowerState, float] = field(
        default_factory=lambda: dict(STATE_POWER))
    channel_fixed_overhead: float = 2.4
    active_power_per_gbs: float = 0.25
    rank_standby_watts: float = 1.5

    # -- background ---------------------------------------------------------

    def rank_background_power(self, state: PowerState) -> float:
        """Background power of a single rank in ``state`` (RSU)."""
        return self.state_power[state]

    def background_power(self, state_counts: dict[PowerState, int]) -> float:
        """Total background power for a population of ranks (RSU).

        Args:
            state_counts: Mapping from power state to the number of ranks
                currently in that state.
        """
        total_ranks = sum(state_counts.values())
        if total_ranks != self.geometry.total_ranks:
            raise ValueError(
                f"state_counts covers {total_ranks} ranks, geometry has "
                f"{self.geometry.total_ranks}")
        power = self.channel_fixed_overhead * self.geometry.channels
        for state, count in state_counts.items():
            power += count * self.state_power[state]
        return power

    def background_power_active_ranks(self, active_per_channel: int,
                                      idle_state: PowerState = PowerState.MPSM,
                                      ) -> float:
        """Background power with ``active_per_channel`` standby ranks per
        channel and the remainder in ``idle_state`` (RSU).

        This is the quantity plotted in Figure 11(a) (normalised).
        """
        if not 0 <= active_per_channel <= self.geometry.ranks_per_channel:
            raise ValueError(
                f"active_per_channel {active_per_channel} out of range")
        idle = self.geometry.ranks_per_channel - active_per_channel
        counts = {
            PowerState.STANDBY: active_per_channel * self.geometry.channels,
            idle_state: idle * self.geometry.channels,
        }
        if idle == 0:
            counts = {PowerState.STANDBY: counts[PowerState.STANDBY]}
        return self.background_power(counts)

    # -- active -------------------------------------------------------------

    def active_power(self, bandwidth_gbs: float) -> float:
        """Active (access) power for the given consumed bandwidth (RSU)."""
        if bandwidth_gbs < 0:
            raise ValueError("bandwidth must be non-negative")
        return self.active_power_per_gbs * bandwidth_gbs

    def total_power(self, state_counts: dict[PowerState, int],
                    bandwidth_gbs: float) -> float:
        """Background + active power (RSU)."""
        return self.background_power(state_counts) + self.active_power(
            bandwidth_gbs)

    # -- conversions ---------------------------------------------------------

    def to_watts(self, rsu: float) -> float:
        """Convert normalised rank-standby units to watts."""
        return rsu * self.rank_standby_watts

    def baseline_background_power(self) -> float:
        """Background power with every rank in standby (the paper baseline)."""
        return self.background_power(
            {PowerState.STANDBY: self.geometry.total_ranks})


@dataclass
class EnergyAccumulator:
    """Integrates power over time into energy, split by component.

    Energies are in RSU-seconds; convert with ``DramPowerModel.to_watts``.
    """

    background_j: float = 0.0
    active_j: float = 0.0
    migration_j: float = 0.0

    @property
    def total_j(self) -> float:
        """Total accumulated energy."""
        return self.background_j + self.active_j + self.migration_j

    def add_interval(self, duration_s: float, background_power: float,
                     active_power: float, migration_power: float = 0.0) -> None:
        """Accumulate one interval of constant power."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        self.background_j += background_power * duration_s
        self.active_j += active_power * duration_s
        self.migration_j += migration_power * duration_s

    def merge(self, other: "EnergyAccumulator") -> None:
        """Fold another accumulator's totals into this one."""
        self.background_j += other.background_j
        self.active_j += other.active_j
        self.migration_j += other.migration_j


__all__ = [
    "PowerState",
    "STATE_POWER",
    "SELF_REFRESH_EXIT_NS",
    "MPSM_EXIT_NS",
    "check_transition",
    "transition_exit_penalty_ns",
    "DramPowerModel",
    "EnergyAccumulator",
]
