"""The DTL service wire protocol: newline-delimited JSON frames.

One request per line, one response per line, in order.  Every request is
a JSON object with an ``op`` field; every response echoes the request's
``op`` (and ``id``, when the client sent one) and carries either
``"ok": true`` plus the op's result fields, or ``"ok": false`` with a
typed :class:`ErrorCode` in ``error`` — admission-control rejections are
ordinary typed responses, never dropped connections.

Operations (full field reference in docs/SERVER.md):

================  =====================================================
``open_tenant``   Register (or re-attach) a tenant; returns its shard
                  and quota.  Rejections: ``tenant_limit``.
``allocate``      Reserve memory for a new VM (whole AUs).  Rejections:
                  ``quota_exceeded``, ``capacity``, ``rate_limited``.
``free``          Release one of the tenant's VMs.
``access_batch``  A batch of loads/stores addressed by segment index
                  inside one of the tenant's VMs.  Rejections:
                  ``not_owner``, ``out_of_range``, ``rate_limited``.
``stats``         The server's telemetry snapshot (never rejected, so
                  an operator can always observe a draining server).
``close``         Detach the tenant, freeing all of its VMs.
================  =====================================================

Timestamps: any request may carry ``"t"`` (seconds, float) — the
tenant's logical clock.  Admission-control refill and the simulated DTL
clock both advance on it, which is what makes a recorded request tail
deterministically replayable (the drain/restore identity story).
Untimed requests fall back to the server's wall clock.
"""

from __future__ import annotations

import json
from enum import Enum
from typing import Any

#: Upper bound on one request line; longer frames are a protocol error
#: (bounds per-request memory no matter what a client sends).
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A frame that cannot be parsed as a protocol request."""


class ErrorCode(str, Enum):
    """Typed rejection/failure codes (the ``error`` response field)."""

    #: Malformed frame: not JSON, not an object, or missing fields.
    BAD_REQUEST = "bad_request"
    #: ``op`` is not one of the operations above.
    UNKNOWN_OP = "unknown_op"
    #: The named tenant has not been opened on this server.
    UNKNOWN_TENANT = "unknown_tenant"
    #: Admission control: the server is at its tenant limit.
    TENANT_LIMIT = "tenant_limit"
    #: Admission control: the tenant's token bucket is empty; the
    #: response carries ``retry_after_s``.
    RATE_LIMITED = "rate_limited"
    #: Admission control: the allocation would exceed the tenant's
    #: capacity quota.
    QUOTA_EXCEEDED = "quota_exceeded"
    #: The device itself cannot satisfy the allocation.
    CAPACITY = "capacity"
    #: The VM named in the request belongs to a different tenant (the
    #: cross-tenant isolation gate).
    NOT_OWNER = "not_owner"
    #: A segment index falls outside the VM's reservation.
    OUT_OF_RANGE = "out_of_range"
    #: The server is draining; only ``stats`` is still served.
    DRAINING = "draining"
    #: An unexpected server-side failure (the message carries the
    #: exception text; shard state is audited, not rolled back).
    INTERNAL = "internal"


def encode(message: dict[str, Any]) -> bytes:
    """Serialise one frame: compact JSON plus the line terminator."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on junk."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds {MAX_LINE_BYTES}")
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame is not a JSON object")
    return message


def ok_response(op: str, request: dict[str, Any] | None = None,
                **fields: Any) -> dict[str, Any]:
    """A success response for ``op``, echoing the request ``id``."""
    response: dict[str, Any] = {"ok": True, "op": op}
    if request is not None and "id" in request:
        response["id"] = request["id"]
    response.update(fields)
    return response


def error_response(code: ErrorCode, message: str,
                   request: dict[str, Any] | None = None,
                   **fields: Any) -> dict[str, Any]:
    """A typed rejection/failure response."""
    response: dict[str, Any] = {"ok": False, "error": code.value,
                                "message": message}
    if request is not None:
        if "op" in request:
            response["op"] = request["op"]
        if "id" in request:
            response["id"] = request["id"]
    response.update(fields)
    return response


def render_snapshot(snapshot) -> str:
    """The one snapshot serialisation shared by the server's telemetry
    exporter, the ``stats`` operation, and ``repro stats --watch``."""
    return snapshot.to_json(indent=2)


__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "ErrorCode",
    "encode",
    "decode_line",
    "ok_response",
    "error_response",
    "render_snapshot",
]
