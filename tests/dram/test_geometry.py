"""Tests for the DRAM geometry model."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.geometry import (DramGeometry, PAPER_1TB_GEOMETRY,
                                 PAPER_4TB_GEOMETRY, geometry_for_capacity)
from repro.errors import ConfigurationError
from repro.units import GIB, MIB, TIB


class TestCapacityMath:
    def test_paper_1tb_totals(self):
        geo = PAPER_1TB_GEOMETRY
        assert geo.total_bytes == 1 * TIB
        assert geo.total_ranks == 32
        assert geo.channel_bytes == 256 * GIB

    def test_paper_4tb_totals(self):
        geo = PAPER_4TB_GEOMETRY
        assert geo.total_bytes == 4 * TIB
        assert geo.total_ranks == 128

    def test_segments(self):
        geo = DramGeometry(rank_bytes=1 * GIB)
        assert geo.segments_per_rank == 512
        assert geo.segments_per_channel == 512 * 8
        assert geo.total_segments == 512 * 8 * 4

    def test_rank_group(self):
        geo = DramGeometry(rank_bytes=1 * GIB)
        assert geo.rank_group_bytes == 4 * GIB
        assert geo.rank_group_segments == 2048


class TestBitWidths:
    def test_figure6_layout(self):
        """The 1 TB reference device of Figure 6."""
        geo = PAPER_1TB_GEOMETRY
        assert geo.segment_offset_bits == 21
        assert geo.channel_bits == 2
        assert geo.rank_bits == 3
        assert geo.dpa_bits == 40  # 1 TiB

    def test_dpa_bits_cover_capacity(self):
        geo = DramGeometry(rank_bytes=1 * GIB)
        assert 1 << geo.dpa_bits == geo.total_bytes


class TestValidation:
    def test_rejects_non_power_of_two_channels(self):
        with pytest.raises(ConfigurationError):
            DramGeometry(channels=3)

    def test_rejects_non_power_of_two_rank_size(self):
        with pytest.raises(ConfigurationError):
            DramGeometry(rank_bytes=3 * GIB)

    def test_rejects_segment_larger_than_rank(self):
        with pytest.raises(ConfigurationError):
            DramGeometry(rank_bytes=1 * MIB, segment_bytes=2 * MIB)


class TestGeometryForCapacity:
    def test_even_split(self):
        geo = geometry_for_capacity(32 * GIB)
        assert geo.rank_bytes == 1 * GIB
        assert geo.total_bytes == 32 * GIB

    def test_rejects_uneven(self):
        with pytest.raises(ConfigurationError):
            geometry_for_capacity(33 * GIB)

    @given(st.integers(min_value=0, max_value=6))
    def test_power_of_two_capacities_always_work(self, shift):
        total = (32 << shift) * GIB
        geo = geometry_for_capacity(total)
        assert geo.total_bytes == total


class TestDescribe:
    def test_describe_mentions_shape(self):
        text = DramGeometry(rank_bytes=1 * GIB).describe()
        assert "4ch" in text and "8ranks" in text
