"""DTL translation tables: the three-level miss path plus reverse mapping.

The miss path (Figure 4) is:

1. **Host base address table** (on-chip SRAM) — host ID -> base of that
   host's AU table.
2. **AU table** (on-chip SRAM, one per host) — AU ID -> base address of the
   AU's slice of the segment mapping table.
3. **Segment mapping table** (in reserved DRAM) — AU offset -> DSN.

A **reverse mapping table** (DSN -> HSN, also in reserved DRAM) supports
mapping updates after data migration (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.addressing import HostAddressLayout
from repro.errors import AddressError, AllocationError, TranslationError

UNMAPPED = -1


@dataclass
class WalkResult:
    """Outcome of a full table walk for one HSN."""

    dsn: int
    sram_accesses: int
    dram_accesses: int


class AuMappingSlice:
    """The segment mapping table slice for one allocated AU.

    Maps AU offsets (0 .. segments_per_au-1) to DSNs; ``UNMAPPED`` marks
    segments not yet backed by DRAM.  Backed by an int64 array so whole
    slices can be gathered/scattered by the batch datapath.
    """

    def __init__(self, au_id: int, segments_per_au: int):
        self.au_id = au_id
        self._dsns = np.full(segments_per_au, UNMAPPED, dtype=np.int64)

    def get(self, au_offset: int) -> int:
        """DSN for ``au_offset`` (may be :data:`UNMAPPED`)."""
        return int(self._dsns[au_offset])

    def set(self, au_offset: int, dsn: int) -> None:
        """Record that ``au_offset`` is backed by segment ``dsn``."""
        self._dsns[au_offset] = dsn

    def set_batch(self, au_offsets: np.ndarray, dsns: np.ndarray) -> None:
        """Scatter ``dsns`` into the slice at ``au_offsets``."""
        self._dsns[au_offsets] = dsns

    def get_batch(self, au_offsets: np.ndarray) -> np.ndarray:
        """Gather the DSNs at ``au_offsets`` (may contain UNMAPPED)."""
        return self._dsns[au_offsets]

    def clear(self, au_offset: int) -> int:
        """Unmap ``au_offset``; returns the previous DSN."""
        old = int(self._dsns[au_offset])
        self._dsns[au_offset] = UNMAPPED
        return old

    def mapped_offsets(self) -> list[int]:
        """AU offsets currently backed by a segment."""
        return [int(offset)
                for offset in np.nonzero(self._dsns != UNMAPPED)[0]]

    def __len__(self) -> int:
        return len(self._dsns)


class TranslationTables:
    """All DTL mapping state for one device.

    This class is purely functional bookkeeping — latency and energy of
    table accesses are accounted by the callers
    (:class:`repro.core.translation.TranslationEngine`).
    """

    def __init__(self, layout: HostAddressLayout):
        self.layout = layout
        # host_id -> {au_id -> AuMappingSlice}; models host base address
        # table + per-host AU tables + the DRAM-resident mapping slices.
        self._hosts: dict[int, dict[int, AuMappingSlice]] = {}
        # DSN -> HSN reverse map.
        self._reverse: dict[int, int] = {}

    # -- AU lifecycle ---------------------------------------------------------

    def register_host(self, host_id: int) -> None:
        """Create the AU table for ``host_id`` if not present."""
        if not 0 <= host_id < self.layout.max_hosts:
            raise AddressError(f"host_id {host_id} out of range")
        self._hosts.setdefault(host_id, {})

    def allocate_au(self, host_id: int, au_id: int) -> AuMappingSlice:
        """Create the mapping slice for a newly allocated AU."""
        self.register_host(host_id)
        aus = self._hosts[host_id]
        if au_id in aus:
            raise AllocationError(
                f"AU {au_id} of host {host_id} already allocated")
        if not 0 <= au_id < self.layout.max_aus_per_host:
            raise AddressError(f"au_id {au_id} out of range")
        aus[au_id] = AuMappingSlice(au_id, self.layout.segments_per_au)
        return aus[au_id]

    def free_au(self, host_id: int, au_id: int) -> list[int]:
        """Tear down an AU; returns the DSNs of its mapped segments."""
        au_slice = self._au_slice(host_id, au_id)
        dsns = []
        for au_offset in au_slice.mapped_offsets():
            dsn = au_slice.clear(au_offset)
            self._reverse.pop(dsn, None)
            dsns.append(dsn)
        del self._hosts[host_id][au_id]
        return dsns

    def au_ids(self, host_id: int) -> list[int]:
        """AU IDs currently allocated for ``host_id``."""
        return sorted(self._hosts.get(host_id, {}))

    def _au_slice(self, host_id: int, au_id: int) -> AuMappingSlice:
        try:
            return self._hosts[host_id][au_id]
        except KeyError:
            raise TranslationError(
                f"AU {au_id} of host {host_id} is not allocated") from None

    # -- mapping --------------------------------------------------------------

    def map_segment(self, hsn: int, dsn: int) -> None:
        """Install the HSN -> DSN mapping (and its reverse)."""
        host_id, au_id, au_offset = self.layout.unpack_hsn(hsn)
        au_slice = self._au_slice(host_id, au_id)
        if au_slice.get(au_offset) != UNMAPPED:
            raise TranslationError(f"HSN {hsn:#x} is already mapped")
        if dsn in self._reverse:
            raise TranslationError(f"DSN {dsn:#x} is already in use")
        au_slice.set(au_offset, dsn)
        self._reverse[dsn] = hsn

    def map_au_segments(self, host_id: int, au_id: int,
                        dsns: np.ndarray) -> np.ndarray:
        """Install one AU's whole mapping slice in a single scatter.

        Equivalent to calling :meth:`map_segment` for every
        ``(au_offset, dsn)`` pair in order, with the same validation
        (already-mapped offsets and in-use DSNs are rejected before any
        state changes).  Returns the packed HSNs of the mapped segments.
        """
        au_slice = self._au_slice(host_id, au_id)
        dsns = np.asarray(dsns, dtype=np.int64)
        au_offsets = np.arange(len(dsns), dtype=np.int64)
        hsns = self.layout.pack_hsn_batch(host_id,
                                          np.full(len(dsns), au_id,
                                                  dtype=np.int64),
                                          au_offsets)
        if (au_slice.get_batch(au_offsets) != UNMAPPED).any():
            raise TranslationError(
                f"AU {au_id} of host {host_id} has mapped segments")
        if len(np.unique(dsns)) != len(dsns) or any(
                int(dsn) in self._reverse for dsn in dsns):
            raise TranslationError("DSN already in use in batch mapping")
        au_slice.set_batch(au_offsets, dsns)
        self._reverse.update(zip(map(int, dsns), map(int, hsns)))
        return hsns

    def remap_segment(self, hsn: int, new_dsn: int) -> int:
        """Point ``hsn`` at ``new_dsn`` after migration; returns the old DSN."""
        host_id, au_id, au_offset = self.layout.unpack_hsn(hsn)
        au_slice = self._au_slice(host_id, au_id)
        old_dsn = au_slice.get(au_offset)
        if old_dsn == UNMAPPED:
            raise TranslationError(f"HSN {hsn:#x} is not mapped")
        if new_dsn in self._reverse:
            raise TranslationError(f"DSN {new_dsn:#x} is already in use")
        au_slice.set(au_offset, new_dsn)
        del self._reverse[old_dsn]
        self._reverse[new_dsn] = hsn
        return old_dsn

    def swap_segments(self, hsn_a: int, hsn_b: int) -> None:
        """Exchange the DSNs of two mapped HSNs (hot/cold swap)."""
        dsn_a = self.walk(hsn_a).dsn
        dsn_b = self.walk(hsn_b).dsn
        host_a, au_a, off_a = self.layout.unpack_hsn(hsn_a)
        host_b, au_b, off_b = self.layout.unpack_hsn(hsn_b)
        self._au_slice(host_a, au_a).set(off_a, dsn_b)
        self._au_slice(host_b, au_b).set(off_b, dsn_a)
        self._reverse[dsn_a] = hsn_b
        self._reverse[dsn_b] = hsn_a

    def unmap_segment(self, hsn: int) -> int:
        """Remove the mapping for ``hsn``; returns the freed DSN."""
        host_id, au_id, au_offset = self.layout.unpack_hsn(hsn)
        au_slice = self._au_slice(host_id, au_id)
        dsn = au_slice.clear(au_offset)
        if dsn == UNMAPPED:
            raise TranslationError(f"HSN {hsn:#x} is not mapped")
        del self._reverse[dsn]
        return dsn

    # -- lookups --------------------------------------------------------------

    def walk(self, hsn: int) -> WalkResult:
        """Full three-level walk: 2 SRAM accesses + 1 DRAM access.

        Raises:
            TranslationError: if the HSN has no mapping.
        """
        host_id, au_id, au_offset = self.layout.unpack_hsn(hsn)
        au_slice = self._au_slice(host_id, au_id)
        dsn = au_slice.get(au_offset)
        if dsn == UNMAPPED:
            raise TranslationError(f"HSN {hsn:#x} is not mapped")
        return WalkResult(dsn=dsn, sram_accesses=2, dram_accesses=1)

    def walk_batch(self, hsns: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`walk`: one DSN per input HSN.

        HSNs are grouped by their ``(host_id, au_id)`` prefix so each
        allocated AU's slice is gathered once, however many times its
        segments repeat in the batch.

        Raises:
            TranslationError: if any HSN has no mapping.
        """
        hsns = np.asarray(hsns, dtype=np.int64)
        dsns = np.empty(len(hsns), dtype=np.int64)
        if not len(hsns):
            return dsns
        layout = self.layout
        if not (0 <= int(hsns.min())
                and int(hsns.max()) < (1 << layout.hsn_bits)):
            raise AddressError("HSN out of range in batch")
        au_offsets = hsns & (layout.segments_per_au - 1)
        prefixes = hsns >> layout.au_offset_bits  # host_id | au_id
        au_mask = layout.max_aus_per_host - 1
        for prefix in np.unique(prefixes):
            host_id = int(prefix) >> layout.au_id_bits
            au_id = int(prefix) & au_mask
            mask = prefixes == prefix
            au_slice = self._au_slice(host_id, au_id)
            group = au_slice.get_batch(au_offsets[mask])
            if (group == UNMAPPED).any():
                bad = hsns[mask][group == UNMAPPED][0]
                raise TranslationError(f"HSN {int(bad):#x} is not mapped")
            dsns[mask] = group
        return dsns

    def try_walk(self, hsn: int) -> int | None:
        """Like :meth:`walk` but returns ``None`` for unmapped HSNs."""
        try:
            return self.walk(hsn).dsn
        except TranslationError:
            return None

    def hsn_of_dsn(self, dsn: int) -> int:
        """Reverse lookup: HSN mapped to ``dsn``.

        Raises:
            TranslationError: if the DSN holds no live segment.
        """
        try:
            return self._reverse[dsn]
        except KeyError:
            raise TranslationError(f"DSN {dsn:#x} holds no segment") from None

    def is_dsn_live(self, dsn: int) -> bool:
        """True if ``dsn`` currently backs some HSN."""
        return dsn in self._reverse

    def live_dsns(self) -> list[int]:
        """All DSNs currently backing segments."""
        return sorted(self._reverse)

    @property
    def mapped_segment_count(self) -> int:
        """Number of live HSN -> DSN mappings."""
        return len(self._reverse)


__all__ = [
    "UNMAPPED",
    "WalkResult",
    "AuMappingSlice",
    "TranslationTables",
]
