"""Quickstart: a DTL-equipped CXL memory device in twenty lines.

Creates a pooled memory device, reserves memory for two VMs, issues some
loads/stores through the translation layer, then deallocates one VM and
watches the rank-level power-down policy park idle rank-groups in MPSM.

Run:  python examples/quickstart.py
"""

from repro import CxlMemoryDevice, DtlConfig
from repro.dram import DramGeometry, PowerState
from repro.units import GIB, MIB

def main() -> None:
    # A small device: 4 channels x 8 ranks x 1 GiB = 32 GiB.
    geometry = DramGeometry(rank_bytes=1 * GIB)
    device = CxlMemoryDevice(config=DtlConfig(geometry=geometry,
                                              au_bytes=512 * MIB))
    controller = device.controller

    print(f"Device: {geometry.describe()}")
    print(f"Initial rank states: {device.power_summary()}")

    # Two tenants reserve memory (rounded up to allocation units).
    vm_a = device.allocate_vm(host_id=0, reserved_bytes=4 * GIB)
    vm_b = device.allocate_vm(host_id=1, reserved_bytes=2 * GIB)
    print(f"\nAllocated {vm_a.reserved_bytes // GIB} GiB for VM-A "
          f"(AUs {vm_a.au_ids}) and {vm_b.reserved_bytes // GIB} GiB "
          f"for VM-B")

    # Host loads/stores go through HPA -> DPA translation transparently.
    hpa = controller.hpa_of(vm_a.au_ids[0], au_offset=5, byte_offset=256)
    load = device.load(host_id=0, hpa=hpa)
    print(f"\nLoad  HPA {hpa:#014x} -> DPA {load.dpa:#014x} "
          f"(channel {load.channel}, rank {load.rank}) "
          f"in {load.latency_ns:.1f} ns (SMC miss walks the tables)")
    load2 = device.load(host_id=0, hpa=hpa)
    print(f"Load  again                         -> "
          f"{load2.latency_ns:.1f} ns (L1 SMC hit)")
    store = device.store(host_id=0, hpa=hpa + 64)
    print(f"Store HPA {store.hpa:#014x} -> rank {store.rank} "
          f"in {store.latency_ns:.1f} ns")

    # Deallocate VM-A: the policy consolidates and powers down rank-groups.
    transitions = device.deallocate_vm(vm_a, now_s=60.0)
    print(f"\nVM-A deallocated -> {len(transitions)} power transitions:")
    for transition in transitions:
        ranks = ", ".join(f"ch{c}r{r}" for c, r in transition.rank_ids)
        print(f"  t={transition.time_s:.0f}s  [{ranks}] -> "
              f"{transition.new_state.value} "
              f"(migrated {transition.migrated_bytes // MIB} MiB)")

    counts = controller.device.state_counts()
    print(f"\nFinal rank census: "
          f"{counts[PowerState.STANDBY]} standby, "
          f"{counts[PowerState.SELF_REFRESH]} self-refresh, "
          f"{counts[PowerState.MPSM]} MPSM")
    print(f"Background power: {controller.device.background_power():.2f} RSU "
          f"(vs {controller.device.power_model.baseline_background_power():.2f}"
          f" with every rank in standby)")

if __name__ == "__main__":
    main()
