"""10k-node fleet soak: streaming aggregation under a memory ceiling.

The rack-scale claim is not "the fleet runs fast", it is "the fleet
*fits*": the sharded fan-out with worker-side reduction must let the
parent process aggregate thousands of nodes without ever materialising
their full result payloads.  This experiment makes that a measurable
acceptance gate:

* run a large fleet sharded-serial, then (optionally) sharded-parallel
  with the pool forced on, and require ``fleet_savings`` to be
  **bit-identical** between the two;
* track the process's peak RSS (``ru_maxrss``) across the whole soak
  and require it to stay under a configured ceiling.

Node simulations use a deliberately small device/schedule so the soak
measures the *aggregation path* at scale, not six-hour node physics.
"""

from __future__ import annotations

import resource
import sys
import time
from dataclasses import dataclass, field

from repro.dram.geometry import DramGeometry
from repro.exec import ExecConfig
from repro.host.scheduler import SchedulerConfig
from repro.sim.fleet import FleetSimulator, RackConfig
from repro.sim.powerdown_sim import PowerDownSimConfig
from repro.units import GIB
from repro.workloads.azure import AzureTraceConfig


def peak_rss_mb() -> float:
    """This process's lifetime peak RSS in MiB.

    ``ru_maxrss`` is kilobytes on Linux, bytes on macOS; it is
    monotonic, so callers measure a soak by recording it before and
    after and gating on the after value.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def soak_node_config(duration_s: float = 1800.0,
                     num_vms: int = 8) -> PowerDownSimConfig:
    """A small-but-real node for soak scale: 32 GiB device, 30 min trace.

    ``keep_timeseries=False`` — the soak aggregates scalars; shipping
    interval records for 10k nodes is exactly the payload problem the
    sharded path removes.
    """
    return PowerDownSimConfig(
        geometry=DramGeometry(rank_bytes=1 * GIB),
        scheduler=SchedulerConfig(memory_bytes=24 * GIB,
                                  duration_s=duration_s),
        azure=AzureTraceConfig(num_vms=num_vms, duration_s=duration_s),
        keep_timeseries=False)


@dataclass(frozen=True)
class FleetSoakConfig:
    """Parameters of the soak.

    Attributes:
        num_nodes: Fleet size (the acceptance run uses 10 000).
        shard_size: Nodes per worker invocation.
        hosts_per_rack: Rack width for the contention roll-up.
        node: Per-node config template (small by default; see
            :func:`soak_node_config`).
        base_seed: Node ``i`` uses seed ``base_seed + i``.
        rss_ceiling_mb: Peak-RSS gate for the whole soak (both legs).
        workers: Worker count of the parallel leg.
        verify_parallel: Also run the sharded-parallel leg (pool forced
            on) and compare bit-for-bit; the serial leg alone still
            gates on the ceiling.
    """

    num_nodes: int = 10_000
    shard_size: int = 50
    hosts_per_rack: int = 16
    node: PowerDownSimConfig = field(default_factory=soak_node_config)
    base_seed: int = 0
    rss_ceiling_mb: float = 512.0
    workers: int = 2
    verify_parallel: bool = True


@dataclass
class FleetSoakResult:
    """What the soak measured."""

    config: FleetSoakConfig
    fleet_savings: float
    parallel_savings: float | None
    bit_identical: bool
    rss_before_mb: float
    peak_rss_mb: float
    within_ceiling: bool
    serial_wall_s: float
    parallel_wall_s: float | None
    nodes_ok: int
    nodes_failed: int
    rack_report: dict[str, float]
    result_bytes: float

    @property
    def ok(self) -> bool:
        """The soak's pass/fail verdict."""
        return self.within_ceiling and self.bit_identical

    def to_record(self):
        """Flatten into an :class:`~repro.sim.results.ExperimentRecord`."""
        from repro.sim.results import ExperimentRecord
        return ExperimentRecord("fleet_soak", {
            "num_nodes": self.config.num_nodes,
            "shard_size": self.config.shard_size,
            "fleet_savings": self.fleet_savings,
            "bit_identical": self.bit_identical,
            "peak_rss_mb": self.peak_rss_mb,
            "rss_ceiling_mb": self.config.rss_ceiling_mb,
            "within_ceiling": self.within_ceiling,
            "nodes_ok": self.nodes_ok,
            "nodes_failed": self.nodes_failed,
            **{f"rack_{key}": value
               for key, value in self.rack_report.items()}})


class FleetSoakExperiment:
    """Run the soak: sharded-serial, then sharded-parallel, then gate."""

    name = "fleet-soak"

    def __init__(self, config: FleetSoakConfig | None = None):
        self.config = config or FleetSoakConfig()

    def _rack_config(self) -> RackConfig:
        config = self.config
        return RackConfig(num_nodes=config.num_nodes, node=config.node,
                          base_seed=config.base_seed,
                          shard_size=config.shard_size,
                          hosts_per_rack=config.hosts_per_rack)

    # -- stepped execution -----------------------------------------------------
    # One whole fleet leg per advance (serial, then the optional
    # parallel-verification leg).  Wall times and RSS are measured, not
    # simulated — they are the only fields that differ between a stepped
    # and a one-shot soak.

    def begin(self) -> "FleetSoakRunState":
        """Record the starting RSS; no legs have run yet."""
        return FleetSoakRunState(rss_before_mb=peak_rss_mb())

    def advance(self, state: "FleetSoakRunState") -> bool:
        """Run one pending leg; True while more remain after."""
        config = self.config
        rack_config = self._rack_config()
        if not state.serial_done:
            start = time.perf_counter()
            serial = FleetSimulator(rack_config,
                                    ExecConfig(workers=1)).run()
            state.serial_wall_s = time.perf_counter() - start
            state.serial_savings = serial.fleet_savings
            state.rack_report = serial.rack_report()
            state.nodes_ok = len(serial.nodes)
            state.nodes_failed = len(serial.failures)
            counters = serial.exec_telemetry.get("counters", {})
            state.result_bytes = float(
                counters.get("exec.result_bytes", 0.0))
            state.serial_done = True
            return config.verify_parallel
        if config.verify_parallel and not state.parallel_done:
            # Same fleet, pool forced on even on a single-core host —
            # the identity claim is about the cross-process path.
            start = time.perf_counter()
            parallel = FleetSimulator(
                rack_config,
                ExecConfig(workers=config.workers, force_pool=True)).run()
            state.parallel_wall_s = time.perf_counter() - start
            state.parallel_savings = parallel.fleet_savings
            state.bit_identical = (state.parallel_savings
                                   == state.serial_savings)
            del parallel
            state.parallel_done = True
        return False

    def finish(self, state: "FleetSoakRunState") -> FleetSoakResult:
        """Gate on the lifetime peak RSS and assemble the verdict."""
        config = self.config
        peak = peak_rss_mb()
        return FleetSoakResult(
            config=config,
            fleet_savings=state.serial_savings,
            parallel_savings=state.parallel_savings,
            bit_identical=state.bit_identical,
            rss_before_mb=state.rss_before_mb,
            peak_rss_mb=peak,
            within_ceiling=peak <= config.rss_ceiling_mb,
            serial_wall_s=state.serial_wall_s,
            parallel_wall_s=state.parallel_wall_s,
            nodes_ok=state.nodes_ok,
            nodes_failed=state.nodes_failed,
            rack_report=state.rack_report,
            result_bytes=state.result_bytes)

    def run(self) -> FleetSoakResult:
        state = self.begin()
        while self.advance(state):
            pass
        return self.finish(state)


@dataclass
class FleetSoakRunState:
    """Leg progress of one stepped soak."""

    rss_before_mb: float
    serial_done: bool = False
    parallel_done: bool = False
    serial_savings: float = 0.0
    serial_wall_s: float = 0.0
    rack_report: dict = field(default_factory=dict)
    nodes_ok: int = 0
    nodes_failed: int = 0
    result_bytes: float = 0.0
    parallel_savings: float | None = None
    parallel_wall_s: float | None = None
    bit_identical: bool = True


def quick_soak_config(num_nodes: int = 64) -> FleetSoakConfig:
    """A seconds-scale soak for CI and smoke tests."""
    return FleetSoakConfig(
        num_nodes=num_nodes, shard_size=8, hosts_per_rack=8,
        node=soak_node_config(duration_s=600.0, num_vms=4))


__all__ = [
    "FleetSoakConfig",
    "FleetSoakExperiment",
    "FleetSoakResult",
    "FleetSoakRunState",
    "peak_rss_mb",
    "quick_soak_config",
    "soak_node_config",
]
