"""Tests for figure-series extraction and ASCII rendering."""

import numpy as np
import pytest

from repro.dram.geometry import DramGeometry
from repro.host.scheduler import SchedulerConfig
from repro.sim.figures import (FigureSeries, ascii_chart, figure1_series,
                               figure2_series, figure11a_series,
                               figure12a_series, figure14_series)
from repro.sim.powerdown_sim import PowerDownSimConfig, PowerDownSimulator
from repro.sim.selfrefresh_sim import SelfRefreshSimConfig, SelfRefreshSimulator
from repro.units import MIB
from repro.workloads.azure import AzureTraceConfig


class TestSeriesContainer:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            FigureSeries(figure="x", x_label="a", y_label="b",
                         x=np.arange(3), series={"s": np.arange(2)})


class TestExtraction:
    def test_figure1(self):
        series = figure1_series(seed=0)
        assert len(series.x) == 73  # 6 h at 5-min samples
        assert series.series["usage"].max() <= 1.0

    def test_figure2(self):
        series = figure2_series()
        assert list(series.x) == [8, 6, 4, 2]
        assert series.series["mean"][0] == 0.0

    def test_figure11a(self):
        series = figure11a_series()
        values = series.series["background"]
        assert values[-1] == pytest.approx(1.0)
        assert (np.diff(values) > 0).all()

    def test_figure12a(self):
        config = PowerDownSimConfig(
            azure=AzureTraceConfig(num_vms=15, duration_s=1200.0),
            scheduler=SchedulerConfig(duration_s=1200.0))
        result = PowerDownSimulator(config).run()
        series = figure12a_series(result)
        assert set(series.series) == {"total", "background", "migration"}
        assert len(series.x) == len(result.intervals)

    def test_figure14(self):
        config = SelfRefreshSimConfig(
            geometry=DramGeometry(channels=2, ranks_per_channel=4,
                                  rank_bytes=128 * MIB),
            allocated_bytes=544 * MIB,
            workloads=("data-caching",),
            aggregate_bandwidth_gbs=0.2, duration_s=2.0,
            au_bytes=32 * MIB, group_granularity=1)
        result = SelfRefreshSimulator(config).run()
        series = figure14_series(result)
        assert "savings" in series.series and "sr_ranks" in series.series


class TestAsciiChart:
    def test_renders(self):
        series = FigureSeries(figure="t", x_label="x", y_label="y",
                              x=np.arange(100),
                              series={"s": np.linspace(0, 1, 100)})
        chart = ascii_chart(series, width=40, height=6)
        lines = chart.splitlines()
        assert len(lines) == 8  # header + 6 rows + axis
        assert "#" in chart

    def test_empty(self):
        series = FigureSeries(figure="t", x_label="x", y_label="y",
                              x=np.array([]), series={"s": np.array([])})
        assert ascii_chart(series) == "(empty series)"

    def test_flat_series(self):
        series = FigureSeries(figure="t", x_label="x", y_label="y",
                              x=np.arange(10),
                              series={"s": np.full(10, 3.0)})
        assert "#" in ascii_chart(series)
