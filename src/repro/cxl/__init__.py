"""CXL substrate: link model, pooled memory device, and multi-device pool."""

from repro.cxl.device import CxlMemoryDevice
from repro.cxl.link import CxlLinkConfig
from repro.cxl.pool import MemoryPool, PoolStats, PoolVmHandle

__all__ = ["CxlMemoryDevice", "CxlLinkConfig", "MemoryPool", "PoolStats",
           "PoolVmHandle"]
