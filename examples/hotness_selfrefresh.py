"""Hotness-aware self-refresh on a mixed CloudSuite workload (Figure 14).

Replays a six-benchmark mix against the DTL's CLOCK-style migration-table
planner at one of the paper's allocated-capacity points and prints the
savings trajectory: warmup (iterative enter/exit of self-refresh while
hot and cold segments separate) followed by the stable phase.

Run:  python examples/hotness_selfrefresh.py [208gb|224gb|240gb|304gb]
"""

import sys

import numpy as np

from repro.sim.selfrefresh_sim import SelfRefreshSimulator, config_for_point

def main() -> None:
    point = sys.argv[1] if len(sys.argv) > 1 else "208gb"
    config = config_for_point(point, duration_s=60.0)
    print(f"Capacity point {point}: {config.allocated_bytes / 2**30:.1f} GiB "
          f"allocated on a scaled {config.geometry.total_bytes / 2**30:.0f} "
          f"GiB device, mix = {', '.join(config.workloads)}")

    result = SelfRefreshSimulator(config).run()
    times, savings = result.savings_timeseries()

    print(f"\nActive ranks/channel after power-down: "
          f"{result.active_ranks_per_channel}")
    print(f"{'t (s)':>6s} {'savings':>8s}  (1-second means)")
    for second in range(0, int(config.duration_s), 5):
        mask = (times >= second) & (times < second + 1)
        if mask.any():
            bar = "#" * int(120 * max(0.0, float(savings[mask].mean())))
            print(f"{second:6d} {100 * savings[mask].mean():7.1f}%  {bar}")

    if result.ever_stable:
        print(f"\nStable-phase savings: {100 * result.stable_savings:.1f}% "
              f"after a {result.warmup_s:.1f}s warmup "
              f"(paper: ~20.3% at 208GB, 14.9% at 304GB, warmup 10-60s)")
    else:
        print("\nNever stabilised: the mix cannot collect a rank-pair of "
              "quiet segments at this utilisation (the paper's 240GB "
              "failure mode).")
    print(f"SR entries/exits: {result.sr_entries}/{result.sr_exits}, "
          f"migrated {result.migrated_bytes / 2**20:.0f} MiB, "
          f"mean SR ranks (tail): "
          f"{np.mean([s.sr_ranks for s in result.steps[-400:]]):.2f}")

if __name__ == "__main__":
    main()
