"""The policy tournament: Pareto logic, overhead math, and the grid run."""

from __future__ import annotations

import json

import pytest

from repro.exec import ExecConfig
from repro.sim.experiments import run_experiment
from repro.sim.results import flatten_tournament
from repro.sim.tournament import (PolicyTournament, TournamentCell,
                                  TournamentConfig, TournamentResult,
                                  cell_from_result, quick_tournament_config)


def cell(policy="paper", workload="mix0", savings=0.1, overhead=0.01,
         **extra) -> TournamentCell:
    defaults = dict(sr_entries=1, sr_exits=1, migrated_bytes=0,
                    exit_penalty_ns=0.0)
    defaults.update(extra)
    return TournamentCell(policy=policy, workload=workload,
                          savings=savings, overhead=overhead, **defaults)


class TestDominance:
    def test_better_on_both_axes_dominates(self):
        assert cell(savings=0.2, overhead=0.01).dominates(
            cell(savings=0.1, overhead=0.02))

    def test_equal_cells_do_not_dominate_each_other(self):
        a, b = cell(), cell(policy="dream")
        assert not a.dominates(b) and not b.dominates(a)

    def test_tradeoff_is_incomparable(self):
        more_savings = cell(savings=0.2, overhead=0.05)
        less_overhead = cell(savings=0.1, overhead=0.01)
        assert not more_savings.dominates(less_overhead)
        assert not less_overhead.dominates(more_savings)

    def test_one_axis_tie_with_one_strict_dominates(self):
        assert cell(savings=0.2, overhead=0.01).dominates(
            cell(savings=0.2, overhead=0.02))


class TestParetoFront:
    def test_dominated_cells_drop_out(self):
        best = cell(policy="a", savings=0.3, overhead=0.01)
        dominated = cell(policy="b", savings=0.1, overhead=0.05)
        result = TournamentResult(config=TournamentConfig(),
                                  cells=[dominated, best])
        assert result.pareto_front() == [best]

    def test_incomparable_cells_all_survive_sorted_by_savings(self):
        frugal = cell(policy="a", savings=0.1, overhead=0.001)
        greedy = cell(policy="b", savings=0.3, overhead=0.1)
        middle = cell(policy="c", savings=0.2, overhead=0.01)
        result = TournamentResult(config=TournamentConfig(),
                                  cells=[frugal, greedy, middle])
        assert result.pareto_front() == [greedy, middle, frugal]

    def test_duplicate_points_all_survive(self):
        twins = [cell(policy="a"), cell(policy="b")]
        result = TournamentResult(config=TournamentConfig(), cells=twins)
        assert set(c.policy for c in result.pareto_front()) == {"a", "b"}


class TestPolicyMeans:
    def test_means_average_over_mixes(self):
        cells = [cell(policy="paper", workload="mix0", savings=0.1,
                      overhead=0.02),
                 cell(policy="paper", workload="mix1", savings=0.3,
                      overhead=0.04)]
        result = TournamentResult(
            config=TournamentConfig(policies=("paper",)), cells=cells)
        means = result.policy_means()
        assert means["paper"][0] == pytest.approx(0.2)
        assert means["paper"][1] == pytest.approx(0.03)

    def test_policies_without_cells_are_omitted(self):
        result = TournamentResult(
            config=TournamentConfig(policies=("paper", "dream")),
            cells=[cell(policy="paper")])
        assert set(result.policy_means()) == {"paper"}


class TestOverheadProjection:
    def test_cell_from_result_combines_penalty_and_migration_time(self):
        spec_result = run_experiment(
            "selfrefresh",
            quick_cfg := _one_cell_config())
        projected = cell_from_result("paper", "mix0", spec_result)
        migration_s = (spec_result.migrated_bytes
                       / (quick_cfg.aggregate_bandwidth_gbs * 1e9))
        expected = ((spec_result.exit_penalty_ns / 1e9 + migration_s)
                    / quick_cfg.duration_s)
        assert projected.overhead == pytest.approx(expected)
        assert projected.savings == spec_result.stable_savings
        assert projected.sr_entries == spec_result.sr_entries


def _one_cell_config():
    from repro.sim.selfrefresh_sim import SelfRefreshSimConfig
    from repro.workloads.cloudsuite import TRACED_BENCHMARKS
    return SelfRefreshSimConfig(workloads=TRACED_BENCHMARKS[:3],
                                duration_s=2.0)


class TestTournamentRun:
    @pytest.fixture(scope="class")
    def result(self):
        tournament = PolicyTournament(quick_tournament_config())
        return tournament.run(exec_config=ExecConfig(workers=1))

    def test_grid_covers_policies_times_mixes(self, result):
        config = result.config
        assert len(config.policies) >= 4
        assert len(config.workloads) >= 2
        assert not result.failures
        assert len(result.cells) == (len(config.policies)
                                     * len(config.workloads))
        grid = {(cell.policy, cell.workload) for cell in result.cells}
        assert grid == {(policy, f"mix{index}")
                        for policy in config.policies
                        for index in range(len(config.workloads))}

    def test_every_cell_simulated_something(self, result):
        for entry in result.cells:
            assert entry.sr_entries > 0, entry
            assert 0.0 <= entry.savings < 1.0
            assert entry.overhead >= 0.0

    def test_front_is_nonempty_subset(self, result):
        front = result.pareto_front()
        assert front
        assert set(front) <= set(result.cells)

    def test_record_flattens_and_serialises(self, result):
        record = result.to_record()
        assert record.experiment == "tournament"
        flat = flatten_tournament(result)
        assert flat["cells"] == len(result.cells)
        for entry in result.cells:
            assert f"{entry.policy}.{entry.workload}.savings" in flat
        for policy in result.config.policies:
            assert f"{policy}.mean_savings" in flat
        json.dumps(record.to_dict())

    def test_unknown_policy_fails_its_cells_only(self):
        config = TournamentConfig(policies=("paper", "bogus"),
                                  duration_s=1.0)
        result = PolicyTournament(config).run(
            exec_config=ExecConfig(workers=1))
        assert {cell.policy for cell in result.cells} == {"paper"}
        assert {policy for policy, _, _ in result.failures} == {"bogus"}
        assert all("bogus" in error for _, _, error in result.failures)


class TestConfig:
    def test_quick_config_shrinks_duration_only(self):
        full, quick = TournamentConfig(), quick_tournament_config(seed=5)
        assert quick.duration_s < full.duration_s
        assert quick.policies == full.policies
        assert quick.workloads == full.workloads
        assert quick.seed == 5

    def test_seeded_config_helpers(self):
        config = TournamentConfig()
        assert config.with_seed(9).seed == 9
        assert config.replace(duration_s=1.0).duration_s == 1.0
