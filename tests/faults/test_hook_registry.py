"""Lint guard: every hook point has a catalog entry wired in the datapath.

This is the CI tripwire required by the faults subsystem: adding a
``HookPoint`` without a ``HOOK_CATALOG`` entry, or pointing an entry at
a module that no longer calls its injector method, fails the build.
"""

from pathlib import Path

from repro.faults.hooks import HOOK_CATALOG, HookPoint
from repro.faults.injector import FaultInjector

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestHookCatalog:
    def test_catalog_covers_every_hook_point_exactly(self):
        assert set(HOOK_CATALOG) == set(HookPoint)

    def test_entries_are_self_consistent(self):
        for point, info in HOOK_CATALOG.items():
            assert info.point is point
            assert info.description

    def test_every_method_exists_on_injector(self):
        for info in HOOK_CATALOG.values():
            assert callable(getattr(FaultInjector, info.method))

    def test_every_module_calls_its_method(self):
        for info in HOOK_CATALOG.values():
            module = REPO_ROOT / info.module
            assert module.is_file(), f"{info.module} missing for {info.point}"
            source = module.read_text()
            assert f".{info.method}(" in source, (
                f"{info.module} no longer calls {info.method} for "
                f"{info.point.value}")

    def test_every_module_guards_the_unarmed_path(self):
        # The zero-overhead guarantee: each wired module must gate its
        # hook calls behind a `_faults is not None` check.
        for module in {info.module for info in HOOK_CATALOG.values()}:
            source = (REPO_ROOT / module).read_text()
            assert "_faults is not None" in source, (
                f"{module} lacks the unarmed-path guard")

    def test_hook_names_are_stable(self):
        # Telemetry keys (faults.injected.<name>) derive from these
        # values; renaming one silently breaks dashboards and baselines.
        assert {point.value for point in HookPoint} == {
            "cxl.access", "smc.lookup", "dram.access", "migration.copy",
            "power.mpsm_exit", "sr.exit"}
