"""Tests for the Azure-like VM trace generator (Figure 1)."""

import numpy as np
import pytest

from repro.host.scheduler import VmScheduler
from repro.units import GIB
from repro.workloads.azure import AzureTraceConfig, generate_vm_trace
from repro.workloads.cloudsuite import PROFILES


class TestConfig:
    def test_defaults_match_paper_setup(self):
        config = AzureTraceConfig()
        assert config.num_vms == 400
        assert config.duration_s == 6 * 3600.0

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            AzureTraceConfig(vcpu_probs=(0.5, 0.5, 0.1, 0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            AzureTraceConfig(vcpu_values=(1, 2), vcpu_probs=(1.0,))

    def test_moments(self):
        config = AzureTraceConfig()
        assert 2.0 < config.mean_vcpus() < 5.0
        assert config.mean_memory_bytes() > 4 * GIB
        assert 600.0 < config.mean_lifetime_s() < 3600.0


class TestGeneratedTrace:
    @pytest.fixture
    def specs(self):
        return generate_vm_trace(seed=0)

    def test_count(self, specs):
        assert len(specs) == 400

    def test_sorted_by_arrival(self, specs):
        arrivals = [spec.arrival_s for spec in specs]
        assert arrivals == sorted(arrivals)

    def test_lifetimes_multiple_of_five_minutes(self, specs):
        """The Azure dataset records lifetimes in 5-minute multiples."""
        for spec in specs:
            assert spec.lifetime_s % 300.0 == 0.0

    def test_memory_is_whole_gib_per_vcpu(self, specs):
        for spec in specs:
            assert spec.memory_bytes % (spec.vcpus * GIB) == 0

    def test_workloads_are_cloudsuite(self, specs):
        assert {spec.workload for spec in specs} <= set(PROFILES)

    def test_deterministic(self):
        a = generate_vm_trace(seed=42)
        b = generate_vm_trace(seed=42)
        assert [s.vm_name for s in a] == [s.vm_name for s in b]
        assert [s.memory_bytes for s in a] == [s.memory_bytes for s in b]

    def test_small_vms_dominate(self, specs):
        small = sum(1 for spec in specs if spec.vcpus <= 2)
        assert small / len(specs) > 0.5


class TestFigure1Headline:
    def test_mean_memory_usage_below_half(self):
        """Figure 1: average memory usage stays under 50 % of 384 GB."""
        fractions = []
        for seed in range(3):
            result = VmScheduler().run(generate_vm_trace(seed=seed))
            fractions.append(result.mean_memory_fraction())
        assert float(np.mean(fractions)) < 0.55
        assert float(np.mean(fractions)) > 0.30

    def test_usage_fluctuates(self):
        result = VmScheduler().run(generate_vm_trace(seed=0))
        values = [s.memory_bytes for s in result.samples]
        assert max(values) > 1.5 * (sum(values) / len(values))
