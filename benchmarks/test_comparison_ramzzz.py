"""Comparison: DTL self-refresh vs a RAMZzz-style baseline (Section 8).

The paper argues its in-device vantage point beats prior MC/OS-level
schemes.  This benchmark makes the comparison concrete: both policies run
the identical 208 GB experiment; RAMZzz (epoch-based hot/cold separation,
no allocation knowledge, no quiet-timer) demotes aggressively but
ping-pongs on residually-warm data, while the DTL's planner collects the
free/deep-cold supply and sleeps stably.
"""

import pytest

from repro.baselines.ramzzz import RamzzzConfig
from repro.sim.comparison import compare_policies
from repro.sim.selfrefresh_sim import config_for_point

from conftest import report

DURATION_S = 30.0


@pytest.fixture(scope="module")
def comparison():
    return compare_policies(config_for_point("208gb",
                                             duration_s=DURATION_S))


def test_dtl_vs_ramzzz(benchmark, comparison):
    result = benchmark.pedantic(lambda: comparison, rounds=1, iterations=1)
    rows = [
        ("DTL self-refresh", f"{result.dtl.stable_savings:.1%}",
         str(result.dtl.sr_exits),
         f"{result.dtl.migrated_bytes / 2**20:.0f} MiB"),
        ("RAMZzz baseline", f"{result.ramzzz.stable_savings:.1%}",
         str(result.ramzzz_wakeups),
         f"{result.ramzzz.migrated_bytes / 2**20:.0f} MiB"),
    ]
    report("DTL vs RAMZzz-style baseline (208 GB point)", rows,
           header=("policy", "stable savings", "wakeups", "migrated"))
    # Who wins and by roughly what factor: DTL saves >2x with an order of
    # magnitude fewer wakeups.
    assert result.dtl.stable_savings > 2 * max(
        0.01, result.ramzzz.stable_savings)
    assert result.dtl.sr_exits * 10 < result.ramzzz_wakeups
    assert result.advantage() > 0.08


def test_ramzzz_without_demotion_threshold_never_sleeps():
    """With a strict (zero) threshold, no rank block is ever epoch-quiet
    at the boosted replay rate — mirroring the planner-off ablation."""
    result = compare_policies(
        config_for_point("208gb", duration_s=10.0),
        RamzzzConfig(demote_threshold=0)).ramzzz
    assert result.sr_entries == 0
    assert result.stable_savings < 0.01


def test_ramzzz_pays_more_migration(comparison):
    assert comparison.ramzzz.migrated_bytes > comparison.dtl.migrated_bytes
