"""Workload calibration sweep: all published characteristics at once.

Not a paper table per se, but the foundation every experiment rests on:
each synthetic benchmark must simultaneously exhibit its Table 4 MAPKI,
its Figure 9 stride class, and (on average) Figure 10's cold-segment
fractions.
"""

from repro.workloads.cloudsuite import TRACED_BENCHMARKS
from repro.workloads.validation import validate_workloads

from conftest import report


def test_calibration_full_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: validate_workloads(TRACED_BENCHMARKS),
        rounds=1, iterations=1)
    rows = [(check.name, f"{check.mapki:.2f}/{check.mapki_target:.1f}",
             f"{check.large_stride_share:.0%}",
             f"{check.cold_2mb:.0%}", f"{check.cold_4mb:.0%}")
            for check in result.checks]
    rows.append(("mean cold", "", "",
                 f"{result.mean_cold_2mb:.1%} (61.5%)",
                 f"{result.mean_cold_4mb:.1%} (33.2%)"))
    report("Workload calibration (MAPKI / strides / coldness)", rows,
           header=("workload", "MAPKI m/t", ">=4MB", "cold@2M", "cold@4M"))
    assert result.problems(mapki_tolerance=0.10, cold_band=0.10) == []
