"""End-to-end integration tests crossing subsystem boundaries."""

import numpy as np
import pytest

from repro.core.config import DtlConfig
from repro.core.controller import DtlController
from repro.cxl import CxlMemoryDevice
from repro.dram import DramGeometry, PowerState
from repro.host.caches import CacheHierarchy, CacheLevelConfig
from repro.units import CACHELINE_BYTES, GIB, MIB
from repro.workloads.cloudsuite import make_trace


@pytest.fixture
def device():
    return CxlMemoryDevice(config=DtlConfig(
        geometry=DramGeometry(rank_bytes=512 * MIB), au_bytes=128 * MIB,
        group_granularity=2))


class TestVmChurn:
    def test_many_vm_cycles_preserve_consistency(self, device):
        """Allocate/deallocate churn: mappings, allocator, and power
        states stay consistent throughout."""
        controller = device.controller
        rng = np.random.default_rng(0)
        live = []
        for step in range(40):
            if live and rng.random() < 0.45:
                vm = live.pop(rng.integers(len(live)))
                device.deallocate_vm(vm, now_s=float(step))
            else:
                size = int(rng.choice([128, 256, 384])) * MIB
                try:
                    live.append(device.allocate_vm(
                        int(rng.integers(4)), size, now_s=float(step)))
                except Exception:
                    pass
            # Invariants after every step:
            reserved = sum(vm.reserved_bytes for vm in live)
            assert controller.reserved_bytes() == reserved
            assert controller.allocator.allocated_count() == \
                reserved // controller.geometry.segment_bytes
            # Channel balance of active ranks.
            per_channel = {device.controller.device
                           .standby_ranks_per_channel(c)
                           for c in range(4)}
            assert len(per_channel) == 1
        # Finally: every live VM's memory is still reachable and correct.
        for vm in live:
            for au_id in vm.au_ids:
                hpa = controller.hpa_of(au_id, 0)
                result = controller.access(vm.host_id, hpa)
                hsn = controller.tables.hsn_of_dsn(result.dsn)
                assert hsn is not None

    def test_power_states_track_occupancy(self, device):
        big = device.allocate_vm(0, 4 * GIB)
        full_mpsm = device.controller.device.state_counts()[PowerState.MPSM]
        device.deallocate_vm(big, now_s=10.0)
        empty_mpsm = device.controller.device.state_counts()[PowerState.MPSM]
        assert empty_mpsm > full_mpsm


class TestTraceThroughFullStack:
    def test_synthetic_trace_through_cache_and_dtl(self):
        """Host accesses -> cache hierarchy -> post-cache requests ->
        DTL translation -> DRAM ranks, end to end."""
        controller = DtlController(DtlConfig(
            geometry=DramGeometry(rank_bytes=512 * MIB),
            au_bytes=128 * MIB, enable_self_refresh=False))
        vm = controller.allocate_vm(0, 256 * MIB)
        hierarchy = CacheHierarchy((
            CacheLevelConfig("L1", 32 * 1024, 8),
            CacheLevelConfig("LLC", 256 * 1024, 16),
        ))
        trace = make_trace("data-serving", 5_000,
                           footprint_bytes=256 * MIB, seed=0)
        segments_per_au = controller.host_layout.segments_per_au
        touched_ranks = set()
        post_cache = 0
        for address in trace.addresses[:5_000]:
            for request in hierarchy.access(int(address), is_write=False):
                segment = request.address // (2 * MIB)
                au_index = vm.au_ids[segment // segments_per_au]
                hpa = controller.hpa_of(au_index, segment % segments_per_au,
                                        request.address % (2 * MIB))
                result = controller.access(0, hpa)
                touched_ranks.add((result.channel, result.rank))
                post_cache += 1
        assert 0 < post_cache < 5_000  # the hierarchy filtered something
        channels = {channel for channel, _ in touched_ranks}
        assert channels == {0, 1, 2, 3}  # channel interleaving works

    def test_accesses_never_hit_mpsm_ranks(self, device):
        """The allocation policy guarantees MPSM ranks hold no data, so
        no access can ever reach them."""
        controller = device.controller
        vm = device.allocate_vm(0, 1 * GIB, now_s=0.0)
        filler = device.allocate_vm(0, 2 * GIB, now_s=1.0)
        device.deallocate_vm(filler, now_s=2.0)  # triggers power-down
        mpsm_ranks = {rank_id for rank_id, rank
                      in controller.device.ranks.items()
                      if rank.state is PowerState.MPSM}
        assert mpsm_ranks
        rng = np.random.default_rng(1)
        for _ in range(200):
            au_index = vm.au_ids[int(rng.integers(len(vm.au_ids)))]
            offset = int(rng.integers(
                controller.host_layout.segments_per_au))
            result = controller.access(
                0, controller.hpa_of(au_index, offset))
            assert (result.channel, result.rank) not in mpsm_ranks


class TestSelfRefreshIntegration:
    def test_sr_sleeping_rank_survives_unrelated_traffic(self):
        controller = DtlController(DtlConfig(
            geometry=DramGeometry(channels=2, ranks_per_channel=4,
                                  rank_bytes=64 * MIB),
            au_bytes=16 * MIB, enable_power_down=False,
            profiling_threshold_ns=1000.0))
        vm = controller.allocate_vm(0, 64 * MIB)
        policy = controller.self_refresh
        assert policy is not None
        # Warm a few segments so the data-holding ranks are not victims.
        hot_hpas = [controller.hpa_of(vm.au_ids[0], offset)
                    for offset in range(4)]
        for hpa in hot_hpas:
            for _ in range(3):
                controller.access(0, hpa, now_ns=10.0)
        controller.end_window()
        controller.tick(now_ns=20.0)       # start profiling
        controller.tick(now_ns=5000.0)     # quiet -> victim sleeps
        sleeping = {(c, r.index) for c in range(2)
                    for r in controller.device.ranks_in_channel(c)
                    if r.state is PowerState.SELF_REFRESH}
        assert sleeping
        # Traffic to the hot (awake) segments must not disturb the
        # sleeping ranks.
        for hpa in hot_hpas:
            result = controller.access(0, hpa, now_ns=6000.0)
            assert (result.channel, result.rank) not in sleeping
        still_sleeping = {(c, r.index) for c in range(2)
                          for r in controller.device.ranks_in_channel(c)
                          if r.state is PowerState.SELF_REFRESH}
        assert sleeping == still_sleeping


class TestEndToEndEnergyStory:
    def test_dtl_device_beats_static_baseline(self):
        """The headline claim in miniature: a DTL device holding a
        half-empty pool consumes less background power than a vanilla
        device of the same size."""
        from repro.baselines import StaticCxlDevice
        geometry = DramGeometry(rank_bytes=512 * MIB)
        static = StaticCxlDevice(geometry)
        static.allocate(8 * GIB)

        dtl = CxlMemoryDevice(config=DtlConfig(
            geometry=geometry, au_bytes=128 * MIB, group_granularity=2))
        dtl.allocate_vm(0, 8 * GIB)
        extra = dtl.allocate_vm(0, 4 * GIB)
        dtl.deallocate_vm(extra, now_s=1.0)

        assert dtl.controller.device.background_power() < \
            static.background_power()
