"""Parallel experiment execution on a process pool.

:func:`run_tasks` is the single entry point: it takes an ordered list of
:class:`TaskSpec` (a picklable function plus arguments, optionally a
cache key) and returns one :class:`TaskOutcome` per task, in submission
order, regardless of completion order — so callers that require
determinism (fleet fan-out, rank sweeps) get bit-identical results
whether the batch ran serially or on workers.

Execution model:

* ``workers`` resolves from the :class:`ExecConfig`, falling back to the
  ``REPRO_EXEC_WORKERS`` environment variable, falling back to 1.
* ``workers <= 1`` (or a single pending task) runs everything in-process
  — the serial path is the parallel path minus the pool, not a separate
  code path for results.
* Worker processes are marked via an initializer so nested ``run_tasks``
  calls inside a worker (e.g. a fleet task whose nodes would themselves
  fan out) degrade to serial instead of forking grandchild pools.
* A task that raises is retried up to ``retries`` times; a task that
  exceeds ``timeout_s`` is resubmitted (bounded by the same budget) and
  finally reported as a timeout error.  The per-task clock starts when
  the runner begins waiting on that task, so queueing behind earlier
  tasks does not count against it.
* If the pool cannot be created or breaks mid-batch (a worker died, the
  platform lacks working process support), the unfinished tasks fall
  back to serial execution.

Accounting goes to a :class:`~repro.telemetry.registry.MetricsRegistry`
(the module-level :data:`EXEC_METRICS` by default): per-task wall time
as a histogram, plus counters for completions, failures, retries,
timeouts, cache hits, and serial fallbacks.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exec.cache import ResultCache
from repro.telemetry import MetricsRegistry

#: Environment variable giving the default worker count.
WORKERS_ENV = "REPRO_EXEC_WORKERS"

#: Set in worker processes so nested batches run serially.
NESTED_ENV = "REPRO_EXEC_NESTED"

#: Wall-time histogram bounds (seconds): a cache-warm no-op through a
#: full six-hour schedule simulation.
TASK_WALL_BUCKETS_S = (0.001, 0.01, 0.05, 0.25, 1.0, 5.0, 15.0, 60.0,
                       300.0, 1800.0)

#: Default registry receiving executor accounting.
EXEC_METRICS = MetricsRegistry()


def default_workers() -> int:
    """Worker count from the environment (1 when unset or nested)."""
    if os.environ.get(NESTED_ENV):
        return 1
    raw = os.environ.get(WORKERS_ENV, "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


@dataclass(frozen=True)
class ExecConfig:
    """How a batch of tasks should execute.

    Attributes:
        workers: Process count; ``None`` defers to ``REPRO_EXEC_WORKERS``.
        timeout_s: Per-task wall-clock budget on the parallel path
            (``None`` = unlimited; the serial path cannot interrupt a
            running task and ignores it).  Chunked submissions wait
            ``timeout_s * len(chunk)`` per chunk.
        retries: Extra attempts after a failure or timeout.
        fallback_serial: Run leftover tasks in-process when the pool
            cannot be created or breaks.
        chunk_size: Tasks submitted per pool job, so each worker
            amortises pickling and dispatch overhead over several tasks.
            ``None`` splits the pending tasks evenly over the workers
            (one chunk each).
        min_parallel_cost_s: Skip the pool and run serially when every
            pending task carries a ``cost_hint_s`` and the estimated
            per-worker share of the batch is below this threshold — the
            pool's setup cost would dominate.
        force_pool: Always use the pool when ``workers > 1``, even when
            the cost-hint / single-CPU heuristics would skip it.  Used by
            bit-identity tests and soak verification legs that must
            exercise the cross-process path regardless of host shape.
    """

    workers: int | None = None
    timeout_s: float | None = None
    retries: int = 1
    fallback_serial: bool = True
    chunk_size: int | None = None
    min_parallel_cost_s: float = 0.2
    force_pool: bool = False

    def resolved_workers(self) -> int:
        """The effective worker count for this config."""
        if self.workers is None:
            return default_workers()
        return max(1, int(self.workers))


@dataclass
class TaskSpec:
    """One unit of work: a picklable callable plus its arguments.

    ``key`` (optional) makes the task cacheable: a
    :class:`~repro.exec.cache.ResultCache` hit skips execution entirely.
    On the parallel path ``fn`` and its arguments must be picklable —
    module-level functions, not lambdas.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    key: str | None = None
    label: str = ""
    #: CPU-bound tasks gain nothing from a process pool on a single-core
    #: host (the pool only adds pickling + context-switch overhead), so
    #: the runner keeps them in-process there.
    cpu_bound: bool = False
    #: Estimated wall time; lets the runner skip the pool for batches
    #: cheaper than ``ExecConfig.min_parallel_cost_s`` per worker.
    cost_hint_s: float | None = None


@dataclass
class TaskOutcome:
    """What happened to one task."""

    label: str
    value: Any = None
    error: str | None = None
    wall_time_s: float = 0.0
    attempts: int = 0
    from_cache: bool = False
    worker_pid: int | None = None
    #: Pickled size of ``value`` — what the task shipped (or would ship)
    #: back through the pool.  0 for failures and unpicklable values.
    result_bytes: int = 0

    @property
    def ok(self) -> bool:
        """True when the task produced a value (run or cache)."""
        return self.error is None

    def unwrap(self) -> Any:
        """The task's value, or ``RuntimeError`` if it failed."""
        if self.error is not None:
            raise RuntimeError(f"task {self.label or '<unnamed>'} failed: "
                               f"{self.error}")
        return self.value


class _Meter:
    """None-safe facade over the metrics registry."""

    def __init__(self, metrics: MetricsRegistry):
        self.metrics = metrics

    def count(self, name: str, amount: float = 1) -> None:
        self.metrics.counter(f"exec.{name}").inc(amount)

    def task_done(self, wall_s: float, result_bytes: int = 0) -> None:
        self.count("tasks.completed")
        self.metrics.histogram(
            "exec.task_wall_s", bounds=TASK_WALL_BUCKETS_S).observe(wall_s)
        self.metrics.counter("exec.wall_time_s").inc(wall_s)
        if result_bytes:
            self.count("result_bytes", result_bytes)


def _worker_init() -> None:
    """Mark the process so nested batches stay serial."""
    os.environ[NESTED_ENV] = "1"


def _invoke(fn: Callable[..., Any], args: tuple,
            kwargs: dict) -> tuple[Any, float, int]:
    """Run one task, timing it; executes in the worker (or in-process)."""
    start = time.perf_counter()
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - start, os.getpid()


def _payload_size(value: Any) -> int:
    """Pickled size of a task result (0 when unpicklable).

    Measured in the worker — it is exactly what crosses the process
    boundary — and on the serial path too, so ``exec.result_bytes``
    stays comparable when a batch never reaches the pool (single-core
    hosts, cost-hint skips).
    """
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


def _invoke_chunk(specs: list[tuple[Callable[..., Any], tuple, dict]],
                  retries: int
                  ) -> list[tuple[bool, Any, float, int, int, int]]:
    """Run several tasks in one worker job, with in-worker retries.

    Returns one ``(ok, value_or_error, wall_s, pid, attempts,
    result_bytes)`` record per spec, in order.  Retrying inside the
    worker keeps a transient failure from costing a round trip through
    the parent.
    """
    records = []
    for fn, args, kwargs in specs:
        attempts = 0
        while True:
            attempts += 1
            start = time.perf_counter()
            try:
                value = fn(*args, **kwargs)
            except Exception as exc:
                if attempts <= retries:
                    continue
                records.append((False, _describe_error(exc),
                                time.perf_counter() - start, os.getpid(),
                                attempts, 0))
                break
            records.append((True, value, time.perf_counter() - start,
                            os.getpid(), attempts, _payload_size(value)))
            break
    return records


def _describe_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _run_one_serial(task: TaskSpec, config: ExecConfig,
                    meter: _Meter) -> TaskOutcome:
    """In-process execution with the retry budget (no timeout)."""
    attempts = 0
    while True:
        attempts += 1
        try:
            value, wall_s, pid = _invoke(task.fn, task.args, task.kwargs)
        except Exception as exc:
            if attempts <= config.retries:
                meter.count("tasks.retries")
                continue
            meter.count("tasks.failed")
            return TaskOutcome(label=task.label, error=_describe_error(exc),
                               attempts=attempts)
        size = _payload_size(value)
        meter.task_done(wall_s, size)
        return TaskOutcome(label=task.label, value=value, wall_time_s=wall_s,
                           attempts=attempts, worker_pid=pid,
                           result_bytes=size)


def _chunk_pending(pending: list[int], config: ExecConfig,
                   workers: int) -> list[list[int]]:
    """Cut pending indices into submission chunks (order-preserving)."""
    size = config.chunk_size
    if size is None:
        size = max(1, -(-len(pending) // workers))
    size = max(1, size)
    return [pending[start:start + size]
            for start in range(0, len(pending), size)]


def _run_pool(tasks: list[TaskSpec], pending: list[int],
              outcomes: list[TaskOutcome | None], config: ExecConfig,
              workers: int, meter: _Meter,
              drain: Callable[[], None] | None = None) -> list[int]:
    """Run ``pending`` task indices on a pool; fill ``outcomes``.

    Tasks are submitted in chunks (see :meth:`ExecConfig.chunk_size`) so
    each worker amortises pool dispatch and argument pickling over
    several tasks.  Returns the indices that still need (serial)
    execution — empty on a clean run, the unfinished tail when the pool
    broke.
    """
    chunks = _chunk_pending(pending, config, workers)
    try:
        executor = ProcessPoolExecutor(
            max_workers=min(workers, len(chunks)),
            initializer=_worker_init)
    except (OSError, ValueError, NotImplementedError):
        meter.count("serial_fallbacks")
        return pending if config.fallback_serial else _mark_failed(
            tasks, pending, outcomes, meter, "process pool unavailable")

    def submit(chunk: list[int]):
        return executor.submit(
            _invoke_chunk,
            [(tasks[index].fn, tasks[index].args, tasks[index].kwargs)
             for index in chunk],
            config.retries)

    attempts = dict.fromkeys(range(len(chunks)), 1)
    try:
        futures = {position: submit(chunk)
                   for position, chunk in enumerate(chunks)}
        for position, chunk in enumerate(chunks):
            timeout = (None if config.timeout_s is None
                       else config.timeout_s * len(chunk))
            while any(outcomes[index] is None for index in chunk):
                try:
                    records = futures[position].result(timeout=timeout)
                except FutureTimeoutError:
                    meter.count("tasks.timeouts")
                    futures[position].cancel()
                    if attempts[position] <= config.retries:
                        attempts[position] += 1
                        meter.count("tasks.retries")
                        futures[position] = submit(chunk)
                        continue
                    for index in chunk:
                        meter.count("tasks.failed")
                        outcomes[index] = TaskOutcome(
                            label=tasks[index].label,
                            error=(f"timeout after {config.timeout_s}s "
                                   f"({attempts[position]} attempts)"),
                            attempts=attempts[position])
                except BrokenProcessPool:
                    raise
                except Exception as exc:
                    # Chunk-level failure outside the tasks themselves
                    # (e.g. an unpicklable result).
                    if attempts[position] <= config.retries:
                        attempts[position] += 1
                        meter.count("tasks.retries")
                        futures[position] = submit(chunk)
                        continue
                    for index in chunk:
                        meter.count("tasks.failed")
                        outcomes[index] = TaskOutcome(
                            label=tasks[index].label,
                            error=_describe_error(exc),
                            attempts=attempts[position])
                else:
                    for index, record in zip(chunk, records):
                        (ok, payload, wall_s, pid, task_attempts,
                         result_bytes) = record
                        if task_attempts > 1:
                            meter.count("tasks.retries", task_attempts - 1)
                        if ok:
                            meter.task_done(wall_s, result_bytes)
                            outcomes[index] = TaskOutcome(
                                label=tasks[index].label, value=payload,
                                wall_time_s=wall_s, attempts=task_attempts,
                                worker_pid=pid, result_bytes=result_bytes)
                        else:
                            meter.count("tasks.failed")
                            outcomes[index] = TaskOutcome(
                                label=tasks[index].label, error=payload,
                                attempts=task_attempts)
            # The chunk is fully resolved: release its future (and the
            # result payload it pins) before streaming the outcomes.
            futures.pop(position, None)
            if drain is not None:
                drain()
    except BrokenProcessPool:
        meter.count("serial_fallbacks")
        leftovers = [index for index in pending if outcomes[index] is None]
        if config.fallback_serial:
            return leftovers
        return _mark_failed(tasks, leftovers, outcomes, meter,
                            "process pool broke")
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return []


def _mark_failed(tasks: list[TaskSpec], indices: list[int],
                 outcomes: list[TaskOutcome | None], meter: _Meter,
                 reason: str) -> list[int]:
    for index in indices:
        meter.count("tasks.failed")
        outcomes[index] = TaskOutcome(label=tasks[index].label, error=reason)
    return []


def _should_skip_pool(tasks: list[TaskSpec], pending: list[int],
                      config: ExecConfig, workers: int) -> bool:
    """True when a process pool can only slow this batch down.

    Two cases: every pending task carries a cost hint and the estimated
    per-worker share is below ``min_parallel_cost_s`` (pool setup would
    dominate), or the host has a single CPU and every pending task is
    CPU-bound (no overlap to win, only pickling to pay).
    """
    hints = [tasks[index].cost_hint_s for index in pending]
    if all(hint is not None for hint in hints):
        if sum(hints) / workers < config.min_parallel_cost_s:
            return True
    if (os.cpu_count() or 1) == 1 and all(tasks[index].cpu_bound
                                          for index in pending):
        return True
    return False


def run_tasks(tasks: list[TaskSpec], config: ExecConfig | None = None,
              cache: ResultCache | None = None,
              metrics: MetricsRegistry | None = None,
              stream: Callable[[int, TaskOutcome], None] | None = None,
              ) -> list[TaskOutcome]:
    """Execute ``tasks``; returns outcomes in submission order.

    With ``stream``, every outcome is additionally handed to
    ``stream(index, outcome)`` in strict submission order as soon as all
    earlier tasks have resolved, and its ``value`` is released
    immediately afterwards (the returned outcomes keep label, error,
    timing, and ``result_bytes`` — not the payload).  This is the
    streaming-aggregation path: the caller folds each result into an
    accumulator and the batch never materialises all payloads at once.
    Cacheable results are written to ``cache`` before the value is
    dropped.
    """
    config = config or ExecConfig()
    meter = _Meter(metrics if metrics is not None else EXEC_METRICS)
    workers = config.resolved_workers()
    meter.metrics.gauge("exec.workers").set(workers)
    batch_start = time.perf_counter()

    outcomes: list[TaskOutcome | None] = [None] * len(tasks)
    pending: list[int] = []
    for index, task in enumerate(tasks):
        if cache is not None and task.key is not None:
            hit, value = cache.get(task.key)
            if hit:
                meter.count("cache.hits")
                outcomes[index] = TaskOutcome(label=task.label, value=value,
                                              from_cache=True)
                continue
        pending.append(index)

    emitted = 0

    def drain() -> None:
        """Emit resolved outcomes contiguously, then drop their values."""
        nonlocal emitted
        while emitted < len(outcomes) and outcomes[emitted] is not None:
            outcome = outcomes[emitted]
            key = tasks[emitted].key
            if (cache is not None and key is not None and outcome.ok
                    and not outcome.from_cache):
                cache.put(key, outcome.value)
            stream(emitted, outcome)
            outcome.value = None
            emitted += 1

    pool_drain = drain if stream is not None else None
    use_pool = workers > 1 and len(pending) > 1
    if use_pool and not config.force_pool:
        if _should_skip_pool(tasks, pending, config, workers):
            meter.count("pool_skips")
            use_pool = False
    if use_pool:
        pending = _run_pool(tasks, pending, outcomes, config, workers,
                            meter, drain=pool_drain)
    for index in pending:
        outcomes[index] = _run_one_serial(tasks[index], config, meter)
        if stream is not None:
            drain()
    if stream is not None:
        drain()
    elif cache is not None:
        for index, outcome in enumerate(outcomes):
            key = tasks[index].key
            if key is not None and outcome.ok and not outcome.from_cache:
                cache.put(key, outcome.value)
    meter.metrics.gauge("exec.last_batch_wall_s").set(
        time.perf_counter() - batch_start)
    if cache is not None:
        meter.metrics.gauge("exec.cache_bytes").set(cache.total_bytes())
    return outcomes  # type: ignore[return-value]


__all__ = [
    "ExecConfig",
    "TaskSpec",
    "TaskOutcome",
    "run_tasks",
    "default_workers",
    "EXEC_METRICS",
    "WORKERS_ENV",
    "NESTED_ENV",
    "TASK_WALL_BUCKETS_S",
]
