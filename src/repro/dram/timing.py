"""DDR4-like timing parameters and simple latency helpers.

The reproduction does not run a cycle-accurate DRAM model; experiments use
the paper's measured end-to-end latencies (Table 1: 121 ns native DRAM,
210 ns CXL).  This module nevertheless provides the standard DDR4-2933
timing set so that the row-buffer-aware latency estimator used by unit
tests and the performance model has concrete numbers to work with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import CACHELINE_BYTES

#: Table 1 — measured end-to-end latencies.
NATIVE_DRAM_LATENCY_NS = 121.0
CXL_MEMORY_LATENCY_NS = 210.0


@dataclass(frozen=True)
class DramTiming:
    """Core DDR4 timing parameters (defaults model DDR4-2933).

    Attributes:
        clock_mhz: I/O bus clock in MHz (data rate is 2x).
        t_rcd_ns: ACT-to-READ/WRITE delay.
        t_rp_ns: Precharge time.
        t_cas_ns: CAS (column access) latency.
        t_rfc_ns: Refresh cycle time for one refresh command.
        t_refi_ns: Average refresh interval.
        burst_length: Beats per burst (8 for DDR4).
    """

    clock_mhz: float = 1466.5
    t_rcd_ns: float = 14.32
    t_rp_ns: float = 14.32
    t_cas_ns: float = 14.32
    t_rfc_ns: float = 350.0
    t_refi_ns: float = 7800.0
    burst_length: int = 8

    @property
    def data_rate_mts(self) -> float:
        """Data rate in mega-transfers per second (DDR: 2x clock)."""
        return 2.0 * self.clock_mhz

    @property
    def channel_peak_bandwidth_gbs(self) -> float:
        """Peak bandwidth of one 64-bit channel in GB/s."""
        return self.data_rate_mts * 8 / 1000.0

    @property
    def burst_time_ns(self) -> float:
        """Time to transfer one burst (a 64 B cacheline on a 64-bit bus)."""
        return self.burst_length / (self.data_rate_mts / 1000.0) / 2.0

    def row_hit_latency_ns(self) -> float:
        """Device latency for a row-buffer hit."""
        return self.t_cas_ns + self.burst_time_ns

    def row_miss_latency_ns(self) -> float:
        """Device latency for a row-buffer miss (closed row)."""
        return self.t_rcd_ns + self.t_cas_ns + self.burst_time_ns

    def row_conflict_latency_ns(self) -> float:
        """Device latency for a row-buffer conflict (precharge first)."""
        return self.t_rp_ns + self.t_rcd_ns + self.t_cas_ns + self.burst_time_ns

    def refresh_overhead_fraction(self) -> float:
        """Fraction of time a rank is unavailable due to refresh."""
        return self.t_rfc_ns / self.t_refi_ns

    def transfer_time_ns(self, num_bytes: int) -> float:
        """Pure data-transfer time for ``num_bytes`` over one channel."""
        lines = (num_bytes + CACHELINE_BYTES - 1) // CACHELINE_BYTES
        return lines * self.burst_time_ns


DDR4_2933 = DramTiming()

__all__ = [
    "NATIVE_DRAM_LATENCY_NS",
    "CXL_MEMORY_LATENCY_NS",
    "DramTiming",
    "DDR4_2933",
]
