"""RAMZzz-style baseline: epoch-based rank-aware power management.

RAMZzz (Wu et al., SC'12 — the paper's Related Work, Section 8) separates
hot and cold *ranks* by periodically migrating pages and demotes cold
ranks into self-refresh.  Two structural differences from the DTL matter:

1. **No allocation knowledge.** RAMZzz sits at the MC/OS level and sees
   only access counts; it cannot tell a *free* segment from a cold one,
   so it cannot deliberately collect the unallocated space that the DTL's
   planner converges on.
2. **Epoch demotion instead of a quiet-timer.** At each epoch end the
   coldest rank is demoted if its epoch access count is below a
   threshold — there is no "hypothetical victim" being watched for
   quiet, so residually-warm data causes wakeup ping-pong instead of
   being planned out before demotion.

The implementation reuses the same device/allocator/tables substrate so
the comparison with :class:`~repro.core.self_refresh.
HotnessSelfRefreshPolicy` is apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.addressing import DeviceAddressLayout, SegmentLocation
from repro.core.allocator import SegmentAllocator
from repro.core.tables import TranslationTables
from repro.core.translation import TranslationEngine
from repro.dram.device import DramDevice
from repro.dram.power import PowerState
from repro.units import NS_PER_MS


@dataclass(frozen=True)
class RamzzzConfig:
    """RAMZzz policy knobs.

    Attributes:
        epoch_ns: Reorganisation epoch (RAMZzz uses tens of ms).
        migrations_per_epoch: Hot-segment evictions per rank per epoch
            (RAMZzz bounds migration overhead per epoch).
        demote_threshold: Demote the coldest rank when its epoch access
            count is at or below this.
        victim_granularity: Ranks demoted together (CKE pair = 2).
    """

    epoch_ns: float = 100 * NS_PER_MS
    migrations_per_epoch: int = 16
    demote_threshold: int = 1000
    victim_granularity: int = 2


class RamzzzPolicy:
    """Epoch-based hot/cold rank separation with demotion."""

    def __init__(self, device: DramDevice, allocator: SegmentAllocator,
                 tables: TranslationTables, translation: TranslationEngine,
                 config: RamzzzConfig | None = None):
        self.device = device
        self.geometry = device.geometry
        self.layout = DeviceAddressLayout(self.geometry)
        self.allocator = allocator
        self.tables = tables
        self.translation = translation
        self.config = config or RamzzzConfig()
        total = self.geometry.total_segments
        self.segment_counts = np.zeros(total, dtype=np.int64)
        self._rank_shift = (self.geometry.channel_bits
                            + self.geometry.segment_index_bits)
        self._channel_mask = self.geometry.channels - 1
        self.epoch_index = 0
        self.demotions = 0
        self.wakeups = 0
        self.migrated_bytes_total = 0
        self.exit_penalty_total_ns = 0.0

    # -- access path -----------------------------------------------------------

    def on_batch(self, dsns: np.ndarray, now_ns: float) -> float:
        """Record one window's distinct touched segments; wake SR ranks."""
        if not len(dsns):
            return 0.0
        dsns = np.asarray(dsns, dtype=np.int64)
        np.add.at(self.segment_counts, dsns, 1)
        penalty = 0.0
        ranks = np.unique(np.stack([dsns & self._channel_mask,
                                    dsns >> self._rank_shift], axis=1),
                          axis=0)
        for channel, rank in ranks:
            rank_obj = self.device.rank(int(channel), int(rank))
            if rank_obj.state is PowerState.SELF_REFRESH:
                block = (int(rank) // self.config.victim_granularity
                         * self.config.victim_granularity)
                for member in range(block,
                                    block + self.config.victim_granularity):
                    member_obj = self.device.rank(int(channel), member)
                    if member_obj.state is PowerState.SELF_REFRESH:
                        penalty = max(penalty, self.device.set_rank_state(
                            (int(channel), member), PowerState.STANDBY,
                            now_ns / 1e9))
                self.wakeups += 1
            rank_obj.record_access()
        self.exit_penalty_total_ns += penalty
        return penalty

    # -- epoch reorganisation -----------------------------------------------------

    def _rank_dsns(self, channel: int, rank: int) -> np.ndarray:
        base = self.layout.pack_dsn(SegmentLocation(channel, rank, 0))
        return base + np.arange(self.geometry.segments_per_rank) \
            * self.geometry.channels

    def _rank_count(self, channel: int, rank: int) -> int:
        return int(self.segment_counts[self._rank_dsns(channel, rank)].sum())

    def end_epoch(self, now_ns: float) -> int:
        """Reorganise and demote; returns ranks demoted this epoch."""
        self.epoch_index += 1
        demoted = 0
        granularity = self.config.victim_granularity
        for channel in range(self.geometry.channels):
            standby = [rank for rank
                       in range(self.geometry.ranks_per_channel)
                       if self.device.rank(channel, rank).state
                       is PowerState.STANDBY]
            blocks = [tuple(range(start, start + granularity))
                      for start in range(0, self.geometry.ranks_per_channel,
                                         granularity)
                      if all(rank in standby for rank
                             in range(start, start + granularity))]
            if len(blocks) < 2:
                continue
            block_counts = {block: sum(self._rank_count(channel, rank)
                                       for rank in block)
                            for block in blocks}
            coldest = min(blocks, key=lambda block: block_counts[block])
            self._evict_hot_segments(channel, coldest, now_ns)
            if block_counts[coldest] <= self.config.demote_threshold:
                for rank in coldest:
                    self.device.set_rank_state((channel, rank),
                                               PowerState.SELF_REFRESH,
                                               now_ns / 1e9)
                self.demotions += 1
                demoted += len(coldest)
        self.segment_counts[:] = 0
        return demoted

    def _evict_hot_segments(self, channel: int, block: tuple[int, ...],
                            now_ns: float) -> None:
        """Swap the block's hottest segments with cold ones elsewhere.

        Without allocation knowledge, candidates are chosen purely by
        epoch access count — a free segment and a cold live segment are
        indistinguishable.
        """
        budget = self.config.migrations_per_epoch
        victim_dsns = np.concatenate([self._rank_dsns(channel, rank)
                                      for rank in block])
        counts = self.segment_counts[victim_dsns]
        hot_order = np.argsort(counts)[::-1]
        hot = victim_dsns[hot_order][:budget]
        hot = hot[self.segment_counts[hot] > 0]
        if not len(hot):
            return
        # Cold destinations: least-touched segments in the other standby
        # ranks of the channel.
        others = [rank for rank in range(self.geometry.ranks_per_channel)
                  if rank not in block
                  and self.device.rank(channel, rank).state
                  is PowerState.STANDBY]
        if not others:
            return
        other_dsns = np.concatenate([self._rank_dsns(channel, rank)
                                     for rank in others])
        cold_order = np.argsort(self.segment_counts[other_dsns])
        cold = other_dsns[cold_order][:len(hot)]
        for hot_dsn, cold_dsn in zip(hot.tolist(), cold.tolist()):
            self._exchange(int(hot_dsn), int(cold_dsn))

    def _exchange(self, dsn_a: int, dsn_b: int) -> None:
        """Swap/move two segments' contents and mappings."""
        live_a = self.tables.is_dsn_live(dsn_a)
        live_b = self.tables.is_dsn_live(dsn_b)
        moved = 0
        if live_a and live_b:
            hsn_a = self.tables.hsn_of_dsn(dsn_a)
            hsn_b = self.tables.hsn_of_dsn(dsn_b)
            self.tables.swap_segments(hsn_a, hsn_b)
            self.translation.invalidate(hsn_a)
            self.translation.invalidate(hsn_b)
            moved = 2
        elif live_a:
            self.allocator.reserve_specific(dsn_b)
            hsn = self.tables.hsn_of_dsn(dsn_a)
            self.tables.remap_segment(hsn, dsn_b)
            self.translation.invalidate(hsn)
            self.allocator.free([dsn_a])
            moved = 1
        elif live_b:
            self.allocator.reserve_specific(dsn_a)
            hsn = self.tables.hsn_of_dsn(dsn_b)
            self.tables.remap_segment(hsn, dsn_a)
            self.translation.invalidate(hsn)
            self.allocator.free([dsn_b])
            moved = 1
        # Keep the hotness bookkeeping consistent with the move.
        self.segment_counts[dsn_a], self.segment_counts[dsn_b] = (
            self.segment_counts[dsn_b], self.segment_counts[dsn_a])
        self.migrated_bytes_total += moved * self.geometry.segment_bytes

    # -- introspection ---------------------------------------------------------------

    def sr_rank_count(self) -> int:
        """Ranks currently in self-refresh."""
        return sum(1 for rank in self.device.ranks.values()
                   if rank.state is PowerState.SELF_REFRESH)


__all__ = ["RamzzzConfig", "RamzzzPolicy"]
