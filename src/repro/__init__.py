"""Reproduction of "DRAM Translation Layer: Software-Transparent DRAM Power
Savings for Disaggregated Memory" (Jin et al., ISCA 2023).

Public entry points:

* :class:`repro.core.DtlController` / :class:`repro.cxl.CxlMemoryDevice` --
  the DTL-equipped CXL memory device.
* :mod:`repro.workloads` -- Azure-like VM schedules and CloudSuite-like
  synthetic memory traces.
* :mod:`repro.sim` -- the power-down and self-refresh experiment simulators.
* :mod:`repro.analysis` -- AMAT, structure-sizing, and controller area/power
  models (paper Sections 6.1, 6.5, 6.6).
* :mod:`repro.telemetry` -- metrics registry, event trace, and snapshot
  export shared by every subsystem (see ``docs/TELEMETRY.md``).
"""

from repro.core import DtlConfig, DtlController
from repro.cxl import CxlLinkConfig, CxlMemoryDevice
from repro.dram import DramGeometry, PowerState
from repro.telemetry import EventKind, EventTrace, MetricsRegistry, Snapshot

__version__ = "1.0.0"

__all__ = [
    "DtlConfig",
    "DtlController",
    "CxlLinkConfig",
    "CxlMemoryDevice",
    "DramGeometry",
    "PowerState",
    "EventKind",
    "EventTrace",
    "MetricsRegistry",
    "Snapshot",
    "__version__",
]
