"""Chaos soak: a workload replayed under an escalating fault schedule.

:class:`ChaosSoakExperiment` drives one deterministic workload —
allocation, mixed read/write batches, self-refresh entry and wake,
VM churn with background consolidation, MPSM reactivation — through a
fully armed :class:`~repro.faults.injector.FaultInjector`, once per
escalation level (each level halves every fault's period).  After every
injected migration abort the end-state is cross-checked against
:class:`~repro.core.checker.ConsistencyChecker`'s invariants, and the
campaign's :class:`~repro.faults.injector.ReliabilityReport` carries the
audit tally: the soak passes only with **zero** violations and zero
data-loss events across every level.

Registered as ``chaos`` in :data:`repro.sim.experiments.EXPERIMENTS`
and surfaced by the ``repro chaos`` CLI command.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.checker import ConsistencyChecker
from repro.core.config import DtlConfig
from repro.core.controller import DtlController, VmHandle
from repro.cxl.link import CxlLinkConfig
from repro.dram.geometry import DramGeometry
from repro.exec.hashing import derive_seed
from repro.faults.hooks import HookPoint
from repro.faults.injector import FaultInjector, ReliabilityReport
from repro.faults.plan import (CxlLinkFault, EccFault, FaultPlan,
                               MigrationAbortFault, PowerExitFault,
                               SmcCorruptionFault)
from repro.units import MIB

#: Safety bound on drain pumping: an injector can abort copies, but every
#: abort spec is fire-capped, so a drain that needs more steps than this
#: is a livelock and is reported as a violation instead of hanging.
DRAIN_STEP_LIMIT = 100_000


@dataclass(frozen=True)
class ChaosSoakConfig:
    """Configuration of one chaos soak campaign.

    Structurally conforms to :class:`repro.sim.base.SeededConfig`
    (``replace`` / ``with_seed``) without importing it: the registry in
    :mod:`repro.sim.experiments` imports this module, so this module
    must not import :mod:`repro.sim`.

    Attributes:
        seed: Drives the workload RNG and names the plan; one integer
            reproduces the whole campaign bit-for-bit.
        levels: Escalation levels; level ``k`` runs the base plan with
            every fault period divided by ``2**k``.
        batches_per_phase: Access batches in each workload phase.
        batch_size: Accesses per batch.
        write_fraction: Fraction of accesses that are writes.
        channels / ranks_per_channel / rank_bytes / segment_bytes /
            au_bytes: Small-geometry knobs (seconds-scale soak).
        profiling_threshold_ns: Self-refresh quiet threshold, shrunk so
            the soak actually reaches SR entry and wake.
        access_period_ns: Simulated time per access.
        policy: Registered migration/demotion policy the soak arms
            (faults must compose with every policy, not just the
            paper's — see repro.policies).
    """

    seed: int = 0
    levels: int = 3
    batches_per_phase: int = 8
    batch_size: int = 64
    write_fraction: float = 0.25
    channels: int = 2
    ranks_per_channel: int = 4
    rank_bytes: int = 16 * MIB
    segment_bytes: int = 128 * 1024
    au_bytes: int = 1 * MIB
    profiling_threshold_ns: float = 200_000.0
    access_period_ns: float = 100.0
    policy: str = "paper"

    def replace(self, **changes: Any) -> ChaosSoakConfig:
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    def with_seed(self, seed: int) -> ChaosSoakConfig:
        """A copy of this config that only differs in its ``seed``."""
        return dataclasses.replace(self, seed=seed)

    def geometry(self) -> DramGeometry:
        """The soak's DRAM geometry."""
        return DramGeometry(channels=self.channels,
                            ranks_per_channel=self.ranks_per_channel,
                            rank_bytes=self.rank_bytes,
                            segment_bytes=self.segment_bytes)

    def dtl_config(self) -> DtlConfig:
        """The controller config the soak runs against."""
        return DtlConfig(
            geometry=self.geometry(), au_bytes=self.au_bytes,
            profiling_threshold_ns=self.profiling_threshold_ns,
            background_migration=True,
            policy=self.policy)

    def base_plan(self) -> FaultPlan:
        """The level-0 fault schedule (every spec kind, spread out)."""
        return FaultPlan(seed=self.seed, name=f"chaos-{self.seed}", specs=(
            CxlLinkFault(start=7, period=97, retries=2, backoff_ns=40.0),
            CxlLinkFault(start=31, period=211, kind="stall",
                         stall_ns=400.0),
            EccFault(start=11, period=173, bits=1),
            EccFault(start=301, period=907, bits=2),
            SmcCorruptionFault(start=53, period=307),
            MigrationAbortFault(start=0, period=3, max_fires=4),
            PowerExitFault(target="mpsm", period=2, kind="delay",
                           delay_ns=800.0),
            PowerExitFault(target="sr", period=2, kind="fail",
                           delay_ns=1200.0, failures=2),
        ))


@dataclass
class ChaosSoakResult:
    """Outcome of one campaign (all levels)."""

    config: ChaosSoakConfig
    report: ReliabilityReport
    level_reports: list[ReliabilityReport] = field(default_factory=list)
    snapshot: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the DTL survived: no violations, no data loss."""
        return (not self.report.checker_violations
                and self.report.data_loss_events == 0)

    def to_record(self):
        """Flatten into an :class:`~repro.sim.results.ExperimentRecord`."""
        from repro.sim.results import ExperimentRecord
        report = self.report
        metrics: dict[str, Any] = {
            "levels": self.config.levels,
            "faults_injected": report.injected_total,
            "faults_detected": report.detected,
            "faults_recovered": report.recovered,
            "ecc_corrected": report.ecc_corrected,
            "ecc_uncorrected": report.ecc_uncorrected,
            "power_exit_failures": report.power_exit_failures,
            "data_loss_events": report.data_loss_events,
            "checker_audits": report.checker_audits,
            "checker_violations": len(report.checker_violations),
            "ok": self.ok,
        }
        for point, count in sorted(report.injected.items()):
            metrics[f"injected.{point}"] = count
        return ExperimentRecord("chaos", metrics,
                                {"checker_violations": 0,
                                 "data_loss_events": 0})


class _Clock:
    """Monotonic simulated time for the soak (ns, with an s view)."""

    def __init__(self, period_ns: float):
        self.now_ns = 0.0
        self.period_ns = period_ns

    @property
    def now_s(self) -> float:
        return self.now_ns / 1e9

    def advance(self, accesses: int) -> None:
        self.now_ns += accesses * self.period_ns


@dataclass
class ChaosRunState:
    """Level progress of one stepped chaos campaign."""

    base: FaultPlan
    reports: list[ReliabilityReport] = field(default_factory=list)
    snapshot: dict[str, Any] = field(default_factory=dict)
    level: int = 0


class ChaosSoakExperiment:
    """Escalating fault-injection soak over the full DTL datapath."""

    name = "chaos"

    def __init__(self, config: ChaosSoakConfig | None = None):
        self.config = config if config is not None else ChaosSoakConfig()

    def run(self) -> ChaosSoakResult:
        """Run every escalation level; returns the combined result."""
        state = self.begin()
        while self.advance(state):
            pass
        return self.finish(state)

    # -- stepped execution -------------------------------------------------------
    # One escalation level per advance.  Each level builds its own fresh
    # controller, injector, and RNG (from the level plan's name), so a
    # checkpoint between levels carries only the completed reports.

    def begin(self) -> "ChaosRunState":
        """Derive the level-0 plan; no levels have run yet."""
        return ChaosRunState(base=self.config.base_plan())

    def advance(self, state: "ChaosRunState") -> bool:
        """Run one escalation level; True while more remain after."""
        if state.level >= self.config.levels:
            return False
        report, snapshot = self._run_level(
            state.base.escalated(state.level))
        state.reports.append(report)
        state.snapshot = snapshot
        state.level += 1
        return state.level < self.config.levels

    def finish(self, state: "ChaosRunState") -> ChaosSoakResult:
        """Combine the level reports into the campaign verdict."""
        combined = ReliabilityReport.combine(state.reports)
        combined.plan_name = state.base.name
        return ChaosSoakResult(config=self.config, report=combined,
                               level_reports=state.reports,
                               snapshot=state.snapshot)

    # -- one level ---------------------------------------------------------------

    def _run_level(self, plan: FaultPlan,
                   ) -> tuple[ReliabilityReport, dict[str, Any]]:
        cfg = self.config
        controller = DtlController(cfg.dtl_config())
        injector = FaultInjector(plan, registry=controller.metrics,
                                 trace=controller.trace,
                                 link=CxlLinkConfig())
        controller.arm_faults(injector)
        checker = ConsistencyChecker(controller)
        rng = np.random.default_rng(derive_seed(cfg.seed, plan.name))
        clock = _Clock(cfg.access_period_ns)
        audits = 0
        violations: list[str] = []

        def audit() -> None:
            nonlocal audits
            audits += 1
            # In-flight migrations legitimately double-allocate their
            # segment on one channel, so balance is audited to within
            # the tracked-request count (exact once drained).
            tolerance = len(controller.migration.tracked_requests())
            outcome = checker.audit(balance_tolerance=tolerance)
            violations.extend(outcome.violations)

        hot = controller.allocate_vm(0, 8 * MIB, now_s=clock.now_s)
        cold = controller.allocate_vm(1, 8 * MIB, now_s=clock.now_s)
        churn = controller.allocate_vm(2, 8 * MIB, now_s=clock.now_s)
        audit()

        # Phase 1 — warm both working sets (CXL/ECC/SMC faults fire on
        # the scalar replay path the active plan forces).
        self._drive(controller, hot, rng, clock)
        self._drive(controller, cold, rng, clock)
        audit()

        # Phase 2 — let the cold VM's ranks go quiet until self-refresh
        # entry (profiling threshold is shrunk in the config).
        quiet_batches = int(cfg.profiling_threshold_ns
                            // (cfg.batch_size * cfg.access_period_ns)) + 4
        self._drive(controller, hot, rng, clock, batches=quiet_batches)
        audit()

        # Phase 3 — touch the cold VM again: any rank that entered
        # self-refresh wakes through the sr.exit hook.
        self._drive(controller, cold, rng, clock, batches=4)
        audit()

        # Phase 4 — churn: deallocate a VM, let the power-down policy
        # consolidate in the background, and audit after every injected
        # migration abort.
        controller.deallocate_vm(churn, now_s=clock.now_s)
        audit()
        aborts_seen = injector.injected(HookPoint.MIGRATION_COPY)
        for _ in range(4 * cfg.batches_per_phase):
            self._drive(controller, hot, rng, clock, batches=1)
            controller.pump_migrations(clock.now_s, lines=8)
            aborts = injector.injected(HookPoint.MIGRATION_COPY)
            if aborts > aborts_seen:
                aborts_seen = aborts
                audit()
        steps = 0
        while controller.migration.pending_count():
            steps += 1
            if steps > DRAIN_STEP_LIMIT:
                violations.append(
                    f"migration drain exceeded {DRAIN_STEP_LIMIT} pump "
                    "steps under fault injection")
                break
            controller.pump_migrations(clock.now_s, lines=16)
            clock.advance(1)
            aborts = injector.injected(HookPoint.MIGRATION_COPY)
            if aborts > aborts_seen:
                aborts_seen = aborts
                audit()
        audit()

        # Phase 5 — a large allocation forces MPSM reactivation (the
        # power.mpsm_exit hook) and one more full-pressure access pass.
        big = controller.allocate_vm(3, 64 * MIB, now_s=clock.now_s)
        audit()
        self._drive(controller, big, rng, clock, batches=2)
        self._drive(controller, hot, rng, clock, batches=2)
        controller.end_window()
        audit()

        snapshot = controller.telemetry_snapshot(now_s=clock.now_s)
        report = injector.report()
        report.checker_audits = audits
        report.checker_violations = violations
        controller.disarm_faults()
        return report, snapshot.to_dict()

    # -- workload helpers --------------------------------------------------------

    def _drive(self, controller: DtlController, vm: VmHandle,
               rng: np.random.Generator, clock: _Clock,
               batches: int | None = None) -> None:
        """Run mixed read/write batches against one VM's reservation."""
        cfg = self.config
        for _ in range(batches if batches is not None
                       else cfg.batches_per_phase):
            hpas = self._hpas(controller, vm, rng, cfg.batch_size)
            writes = rng.random(cfg.batch_size) < cfg.write_fraction
            controller.access_batch(vm.host_id, hpas, writes,
                                    now_ns=clock.now_ns)
            clock.advance(cfg.batch_size)
            controller.tick(clock.now_ns)
            controller.end_window()

    def _hpas(self, controller: DtlController, vm: VmHandle,
              rng: np.random.Generator, count: int) -> np.ndarray:
        """``count`` random host-local HPAs inside ``vm``'s AUs."""
        au_ids = np.asarray(vm.au_ids, dtype=np.int64)
        picks = rng.integers(0, len(au_ids), size=count)
        offsets = rng.integers(
            0, controller.host_layout.segments_per_au, size=count)
        lines = rng.integers(
            0, controller.geometry.segment_bytes // 64, size=count)
        return np.array(
            [controller.hpa_of(int(au_ids[pick]), int(offset),
                               int(line) * 64)
             for pick, offset, line in zip(picks, offsets, lines)],
            dtype=np.int64)


__all__ = ["DRAIN_STEP_LIMIT", "ChaosRunState", "ChaosSoakConfig",
           "ChaosSoakResult", "ChaosSoakExperiment"]
