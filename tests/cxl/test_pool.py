"""Tests for the multi-device memory pool."""

import pytest

from repro.core.config import DtlConfig
from repro.cxl.pool import MemoryPool
from repro.dram.geometry import DramGeometry
from repro.errors import AllocationError, ConfigurationError
from repro.units import GIB, MIB


def make_pool(devices=2, placement="pack"):
    config = DtlConfig(geometry=DramGeometry(rank_bytes=256 * MIB),
                       au_bytes=64 * MIB, group_granularity=2)
    return MemoryPool([config] * devices, placement=placement)


class TestConstruction:
    def test_needs_devices(self):
        with pytest.raises(ConfigurationError):
            MemoryPool([])

    def test_unknown_placement(self):
        config = DtlConfig(geometry=DramGeometry(rank_bytes=256 * MIB),
                           au_bytes=64 * MIB)
        with pytest.raises(ConfigurationError):
            MemoryPool([config], placement="hash")

    def test_total_capacity(self):
        pool = make_pool(devices=3)
        assert pool.total_bytes == 3 * 8 * GIB


class TestPlacement:
    def test_pack_concentrates(self):
        pool = make_pool(placement="pack")
        handles = [pool.allocate_vm(0, 1 * GIB) for _ in range(3)]
        devices = {handle.device_index for handle in handles}
        assert len(devices) == 1  # all on one device

    def test_spread_balances(self):
        pool = make_pool(placement="spread")
        handles = [pool.allocate_vm(0, 1 * GIB) for _ in range(2)]
        assert handles[0].device_index != handles[1].device_index

    def test_pack_overflows_to_next_device(self):
        pool = make_pool(placement="pack")
        pool.allocate_vm(0, 7 * GIB)
        second = pool.allocate_vm(0, 4 * GIB)
        assert second.device_index == 1

    def test_pool_full(self):
        pool = make_pool()
        with pytest.raises(AllocationError):
            pool.allocate_vm(0, 17 * GIB)

    def test_pack_saves_pool_power(self):
        """The DTL philosophy one level up: packing lets the idle
        device's ranks power down entirely."""
        packed = make_pool(placement="pack")
        spread = make_pool(placement="spread")
        for pool in (packed, spread):
            for _ in range(2):
                vm = pool.allocate_vm(0, 1 * GIB, now_s=0.0)
            # Nudge both pools' power-down policies via a dealloc cycle.
            extra = pool.allocate_vm(0, 1 * GIB, now_s=1.0)
            pool.deallocate_vm(extra, now_s=2.0)
        assert packed.stats().background_power_rsu <= \
            spread.stats().background_power_rsu


class TestLifecycle:
    def test_deallocate(self):
        pool = make_pool()
        vm = pool.allocate_vm(0, 1 * GIB)
        assert pool.reserved_bytes() == 1 * GIB
        pool.deallocate_vm(vm, now_s=1.0)
        assert pool.reserved_bytes() == 0
        assert pool.live_vms == []

    def test_double_deallocate(self):
        pool = make_pool()
        vm = pool.allocate_vm(0, 1 * GIB)
        pool.deallocate_vm(vm)
        with pytest.raises(AllocationError):
            pool.deallocate_vm(vm)

    def test_stats_shape(self):
        pool = make_pool()
        vm = pool.allocate_vm(0, 2 * GIB, now_s=0.0)
        stats = pool.stats()
        assert stats.devices == 2
        assert stats.reserved_bytes == 2 * GIB
        assert stats.utilization == pytest.approx(2 / 16)
        assert stats.ranks_standby + stats.ranks_self_refresh \
            + stats.ranks_mpsm == 64


class TestInitialPowerDown:
    def test_enabled_by_default(self):
        pool = make_pool()
        assert pool.stats().ranks_mpsm > 0

    def test_can_be_disabled(self):
        from repro.core.config import DtlConfig
        from repro.cxl.pool import MemoryPool
        from repro.dram.geometry import DramGeometry
        config = DtlConfig(geometry=DramGeometry(rank_bytes=256 * MIB),
                           au_bytes=64 * MIB)
        pool = MemoryPool([config], initial_power_down=False)
        assert pool.stats().ranks_mpsm == 0
