"""Pluggable migration/demotion policies for the DTL controllers.

See :mod:`repro.policies.protocol` for the contract and
``docs/POLICIES.md`` for how to write one.  Importing this package
registers the four built-in policies:

================  ======================================================
``paper``         The published behaviour: emptiest-first victims,
                  fullest-first targets, CLOCK cold search, static
                  MPSM/SR demotion.  Bit-identical to the pre-protocol
                  controllers.
``adaptive``      Paper selection, but park depth chosen per rank-group
                  from observed idle-gap histograms.
``rank_aware``    Lu et al.: coldest-first victims, hottest-first
                  targets, adaptive demotion.
``dream``         DReAM-style: cold partners drained coldest-rank-first
                  instead of round-robin.
================  ======================================================
"""

from repro.policies.adaptive import AdaptiveDemotionPolicy
from repro.policies.dream import DreamRemapPolicy
from repro.policies.idle import RankIdleTracker
from repro.policies.paper import PaperPolicy
from repro.policies.protocol import (
    DEFAULT_PROFILING_THRESHOLD_NS,
    DEFAULT_REVISIT_DELAY_NS,
    DEFAULT_TSP_SCAN_LIMIT,
    DEFAULT_WINDOW_NS,
    POLICIES,
    ColdSearch,
    DemotionLevel,
    Policy,
    PolicyConfig,
    RankStats,
    available_policies,
    make_policy,
    register_policy,
)
from repro.policies.rank_aware import RankAwareMigrationPolicy

__all__ = [
    "DEFAULT_WINDOW_NS",
    "DEFAULT_PROFILING_THRESHOLD_NS",
    "DEFAULT_TSP_SCAN_LIMIT",
    "DEFAULT_REVISIT_DELAY_NS",
    "ColdSearch",
    "DemotionLevel",
    "Policy",
    "PolicyConfig",
    "RankStats",
    "POLICIES",
    "available_policies",
    "make_policy",
    "register_policy",
    "PaperPolicy",
    "AdaptiveDemotionPolicy",
    "RankAwareMigrationPolicy",
    "DreamRemapPolicy",
    "RankIdleTracker",
]
