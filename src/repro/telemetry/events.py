"""Typed event tracing: a bounded ring buffer of datapath events.

Every interesting state change in the DTL datapath — an SMC fill, a
migration abort, a rank power transition — can be recorded as a
:class:`TraceEvent` in an :class:`EventTrace`.  The trace is a ring
buffer: it keeps the most recent ``capacity`` events and counts what it
drops, so it is safe to leave attached during long simulations.
"""

from __future__ import annotations

import enum
from collections import Counter as TallyCounter
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

DEFAULT_TRACE_CAPACITY = 4096


class EventKind(enum.Enum):
    """Every event type the DTL datapath can emit."""

    ACCESS = "access"
    SMC_FILL = "smc_fill"
    SMC_EVICT = "smc_evict"
    SMC_INVALIDATE = "smc_invalidate"
    MIGRATION_SUBMIT = "migration_submit"
    MIGRATION_ABORT = "migration_abort"
    MIGRATION_REQUEUE = "migration_requeue"
    MIGRATION_RETIRE = "migration_retire"
    POWER_TRANSITION = "power_transition"
    SR_ENTER = "sr_enter"
    SR_EXIT = "sr_exit"
    WINDOW_CLOSE = "window_close"
    FAULT_INJECTED = "fault_injected"
    ECC_ERROR = "ecc_error"


@dataclass
class TraceEvent:
    """One recorded event.

    Attributes:
        kind: Event type.
        time: Event timestamp in the emitter's native unit (simulated
            seconds for power transitions, nanoseconds for accesses; the
            ``data`` dict says which when it matters).
        data: Free-form event payload (DSNs, rank IDs, penalties...).
    """

    kind: EventKind
    time: float = 0.0
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {"kind": self.kind.value, "time": self.time, **self.data}


class EventTrace:
    """Bounded ring buffer of :class:`TraceEvent` records."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY):
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._tally: TallyCounter = TallyCounter()
        self.recorded = 0

    @property
    def enabled(self) -> bool:
        """False on a disabled trace; producers may skip event building."""
        return True

    @staticmethod
    def disabled() -> "NullEventTrace":
        """A trace that records nothing (telemetry fast path).

        Producers that check :attr:`enabled` can skip building event
        payloads entirely; producers that do not still pay only a no-op
        call.  The buffer stays empty and every tally reads zero.
        """
        return NullEventTrace()

    def record(self, kind: EventKind, time: float = 0.0,
               **data: Any) -> TraceEvent:
        """Append one event; oldest events fall off past ``capacity``."""
        event = TraceEvent(kind=kind, time=time, data=data)
        self._events.append(event)
        self._tally[kind.value] += 1
        self.recorded += 1
        return event

    def record_tail(self, kind: EventKind, count: int,
                    tail: list[TraceEvent]) -> None:
        """Account ``count`` events of one kind, buffering only ``tail``.

        The batch datapath produces runs of events far longer than the
        ring buffer; only the last ``capacity`` of a run could survive it
        anyway.  Callers therefore build just the trailing
        ``min(count, capacity)`` events and pass them here: the tally and
        ``recorded`` advance by the full ``count`` (so ``dropped`` and
        ``counts_by_kind`` match a sequence of :meth:`record` calls) while
        the buffer receives only ``tail``.
        """
        if count < len(tail):
            raise ValueError(
                f"tail of {len(tail)} events exceeds count {count}")
        self._events.extend(tail[-self.capacity:] if self.capacity else [])
        self._tally[kind.value] += count
        self.recorded += count

    @property
    def dropped(self) -> int:
        """Events that fell off the ring buffer."""
        return self.recorded - len(self._events)

    def events(self, kind: EventKind | None = None) -> list[TraceEvent]:
        """Buffered events, optionally filtered to one kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind is kind]

    def counts_by_kind(self) -> dict[str, int]:
        """Total occurrences per event kind (including dropped events)."""
        return {kind: count for kind, count in sorted(self._tally.items())}

    def to_list(self) -> list[dict[str, Any]]:
        """Buffered events as JSON-ready dicts (oldest first)."""
        return [event.to_dict() for event in self._events]

    def clear(self) -> None:
        """Drop buffered events (totals in :meth:`counts_by_kind` remain)."""
        self._events.clear()

    # -- serialisation -----------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Buffered events plus tallies, as plain data."""
        return {
            "capacity": self.capacity,
            "events": [(event.kind.value, event.time, dict(event.data))
                       for event in self._events],
            "tally": dict(self._tally),
            "recorded": self.recorded,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (capacity included)."""
        self.capacity = state["capacity"]
        self._events = deque(
            (TraceEvent(kind=EventKind(kind), time=time, data=dict(data))
             for kind, time, data in state["events"]),
            maxlen=self.capacity)
        self._tally = TallyCounter(state["tally"])
        self.recorded = state["recorded"]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)


class NullEventTrace(EventTrace):
    """An :class:`EventTrace` that drops everything.

    Stands in wherever a trace is expected but tracing is off; recording
    is a no-op and all read-backs are empty/zero.
    """

    def __init__(self) -> None:
        super().__init__(capacity=0)

    @property
    def enabled(self) -> bool:
        return False

    def record(self, kind: EventKind, time: float = 0.0,
               **data: Any) -> TraceEvent:
        return TraceEvent(kind=kind, time=time, data=data)

    def record_tail(self, kind: EventKind, count: int,
                    tail: list[TraceEvent]) -> None:
        pass


__all__ = [
    "DEFAULT_TRACE_CAPACITY",
    "EventKind",
    "TraceEvent",
    "EventTrace",
    "NullEventTrace",
]
