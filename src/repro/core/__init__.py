"""DTL core: translation, allocation, migration, and power policies."""

from repro.core.addressing import (DEFAULT_AU_BYTES, DEFAULT_MAX_HOSTS,
                                   DeviceAddressLayout, HostAddressLayout,
                                   SegmentLocation)
from repro.core.allocator import RankUsage, SegmentAllocator
from repro.core.checker import (AuditReport, ConsistencyChecker,
                                ConsistencyError, check)
from repro.core.config import DtlConfig
from repro.core.controller import AccessResult, DtlController, VmHandle
from repro.core.migration import (MigrationEngine, MigrationRequest,
                                  MigrationStats, WriteRouting)
from repro.core.power_down import PowerTransition, RankPowerDownPolicy
from repro.core.retirement import RankRetirementManager, RetirementRecord
from repro.core.segment_cache import (CacheStats, LookupResult,
                                      SegmentCacheConfig, SegmentMappingCache)
from repro.core.self_refresh import (ChannelPhase, HotnessSelfRefreshPolicy,
                                     SelfRefreshEvent)
from repro.core.stats import StatsSnapshot, snapshot
from repro.core.tables import TranslationTables, WalkResult
from repro.core.translation import Translation, TranslationEngine

__all__ = [
    "DEFAULT_AU_BYTES",
    "DEFAULT_MAX_HOSTS",
    "DeviceAddressLayout",
    "HostAddressLayout",
    "SegmentLocation",
    "RankUsage",
    "SegmentAllocator",
    "DtlConfig",
    "AuditReport",
    "ConsistencyChecker",
    "ConsistencyError",
    "check",
    "StatsSnapshot",
    "snapshot",
    "AccessResult",
    "DtlController",
    "VmHandle",
    "MigrationEngine",
    "MigrationRequest",
    "MigrationStats",
    "WriteRouting",
    "PowerTransition",
    "RankPowerDownPolicy",
    "RankRetirementManager",
    "RetirementRecord",
    "CacheStats",
    "LookupResult",
    "SegmentCacheConfig",
    "SegmentMappingCache",
    "ChannelPhase",
    "HotnessSelfRefreshPolicy",
    "SelfRefreshEvent",
    "TranslationTables",
    "WalkResult",
    "Translation",
    "TranslationEngine",
]
