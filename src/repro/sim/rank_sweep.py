"""Trace-driven rank sweep: Figure 2 from first principles.

The analytical :mod:`~repro.sim.perf_model` assumes Poisson arrivals over
identical banks.  This module replays a real (synthetic) post-cache trace
against the bank-level substrate instead: for each rank count it measures

* the per-bank load *imbalance* (hot banks queue more than the mean),
* the row-buffer outcome mix (hits are cheaper to serve),

and derives the execution-time delta with the same CPI decomposition.
It is the cross-check that the paper's "low returns from rank-level
parallelism" claim does not hinge on the analytical model's uniformity
assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.banks import AddressDecoder, BankState
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DDR4_2933, DramTiming, NATIVE_DRAM_LATENCY_NS
from repro.exec import ExecConfig, TaskSpec, run_tasks
from repro.sim.base import SeededConfig
from repro.units import GIB
from repro.workloads.cloudsuite import PROFILES, TraceGenerator, WorkloadProfile
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class RankSweepConfig:
    """Machine parameters for the trace-driven sweep (Figure 2 testbed)."""

    channels: int = 4
    banks_per_rank: int = 16
    rank_bytes: int = 2 * GIB
    cores: int = 28
    clock_ghz: float = 2.7
    core_utilization: float = 0.85
    mlp: float = 2.5
    memory_latency_ns: float = NATIVE_DRAM_LATENCY_NS
    timing: DramTiming = DDR4_2933


@dataclass
class RankSweepPoint:
    """Measurements for one rank count."""

    active_ranks: int
    row_hit_ratio: float
    mean_service_ns: float
    mean_queue_ns: float
    time_per_ki_ns: float


class TraceRankSweep:
    """Replay one workload's trace at several rank counts."""

    def __init__(self, profile: WorkloadProfile,
                 config: RankSweepConfig | None = None,
                 num_accesses: int = 60_000,
                 seed: int = 0):
        self.profile = profile
        self.config = config or RankSweepConfig()
        # The working set spans the full 8-rank configuration; shrinking
        # the rank count folds the same footprint onto fewer ranks.
        generator = TraceGenerator(
            profile,
            footprint_bytes=(self.config.channels * self.config.rank_bytes
                             * 8),
            seed=seed)
        self.trace: Trace = generator.generate(num_accesses)

    # -- measurement -------------------------------------------------------------

    def _arrival_rate_per_channel(self) -> float:
        config = self.config
        instr_per_s = (config.cores * config.clock_ghz * 1e9
                       * self.profile.ipc * config.core_utilization)
        return (self.profile.mapki / 1000.0 * instr_per_s
                / config.channels)

    def measure(self, active_ranks: int) -> RankSweepPoint:
        """Replay the trace with the footprint folded onto ``active_ranks``."""
        config = self.config
        geometry = DramGeometry(
            channels=config.channels,
            ranks_per_channel=max(1, active_ranks),
            banks_per_rank=config.banks_per_rank,
            rank_bytes=config.rank_bytes)
        decoder = AddressDecoder(geometry, mapping="dtl")
        banks = BankState(geometry)
        # Fold the trace's footprint into the shrunken capacity, exactly
        # what happens when fewer ranks back the same working set.
        addresses = (self.trace.addresses
                     % np.uint64(geometry.total_bytes)).astype(np.int64)
        timing = config.timing
        channels, ranks, bank_ids, rows = decoder.decode_batch(addresses)
        indices = banks.bank_index_batch(channels, ranks, bank_ids)
        hits, misses, conflicts = banks.access_batch(indices, rows)
        service_sum = (int(hits.sum()) * timing.row_hit_latency_ns()
                       + int(misses.sum()) * timing.row_miss_latency_ns()
                       + int(conflicts.sum())
                       * timing.row_conflict_latency_ns())
        channel0 = channels == 0
        per_bank = np.bincount(
            ranks[channel0] * config.banks_per_rank + bank_ids[channel0],
            minlength=geometry.ranks_per_channel * config.banks_per_rank)
        total = len(addresses)
        mean_service = service_sum / total
        # Per-bank arrival rates, shaped by the measured imbalance.
        arrival = self._arrival_rate_per_channel()
        channel_total = max(1, int(per_bank.sum()))
        queue_sum = 0.0
        for count in per_bank:
            bank_arrival = arrival * count / channel_total
            rho = min(0.95, bank_arrival * mean_service * 1e-9)
            queue = mean_service * rho / (2.0 * (1.0 - rho))
            queue_sum += queue * count
        mean_queue = queue_sum / channel_total
        core_ns = 1000.0 / (self.profile.ipc * config.clock_ghz)
        amat = config.memory_latency_ns + mean_queue
        time_per_ki = core_ns + self.profile.mapki * amat / config.mlp
        return RankSweepPoint(
            active_ranks=active_ranks,
            row_hit_ratio=banks.stats.hit_ratio,
            mean_service_ns=mean_service,
            mean_queue_ns=mean_queue,
            time_per_ki_ns=time_per_ki)

    def sweep(self, rank_counts: tuple[int, ...] = (8, 6, 4, 2),
              exec_config: ExecConfig | None = None,
              ) -> dict[int, RankSweepPoint]:
        """Measure every rank count (power-of-two counts recommended).

        The geometry needs powers of two, so odd counts interpolate
        between their power-of-two neighbours.  Only the deduplicated
        power-of-two measurements run — through :mod:`repro.exec`, so
        they fan out over workers when the exec config (or
        ``REPRO_EXEC_WORKERS``) asks for them; each measurement is a
        deterministic pure function of the trace, so serial and parallel
        sweeps are bit-identical.
        """
        ordered = _needed_power_of_two(rank_counts)
        outcomes = run_tasks(
            [TaskSpec(fn=_measure_task, args=(self, ranks),
                      label=f"rank-sweep-{ranks}", cpu_bound=True)
             for ranks in ordered],
            config=exec_config)
        measured = {ranks: outcome.unwrap()
                    for ranks, outcome in zip(ordered, outcomes)}
        return _resolve_points(rank_counts, measured)

    def slowdowns(self, rank_counts: tuple[int, ...] = (8, 6, 4, 2),
                  baseline_ranks: int = 8,
                  exec_config: ExecConfig | None = None) -> dict[int, float]:
        """Relative execution-time change vs the baseline rank count."""
        points = self.sweep(tuple(sorted(set(rank_counts)
                                         | {baseline_ranks})),
                            exec_config=exec_config)
        base = points[baseline_ranks].time_per_ki_ns
        return {ranks: points[ranks].time_per_ki_ns / base - 1.0
                for ranks in rank_counts}


def _measure_task(sweep: TraceRankSweep, ranks: int) -> RankSweepPoint:
    """One rank-count measurement (module-level: picklable)."""
    return sweep.measure(ranks)


def _needed_power_of_two(rank_counts: tuple[int, ...]) -> list[int]:
    """Deduplicated power-of-two counts that must actually be measured.

    Odd counts interpolate between their power-of-two neighbours, so the
    neighbours are what runs.
    """
    needed: set[int] = set()
    for ranks in rank_counts:
        if ranks & (ranks - 1):
            needed.add(1 << (ranks.bit_length() - 1))
            needed.add(1 << ranks.bit_length())
        else:
            needed.add(ranks)
    return sorted(needed)


def _resolve_points(rank_counts: tuple[int, ...],
                    measured: dict[int, RankSweepPoint],
                    ) -> dict[int, RankSweepPoint]:
    """Requested counts from measured power-of-two points."""
    points = {}
    for ranks in rank_counts:
        if ranks & (ranks - 1):
            low = measured[1 << (ranks.bit_length() - 1)]
            high = measured[1 << ranks.bit_length()]
            points[ranks] = _interpolate(ranks, low, high)
        else:
            points[ranks] = measured[ranks]
    return points


def _interpolate(ranks: int, low: RankSweepPoint,
                 high: RankSweepPoint) -> RankSweepPoint:
    """Linear interpolation between two measured power-of-two points."""
    frac = (ranks - low.active_ranks) / (high.active_ranks
                                         - low.active_ranks)
    return RankSweepPoint(
        active_ranks=ranks,
        row_hit_ratio=low.row_hit_ratio + frac * (
            high.row_hit_ratio - low.row_hit_ratio),
        mean_service_ns=low.mean_service_ns + frac * (
            high.mean_service_ns - low.mean_service_ns),
        mean_queue_ns=low.mean_queue_ns + frac * (
            high.mean_queue_ns - low.mean_queue_ns),
        time_per_ki_ns=low.time_per_ki_ns + frac * (
            high.time_per_ki_ns - low.time_per_ki_ns))


@dataclass(frozen=True)
class TraceRankSweepConfig(SeededConfig):
    """Everything one sweep experiment needs, as a single config.

    Wraps the machine parameters (:class:`RankSweepConfig`) together
    with the workload, trace length, rank counts, and seed that the
    :class:`TraceRankSweep` constructor used to take positionally — the
    shape the experiment registry and the result cache key off.
    """

    workload: str = "graph-analytics"
    machine: RankSweepConfig = field(default_factory=RankSweepConfig)
    num_accesses: int = 60_000
    rank_counts: tuple[int, ...] = (8, 6, 4, 2)
    baseline_ranks: int = 8
    seed: int = 0


@dataclass
class TraceRankSweepResult:
    """Every measured point of one sweep, plus derived slowdowns."""

    config: TraceRankSweepConfig
    points: dict[int, RankSweepPoint]

    def slowdowns(self) -> dict[int, float]:
        """Relative execution-time change vs the baseline rank count."""
        base = self.points[self.config.baseline_ranks].time_per_ki_ns
        return {ranks: self.points[ranks].time_per_ki_ns / base - 1.0
                for ranks in self.config.rank_counts}

    def to_record(self):
        """Flatten into an :class:`~repro.sim.results.ExperimentRecord`."""
        from repro.sim.results import ExperimentRecord
        metrics: dict = {"workload": self.config.workload}
        for ranks, slowdown in sorted(self.slowdowns().items()):
            metrics[f"slowdown_{ranks}ranks"] = slowdown
        for ranks, point in sorted(self.points.items()):
            metrics[f"row_hit_ratio_{ranks}ranks"] = point.row_hit_ratio
            metrics[f"mean_queue_ns_{ranks}ranks"] = point.mean_queue_ns
        return ExperimentRecord("rank_sweep", metrics)


class RankSweepExperiment:
    """Registry adapter: run a whole trace-driven sweep from one config."""

    name = "rank_sweep"

    def __init__(self, config: TraceRankSweepConfig | None = None,
                 exec_config: ExecConfig | None = None):
        self.config = config or TraceRankSweepConfig()
        self.exec_config = exec_config

    def run(self) -> TraceRankSweepResult:
        """Generate the trace and measure every configured rank count."""
        config = self.config
        sweep = TraceRankSweep(PROFILES[config.workload], config.machine,
                               num_accesses=config.num_accesses,
                               seed=config.seed)
        counts = tuple(sorted(set(config.rank_counts)
                              | {config.baseline_ranks}))
        points = sweep.sweep(counts, exec_config=self.exec_config)
        return TraceRankSweepResult(config=config, points=points)

    # -- stepped execution -----------------------------------------------------
    # One power-of-two measurement per advance.  ``measure`` is a pure
    # function of the trace, so the serial stepped path is bit-identical
    # to the run_tasks fan-out in :meth:`run`.

    def begin(self) -> "RankSweepRunState":
        """Generate the trace and plan the measurements."""
        config = self.config
        sweep = TraceRankSweep(PROFILES[config.workload], config.machine,
                               num_accesses=config.num_accesses,
                               seed=config.seed)
        counts = tuple(sorted(set(config.rank_counts)
                              | {config.baseline_ranks}))
        return RankSweepRunState(sweep=sweep, counts=counts,
                                 ordered=_needed_power_of_two(counts),
                                 measured={})

    def advance(self, state: "RankSweepRunState") -> bool:
        """Measure one pending rank count; True while more remain after."""
        if state.index >= len(state.ordered):
            return False
        ranks = state.ordered[state.index]
        state.measured[ranks] = state.sweep.measure(ranks)
        state.index += 1
        return state.index < len(state.ordered)

    def finish(self, state: "RankSweepRunState") -> TraceRankSweepResult:
        """Interpolate odd counts and assemble the sweep result."""
        points = _resolve_points(state.counts, state.measured)
        return TraceRankSweepResult(config=self.config, points=points)


@dataclass
class RankSweepRunState:
    """Measurement progress of one stepped rank sweep."""

    sweep: TraceRankSweep
    counts: tuple[int, ...]
    ordered: list[int]
    measured: dict[int, RankSweepPoint]
    index: int = 0


def interleaving_comparison(profile: WorkloadProfile,
                            config: RankSweepConfig | None = None,
                            num_accesses: int = 30_000,
                            footprint_ranks: int = 1,
                            seed: int = 0) -> dict[str, float]:
    """Trace-driven Figure 5 cross-check.

    Measures the queueing + row-buffer cost of serving the same trace
    under (a) conventional fine-grained interleaving over every rank and
    (b) the DTL layout where the footprint concentrates on
    ``footprint_ranks`` ranks per channel, and converts the delta into a
    slowdown at both the local and CXL base latencies.

    Returns:
        ``{"local": slowdown, "cxl": slowdown}``.
    """
    from repro.dram.timing import CXL_MEMORY_LATENCY_NS
    config = config or RankSweepConfig()
    sweep = TraceRankSweep(profile, config, num_accesses, seed)
    interleaved = sweep.measure(8)  # load spread over every rank
    concentrated = sweep.measure(footprint_ranks)
    results = {}
    for label, latency in (("local", config.memory_latency_ns),
                           ("cxl", CXL_MEMORY_LATENCY_NS)):
        core_ns = 1000.0 / (profile.ipc * config.clock_ghz)

        def time_ns(point):
            amat = latency + point.mean_queue_ns
            return core_ns + profile.mapki * amat / config.mlp

        results[label] = time_ns(concentrated) / time_ns(interleaved) - 1.0
    return results


def _workload_slowdown(name: str, seed: int, active_ranks: int,
                       num_accesses: int) -> float:
    """One workload's Figure 2 slowdown (module-level: picklable)."""
    sweep = TraceRankSweep(PROFILES[name], num_accesses=num_accesses,
                           seed=seed)
    return sweep.slowdowns((active_ranks,))[active_ranks]


def mean_trace_driven_slowdown(active_ranks: int,
                               workloads: tuple[str, ...] = (
                                   "graph-analytics", "data-serving",
                                   "data-caching", "web-search"),
                               num_accesses: int = 30_000,
                               exec_config: ExecConfig | None = None,
                               ) -> float:
    """Average trace-driven Figure 2 slowdown over a workload sample.

    The per-workload sweeps are independent (each builds its own trace),
    so they fan out through :mod:`repro.exec`.
    """
    outcomes = run_tasks(
        [TaskSpec(fn=_workload_slowdown,
                  args=(name, index, active_ranks, num_accesses),
                  label=f"rank-sweep-{name}", cpu_bound=True)
         for index, name in enumerate(workloads)],
        config=exec_config)
    return float(np.mean([outcome.unwrap() for outcome in outcomes]))


__all__ = [
    "RankSweepConfig",
    "RankSweepPoint",
    "TraceRankSweep",
    "TraceRankSweepConfig",
    "TraceRankSweepResult",
    "RankSweepExperiment",
    "RankSweepRunState",
    "mean_trace_driven_slowdown",
]
