"""Transparent rank retirement — the paper's reliability extension.

The conclusion notes that DTL "opens up interesting research directions by
providing means for flexible memory management to improve reliability,
availability, as well as security".  This module implements the most
direct of those: when a rank starts reporting correctable-error storms
(or fails a patrol scrub), the DTL can *retire* it — migrate every live
segment off, fence it from future allocation, and park it in MPSM —
without the host ever noticing beyond a few hundred nanoseconds of
migration interference.

Retirement is strictly stronger than power-down: a retired rank never
reactivates, and the device's advertised capacity shrinks accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocator import RankId, SegmentAllocator
from repro.core.migration import MigrationEngine
from repro.core.power_down import RankPowerDownPolicy
from repro.core.tables import TranslationTables
from repro.dram.device import DramDevice
from repro.dram.power import PowerState
from repro.errors import AllocationError, PowerStateError


@dataclass(frozen=True)
class RetirementRecord:
    """Outcome of one rank retirement."""

    rank_id: RankId
    time_s: float
    migrated_segments: int
    migrated_bytes: int
    was_powered_down: bool


class RankRetirementManager:
    """Fences failing ranks out of the device, data intact.

    Requires the rank-level power-down policy: retirement reuses its
    consolidation machinery and its active-rank bookkeeping.
    """

    def __init__(self, device: DramDevice, allocator: SegmentAllocator,
                 tables: TranslationTables, migration: MigrationEngine,
                 power_down: RankPowerDownPolicy):
        self.device = device
        self.geometry = device.geometry
        self.allocator = allocator
        self.tables = tables
        self.migration = migration
        self.power_down = power_down
        self.retired: set[RankId] = set()
        self.records: list[RetirementRecord] = []

    # -- queries --------------------------------------------------------------

    def is_retired(self, rank_id: RankId) -> bool:
        """True if the rank has been fenced."""
        return rank_id in self.retired

    def usable_bytes(self) -> int:
        """Device capacity excluding retired ranks."""
        return (self.geometry.total_bytes
                - len(self.retired) * self.geometry.rank_bytes)

    # -- retirement --------------------------------------------------------------

    def retire(self, rank_id: RankId, now_s: float = 0.0) -> RetirementRecord:
        """Retire one rank: evacuate, fence, power off.

        Raises:
            PowerStateError: if the rank is already retired.
            AllocationError: if its live data cannot be absorbed by the
                surviving ranks of the same channel (the device is too
                full to lose a rank safely).
        """
        if rank_id in self.retired:
            raise PowerStateError(f"rank {rank_id} is already retired")
        channel, rank = rank_id
        rank_obj = self.device.rank(channel, rank)
        was_powered_down = rank_obj.state is PowerState.MPSM
        live = self.allocator.allocated_in_rank(rank_id)
        migrated_bytes = 0
        if live:
            if was_powered_down:  # pragma: no cover - invariant guard
                raise PowerStateError(
                    f"rank {rank_id} is in MPSM yet holds data")
            migrated_bytes = self._evacuate(rank_id, live, now_s)
        # Fence: out of the active set, never to be reactivated.
        self.power_down.quarantine(rank_id)
        self.retired.add(rank_id)
        if rank_obj.state is PowerState.SELF_REFRESH:
            self.device.set_rank_state(rank_id, PowerState.STANDBY, now_s)
        if rank_obj.state is not PowerState.MPSM:
            self.device.set_rank_state(rank_id, PowerState.MPSM, now_s)
        record = RetirementRecord(
            rank_id=rank_id, time_s=now_s, migrated_segments=len(live),
            migrated_bytes=migrated_bytes,
            was_powered_down=was_powered_down)
        self.records.append(record)
        return record

    # -- serialisation ------------------------------------------------------------

    def state_dict(self) -> dict:
        """Fenced ranks and retirement records as plain data."""
        return {"retired": sorted(self.retired),
                "records": [{"rank_id": record.rank_id,
                             "time_s": record.time_s,
                             "migrated_segments": record.migrated_segments,
                             "migrated_bytes": record.migrated_bytes,
                             "was_powered_down": record.was_powered_down}
                            for record in self.records]}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        self.retired = {tuple(rank_id) for rank_id in state["retired"]}
        self.records = [RetirementRecord(
            rank_id=tuple(record["rank_id"]), time_s=record["time_s"],
            migrated_segments=record["migrated_segments"],
            migrated_bytes=record["migrated_bytes"],
            was_powered_down=record["was_powered_down"])
            for record in state["records"]]

    def _evacuate(self, rank_id: RankId, live: list[int],
                  now_s: float) -> int:
        """Move every live segment to surviving ranks of the channel."""
        channel = rank_id[0]
        survivors = {other for other in self.power_down.active_rank_ids()
                     if other[0] == channel and other != rank_id
                     and other not in self.retired}
        free = sum(self.allocator.free_in_rank(other) for other in survivors)
        if free < len(live):
            # Wake powered-down (non-retired) ranks to make room.
            self.power_down.ensure_capacity_on_channel(
                channel, len(live), exclude=self.retired | {rank_id},
                now_s=now_s)
            survivors = {other for other in self.power_down.active_rank_ids()
                         if other[0] == channel and other != rank_id
                         and other not in self.retired}
        migrated = 0
        for old_dsn in live:
            new_dsn = self._reserve_target(survivors)
            hsn = self.tables.hsn_of_dsn(old_dsn)
            self.migration.submit(hsn, old_dsn, new_dsn)
            migrated += self.geometry.segment_bytes
        self.migration.drain()
        return migrated

    def _reserve_target(self, survivors: set[RankId]) -> int:
        best: RankId | None = None
        best_util = -1.0
        for rank_id in survivors:
            if not self.allocator.free_in_rank(rank_id):
                continue
            util = self.allocator.usage(rank_id).utilization
            if util > best_util:
                best, best_util = rank_id, util
        if best is None:
            raise AllocationError(
                "no capacity left to evacuate the failing rank")
        return self.allocator.allocate_in_rank(best, 1)[0]


__all__ = ["RetirementRecord", "RankRetirementManager"]
