"""Ambient fault-plan arming and its cache-key contribution.

The executor caches experiment results by a stable hash of the
experiment config.  A chaos run replays the *same* experiment config
under an armed :class:`~repro.faults.plan.FaultPlan`, so without extra
input the cache would happily serve a fault-free result for a chaos run
(and vice versa).  This module is the fix: experiments arm their plan
through :func:`armed`, and :func:`hashing_context` folds whatever is
armed (or its absence) into the task key built by
:func:`repro.sim.experiments.experiment_task`.

Arming is process-ambient rather than threaded through every config
type so existing experiments stay untouched; the executor's worker
threads only ever observe the plan armed around the ``run_tasks`` call
that scheduled them.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator

from repro.faults.plan import FaultPlan

_ARMED: FaultPlan | None = None


def current_plan() -> FaultPlan | None:
    """The ambiently armed plan, or None outside any :func:`armed`."""
    return _ARMED


@contextlib.contextmanager
def armed(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Arm ``plan`` ambiently for the duration of the block.

    Nestable; the previous plan is restored on exit.  Passing None
    explicitly disarms inside the block.
    """
    global _ARMED
    previous = _ARMED
    _ARMED = plan
    try:
        yield plan
    finally:
        _ARMED = previous


def hashing_context() -> dict[str, Any] | None:
    """Cache-key context for the armed plan; None when nothing is armed.

    Returning None (not an empty dict) when disarmed keeps fault-free
    task keys in their historical format, so pre-existing cached results
    stay valid.
    """
    if _ARMED is None:
        return None
    return {"fault_plan": _ARMED}


__all__ = ["current_plan", "armed", "hashing_context"]
