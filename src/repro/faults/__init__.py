"""Deterministic fault injection for the DTL datapath.

The subsystem has four layers (see docs/FAULTS.md):

* :mod:`repro.faults.hooks` — the named hook-point registry: every place
  the datapath consults an armed injector, with the method and module
  that implement it (lint-guarded by ``tests/faults/test_hook_registry``).
* :mod:`repro.faults.plan` — :class:`FaultPlan`: a frozen, hashable
  schedule of fault specs fired by deterministic visit counting (no RNG
  or wall clock at fire time).
* :mod:`repro.faults.injector` — :class:`FaultInjector`: executes a plan
  at the hook points and accumulates a :class:`ReliabilityReport`.
* :mod:`repro.faults.chaos` — :class:`ChaosSoakExperiment`: an
  escalating soak cross-checked by the consistency checker.

Arming is explicit (``controller.arm_faults(injector)``) or ambient via
:func:`repro.faults.arming.armed`, which also folds the plan into the
experiment cache key through :func:`~repro.faults.arming.hashing_context`.
"""

from repro.faults.arming import armed, current_plan, hashing_context
from repro.faults.chaos import (ChaosSoakConfig, ChaosSoakExperiment,
                                ChaosSoakResult)
from repro.faults.hooks import HOOK_CATALOG, HookInfo, HookPoint
from repro.faults.injector import FaultInjector, ReliabilityReport
from repro.faults.plan import (CxlLinkFault, EccFault, FaultPlan, FaultSpec,
                               MigrationAbortFault, PowerExitFault,
                               SmcCorruptionFault, hook_point_of)

__all__ = [
    "HOOK_CATALOG",
    "HookInfo",
    "HookPoint",
    "FaultSpec",
    "CxlLinkFault",
    "EccFault",
    "MigrationAbortFault",
    "PowerExitFault",
    "SmcCorruptionFault",
    "FaultPlan",
    "hook_point_of",
    "FaultInjector",
    "ReliabilityReport",
    "armed",
    "current_plan",
    "hashing_context",
    "ChaosSoakConfig",
    "ChaosSoakExperiment",
    "ChaosSoakResult",
]
