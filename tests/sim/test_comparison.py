"""Tests for the DTL-vs-RAMZzz comparison harness."""

import dataclasses

import pytest

from repro.baselines.ramzzz import RamzzzConfig
from repro.dram.geometry import DramGeometry
from repro.sim.comparison import RamzzzSimulator, compare_policies
from repro.sim.selfrefresh_sim import SelfRefreshSimConfig
from repro.units import MIB


def small_config(**overrides):
    defaults = dict(
        geometry=DramGeometry(channels=2, ranks_per_channel=4,
                              rank_bytes=128 * MIB),
        allocated_bytes=544 * MIB,
        workloads=("data-caching", "media-streaming"),
        aggregate_bandwidth_gbs=0.3,
        duration_s=5.0,
        au_bytes=32 * MIB,
        group_granularity=1,
        seed=0)
    defaults.update(overrides)
    return SelfRefreshSimConfig(**defaults)


class TestRamzzzSimulator:
    def test_runs_and_summarises(self):
        result, policy = RamzzzSimulator(
            small_config(), RamzzzConfig(victim_granularity=1)).run()
        assert len(result.steps) == int(5.0 / 0.05)
        assert result.baseline_power > 0
        assert policy.epoch_index > 0

    def test_same_substrate_as_dtl(self):
        """Both simulators see the same placement and capacity."""
        config = small_config()
        ramzzz_result, _ = RamzzzSimulator(
            config, RamzzzConfig(victim_granularity=1)).run()
        from repro.sim.selfrefresh_sim import SelfRefreshSimulator
        dtl_result = SelfRefreshSimulator(config).run()
        assert ramzzz_result.active_ranks_per_channel == \
            dtl_result.active_ranks_per_channel
        assert ramzzz_result.baseline_power == pytest.approx(
            dtl_result.baseline_power)


class TestComparePolicies:
    def test_comparison_result_fields(self):
        result = compare_policies(small_config(),
                                  RamzzzConfig(victim_granularity=1))
        assert result.dtl.config.duration_s == 5.0
        assert result.ramzzz_demotions >= 0
        assert isinstance(result.advantage(), float)
