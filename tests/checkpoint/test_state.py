"""The checkpoint container: round trips, versioning, integrity."""

import dataclasses
import pickle

import pytest

from repro.checkpoint import (CHECKPOINT_VERSION, Checkpoint,
                              CheckpointError, load_checkpoint, restore,
                              save_checkpoint, snapshot)


def test_snapshot_restore_round_trip():
    payload = {"a": [1, 2, 3], "b": {"nested": (4.5, "six")}}
    checkpoint = snapshot("demo", 7, payload, meta={"note": "x"})
    assert checkpoint.kind == "demo"
    assert checkpoint.step == 7
    assert checkpoint.version == CHECKPOINT_VERSION
    assert checkpoint.meta == {"note": "x"}
    restored = restore(checkpoint)
    assert restored == payload
    assert restored is not payload  # a private copy, not the original


def test_restore_preserves_aliasing():
    shared = [1, 2]
    restored = restore(snapshot("demo", 0, {"x": shared, "y": shared}))
    assert restored["x"] is restored["y"]


def test_content_hash_tracks_blob():
    a = snapshot("demo", 0, {"v": 1})
    b = snapshot("demo", 0, {"v": 1})
    c = snapshot("demo", 0, {"v": 2})
    assert a.content_hash == b.content_hash
    assert a.content_hash != c.content_hash


def test_unpicklable_state_fails_loudly():
    with pytest.raises(CheckpointError, match="not serialisable"):
        snapshot("demo", 0, {"fn": lambda: None})


def test_version_mismatch_refuses_restore():
    stale = dataclasses.replace(snapshot("demo", 0, {}),
                                version=CHECKPOINT_VERSION + 1)
    with pytest.raises(CheckpointError, match="version"):
        restore(stale)


def test_save_load_round_trip(tmp_path):
    path = str(tmp_path / "run.ckpt")
    checkpoint = snapshot("demo", 3, {"k": 1}, meta={"m": 2})
    save_checkpoint(checkpoint, path)
    loaded = load_checkpoint(path)
    assert loaded.kind == "demo" and loaded.step == 3
    assert loaded.meta == {"m": 2}
    assert loaded.blob == checkpoint.blob
    assert restore(loaded) == {"k": 1}


def test_load_missing_file_raises_filenotfound(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_checkpoint(str(tmp_path / "absent.ckpt"))


def test_load_non_checkpoint_file(tmp_path):
    path = tmp_path / "junk.ckpt"
    path.write_bytes(b"definitely not a pickle")
    with pytest.raises(CheckpointError, match="not a checkpoint"):
        load_checkpoint(str(path))
    path.write_bytes(pickle.dumps(({"format": "other"}, b"")))
    with pytest.raises(CheckpointError, match="not a checkpoint"):
        load_checkpoint(str(path))


def test_load_rejects_corrupted_blob(tmp_path):
    path = str(tmp_path / "run.ckpt")
    save_checkpoint(snapshot("demo", 1, {"k": 1}), path)
    with open(path, "rb") as handle:
        header, blob = pickle.load(handle)
    header["sha256"] = "0" * 64
    with open(path, "wb") as handle:
        pickle.dump((header, blob), handle)
    with pytest.raises(CheckpointError, match="integrity"):
        load_checkpoint(path)


def test_load_rejects_future_version(tmp_path):
    path = str(tmp_path / "run.ckpt")
    save_checkpoint(snapshot("demo", 1, {"k": 1}), path)
    with open(path, "rb") as handle:
        header, blob = pickle.load(handle)
    header["version"] = CHECKPOINT_VERSION + 1
    with open(path, "wb") as handle:
        pickle.dump((header, blob), handle)
    with pytest.raises(CheckpointError, match="version"):
        load_checkpoint(path)


def test_save_is_atomic(tmp_path):
    # A save over an existing file leaves no temp droppings and the
    # destination is always a complete checkpoint.
    path = str(tmp_path / "run.ckpt")
    save_checkpoint(snapshot("demo", 1, {"k": 1}), path)
    save_checkpoint(snapshot("demo", 2, {"k": 2}), path)
    assert load_checkpoint(path).step == 2
    assert list(tmp_path.iterdir()) == [tmp_path / "run.ckpt"]
