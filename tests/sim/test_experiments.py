"""The unified experiment registry and its executor integration.

Covers the registry round-trip on every spec's tiny config, the
serial-vs-parallel determinism guarantee for the fan-out simulators,
the ``SeededConfig`` helpers, and the ``telemetry_totals``
missing/failed accounting.
"""

from __future__ import annotations

import dataclasses
import json
from types import SimpleNamespace

import pytest

from repro.exec import ExecConfig
from repro.host.scheduler import SchedulerConfig
from repro.sim.base import Experiment, ExperimentResult
from repro.sim.experiments import (EXPERIMENTS, experiment_task, get_spec,
                                   make_experiment, run_experiment,
                                   run_experiments)
from repro.sim.fleet import (FleetConfig, FleetResult, FleetSimulator,
                             NodeFailure)
from repro.sim.powerdown_sim import PowerDownSimConfig
from repro.sim.rank_sweep import RankSweepExperiment, TraceRankSweepConfig
from repro.sim.selfrefresh_sim import SelfRefreshSimConfig
from repro.workloads.azure import AzureTraceConfig

EXPECTED_NAMES = {"powerdown", "powerdown_comparison", "fleet",
                  "rank_sweep", "selfrefresh", "ramzzz_comparison",
                  "tournament"}


def _small_node() -> PowerDownSimConfig:
    return PowerDownSimConfig(
        azure=AzureTraceConfig(num_vms=4, duration_s=600.0),
        scheduler=SchedulerConfig(duration_s=600.0))


def _record_json(result) -> str:
    return json.dumps(result.to_record().to_dict(), sort_keys=True)


def test_registry_names():
    assert EXPECTED_NAMES <= set(EXPERIMENTS)


def test_get_spec_unknown_name_lists_choices():
    with pytest.raises(KeyError, match="rank_sweep"):
        get_spec("no-such-experiment")


def test_specs_conform_to_protocol():
    for spec in EXPERIMENTS.values():
        experiment = make_experiment(spec.name, spec.tiny_config())
        assert isinstance(experiment, Experiment)
        assert experiment.name == spec.name
        assert isinstance(experiment.config, spec.config_type)


@pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
def test_registry_round_trip(name):
    """Every registered experiment runs on its tiny config and records."""
    spec = get_spec(name)
    result = run_experiment(name, spec.tiny_config())
    assert isinstance(result, ExperimentResult)
    record = result.to_record()
    assert record.experiment
    assert record.metrics
    json.dumps(record.to_dict())  # records must be JSON-serialisable


def test_run_experiments_batch_and_cache():
    spec = get_spec("rank_sweep")
    config = spec.tiny_config()
    from repro.exec import ResultCache
    cache = ResultCache()
    first = run_experiments([("rank_sweep", config)], cache=cache)
    second = run_experiments([("rank_sweep", config)], cache=cache)
    assert first[0].ok and second[0].ok
    assert not first[0].from_cache and second[0].from_cache
    assert _record_json(first[0].value) == _record_json(second[0].value)


def test_experiment_task_rejects_unknown_name():
    with pytest.raises(KeyError):
        experiment_task("nope", None)


def test_fleet_serial_parallel_bit_identical():
    # force_pool: on a single-CPU host the cpu-bound heuristic would
    # otherwise keep the "parallel" run in-process, and the test would
    # silently stop exercising the cross-process path.
    config = FleetConfig(num_nodes=2, node=_small_node(), shard_size=1)
    serial = FleetSimulator(config, ExecConfig(workers=1)).run()
    parallel = FleetSimulator(
        config, ExecConfig(workers=2, force_pool=True)).run()
    assert _record_json(serial) == _record_json(parallel)
    assert serial.telemetry_totals() == parallel.telemetry_totals()


def test_rank_sweep_serial_parallel_bit_identical():
    config = TraceRankSweepConfig(num_accesses=2_000, rank_counts=(8, 2))
    serial = RankSweepExperiment(config, ExecConfig(workers=1)).run()
    parallel = RankSweepExperiment(config, ExecConfig(workers=2)).run()
    assert _record_json(serial) == _record_json(parallel)


def test_with_seed_and_replace():
    config = PowerDownSimConfig()
    reseeded = config.with_seed(7)
    assert reseeded.seed == 7
    assert config.seed == 0  # original untouched (frozen dataclass)
    assert dataclasses.replace(reseeded, seed=0) == config
    tweaked = config.replace(spare_migration_bandwidth_gbs=9.0)
    assert tweaked.spare_migration_bandwidth_gbs == 9.0
    assert tweaked.azure == config.azure  # every other field carried over
    for config_type in (SelfRefreshSimConfig, TraceRankSweepConfig):
        assert config_type().with_seed(9).seed == 9


def test_node_configs_derive_seeds():
    simulator = FleetSimulator(FleetConfig(num_nodes=3, node=_small_node(),
                                           base_seed=10))
    assert [c.seed for c in simulator.node_configs()] == [10, 11, 12]


def _node(counters):
    return SimpleNamespace(seed=0, counters=counters)


def test_telemetry_totals_distinguishes_missing_from_failed():
    result = FleetResult(
        config=FleetConfig(num_nodes=4, node=_small_node()),
        nodes=[_node({"smc.l1.hits": 5.0}), _node({"smc.l1.hits": 7.0}),
               _node(None)],
        failures=[NodeFailure(seed=3, error="ValueError: boom")])
    totals = result.telemetry_totals()
    assert totals["smc.l1.hits"] == 12.0
    assert totals["fleet.nodes_reporting"] == 2.0
    assert totals["fleet.nodes_missing_telemetry"] == 1.0
    assert totals["fleet.nodes_failed"] == 1.0


def test_telemetry_totals_empty_fleet_reports_zeroes():
    result = FleetResult(config=FleetConfig(num_nodes=0), nodes=[])
    assert result.telemetry_totals() == {
        "fleet.nodes_reporting": 0.0,
        "fleet.nodes_missing_telemetry": 0.0,
        "fleet.nodes_failed": 0.0,
    }
