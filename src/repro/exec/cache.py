"""On-disk (and in-memory) cache of experiment results.

Results are keyed by :func:`repro.exec.hashing.task_key` — a stable hash
of the experiment name plus its whole config dataclass — so a cache hit
is only possible for a bit-identical configuration.  Entries are pickled
result objects; a corrupt or unreadable entry degrades to a miss, never
an error.

The default directory comes from ``REPRO_EXEC_CACHE_DIR``; when unset
the cache is memory-only (it still deduplicates work within one
process, e.g. across the ``repro all`` subcommands).

A persistent directory grows without bound as configs and code evolve
(stale keys are never rewritten), so the cache supports size-capped
pruning: :meth:`ResultCache.prune` evicts least-recently-*used* entries
(by file mtime — reads touch the file, so a hit refreshes recency)
until the directory fits the cap.  ``repro cache prune --max-mb`` is
the CLI face; ``exec.cache_bytes`` / ``exec.cache_evictions`` report
the footprint and eviction count.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

_MISS = object()

#: Environment variable naming the on-disk cache directory.
CACHE_DIR_ENV = "REPRO_EXEC_CACHE_DIR"


class ResultCache:
    """Two-level result store: a dict in front of an optional directory."""

    def __init__(self, directory: str | Path | None = None):
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV) or None
        self.directory = Path(directory) if directory is not None else None
        self._memory: dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, Any]:
        """Look up ``key``; returns ``(hit, value)``."""
        if key in self._memory:
            self.hits += 1
            return True, self._memory[key]
        if self.directory is not None:
            path = self._path(key)
            try:
                with path.open("rb") as handle:
                    value = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError):
                pass  # missing or corrupt entry -> miss
            else:
                self._memory[key] = value
                self.hits += 1
                self._touch(path)
                return True, value
        self.misses += 1
        return False, None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (memory, then disk if enabled)."""
        self._memory[key] = value
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so readers never see a partial pickle.
        fd, temp_name = tempfile.mkstemp(dir=self.directory,
                                         suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, self._path(key))
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh ``path``'s mtime so LRU pruning sees the use."""
        try:
            os.utime(path, None)
        except OSError:
            pass

    def total_bytes(self) -> int:
        """Total size of the on-disk entries (0 when memory-only)."""
        if self.directory is None or not self.directory.is_dir():
            return 0
        total = 0
        for path in self.directory.glob("*.pkl"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used entries until the disk cache fits.

        Recency is file mtime: every ``put`` writes and every disk
        ``get`` touches, so eviction order tracks actual use, not
        creation.  Evicted keys are also dropped from the memory layer
        (a later ``get`` must not resurrect a pruned entry from this
        process's dict while other processes miss).  Returns the number
        of entries evicted; memory-only caches never evict.
        """
        if self.directory is None or not self.directory.is_dir():
            return 0
        entries = []
        total = 0
        for path in self.directory.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        entries.sort()  # oldest mtime first
        evicted = 0
        for mtime, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            self._memory.pop(path.stem, None)
            total -= size
            evicted += 1
        return evicted

    def clear(self) -> None:
        """Drop every entry (memory and disk)."""
        self._memory.clear()
        if self.directory is not None and self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        known = set(self._memory)
        if self.directory is not None and self.directory.is_dir():
            known.update(path.stem for path in self.directory.glob("*.pkl"))
        return len(known)


__all__ = ["ResultCache", "CACHE_DIR_ENV"]
