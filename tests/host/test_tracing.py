"""Tests for the post-cache trace recorder."""

import numpy as np
import pytest

from repro.host.caches import CacheHierarchy, CacheLevelConfig
from repro.host.tracing import TraceRecorder
from repro.workloads.cloudsuite import make_trace
from repro.workloads.trace import Trace


def tiny_recorder():
    return TraceRecorder(hierarchy=CacheHierarchy((
        CacheLevelConfig("L1", 4 * 64, 2),
        CacheLevelConfig("LLC", 16 * 64, 2),
    )))


class TestRecording:
    def test_first_access_survives(self):
        recorder = tiny_recorder()
        assert recorder.record(0, instructions_since_last=100) == 1
        trace = recorder.finish()
        assert len(trace) == 1
        assert trace.instr_deltas[0] == 100

    def test_cached_access_filtered(self):
        recorder = tiny_recorder()
        recorder.record(0)
        assert recorder.record(0) == 0
        assert recorder.filter_ratio == pytest.approx(0.5)

    def test_instruction_counts_accumulate_across_hits(self):
        """Instructions retired during filtered accesses attach to the
        next post-cache request, preserving the instruction clock."""
        recorder = tiny_recorder()
        recorder.record(0, instructions_since_last=100)
        recorder.record(0, instructions_since_last=50)   # filtered
        recorder.record(0, instructions_since_last=50)   # filtered
        recorder.record(4096, instructions_since_last=25)
        trace = recorder.finish()
        assert trace.instr_deltas.tolist() == [100, 125]
        assert trace.total_instructions == 225

    def test_record_whole_trace(self):
        recorder = tiny_recorder()
        source = make_trace("data-serving", 2_000,
                            footprint_bytes=64 * 2 ** 20, seed=0)
        survivors = recorder.record_trace(source)
        post = recorder.finish()
        assert len(post) == survivors
        # Demand misses are bounded by the input; writebacks can add more.
        demand = int((~post.is_write).sum())
        assert 0 < demand <= len(source)

    def test_line_granular_addresses(self):
        recorder = tiny_recorder()
        recorder.record(100)  # mid-line address
        trace = recorder.finish()
        assert trace.addresses[0] == 64

    def test_empty_recorder(self):
        recorder = tiny_recorder()
        assert recorder.filter_ratio == 0.0
        assert len(recorder.finish()) == 0

    def test_writebacks_appear_as_writes(self):
        recorder = tiny_recorder()
        # Dirty line 0, then force it out of the LLC set it maps to
        # (8 sets x 2 ways: lines 8, 16, 24 collide with line 0).
        recorder.record(0, is_write=True)
        for line in (8, 16, 24):
            recorder.record(line * 64)
        trace = recorder.finish()
        assert bool(trace.is_write.any())


class TestPaperDefaults:
    def test_default_hierarchy_is_table3(self):
        recorder = TraceRecorder()
        names = [level.config.name for level in recorder.hierarchy.levels]
        assert names == ["L1-d", "L2", "LLC"]
