"""DRAM device geometry: channels, ranks, banks, and segment math.

The paper's reference device (Figure 6) is a 1 TB CXL memory device with
4 channels and 8 ranks per channel; the evaluation testbed (Table 1) has
6 channels with two 4-rank DIMMs each.  :class:`DramGeometry` captures the
structural parameters every other subsystem derives its sizes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import ConfigurationError
from repro.units import GIB, MIB, TIB, is_power_of_two, log2_int

DEFAULT_SEGMENT_BYTES = 2 * MIB


@dataclass(frozen=True)
class DramGeometry:
    """Structural description of a DRAM subsystem behind one CXL controller.

    Attributes:
        channels: Number of independent DRAM channels.
        ranks_per_channel: Ranks on each channel.
        banks_per_rank: Banks within one rank (used by the performance model).
        rank_bytes: Capacity of a single rank.
        segment_bytes: DTL translation granularity (2 MiB by default,
            Section 4.1 of the paper).
    """

    channels: int = 4
    ranks_per_channel: int = 8
    banks_per_rank: int = 16
    rank_bytes: int = 32 * GIB
    segment_bytes: int = DEFAULT_SEGMENT_BYTES

    def __post_init__(self) -> None:
        for name in ("channels", "ranks_per_channel", "banks_per_rank",
                     "rank_bytes", "segment_bytes"):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ConfigurationError(
                    f"{name} must be a power of two, got {value}")
        if self.segment_bytes > self.rank_bytes:
            raise ConfigurationError(
                "segment_bytes must not exceed rank_bytes "
                f"({self.segment_bytes} > {self.rank_bytes})")

    # -- capacity -----------------------------------------------------------

    @cached_property
    def total_ranks(self) -> int:
        """Total number of ranks across all channels."""
        return self.channels * self.ranks_per_channel

    @cached_property
    def channel_bytes(self) -> int:
        """Capacity of one channel."""
        return self.rank_bytes * self.ranks_per_channel

    @cached_property
    def total_bytes(self) -> int:
        """Total device capacity."""
        return self.channel_bytes * self.channels

    # -- segments -----------------------------------------------------------

    @cached_property
    def segments_per_rank(self) -> int:
        """Number of translation segments in one rank."""
        return self.rank_bytes // self.segment_bytes

    @cached_property
    def segments_per_channel(self) -> int:
        """Number of translation segments in one channel."""
        return self.segments_per_rank * self.ranks_per_channel

    @cached_property
    def total_segments(self) -> int:
        """Number of translation segments in the whole device."""
        return self.segments_per_channel * self.channels

    @cached_property
    def rank_group_bytes(self) -> int:
        """Capacity of one rank-group (same rank index across all channels)."""
        return self.rank_bytes * self.channels

    @cached_property
    def rank_group_segments(self) -> int:
        """Number of segments in one rank-group."""
        return self.rank_group_bytes // self.segment_bytes

    # -- bit widths (Figure 6) ----------------------------------------------

    @cached_property
    def segment_offset_bits(self) -> int:
        """Bits addressing a byte within one segment."""
        return log2_int(self.segment_bytes)

    @cached_property
    def channel_bits(self) -> int:
        """Bits selecting the channel (interleaved at segment granularity)."""
        return log2_int(self.channels)

    @cached_property
    def rank_bits(self) -> int:
        """Bits selecting the rank (placed as the most significant bits)."""
        return log2_int(self.ranks_per_channel)

    @cached_property
    def segment_index_bits(self) -> int:
        """Bits selecting a segment within one (rank, channel) slice."""
        return log2_int(self.segments_per_rank)

    @cached_property
    def dpa_bits(self) -> int:
        """Total width of a DRAM device physical address."""
        return (self.rank_bits + self.segment_index_bits + self.channel_bits
                + self.segment_offset_bits)

    def describe(self) -> str:
        """Human-readable one-line summary of the geometry."""
        return (f"{self.total_bytes // GIB}GiB: {self.channels}ch x "
                f"{self.ranks_per_channel}ranks x "
                f"{self.rank_bytes // GIB}GiB/rank, "
                f"{self.segment_bytes // MIB}MiB segments")


#: Figure 6 reference device: 1 TB, 4 channels, 8 ranks/channel.
PAPER_1TB_GEOMETRY = DramGeometry(
    channels=4, ranks_per_channel=8, banks_per_rank=16, rank_bytes=32 * GIB)

#: Section 6.6 hypothetical scale-up: 4 TB, 8 channels, 16 ranks/channel.
PAPER_4TB_GEOMETRY = DramGeometry(
    channels=8, ranks_per_channel=16, banks_per_rank=16, rank_bytes=32 * GIB)


def geometry_for_capacity(total_bytes: int,
                          channels: int = 4,
                          ranks_per_channel: int = 8,
                          segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                          banks_per_rank: int = 16) -> DramGeometry:
    """Build a geometry with the given total capacity.

    Raises:
        ConfigurationError: if ``total_bytes`` does not divide evenly into
            power-of-two ranks.
    """
    total_ranks = channels * ranks_per_channel
    if total_bytes % total_ranks:
        raise ConfigurationError(
            f"total capacity {total_bytes} not divisible by {total_ranks} ranks")
    rank_bytes = total_bytes // total_ranks
    return DramGeometry(channels=channels,
                        ranks_per_channel=ranks_per_channel,
                        banks_per_rank=banks_per_rank,
                        rank_bytes=rank_bytes,
                        segment_bytes=segment_bytes)


__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "DramGeometry",
    "PAPER_1TB_GEOMETRY",
    "PAPER_4TB_GEOMETRY",
    "geometry_for_capacity",
]
