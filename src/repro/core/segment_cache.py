"""Two-level segment mapping cache (SMC).

The DTL fronts its translation tables with a TLB-like cache hierarchy
(Section 3.2, Table 3):

* **L1 SMC** — 64-entry fully-associative, LRU.
* **L2 SMC** — 1024-entry 4-way set-associative, LRU.

Both map an HSN to its DSN.  A hit in L1 costs one controller cycle; an L1
miss that hits in L2 costs seven cycles; a full miss walks the three-level
table path (two SRAM accesses plus one DRAM access, Section 6.1).

The hierarchy is **inclusive**: every L1 entry is also present in L2, so
a single L2 invalidation (plus the back-invalidate it triggers) is enough
to purge a stale mapping.  :meth:`SegmentMappingCache.fill` enforces this
by back-invalidating L1 whenever an entry is evicted from L2.

Counters live in a :class:`~repro.telemetry.MetricsRegistry`;
:class:`CacheStats` is a thin view over those registry counters so legacy
callers keep reading ``cache.stats.hits`` unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.telemetry import EventKind, EventTrace, MetricsRegistry

CONTROLLER_CLOCK_GHZ = 1.5
L1_SMC_HIT_CYCLES = 1
L2_SMC_HIT_CYCLES = 7


def cycles_to_ns(cycles: float, clock_ghz: float = CONTROLLER_CLOCK_GHZ) -> float:
    """Convert controller cycles to nanoseconds."""
    return cycles / clock_ghz


class CacheStats:
    """Hit/miss counters for one cache level.

    A thin view over registry-backed counters: constructing one without a
    registry gives it a private registry, so standalone use keeps working,
    while the controller passes its shared registry + a name prefix and the
    same numbers become visible in the telemetry snapshot.
    """

    def __init__(self, hits: int = 0, misses: int = 0,
                 invalidations: int = 0,
                 registry: MetricsRegistry | None = None,
                 prefix: str = "cache"):
        registry = registry if registry is not None else MetricsRegistry()
        self._hits = registry.counter(f"{prefix}.hits")
        self._misses = registry.counter(f"{prefix}.misses")
        self._invalidations = registry.counter(f"{prefix}.invalidations")
        if hits:
            self._hits.inc(hits)
        if misses:
            self._misses.inc(misses)
        if invalidations:
            self._invalidations.inc(invalidations)

    @property
    def hits(self) -> int:
        """Lookups served by this level."""
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.set(value)

    @property
    def misses(self) -> int:
        """Lookups this level could not serve."""
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.set(value)

    @property
    def invalidations(self) -> int:
        """Entries dropped by invalidate calls."""
        return self._invalidations.value

    @invalidations.setter
    def invalidations(self, value: int) -> None:
        self._invalidations.set(value)

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits / accesses (0.0 when never accessed)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        """Misses / accesses (0.0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"invalidations={self.invalidations})")


class FullyAssociativeCache:
    """Fully-associative LRU cache of HSN -> DSN mappings."""

    def __init__(self, entries: int, stats: CacheStats | None = None):
        if entries <= 0:
            raise ConfigurationError("cache must have at least one entry")
        self.entries = entries
        self._data: OrderedDict[int, int] = OrderedDict()
        self.stats = stats if stats is not None else CacheStats()

    def lookup(self, hsn: int) -> int | None:
        """Return the cached DSN for ``hsn`` or ``None`` on a miss."""
        if hsn in self._data:
            self._data.move_to_end(hsn)
            self.stats.hits += 1
            return self._data[hsn]
        self.stats.misses += 1
        return None

    def insert(self, hsn: int, dsn: int) -> tuple[int, int] | None:
        """Insert a mapping; returns the evicted ``(hsn, dsn)`` if any."""
        evicted = None
        if hsn not in self._data and len(self._data) >= self.entries:
            evicted = self._data.popitem(last=False)
        self._data[hsn] = dsn
        self._data.move_to_end(hsn)
        return evicted

    def invalidate(self, hsn: int) -> bool:
        """Drop the mapping for ``hsn``; returns True if it was present."""
        if hsn in self._data:
            del self._data[hsn]
            self.stats.invalidations += 1
            return True
        return False

    def touch(self, hsn: int) -> bool:
        """Refresh ``hsn``'s LRU position without touching the stats.

        Used by the batch datapath to replay the LRU effect of repeat
        hits whose counting was done in bulk.
        """
        if hsn in self._data:
            self._data.move_to_end(hsn)
            return True
        return False

    def hsns(self) -> list[int]:
        """HSNs currently cached (LRU first)."""
        return list(self._data)

    def __contains__(self, hsn: int) -> bool:
        return hsn in self._data

    def __len__(self) -> int:
        return len(self._data)


class SetAssociativeCache:
    """Set-associative LRU cache of HSN -> DSN mappings."""

    def __init__(self, entries: int, ways: int,
                 stats: CacheStats | None = None):
        if entries <= 0 or ways <= 0:
            raise ConfigurationError("entries and ways must be positive")
        if entries % ways:
            raise ConfigurationError(
                f"entries ({entries}) must be a multiple of ways ({ways})")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(self.sets)]
        self.stats = stats if stats is not None else CacheStats()

    def _set_for(self, hsn: int) -> OrderedDict[int, int]:
        return self._sets[hsn % self.sets]

    def lookup(self, hsn: int) -> int | None:
        """Return the cached DSN for ``hsn`` or ``None`` on a miss."""
        cache_set = self._set_for(hsn)
        if hsn in cache_set:
            cache_set.move_to_end(hsn)
            self.stats.hits += 1
            return cache_set[hsn]
        self.stats.misses += 1
        return None

    def insert(self, hsn: int, dsn: int) -> tuple[int, int] | None:
        """Insert a mapping; returns the evicted ``(hsn, dsn)`` if any."""
        cache_set = self._set_for(hsn)
        evicted = None
        if hsn not in cache_set and len(cache_set) >= self.ways:
            evicted = cache_set.popitem(last=False)
        cache_set[hsn] = dsn
        cache_set.move_to_end(hsn)
        return evicted

    def invalidate(self, hsn: int) -> bool:
        """Drop the mapping for ``hsn``; returns True if it was present."""
        cache_set = self._set_for(hsn)
        if hsn in cache_set:
            del cache_set[hsn]
            self.stats.invalidations += 1
            return True
        return False

    def hsns(self) -> list[int]:
        """HSNs currently cached (set by set, LRU first within a set)."""
        return [hsn for cache_set in self._sets for hsn in cache_set]

    def __contains__(self, hsn: int) -> bool:
        return hsn in self._set_for(hsn)

    def __len__(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)


@dataclass(frozen=True)
class SegmentCacheConfig:
    """SMC sizing (Table 3 defaults)."""

    l1_entries: int = 64
    l2_entries: int = 1024
    l2_ways: int = 4
    clock_ghz: float = CONTROLLER_CLOCK_GHZ
    l1_hit_cycles: int = L1_SMC_HIT_CYCLES
    l2_hit_cycles: int = L2_SMC_HIT_CYCLES

    @property
    def l1_hit_ns(self) -> float:
        """L1 SMC hit latency in nanoseconds."""
        return cycles_to_ns(self.l1_hit_cycles, self.clock_ghz)

    @property
    def l2_hit_ns(self) -> float:
        """L2 SMC hit latency in nanoseconds."""
        return cycles_to_ns(self.l2_hit_cycles, self.clock_ghz)

    @property
    def miss_probe_ns(self) -> float:
        """Cache-side cost of a full miss: both levels probed, no hit.

        The table-walk penalty (2 SRAM + 1 DRAM access) is charged
        separately by the translation engine; keeping the probe cost here
        and the walk cost there is what prevents double counting.
        """
        return self.l1_hit_ns + self.l2_hit_ns


@dataclass
class LookupResult:
    """Outcome of one SMC lookup."""

    dsn: int | None
    l1_hit: bool
    l2_hit: bool

    @property
    def full_miss(self) -> bool:
        """True when neither level held the mapping."""
        return not (self.l1_hit or self.l2_hit)


class SegmentMappingCache:
    """The two-level SMC: inclusive L1 over L2, both LRU.

    Inclusion is enforced on the only path that can break it: when
    :meth:`fill` evicts an entry from L2, the same HSN is back-invalidated
    from L1, so no L1 entry ever outlives its L2 copy.
    """

    def __init__(self, config: SegmentCacheConfig | None = None,
                 registry: MetricsRegistry | None = None,
                 trace: EventTrace | None = None):
        self.config = config or SegmentCacheConfig()
        registry = registry if registry is not None else MetricsRegistry()
        # A permanently-disabled trace (the telemetry fast path) is
        # dropped here so fill/invalidate skip the record call outright.
        self._trace = trace if trace is not None and trace.enabled else None
        self.l1 = FullyAssociativeCache(
            self.config.l1_entries,
            stats=CacheStats(registry=registry, prefix="smc.l1"))
        self.l2 = SetAssociativeCache(
            self.config.l2_entries, self.config.l2_ways,
            stats=CacheStats(registry=registry, prefix="smc.l2"))
        self._back_invalidations = registry.counter("smc.back_invalidations")

    @property
    def back_invalidations(self) -> int:
        """L1 entries purged because their L2 copy was evicted."""
        return self._back_invalidations.value

    def lookup(self, hsn: int) -> LookupResult:
        """Look up ``hsn`` in L1 then L2, promoting L2 hits into L1."""
        dsn = self.l1.lookup(hsn)
        if dsn is not None:
            return LookupResult(dsn=dsn, l1_hit=True, l2_hit=False)
        dsn = self.l2.lookup(hsn)
        if dsn is not None:
            # Promotion keeps inclusion: the entry is (still) in L2 here,
            # and any L1 eviction it causes only shrinks L1.
            self.l1.insert(hsn, dsn)
            return LookupResult(dsn=dsn, l1_hit=False, l2_hit=True)
        return LookupResult(dsn=None, l1_hit=False, l2_hit=False)

    def fill(self, hsn: int, dsn: int) -> None:
        """Install a mapping fetched from the tables into both levels."""
        evicted = self.l2.insert(hsn, dsn)
        if evicted is not None:
            # Back-invalidate: the L2 victim must not survive in L1, or a
            # later migration invalidating L2 would leave a stale L1 hit.
            if self.l1.invalidate(evicted[0]):
                self._back_invalidations.inc()
            if self._trace is not None:
                self._trace.record(EventKind.SMC_EVICT, hsn=evicted[0],
                                   dsn=evicted[1], level="l2")
        self.l1.insert(hsn, dsn)
        if self._trace is not None:
            self._trace.record(EventKind.SMC_FILL, hsn=hsn, dsn=dsn)

    def invalidate(self, hsn: int) -> bool:
        """Drop a mapping from both levels (used after migration)."""
        in_l1 = self.l1.invalidate(hsn)
        in_l2 = self.l2.invalidate(hsn)
        if (in_l1 or in_l2) and self._trace is not None:
            self._trace.record(EventKind.SMC_INVALIDATE, hsn=hsn)
        return in_l1 or in_l2

    # -- batch datapath -------------------------------------------------------

    def _plan_chunk(self, hsns: np.ndarray, start: int, window: int,
                    ) -> tuple[int, np.ndarray, np.ndarray, np.ndarray,
                               list[int]]:
        """Greedy one-pass chunk plan upholding the replay invariants.

        Walks the window's distinct HSNs in first-occurrence order and
        cuts the chunk just before the first HSN that would break one of
        three invariants:

        * **L1 capacity** — at most ``l1_entries`` distinct HSNs, so no
          in-chunk entry, once touched, can be the L1 LRU victim;
        * **L2 associativity** — at most ``l2_ways`` distinct HSNs per
          L2 set, so touched in-chunk entries cannot be L2 victims;
        * **back-invalidation hazard** — an L1 hit refreshes L1 recency
          but *not* L2 recency, so a chunk HSN already resident in L1
          keeps its pre-chunk L2 age; a fill by another chunk HSN in
          the same L2 set could then evict it from L2 and
          back-invalidate it out of L1 mid-chunk, making a later repeat
          a full miss where the bulk accounting assumed an L1 hit.  The
          hazard needs, in one set, a chunk HSN resident in L1 plus a
          different chunk HSN absent from L2 (by inclusion never the
          same HSN), so a set may not collect both.

        Within such a chunk every repeat occurrence is an L1 hit and
        per-distinct replay in first-occurrence order reproduces the
        scalar cache state exactly.

        Returns ``(end, uniq, first_idx, inverse, miss_candidates)``
        with the unique data restricted to the chunk;
        ``miss_candidates`` are the distinct HSNs absent from both
        levels at plan time (their replay lookups will walk the
        tables).
        """
        segment = hsns[start:start + window]
        uniq, first_idx, inverse = np.unique(
            segment, return_index=True, return_inverse=True)
        sets = self.l2.sets
        per_set: dict[int, int] = {}
        l1_sets: set[int] = set()
        miss_sets: set[int] = set()
        miss_candidates: list[int] = []
        cut = window
        for position, k in enumerate(np.argsort(first_idx, kind="stable")):
            if position >= self.config.l1_entries:
                cut = int(first_idx[k])
                break
            hsn = int(uniq[k])
            set_index = hsn % sets
            count = per_set.get(set_index, 0) + 1
            in_l1 = hsn in self.l1
            not_in_l2 = hsn not in self.l2
            if (count > self.l2.ways
                    or ((in_l1 or set_index in l1_sets)
                        and (not_in_l2 or set_index in miss_sets))):
                cut = int(first_idx[k])
                break
            per_set[set_index] = count
            if in_l1:
                l1_sets.add(set_index)
            if not_in_l2:
                miss_sets.add(set_index)
                miss_candidates.append(hsn)
        if cut < window:
            keep = first_idx < cut
            remap = np.cumsum(keep) - 1
            inverse = remap[inverse[:cut]]
            uniq = uniq[keep]
            first_idx = first_idx[keep]
        return start + cut, uniq, first_idx, inverse, miss_candidates

    def lookup_batch(self, hsns: np.ndarray,
                     resolve: Callable[[int], int],
                     resolve_batch: Callable[[np.ndarray], np.ndarray]
                     | None = None,
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resolve a whole HSN array, replaying scalar effects per distinct.

        The batch is cut into chunks (see :meth:`_plan_chunk`); inside a
        chunk only the distinct HSNs go through the sequential
        lookup/fill path (``np.unique`` collapses repeats), repeats are
        accounted as L1 hits in bulk, and the final L1 LRU order is
        restored by re-touching distinct HSNs in last-occurrence order.
        Full misses call ``resolve(hsn)`` (the table walk) and fill both
        levels, exactly like the scalar path; when ``resolve_batch`` is
        given, each chunk's predicted misses are resolved in one
        vectorised call up front and ``resolve`` only serves the rare
        mid-chunk eviction of a pre-chunk resident.

        Returns ``(dsns, l1_hits, l2_hits)`` arrays; hit/miss counters,
        LRU states, fills, evictions, and trace events end up identical
        to ``lookup`` + ``fill`` called per access in order (trace event
        identity holds for fills/evictions; see docs/PERF.md for the
        ordering contract).
        """
        hsns = np.asarray(hsns, dtype=np.int64)
        n = len(hsns)
        dsns = np.empty(n, dtype=np.int64)
        l1_hits = np.empty(n, dtype=bool)
        l2_hits = np.empty(n, dtype=bool)
        max_window = 4 * self.config.l2_entries
        window = min(n, max_window)
        start = 0
        while start < n:
            end, uniq, first_idx, inverse, candidates = self._plan_chunk(
                hsns, start, min(window, n - start))
            # Adapt the plan window to the workload: chunks bounded by
            # the invariants keep the np.unique cost proportional to the
            # chunk actually consumed; unbounded chunks grow it back.
            chunk_len = end - start
            window = min(max_window,
                         max(64, 4 * chunk_len))
            resolved: dict[int, int] = {}
            if resolve_batch is not None and candidates:
                walked = resolve_batch(
                    np.asarray(candidates, dtype=np.int64))
                resolved = dict(zip(candidates, (int(d) for d in walked)))
            d_dsn = np.empty(len(uniq), dtype=np.int64)
            d_l1 = np.empty(len(uniq), dtype=bool)
            d_l2 = np.empty(len(uniq), dtype=bool)
            for k in np.argsort(first_idx, kind="stable"):
                hsn = int(uniq[k])
                result = self.lookup(hsn)
                if result.dsn is None:
                    dsn = resolved.get(hsn)
                    if dsn is None:
                        dsn = resolve(hsn)
                    self.fill(hsn, dsn)
                else:
                    dsn = result.dsn
                d_dsn[k] = dsn
                d_l1[k] = result.l1_hit
                d_l2[k] = result.l2_hit
            repeats = chunk_len - len(uniq)
            if repeats:
                # Every repeat is an L1 hit (chunk invariant); their LRU
                # effect is replayed below, their counting lands here.
                self.l1.stats.hits += repeats
                last_idx = np.empty(len(uniq), dtype=np.int64)
                last_idx[inverse] = np.arange(chunk_len)
                for k in np.argsort(last_idx, kind="stable"):
                    self.l1.touch(int(uniq[k]))
            is_first = np.zeros(chunk_len, dtype=bool)
            is_first[first_idx] = True
            dsns[start:end] = d_dsn[inverse]
            l1_hits[start:end] = np.where(is_first, d_l1[inverse], True)
            l2_hits[start:end] = np.where(is_first, d_l2[inverse], False)
            start = end
        return dsns, l1_hits, l2_hits

    def latency_ns_batch(self, l1_hits: np.ndarray,
                         l2_hits: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`hit_latency_ns` over hit-class arrays."""
        config = self.config
        return np.where(
            l1_hits, config.l1_hit_ns,
            np.where(l2_hits, config.l1_hit_ns + config.l2_hit_ns,
                     config.miss_probe_ns))

    def hit_latency_ns(self, result: LookupResult) -> float:
        """Latency contribution of the cache portion of a lookup."""
        if result.l1_hit:
            return self.config.l1_hit_ns
        if result.l2_hit:
            return self.config.l1_hit_ns + self.config.l2_hit_ns
        # Full miss: both levels were probed and neither hit; the table
        # walk itself is charged by TranslationEngine.miss_penalty_ns.
        return self.config.miss_probe_ns

    def check_inclusion(self) -> list[int]:
        """HSNs present in L1 but missing from L2 (empty when inclusive)."""
        l2_hsns = set(self.l2.hsns())
        return [hsn for hsn in self.l1.hsns() if hsn not in l2_hsns]


__all__ = [
    "CONTROLLER_CLOCK_GHZ",
    "L1_SMC_HIT_CYCLES",
    "L2_SMC_HIT_CYCLES",
    "cycles_to_ns",
    "CacheStats",
    "FullyAssociativeCache",
    "SetAssociativeCache",
    "SegmentCacheConfig",
    "LookupResult",
    "SegmentMappingCache",
]
