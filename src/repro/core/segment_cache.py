"""Two-level segment mapping cache (SMC).

The DTL fronts its translation tables with a TLB-like cache hierarchy
(Section 3.2, Table 3):

* **L1 SMC** — 64-entry fully-associative, LRU.
* **L2 SMC** — 1024-entry 4-way set-associative, LRU.

Both map an HSN to its DSN.  A hit in L1 costs one controller cycle; an L1
miss that hits in L2 costs seven cycles; a full miss walks the three-level
table path (two SRAM accesses plus one DRAM access, Section 6.1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

CONTROLLER_CLOCK_GHZ = 1.5
L1_SMC_HIT_CYCLES = 1
L2_SMC_HIT_CYCLES = 7


def cycles_to_ns(cycles: float, clock_ghz: float = CONTROLLER_CLOCK_GHZ) -> float:
    """Convert controller cycles to nanoseconds."""
    return cycles / clock_ghz


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits / accesses (0.0 when never accessed)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        """Misses / accesses (0.0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0


class FullyAssociativeCache:
    """Fully-associative LRU cache of HSN -> DSN mappings."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise ConfigurationError("cache must have at least one entry")
        self.entries = entries
        self._data: OrderedDict[int, int] = OrderedDict()
        self.stats = CacheStats()

    def lookup(self, hsn: int) -> int | None:
        """Return the cached DSN for ``hsn`` or ``None`` on a miss."""
        if hsn in self._data:
            self._data.move_to_end(hsn)
            self.stats.hits += 1
            return self._data[hsn]
        self.stats.misses += 1
        return None

    def insert(self, hsn: int, dsn: int) -> tuple[int, int] | None:
        """Insert a mapping; returns the evicted ``(hsn, dsn)`` if any."""
        evicted = None
        if hsn not in self._data and len(self._data) >= self.entries:
            evicted = self._data.popitem(last=False)
        self._data[hsn] = dsn
        self._data.move_to_end(hsn)
        return evicted

    def invalidate(self, hsn: int) -> bool:
        """Drop the mapping for ``hsn``; returns True if it was present."""
        if hsn in self._data:
            del self._data[hsn]
            self.stats.invalidations += 1
            return True
        return False

    def __contains__(self, hsn: int) -> bool:
        return hsn in self._data

    def __len__(self) -> int:
        return len(self._data)


class SetAssociativeCache:
    """Set-associative LRU cache of HSN -> DSN mappings."""

    def __init__(self, entries: int, ways: int):
        if entries <= 0 or ways <= 0:
            raise ConfigurationError("entries and ways must be positive")
        if entries % ways:
            raise ConfigurationError(
                f"entries ({entries}) must be a multiple of ways ({ways})")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(self.sets)]
        self.stats = CacheStats()

    def _set_for(self, hsn: int) -> OrderedDict[int, int]:
        return self._sets[hsn % self.sets]

    def lookup(self, hsn: int) -> int | None:
        """Return the cached DSN for ``hsn`` or ``None`` on a miss."""
        cache_set = self._set_for(hsn)
        if hsn in cache_set:
            cache_set.move_to_end(hsn)
            self.stats.hits += 1
            return cache_set[hsn]
        self.stats.misses += 1
        return None

    def insert(self, hsn: int, dsn: int) -> tuple[int, int] | None:
        """Insert a mapping; returns the evicted ``(hsn, dsn)`` if any."""
        cache_set = self._set_for(hsn)
        evicted = None
        if hsn not in cache_set and len(cache_set) >= self.ways:
            evicted = cache_set.popitem(last=False)
        cache_set[hsn] = dsn
        cache_set.move_to_end(hsn)
        return evicted

    def invalidate(self, hsn: int) -> bool:
        """Drop the mapping for ``hsn``; returns True if it was present."""
        cache_set = self._set_for(hsn)
        if hsn in cache_set:
            del cache_set[hsn]
            self.stats.invalidations += 1
            return True
        return False

    def __contains__(self, hsn: int) -> bool:
        return hsn in self._set_for(hsn)

    def __len__(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)


@dataclass(frozen=True)
class SegmentCacheConfig:
    """SMC sizing (Table 3 defaults)."""

    l1_entries: int = 64
    l2_entries: int = 1024
    l2_ways: int = 4
    clock_ghz: float = CONTROLLER_CLOCK_GHZ
    l1_hit_cycles: int = L1_SMC_HIT_CYCLES
    l2_hit_cycles: int = L2_SMC_HIT_CYCLES

    @property
    def l1_hit_ns(self) -> float:
        """L1 SMC hit latency in nanoseconds."""
        return cycles_to_ns(self.l1_hit_cycles, self.clock_ghz)

    @property
    def l2_hit_ns(self) -> float:
        """L2 SMC hit latency in nanoseconds."""
        return cycles_to_ns(self.l2_hit_cycles, self.clock_ghz)


@dataclass
class LookupResult:
    """Outcome of one SMC lookup."""

    dsn: int | None
    l1_hit: bool
    l2_hit: bool

    @property
    def full_miss(self) -> bool:
        """True when neither level held the mapping."""
        return not (self.l1_hit or self.l2_hit)


class SegmentMappingCache:
    """The two-level SMC: inclusive L1 over L2, both LRU."""

    def __init__(self, config: SegmentCacheConfig | None = None):
        self.config = config or SegmentCacheConfig()
        self.l1 = FullyAssociativeCache(self.config.l1_entries)
        self.l2 = SetAssociativeCache(self.config.l2_entries,
                                      self.config.l2_ways)

    def lookup(self, hsn: int) -> LookupResult:
        """Look up ``hsn`` in L1 then L2, promoting L2 hits into L1."""
        dsn = self.l1.lookup(hsn)
        if dsn is not None:
            return LookupResult(dsn=dsn, l1_hit=True, l2_hit=False)
        dsn = self.l2.lookup(hsn)
        if dsn is not None:
            self.l1.insert(hsn, dsn)
            return LookupResult(dsn=dsn, l1_hit=False, l2_hit=True)
        return LookupResult(dsn=None, l1_hit=False, l2_hit=False)

    def fill(self, hsn: int, dsn: int) -> None:
        """Install a mapping fetched from the tables into both levels."""
        self.l2.insert(hsn, dsn)
        self.l1.insert(hsn, dsn)

    def invalidate(self, hsn: int) -> bool:
        """Drop a mapping from both levels (used after migration)."""
        in_l1 = self.l1.invalidate(hsn)
        in_l2 = self.l2.invalidate(hsn)
        return in_l1 or in_l2

    def hit_latency_ns(self, result: LookupResult) -> float:
        """Latency contribution of the cache portion of a lookup."""
        if result.l1_hit:
            return self.config.l1_hit_ns
        return self.config.l1_hit_ns + self.config.l2_hit_ns


__all__ = [
    "CONTROLLER_CLOCK_GHZ",
    "L1_SMC_HIT_CYCLES",
    "L2_SMC_HIT_CYCLES",
    "cycles_to_ns",
    "CacheStats",
    "FullyAssociativeCache",
    "SetAssociativeCache",
    "SegmentCacheConfig",
    "LookupResult",
    "SegmentMappingCache",
]
