"""Memory-trace containers and manipulation utilities.

A :class:`Trace` is a columnar (NumPy-backed) record of post-cache memory
accesses: byte address, read/write flag, and the number of instructions
retired since the previous access.  Traces can be concatenated, interleaved
("mixed", Section 5.2), rebased to new footprints, and reduced to
segment-granular statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import CACHELINE_BYTES


@dataclass
class Trace:
    """Columnar post-cache memory trace.

    Attributes:
        addresses: Byte addresses (``uint64``).
        is_write: Write flags (``bool``).
        instr_deltas: Instructions retired since the previous access
            (``uint32``); their cumulative sum is the instruction clock.
        name: Human-readable origin (workload name or mix id).
    """

    addresses: np.ndarray
    is_write: np.ndarray
    instr_deltas: np.ndarray
    name: str = "trace"

    def __post_init__(self) -> None:
        if not (len(self.addresses) == len(self.is_write)
                == len(self.instr_deltas)):
            raise ValueError("trace columns must have equal length")

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def total_instructions(self) -> int:
        """Total instructions covered by the trace."""
        return int(self.instr_deltas.sum())

    @property
    def mapki(self) -> float:
        """Memory accesses per kilo-instruction (Table 4 metric)."""
        instructions = self.total_instructions
        if not instructions:
            return 0.0
        return 1000.0 * len(self) / instructions

    @property
    def write_fraction(self) -> float:
        """Fraction of accesses that are writes."""
        if not len(self):
            return 0.0
        return float(self.is_write.mean())

    def footprint_bytes(self, granularity: int = CACHELINE_BYTES) -> int:
        """Unique bytes touched, measured at ``granularity``."""
        if not len(self):
            return 0
        unique = np.unique(self.addresses // granularity)
        return int(len(unique)) * granularity

    # -- transforms --------------------------------------------------------------

    def rebase(self, base_address: int) -> "Trace":
        """Shift every address by ``base_address`` (placing a VM's trace)."""
        return Trace(addresses=self.addresses + np.uint64(base_address),
                     is_write=self.is_write,
                     instr_deltas=self.instr_deltas,
                     name=self.name)

    def slice(self, start: int, stop: int) -> "Trace":
        """A view of accesses ``[start, stop)``."""
        return Trace(addresses=self.addresses[start:stop],
                     is_write=self.is_write[start:stop],
                     instr_deltas=self.instr_deltas[start:stop],
                     name=self.name)

    def segments(self, segment_bytes: int) -> np.ndarray:
        """Segment number of each access at the given granularity."""
        return self.addresses // np.uint64(segment_bytes)

    # -- analyses ----------------------------------------------------------------

    def stride_distribution(self,
                            bucket_edges: tuple[int, ...] = (
                                CACHELINE_BYTES, 4096, 65536, 1 << 20, 1 << 22),
                            ) -> dict[str, float]:
        """Distribution of absolute access strides into size buckets.

        The final implicit bucket collects strides at or above the last
        edge (the paper's ">=4MB" class, Figure 9).
        """
        if len(self) < 2:
            return {}
        strides = np.abs(np.diff(self.addresses.astype(np.int64)))
        total = len(strides)
        result: dict[str, float] = {}
        previous = 0
        for edge in bucket_edges:
            count = int(((strides >= previous) & (strides < edge)).sum())
            result[f"<{edge}"] = count / total
            previous = edge
        result[f">={bucket_edges[-1]}"] = int(
            (strides >= previous).sum()) / total
        return result

    def segment_reuse_distances(self, segment_bytes: int) -> np.ndarray:
        """Per-revisit reuse distances in *instructions* at segment
        granularity (the Figure 10 metric).

        Returns one distance per access whose segment was seen before.
        """
        segments = self.segments(segment_bytes)
        clock = np.cumsum(self.instr_deltas.astype(np.int64))
        last_seen: dict[int, int] = {}
        distances = []
        for index in range(len(segments)):
            segment = int(segments[index])
            now = int(clock[index])
            if segment in last_seen:
                distances.append(now - last_seen[segment])
            last_seen[segment] = now
        return np.asarray(distances, dtype=np.int64)

    def cold_segment_fraction(self, segment_bytes: int,
                              threshold_instructions: int = 10_000_000,
                              total_segments: int | None = None) -> float:
        """Fraction of segments that are *cold* (the Figure 10 metric).

        A segment is cold when it is never revisited within
        ``threshold_instructions``.  Consecutive accesses to the same
        segment form one *visit* (a sojourn of the strided cursor); only
        gaps between visits count as reuse distances, since a single burst
        does not keep a migrated segment's rank awake.

        Args:
            segment_bytes: Segment granularity (2 MiB or 4 MiB in Fig. 10).
            threshold_instructions: Coldness threshold (10 M in the paper).
            total_segments: Denominator.  When given, untouched segments
                (trivially cold) are included, matching the paper's
                whole-footprint percentages; otherwise only touched
                segments count.
        """
        segments = self.segments(segment_bytes)
        clock = np.cumsum(self.instr_deltas.astype(np.int64))
        # Collapse runs of equal consecutive segments into visits.
        if len(segments):
            boundaries = np.empty(len(segments), dtype=bool)
            boundaries[0] = True
            boundaries[1:] = segments[1:] != segments[:-1]
            visit_segments = segments[boundaries]
            visit_clock = clock[boundaries]
        else:
            visit_segments = segments
            visit_clock = clock
        last_seen: dict[int, int] = {}
        is_hot: set[int] = set()
        for index in range(len(visit_segments)):
            segment = int(visit_segments[index])
            now = int(visit_clock[index])
            if segment in last_seen and \
                    now - last_seen[segment] <= threshold_instructions:
                is_hot.add(segment)
            last_seen[segment] = now
        touched = len(last_seen)
        if total_segments is not None:
            if total_segments < touched:
                raise ValueError("total_segments smaller than touched set")
            return (total_segments - len(is_hot)) / total_segments
        if not touched:
            return 0.0
        return (touched - len(is_hot)) / touched


def concatenate(traces: list[Trace], name: str = "concat") -> Trace:
    """Concatenate traces back to back."""
    if not traces:
        raise ValueError("need at least one trace")
    return Trace(
        addresses=np.concatenate([trace.addresses for trace in traces]),
        is_write=np.concatenate([trace.is_write for trace in traces]),
        instr_deltas=np.concatenate([trace.instr_deltas for trace in traces]),
        name=name)


def mix(traces: list[Trace], rng: np.random.Generator,
        name: str = "mix") -> Trace:
    """Randomly interleave traces, preserving each trace's internal order.

    This reproduces the paper's "randomly mixes the post-cache traces"
    step (Section 5.2).  The instruction clock of the mix advances with
    whichever trace supplied each access.
    """
    if not traces:
        raise ValueError("need at least one trace")
    lengths = np.array([len(trace) for trace in traces])
    order = np.repeat(np.arange(len(traces)), lengths)
    rng.shuffle(order)
    cursors = [0] * len(traces)
    total = int(lengths.sum())
    addresses = np.empty(total, dtype=np.uint64)
    is_write = np.empty(total, dtype=bool)
    instr_deltas = np.empty(total, dtype=np.uint32)
    for position, trace_index in enumerate(order):
        trace = traces[trace_index]
        cursor = cursors[trace_index]
        addresses[position] = trace.addresses[cursor]
        is_write[position] = trace.is_write[cursor]
        instr_deltas[position] = trace.instr_deltas[cursor]
        cursors[trace_index] = cursor + 1
    return Trace(addresses=addresses, is_write=is_write,
                 instr_deltas=instr_deltas, name=name)


__all__ = ["Trace", "concatenate", "mix"]
