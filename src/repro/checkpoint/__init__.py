"""Versioned checkpoints of simulation state (ROADMAP item 4).

Two layers:

* :mod:`repro.checkpoint.state` — the :class:`Checkpoint` container:
  a versioned, content-hashed pickle of one simulator's run state, with
  atomic save/load to disk.
* :mod:`repro.checkpoint.stepping` — the stepping protocol every
  registered experiment implements (``begin`` / ``advance`` /
  ``finish``) plus drive helpers: run to completion, snapshot at step
  *k*, resume from a saved checkpoint.

The contract is **bit-identity**: a run restored at step *k* produces
byte-identical records, telemetry totals, and checker audits to the
uninterrupted run (see ``tests/checkpoint/`` and docs/CHECKPOINT.md).
"""

from repro.checkpoint.state import (CHECKPOINT_VERSION, Checkpoint,
                                    CheckpointError, load_checkpoint,
                                    restore, save_checkpoint, snapshot)
from repro.checkpoint.stepping import (Stepper, checkpoint_state,
                                       resume_state, run_stepped,
                                       run_to_step, run_with_checkpoints)

__all__ = [
    "checkpoint_state",
    "resume_state",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "snapshot",
    "restore",
    "save_checkpoint",
    "load_checkpoint",
    "Stepper",
    "run_stepped",
    "run_to_step",
    "run_with_checkpoints",
]
