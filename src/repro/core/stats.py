"""Unified controller statistics snapshot.

Pulls counters from every DTL subsystem into one flat, JSON-ready
dictionary — what a device vendor would expose over the management
interface.  Nothing here mutates state; it is safe to call at any point
during a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.controller import DtlController
from repro.dram.power import PowerState


@dataclass(frozen=True)
class StatsSnapshot:
    """One point-in-time statistics capture."""

    translation: dict[str, float]
    allocation: dict[str, float]
    migration: dict[str, float]
    power: dict[str, float]
    self_refresh: dict[str, float]

    def flat(self) -> dict[str, float]:
        """All counters in one namespace-prefixed dictionary."""
        merged: dict[str, float] = {}
        for prefix, group in (("translation", self.translation),
                              ("allocation", self.allocation),
                              ("migration", self.migration),
                              ("power", self.power),
                              ("self_refresh", self.self_refresh)):
            for key, value in group.items():
                merged[f"{prefix}.{key}"] = value
        return merged


def snapshot(controller: DtlController) -> StatsSnapshot:
    """Capture every subsystem's counters."""
    translation_engine = controller.translation
    smc = translation_engine.smc
    translation = {
        "count": float(translation_engine.translation_count),
        "mean_latency_ns": translation_engine.mean_observed_latency_ns(),
        "amat_ns": translation_engine.measured_amat_ns(),
        "l1_hit_ratio": smc.l1.stats.hit_ratio,
        "l2_hit_ratio": smc.l2.stats.hit_ratio,
        "invalidations": float(smc.l1.stats.invalidations
                               + smc.l2.stats.invalidations),
    }

    allocator = controller.allocator
    geometry = controller.geometry
    allocation = {
        "segments_allocated": float(allocator.allocated_count()),
        "segments_free": float(allocator.free_count()),
        "utilization": allocator.allocated_count()
        / geometry.total_segments,
        "live_vms": float(len(controller.live_vms)),
        "reserved_bytes": float(controller.reserved_bytes()),
    }

    engine = controller.migration
    migration = {
        "segments_migrated": float(engine.stats.segments_migrated),
        "bytes_copied": float(engine.stats.bytes_copied),
        "aborts": float(engine.stats.aborts),
        "requeues": float(engine.stats.requeues),
        "foreground_redirects": float(engine.stats.foreground_redirects),
        "pending": float(engine.pending_count()),
    }

    device = controller.device
    counts = device.state_counts()
    power = {
        "ranks_standby": float(counts[PowerState.STANDBY]),
        "ranks_self_refresh": float(counts[PowerState.SELF_REFRESH]),
        "ranks_mpsm": float(counts[PowerState.MPSM]),
        "background_power_rsu": device.background_power(),
        "transitions": float(sum(rank.transition_count
                                 for rank in device.ranks.values())),
        "exit_penalty_total_ns": sum(rank.exit_penalty_total_ns
                                     for rank in device.ranks.values()),
    }
    if controller.power_down is not None:
        power["active_ranks_per_channel"] = float(
            controller.power_down.active_ranks_per_channel())
        power["quarantined"] = float(
            len(controller.power_down.quarantined_ranks()))

    self_refresh: dict[str, float] = {}
    policy = controller.self_refresh
    if policy is not None:
        self_refresh = {
            "sr_entries": float(sum(1 for e in policy.events
                                    if e.kind == "enter_sr")),
            "sr_exits": float(sum(1 for e in policy.events
                                  if e.kind == "exit_sr")),
            "migrated_bytes": float(policy.migrated_bytes_total),
            "exit_penalty_total_ns": policy.exit_penalty_total_ns,
        }

    return StatsSnapshot(translation=translation, allocation=allocation,
                         migration=migration, power=power,
                         self_refresh=self_refresh)


__all__ = ["StatsSnapshot", "snapshot"]
