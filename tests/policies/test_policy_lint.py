"""Lint guard: policy modules stay behind the decision-surface boundary.

Policies decide *which* ranks to park, migrate, or search — the hosts in
:mod:`repro.core` own *how*.  A policy module that imports controller,
SMC, allocator, or migration internals couples decisions to mechanism
and silently bypasses the ``RankStats``/``ColdSearch`` surfaces, so this
suite walks every module under ``src/repro/policies`` with ``ast`` and
fails the build on any import outside the allowlist (mirroring the
faults hook-registry lint in ``tests/faults/test_hook_registry.py``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

import pytest

from repro.policies import POLICIES, available_policies

PACKAGE_DIR = (Path(__file__).resolve().parents[2]
               / "src" / "repro" / "policies")

#: Only these non-stdlib roots may be imported by a policy module.
ALLOWED_MODULES = {
    "numpy",
    "repro.units",
    "repro.errors",
    "repro.dram.power",
}
#: Intra-package imports are always fine.
ALLOWED_PREFIXES = ("repro.policies",)

#: Everything a policy must never touch (mechanism, not decisions).
FORBIDDEN_ROOTS = ("repro.core", "repro.sim", "repro.host", "repro.cxl",
                   "repro.faults", "repro.exec", "repro.telemetry")


def policy_modules() -> list[Path]:
    modules = sorted(PACKAGE_DIR.glob("*.py"))
    assert modules, f"no modules found under {PACKAGE_DIR}"
    return modules


def imported_names(path: Path) -> set[str]:
    tree = ast.parse(path.read_text())
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            assert node.level == 0, (
                f"{path.name}: relative imports hide the dependency "
                "from this lint; use absolute ones")
            names.add(node.module)
    return names


def is_allowed(name: str) -> bool:
    root = name.split(".")[0]
    if root in sys.stdlib_module_names:
        return True
    if name in ALLOWED_MODULES:
        return True
    return name.startswith(ALLOWED_PREFIXES)


class TestImportBoundary:
    @pytest.mark.parametrize("path", policy_modules(),
                             ids=lambda path: path.name)
    def test_only_allowlisted_imports(self, path):
        offending = {name for name in imported_names(path)
                     if not is_allowed(name)}
        assert not offending, (
            f"{path.name} imports {sorted(offending)}; policies may only "
            f"use the stdlib, numpy, and {sorted(ALLOWED_MODULES)} — "
            "decisions go through RankStats/ColdSearch, not host internals")

    @pytest.mark.parametrize("path", policy_modules(),
                             ids=lambda path: path.name)
    def test_never_reaches_into_mechanism(self, path):
        # Redundant with the allowlist, but states the intent directly:
        # controller/SMC/simulator internals are off limits by name.
        for name in imported_names(path):
            assert not name.startswith(FORBIDDEN_ROOTS), (
                f"{path.name} imports {name}, which is host mechanism")


class TestRegistry:
    def test_all_builtin_policies_registered(self):
        assert {"paper", "rank_aware", "dream", "adaptive"} \
            <= set(available_policies())

    def test_names_match_registry_keys(self):
        for name, cls in POLICIES.items():
            assert cls.name == name
