"""Determinism guarantees: seeded plans replay bit-identically.

Two properties back the reliability subsystem's claims:

* Replaying the same seeded plan over the same workload produces
  bit-identical telemetry snapshots (fault scheduling is a pure
  function of visit counters, never of wall clock or RNG draws).
* Arming a zero-fault plan is indistinguishable from not arming at
  all — the injector registers no metrics until a fault actually
  fires, and the batch datapath keeps its exact vectorised path.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DtlConfig
from repro.core.controller import DtlController
from repro.dram.geometry import DramGeometry
from repro.faults import (ChaosSoakConfig, ChaosSoakExperiment, CxlLinkFault,
                          EccFault, FaultInjector, FaultPlan,
                          SmcCorruptionFault)
from repro.units import MIB


def run_workload(seed: int, plan: FaultPlan | None) -> str:
    """Drive a small mixed workload; return the snapshot as JSON."""
    controller = DtlController(DtlConfig(
        geometry=DramGeometry(channels=2, ranks_per_channel=2,
                              rank_bytes=4 * MIB, segment_bytes=128 * 1024),
        au_bytes=1 * MIB))
    if plan is not None:
        controller.arm_faults(FaultInjector(
            plan, registry=controller.metrics, trace=controller.trace))
    vm = controller.allocate_vm(0, 2 * MIB)
    rng = np.random.default_rng(seed)
    now_s = 0.0
    segments_per_au = controller.host_layout.segments_per_au
    for _ in range(6):
        aus = rng.integers(0, len(vm.au_ids), size=64)
        segs = rng.integers(0, segments_per_au, size=64)
        lines = rng.integers(0, 2048, size=64)
        hpas = np.array(
            [controller.hpa_of(vm.au_ids[a], int(s), int(line) * 64)
             for a, s, line in zip(aus, segs, lines)], dtype=np.uint64)
        writes = rng.random(64) < 0.25
        controller.access_batch(0, hpas, writes, now_ns=now_s * 1e9)
        now_s += 1e-5
        controller.tick(now_s)
        controller.end_window()
    return controller.telemetry_snapshot(now_s).to_json()


@st.composite
def plans(draw):
    specs = draw(st.lists(st.one_of(
        st.builds(CxlLinkFault,
                  start=st.integers(0, 5), period=st.integers(1, 13)),
        st.builds(EccFault, start=st.integers(0, 5),
                  period=st.integers(1, 13), bits=st.integers(1, 2)),
        st.builds(SmcCorruptionFault, period=st.integers(1, 17)),
    ), min_size=1, max_size=4))
    return FaultPlan(seed=draw(st.integers(0, 2**16)), name="prop",
                     specs=tuple(specs))


class TestReplayIdentity:
    @settings(max_examples=10, deadline=None)
    @given(plan=plans(), seed=st.integers(0, 2**16))
    def test_same_plan_same_snapshot(self, plan, seed):
        assert run_workload(seed, plan) == run_workload(seed, plan)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_zero_fault_plan_equals_unarmed(self, seed):
        armed = run_workload(seed, FaultPlan(seed=seed, name="empty"))
        unarmed = run_workload(seed, None)
        assert armed == unarmed

    def test_chaos_soak_replays_bit_identically(self):
        config = ChaosSoakConfig(seed=11, levels=1, batches_per_phase=2,
                                 batch_size=16)
        first = ChaosSoakExperiment(config).run()
        second = ChaosSoakExperiment(config).run()
        assert first.snapshot == second.snapshot
        assert first.report.to_dict() == second.report.to_dict()
