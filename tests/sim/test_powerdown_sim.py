"""Tests for the schedule-level power-down simulator (Figure 12)."""

import pytest

from repro.host.scheduler import SchedulerConfig
from repro.sim.powerdown_sim import (ComparisonSimulator, PowerDownSimConfig,
                                     PowerDownSimulator,
                                     background_power_savings, energy_savings,
                                     power_savings)
from repro.units import GIB
from repro.workloads.azure import AzureTraceConfig


@pytest.fixture(scope="module")
def quick_results():
    """One shared comparison on a one-hour, 60-VM schedule."""
    config = PowerDownSimConfig(
        azure=AzureTraceConfig(num_vms=60, duration_s=3600.0),
        scheduler=SchedulerConfig(duration_s=3600.0),
        seed=1)
    return ComparisonSimulator(config).run().as_tuple()


class TestComparison:
    def test_dtl_saves_energy(self, quick_results):
        baseline, dtl = quick_results
        assert energy_savings(baseline, dtl) > 0.1

    def test_power_savings_exceed_energy_savings(self, quick_results):
        """Energy pays the execution-time stretch on top of power."""
        baseline, dtl = quick_results
        assert power_savings(baseline, dtl) > energy_savings(baseline, dtl)

    def test_background_dominates_savings(self, quick_results):
        baseline, dtl = quick_results
        assert background_power_savings(baseline, dtl) >= \
            power_savings(baseline, dtl) - 0.02

    def test_baseline_keeps_all_ranks(self, quick_results):
        baseline, _ = quick_results
        assert baseline.mean_active_ranks == 8.0
        assert baseline.execution_time_factor == 1.0

    def test_dtl_uses_fewer_ranks(self, quick_results):
        _, dtl = quick_results
        assert dtl.mean_active_ranks < 8.0

    def test_execution_factor_near_paper(self, quick_results):
        _, dtl = quick_results
        assert 1.005 < dtl.execution_time_factor < 1.04

    def test_migration_happened(self, quick_results):
        _, dtl = quick_results
        assert dtl.migrated_bytes >= 0
        assert dtl.power_transitions > 0


class TestIntervals:
    def test_interval_count(self, quick_results):
        _, dtl = quick_results
        assert len(dtl.intervals) == 12  # 1 h at 5-minute intervals

    def test_energy_consistency(self, quick_results):
        """Integrated energy equals the sum over interval records."""
        _, dtl = quick_results
        total = sum(record.total_power * record.duration_s
                    for record in dtl.intervals)
        assert total == pytest.approx(dtl.energy.total_j, rel=1e-6)

    def test_active_ranks_follow_reservations(self, quick_results):
        _, dtl = quick_results
        for record in dtl.intervals:
            reserved_per_channel = record.reserved_bytes / 4
            rank_bytes = 16 * GIB
            needed = reserved_per_channel / rank_bytes
            assert record.active_ranks_per_channel >= min(8, needed)

    def test_power_timeseries_shape(self, quick_results):
        _, dtl = quick_results
        times, powers = dtl.power_timeseries()
        assert len(times) == len(powers) == len(dtl.intervals)

    def test_even_interval_pacing(self, quick_results):
        _, dtl = quick_results
        assert all(record.duration_s == pytest.approx(300.0)
                   for record in dtl.intervals)


class TestDeterminism:
    def test_same_seed_same_result(self):
        config = PowerDownSimConfig(
            azure=AzureTraceConfig(num_vms=20, duration_s=1800.0),
            scheduler=SchedulerConfig(duration_s=1800.0), seed=3)
        a = PowerDownSimulator(config).run()
        b = PowerDownSimulator(config).run()
        assert a.energy.total_j == pytest.approx(b.energy.total_j)
        assert a.mean_active_ranks == b.mean_active_ranks


class TestBandwidthDrift:
    def test_emptying_node_survives_float_drift(self):
        """bandwidth_gbs is a +=/-= accumulator over VM rates; when a
        node fully empties it can drift to ~-1e-16, which used to raise
        "bandwidth must be non-negative" (soak seed 14 reproduced it).
        The observation-point clamp must keep the run alive and every
        recorded bandwidth non-negative."""
        from repro.sim.fleet_soak import soak_node_config
        result = ComparisonSimulator(
            soak_node_config().replace(keep_timeseries=True,
                                       seed=14)).run()
        assert result.dtl.mean_bandwidth_gbs >= 0.0
        assert all(record.bandwidth_gbs >= 0.0
                   for record in result.dtl.intervals)
