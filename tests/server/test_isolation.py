"""Tenant isolation under an armed fault plan.

Two tenants forced onto the same shard must never observe each other's
allocations, and a tenant whose request is rejected by admission
control must leave the victim shard's controller state bit-identical
(proved by fingerprint equality and a consistency audit) — all with
the always-on chaos injector armed.
"""

import asyncio

from repro.server import DtlServer, ServerConfig, shard_of
from repro.server.admission import AdmissionConfig


def colliding_names(num_shards: int) -> tuple[str, str, int]:
    """Two tenant names that hash to the same shard, plus the shard."""
    first = "iso-0"
    target = shard_of(first, num_shards)
    second = next(f"iso-{index}" for index in range(1, 1000)
                  if shard_of(f"iso-{index}", num_shards) == target)
    return first, second, target


async def populated_server(config: ServerConfig,
                           names: tuple[str, str]) -> DtlServer:
    server = DtlServer(config)
    await server.start(serve_tcp=False)
    t = 1.0
    for name in names:
        await server.handle_request(
            {"op": "open_tenant", "tenant": name, "t": t})
        alloc = await server.handle_request(
            {"op": "allocate", "tenant": name, "bytes": 2 << 20, "t": t})
        await server.handle_request(
            {"op": "access_batch", "tenant": name, "vm": alloc["vm"],
             "segments": list(range(8)), "writes": [True] * 8, "t": t})
        t += 0.1
    return server


class TestSameShardIsolation:
    def test_chaos_is_armed(self):
        async def scenario():
            server = DtlServer(ServerConfig())
            await server.start(serve_tcp=False)
            assert all(shard.injector is not None
                       for shard in server.shards)
            await server.drain()
        asyncio.run(scenario())

    def test_same_shard_tenants_have_disjoint_dsns(self):
        first, second, target = colliding_names(2)

        async def scenario():
            server = await populated_server(ServerConfig(),
                                            (first, second))
            assert server.tenants[first].shard == target
            assert server.tenants[second].shard == target
            shard = server.shards[target]
            dsns_first = shard.dsns_of_host(server.tenants[first].host_id)
            dsns_second = shard.dsns_of_host(
                server.tenants[second].host_id)
            assert dsns_first and dsns_second
            assert not dsns_first & dsns_second
            assert not server.leak_report()
            shard.audit()
            await server.drain()
            assert not server.audit_violations()
        asyncio.run(scenario())

    def test_cross_tenant_vm_access_is_not_owner(self):
        first, second, _ = colliding_names(2)

        async def scenario():
            server = await populated_server(ServerConfig(),
                                            (first, second))
            foreign_vm = sorted(server.tenants[second].vm_ids)[0]
            stolen = await server.handle_request(
                {"op": "access_batch", "tenant": first, "vm": foreign_vm,
                 "segments": [0], "t": 2.0})
            assert stolen["error"] == "not_owner"
            freed = await server.handle_request(
                {"op": "free", "tenant": first, "vm": foreign_vm,
                 "t": 2.1})
            assert freed["error"] == "not_owner"
            # The victim's VM is still alive and serving.
            mine = await server.handle_request(
                {"op": "access_batch", "tenant": second, "vm": foreign_vm,
                 "segments": [0], "t": 2.2})
            assert mine["ok"]
            await server.drain()
        asyncio.run(scenario())


class TestRejectionPurity:
    """Admission rejections must bounce before touching controller
    state — checked by shard fingerprint equality and an audit, with
    the chaos injector armed the whole time."""

    def rejection_battery(self, admission: AdmissionConfig):
        first, second, target = colliding_names(2)

        async def scenario():
            server = await populated_server(
                ServerConfig(admission=admission), (first, second))
            shard = server.shards[target]
            before = shard.fingerprint()

            quota = await server.handle_request(
                {"op": "allocate", "tenant": first,
                 "bytes": admission.quota_bytes * 2, "t": 3.0})
            foreign_vm = sorted(server.tenants[second].vm_ids)[0]
            owner = await server.handle_request(
                {"op": "access_batch", "tenant": first, "vm": foreign_vm,
                 "segments": [0], "t": 3.1})
            own_vm = sorted(server.tenants[first].vm_ids)[0]
            ranged = await server.handle_request(
                {"op": "access_batch", "tenant": first, "vm": own_vm,
                 "segments": [1 << 40], "t": 3.2})

            codes = [quota.get("error"), owner.get("error"),
                     ranged.get("error")]
            assert codes == ["quota_exceeded", "not_owner",
                             "out_of_range"]
            assert shard.fingerprint() == before
            shard.audit()
            assert not shard.violations
            await server.drain()
            assert not server.audit_violations()
            assert not server.leak_report()
        asyncio.run(scenario())

    def test_rejections_leave_fingerprint_untouched(self):
        self.rejection_battery(AdmissionConfig(quota_bytes=4 << 20))

    def test_rejected_tenant_counters_are_typed(self):
        async def scenario():
            server = DtlServer(ServerConfig(admission=AdmissionConfig(
                max_tenants=1)))
            await server.start(serve_tcp=False)
            await server.handle_request(
                {"op": "open_tenant", "tenant": "a", "t": 0.0})
            refused = await server.handle_request(
                {"op": "open_tenant", "tenant": "b", "t": 0.1})
            assert refused["error"] == "tenant_limit"
            counters = server.metrics.counter_values()
            assert counters["server.rejected.tenant_limit"] == 1
            await server.drain()
        asyncio.run(scenario())
