"""Experiment simulators: performance model, power-down schedule,
self-refresh replay, and the combined Figure 15 summary.

Every simulator exposes the unified ``run(config) -> Result`` shape
(:class:`~repro.sim.base.Experiment`) and registers in
:data:`~repro.sim.experiments.EXPERIMENTS` — the registry both the CLI
and :mod:`repro.exec` dispatch from."""

from repro.sim.base import Experiment, ExperimentResult, SeededConfig
from repro.sim.combined import (CombinedSavings, combined_savings,
                                figure15_summary)
from repro.sim.comparison import (ComparisonResult,
                                  PolicyComparisonExperiment,
                                  RamzzzSimulator, compare_policies)
from repro.sim.fleet import (FleetConfig, FleetResult, FleetSimulator,
                             NodeFailure, NodeOutcome, quick_fleet)
from repro.sim.figures import (FigureSeries, ascii_chart, figure1_series,
                               figure2_series, figure11a_series,
                               figure12a_series, figure14_series)
from repro.sim.perf_model import (INTERLEAVING_OFF_PENALTY_CXL,
                                  PerfModelConfig, PerformanceModel,
                                  TRANSLATION_OVERHEAD)
from repro.sim.rank_sweep import (RankSweepConfig, RankSweepExperiment,
                                  RankSweepPoint, TraceRankSweep,
                                  TraceRankSweepConfig, TraceRankSweepResult,
                                  mean_trace_driven_slowdown)
from repro.sim.results import (ExperimentRecord, flatten_powerdown,
                               flatten_selfrefresh, load_records,
                               render_table, save_records)
from repro.sim.powerdown_sim import (ComparisonSimulator, IntervalRecord,
                                     PowerDownComparisonResult,
                                     PowerDownResult,
                                     PowerDownSimConfig, PowerDownSimulator,
                                     background_power_savings, energy_savings,
                                     power_savings, run_comparison)
from repro.sim.selfrefresh_sim import (PAPER_CAPACITY_POINTS,
                                       SelfRefreshResult, SelfRefreshSimConfig,
                                       SelfRefreshSimulator, StepRecord,
                                       config_for_point)
from repro.sim.experiments import (EXPERIMENTS, ExperimentSpec,
                                   experiment_task, get_spec,
                                   make_experiment, run_experiment,
                                   run_experiments)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "SeededConfig",
    "EXPERIMENTS",
    "ExperimentSpec",
    "experiment_task",
    "get_spec",
    "make_experiment",
    "run_experiment",
    "run_experiments",
    "ComparisonResult",
    "PolicyComparisonExperiment",
    "RamzzzSimulator",
    "compare_policies",
    "FleetConfig",
    "FleetResult",
    "FleetSimulator",
    "NodeFailure",
    "NodeOutcome",
    "quick_fleet",
    "FigureSeries",
    "ascii_chart",
    "figure1_series",
    "figure2_series",
    "figure11a_series",
    "figure12a_series",
    "figure14_series",
    "RankSweepConfig",
    "RankSweepExperiment",
    "RankSweepPoint",
    "TraceRankSweep",
    "TraceRankSweepConfig",
    "TraceRankSweepResult",
    "mean_trace_driven_slowdown",
    "ExperimentRecord",
    "flatten_powerdown",
    "flatten_selfrefresh",
    "load_records",
    "render_table",
    "save_records",
    "CombinedSavings",
    "combined_savings",
    "figure15_summary",
    "PerfModelConfig",
    "PerformanceModel",
    "INTERLEAVING_OFF_PENALTY_CXL",
    "TRANSLATION_OVERHEAD",
    "ComparisonSimulator",
    "IntervalRecord",
    "PowerDownComparisonResult",
    "PowerDownResult",
    "PowerDownSimConfig",
    "PowerDownSimulator",
    "background_power_savings",
    "energy_savings",
    "power_savings",
    "run_comparison",
    "PAPER_CAPACITY_POINTS",
    "SelfRefreshResult",
    "SelfRefreshSimConfig",
    "SelfRefreshSimulator",
    "StepRecord",
    "config_for_point",
]
