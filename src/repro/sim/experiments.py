"""The single experiment registry behind the CLI and the executor.

Every simulator in :mod:`repro.sim` conforms to the
:class:`~repro.sim.base.Experiment` protocol — ``name``, ``config``,
``run()`` returning a result with ``to_record()`` — and registers here
as an :class:`ExperimentSpec`.  Anything that can name an experiment and
build (or load) its config dataclass can then run it the same way:

>>> from repro.sim.experiments import EXPERIMENTS, run_experiment
>>> spec = EXPERIMENTS["selfrefresh"]
>>> result = run_experiment("selfrefresh", spec.tiny_config())
>>> record = result.to_record()

:func:`run_experiment` is a module-level function of picklable
arguments, so an ``(experiment name, config)`` pair is also the natural
unit of work for :mod:`repro.exec` — :func:`experiment_task` wraps one
into a cacheable :class:`~repro.exec.runner.TaskSpec`, and
:func:`run_experiments` fans a batch out with result caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.exec import (ExecConfig, ResultCache, TaskOutcome, TaskSpec,
                        run_tasks, task_key)
from repro.faults.arming import hashing_context
from repro.faults.chaos import ChaosSoakConfig, ChaosSoakExperiment
from repro.host.scheduler import SchedulerConfig
from repro.server.soak import (ServerSoakConfig, ServerSoakExperiment,
                               quick_server_soak_config)
from repro.sim.base import Experiment, ExperimentResult
from repro.sim.comparison import PolicyComparisonExperiment
from repro.sim.fleet import FleetConfig, FleetSimulator
from repro.sim.fleet_soak import (FleetSoakConfig, FleetSoakExperiment,
                                  quick_soak_config)
from repro.sim.powerdown_sim import (ComparisonSimulator,
                                     PowerDownSimConfig, PowerDownSimulator)
from repro.sim.rank_sweep import RankSweepExperiment, TraceRankSweepConfig
from repro.sim.selfrefresh_sim import (SelfRefreshSimConfig,
                                       SelfRefreshSimulator)
from repro.sim.tournament import (PolicyTournament, TournamentConfig,
                                  quick_tournament_config)
from repro.workloads.azure import AzureTraceConfig
from repro.workloads.cloudsuite import TRACED_BENCHMARKS


@dataclass(frozen=True)
class ExperimentSpec:
    """How to build one registered experiment.

    Attributes:
        name: Registry key (also the experiment's ``name`` attribute and
            the prefix of its cache keys).
        config_type: The config dataclass the factory accepts.
        factory: ``config -> Experiment`` constructor.
        tiny_config: Builds a seconds-scale config for smoke tests and
            the registry round-trip suite.
        summary: One-line description for ``repro exp --list``.
    """

    name: str
    config_type: type
    factory: Callable[[Any], Experiment]
    tiny_config: Callable[[], Any]
    summary: str


#: The registry: experiment name -> spec.
EXPERIMENTS: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add ``spec`` to :data:`EXPERIMENTS` (name must be free)."""
    if spec.name in EXPERIMENTS:
        raise ValueError(f"experiment {spec.name!r} already registered")
    EXPERIMENTS[spec.name] = spec
    return spec


def get_spec(name: str) -> ExperimentSpec:
    """Look up a spec; a helpful ``KeyError`` lists valid names."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"choices: {sorted(EXPERIMENTS)}") from None


def make_experiment(name: str, config: Any | None = None) -> Experiment:
    """Instantiate the named experiment (default config when ``None``)."""
    spec = get_spec(name)
    if config is None:
        config = spec.config_type()
    return spec.factory(config)


def run_experiment(name: str, config: Any | None = None) -> ExperimentResult:
    """Build and run the named experiment.

    Module-level and fully determined by its (picklable) arguments —
    this is the function the process-pool workers execute.
    """
    return make_experiment(name, config).run()


def experiment_task(name: str, config: Any, label: str | None = None,
                    cacheable: bool = True) -> TaskSpec:
    """Wrap one ``(name, config)`` pair as an executor task."""
    get_spec(name)  # fail fast on unknown names, before fan-out
    # An ambiently armed fault plan changes what the experiment computes,
    # so it participates in the cache key; the fault-free default yields
    # context=None, preserving every historical key.
    key = (task_key(name, config, context=hashing_context())
           if cacheable else None)
    return TaskSpec(fn=run_experiment, args=(name, config),
                    key=key, label=label or name)


def run_experiments(requests: list[tuple[str, Any]],
                    exec_config: ExecConfig | None = None,
                    cache: ResultCache | None = None) -> list[TaskOutcome]:
    """Fan a batch of ``(name, config)`` requests out through the executor.

    Returns one :class:`TaskOutcome` per request, in order; failed
    experiments report through ``outcome.error`` instead of raising, so
    one bad run cannot sink a batch.
    """
    tasks = [experiment_task(name, config) for name, config in requests]
    return run_tasks(tasks, config=exec_config, cache=cache)


# -- registrations -----------------------------------------------------------------


def _tiny_powerdown_config() -> PowerDownSimConfig:
    return PowerDownSimConfig(
        azure=AzureTraceConfig(num_vms=8, duration_s=900.0),
        scheduler=SchedulerConfig(duration_s=900.0))


register(ExperimentSpec(
    name="powerdown",
    config_type=PowerDownSimConfig,
    factory=PowerDownSimulator,
    tiny_config=_tiny_powerdown_config,
    summary="VM-schedule rank power-down simulation (Figure 12)"))

register(ExperimentSpec(
    name="powerdown_comparison",
    config_type=PowerDownSimConfig,
    factory=ComparisonSimulator,
    tiny_config=_tiny_powerdown_config,
    summary="baseline-vs-DTL pair on one VM trace (Figures 12-13)"))

register(ExperimentSpec(
    name="fleet",
    config_type=FleetConfig,
    factory=FleetSimulator,
    tiny_config=lambda: FleetConfig(num_nodes=2,
                                    node=_tiny_powerdown_config()),
    summary="multi-node fleet fan-out with datacenter TCO roll-up"))

register(ExperimentSpec(
    name="fleet-soak",
    config_type=FleetSoakConfig,
    factory=FleetSoakExperiment,
    tiny_config=lambda: quick_soak_config(num_nodes=6),
    summary="sharded fleet soak: RSS ceiling + serial/parallel identity"))

register(ExperimentSpec(
    name="rank_sweep",
    config_type=TraceRankSweepConfig,
    factory=RankSweepExperiment,
    tiny_config=lambda: TraceRankSweepConfig(num_accesses=3_000,
                                             rank_counts=(8, 2)),
    summary="trace-driven rank-count sensitivity (Figure 2 cross-check)"))

register(ExperimentSpec(
    name="selfrefresh",
    config_type=SelfRefreshSimConfig,
    factory=SelfRefreshSimulator,
    tiny_config=lambda: SelfRefreshSimConfig(
        workloads=TRACED_BENCHMARKS[:3], duration_s=2.0),
    summary="hotness-aware self-refresh replay (Figure 14)"))

register(ExperimentSpec(
    name="ramzzz_comparison",
    config_type=SelfRefreshSimConfig,
    factory=PolicyComparisonExperiment,
    tiny_config=lambda: SelfRefreshSimConfig(
        workloads=TRACED_BENCHMARKS[:3], duration_s=1.0),
    summary="DTL self-refresh vs the RAMZzz epoch baseline"))

register(ExperimentSpec(
    name="tournament",
    config_type=TournamentConfig,
    factory=PolicyTournament,
    tiny_config=quick_tournament_config,
    summary="policy x workload Pareto tournament (savings vs overhead)"))

register(ExperimentSpec(
    name="chaos",
    config_type=ChaosSoakConfig,
    factory=ChaosSoakExperiment,
    tiny_config=lambda: ChaosSoakConfig(levels=2, batches_per_phase=4,
                                        batch_size=32),
    summary="escalating fault-injection soak with consistency audits"))

register(ExperimentSpec(
    name="server-soak",
    config_type=ServerSoakConfig,
    factory=ServerSoakExperiment,
    tiny_config=quick_server_soak_config,
    summary="multi-tenant service soak: chaos, drain/restore, isolation"))


__all__ = [
    "ExperimentSpec",
    "EXPERIMENTS",
    "register",
    "get_spec",
    "make_experiment",
    "run_experiment",
    "experiment_task",
    "run_experiments",
]
