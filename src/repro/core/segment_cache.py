"""Two-level segment mapping cache (SMC).

The DTL fronts its translation tables with a TLB-like cache hierarchy
(Section 3.2, Table 3):

* **L1 SMC** — 64-entry fully-associative, LRU.
* **L2 SMC** — 1024-entry 4-way set-associative, LRU.

Both map an HSN to its DSN.  A hit in L1 costs one controller cycle; an L1
miss that hits in L2 costs seven cycles; a full miss walks the three-level
table path (two SRAM accesses plus one DRAM access, Section 6.1).

The hierarchy is **inclusive**: every L1 entry is also present in L2, so
a single L2 invalidation (plus the back-invalidate it triggers) is enough
to purge a stale mapping.  :meth:`SegmentMappingCache.fill` enforces this
by back-invalidating L1 whenever an entry is evicted from L2.

Layouts: the default cache classes use a **structure-of-arrays** layout —
preallocated tag/DSN/stamp arrays addressed by pure index arithmetic (the
gem5 cache-model idiom), with a small hash index for O(1) scalar probes.
LRU order is a monotonic stamp per entry instead of dict ordering, which
is what lets the batch datapath classify a whole chunk of lookups against
the arrays and commit the resulting LRU state in bulk.  The previous
OrderedDict-backed classes survive as ``Dict*`` variants selected with
``SegmentCacheConfig(layout="dict")`` so the two implementations can be
differential-tested against each other.

Counters live in a :class:`~repro.telemetry.MetricsRegistry`;
:class:`CacheStats` is a thin view over those registry counters so legacy
callers keep reading ``cache.stats.hits`` unchanged.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.telemetry import EventKind, EventTrace, MetricsRegistry

CONTROLLER_CLOCK_GHZ = 1.5
L1_SMC_HIT_CYCLES = 1
L2_SMC_HIT_CYCLES = 7


def cycles_to_ns(cycles: float, clock_ghz: float = CONTROLLER_CLOCK_GHZ) -> float:
    """Convert controller cycles to nanoseconds."""
    return cycles / clock_ghz


class CacheStats:
    """Hit/miss counters for one cache level.

    A thin view over registry-backed counters: constructing one without a
    registry gives it a private registry, so standalone use keeps working,
    while the controller passes its shared registry + a name prefix and the
    same numbers become visible in the telemetry snapshot.
    """

    def __init__(self, hits: int = 0, misses: int = 0,
                 invalidations: int = 0,
                 registry: MetricsRegistry | None = None,
                 prefix: str = "cache"):
        registry = registry if registry is not None else MetricsRegistry()
        self._hits = registry.counter(f"{prefix}.hits")
        self._misses = registry.counter(f"{prefix}.misses")
        self._invalidations = registry.counter(f"{prefix}.invalidations")
        if hits:
            self._hits.inc(hits)
        if misses:
            self._misses.inc(misses)
        if invalidations:
            self._invalidations.inc(invalidations)

    @property
    def hits(self) -> int:
        """Lookups served by this level."""
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.set(value)

    @property
    def misses(self) -> int:
        """Lookups this level could not serve."""
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.set(value)

    @property
    def invalidations(self) -> int:
        """Entries dropped by invalidate calls."""
        return self._invalidations.value

    @invalidations.setter
    def invalidations(self, value: int) -> None:
        self._invalidations.set(value)

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits / accesses (0.0 when never accessed)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        """Misses / accesses (0.0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"invalidations={self.invalidations})")


class FullyAssociativeCache:
    """Fully-associative LRU cache of HSN -> DSN mappings (SoA layout).

    Tags, DSNs, and LRU stamps live in preallocated int64 arrays indexed
    by slot; a dict maps HSN -> slot for O(1) scalar probes.  A strictly
    monotonic clock stamps every LRU touch, so "LRU order" is simply
    ascending stamp order — the property the batch datapath exploits to
    commit a whole chunk's recency updates with one pass.
    """

    #: Tag value marking an empty slot (HSNs are non-negative).
    EMPTY = -1

    def __init__(self, entries: int, stats: CacheStats | None = None):
        if entries <= 0:
            raise ConfigurationError("cache must have at least one entry")
        self.entries = entries
        self._tags = np.full(entries, self.EMPTY, dtype=np.int64)
        self._dsns = np.zeros(entries, dtype=np.int64)
        self._stamps = np.zeros(entries, dtype=np.int64)
        self._slot_of: dict[int, int] = {}
        self._free = list(range(entries - 1, -1, -1))
        self._clock = 0
        self.stats = stats if stats is not None else CacheStats()

    def lookup(self, hsn: int) -> int | None:
        """Return the cached DSN for ``hsn`` or ``None`` on a miss."""
        slot = self._slot_of.get(hsn)
        if slot is None:
            self.stats.misses += 1
            return None
        self._clock += 1
        self._stamps[slot] = self._clock
        self.stats.hits += 1
        return int(self._dsns[slot])

    def insert(self, hsn: int, dsn: int) -> tuple[int, int] | None:
        """Insert a mapping; returns the evicted ``(hsn, dsn)`` if any."""
        slot = self._slot_of.get(hsn)
        evicted = None
        if slot is None:
            if self._free:
                slot = self._free.pop()
            else:
                slot = int(np.argmin(self._stamps))
                old = int(self._tags[slot])
                evicted = (old, int(self._dsns[slot]))
                del self._slot_of[old]
            self._tags[slot] = hsn
            self._slot_of[hsn] = slot
        self._dsns[slot] = dsn
        self._clock += 1
        self._stamps[slot] = self._clock
        return evicted

    def invalidate(self, hsn: int) -> bool:
        """Drop the mapping for ``hsn``; returns True if it was present."""
        slot = self._slot_of.pop(hsn, None)
        if slot is None:
            return False
        self._tags[slot] = self.EMPTY
        self._free.append(slot)
        self.stats.invalidations += 1
        return True

    def touch(self, hsn: int) -> bool:
        """Refresh ``hsn``'s LRU position without touching the stats.

        Used by the replay batch datapath to reapply the LRU effect of
        repeat hits whose counting was done in bulk.
        """
        slot = self._slot_of.get(hsn)
        if slot is None:
            return False
        self._clock += 1
        self._stamps[slot] = self._clock
        return True

    def hsns(self) -> list[int]:
        """HSNs currently cached (LRU first)."""
        if not self._slot_of:
            return []
        slots = np.fromiter(self._slot_of.values(), dtype=np.int64,
                            count=len(self._slot_of))
        order = np.argsort(self._stamps[slots], kind="stable")
        return [int(tag) for tag in self._tags[slots[order]]]

    def items(self) -> list[tuple[int, int]]:
        """``(hsn, dsn)`` pairs currently cached (arbitrary order)."""
        return [(hsn, int(self._dsns[slot]))
                for hsn, slot in self._slot_of.items()]

    def __contains__(self, hsn: int) -> bool:
        return hsn in self._slot_of

    def __len__(self) -> int:
        return len(self._slot_of)

    def state_dict(self) -> dict:
        """Arrays, slot index, free list, and LRU clock as plain data."""
        return {"tags": self._tags.copy(), "dsns": self._dsns.copy(),
                "stamps": self._stamps.copy(),
                "slot_of": dict(self._slot_of), "free": list(self._free),
                "clock": self._clock}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (same entry count required)."""
        if len(state["tags"]) != self.entries:
            raise ValueError("L1 SMC entry-count mismatch")
        self._tags[:] = state["tags"]
        self._dsns[:] = state["dsns"]
        self._stamps[:] = state["stamps"]
        self._slot_of = dict(state["slot_of"])
        self._free = list(state["free"])
        self._clock = state["clock"]


class SetAssociativeCache:
    """Set-associative LRU cache of HSN -> DSN mappings (SoA layout).

    ``(sets, ways)``-shaped tag/DSN/stamp arrays; the set index is
    ``hsn % sets`` and a dict maps HSN -> way for O(1) scalar probes.
    LRU within a set is ascending stamp order, shared with the L1 class's
    convention so the batch datapath treats both uniformly.
    """

    EMPTY = -1

    def __init__(self, entries: int, ways: int,
                 stats: CacheStats | None = None):
        if entries <= 0 or ways <= 0:
            raise ConfigurationError("entries and ways must be positive")
        if entries % ways:
            raise ConfigurationError(
                f"entries ({entries}) must be a multiple of ways ({ways})")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self._tags = np.full((self.sets, ways), self.EMPTY, dtype=np.int64)
        self._dsns = np.zeros((self.sets, ways), dtype=np.int64)
        self._stamps = np.zeros((self.sets, ways), dtype=np.int64)
        self._way_of: dict[int, int] = {}
        self._sizes = np.zeros(self.sets, dtype=np.int64)
        self._clock = 0
        self.stats = stats if stats is not None else CacheStats()

    def lookup(self, hsn: int) -> int | None:
        """Return the cached DSN for ``hsn`` or ``None`` on a miss."""
        way = self._way_of.get(hsn)
        if way is None:
            self.stats.misses += 1
            return None
        set_index = hsn % self.sets
        self._clock += 1
        self._stamps[set_index, way] = self._clock
        self.stats.hits += 1
        return int(self._dsns[set_index, way])

    def insert(self, hsn: int, dsn: int) -> tuple[int, int] | None:
        """Insert a mapping; returns the evicted ``(hsn, dsn)`` if any."""
        set_index = hsn % self.sets
        way = self._way_of.get(hsn)
        evicted = None
        if way is None:
            if self._sizes[set_index] >= self.ways:
                way = int(np.argmin(self._stamps[set_index]))
                old = int(self._tags[set_index, way])
                evicted = (old, int(self._dsns[set_index, way]))
                del self._way_of[old]
            else:
                way = int(np.argmax(self._tags[set_index] == self.EMPTY))
                self._sizes[set_index] += 1
            self._tags[set_index, way] = hsn
            self._way_of[hsn] = way
        self._dsns[set_index, way] = dsn
        self._clock += 1
        self._stamps[set_index, way] = self._clock
        return evicted

    def invalidate(self, hsn: int) -> bool:
        """Drop the mapping for ``hsn``; returns True if it was present."""
        way = self._way_of.pop(hsn, None)
        if way is None:
            return False
        set_index = hsn % self.sets
        self._tags[set_index, way] = self.EMPTY
        self._sizes[set_index] -= 1
        self.stats.invalidations += 1
        return True

    def hsns(self) -> list[int]:
        """HSNs currently cached (set by set, LRU first within a set)."""
        result: list[int] = []
        for set_index in np.nonzero(self._sizes)[0]:
            row = self._tags[set_index]
            valid = np.nonzero(row != self.EMPTY)[0]
            order = np.argsort(self._stamps[set_index][valid], kind="stable")
            result.extend(int(tag) for tag in row[valid[order]])
        return result

    def items(self) -> list[tuple[int, int]]:
        """``(hsn, dsn)`` pairs currently cached (arbitrary order)."""
        return [(hsn, int(self._dsns[hsn % self.sets, way]))
                for hsn, way in self._way_of.items()]

    def __contains__(self, hsn: int) -> bool:
        return hsn in self._way_of

    def __len__(self) -> int:
        return len(self._way_of)

    def state_dict(self) -> dict:
        """Arrays, way index, set sizes, and LRU clock as plain data."""
        return {"tags": self._tags.copy(), "dsns": self._dsns.copy(),
                "stamps": self._stamps.copy(),
                "way_of": dict(self._way_of), "sizes": self._sizes.copy(),
                "clock": self._clock}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (same geometry required)."""
        if state["tags"].shape != self._tags.shape:
            raise ValueError("L2 SMC geometry mismatch")
        self._tags[:] = state["tags"]
        self._dsns[:] = state["dsns"]
        self._stamps[:] = state["stamps"]
        self._way_of = dict(state["way_of"])
        self._sizes[:] = state["sizes"]
        self._clock = state["clock"]


class DictFullyAssociativeCache:
    """OrderedDict-backed fully-associative LRU cache (legacy layout).

    Kept as the reference implementation for differential tests against
    :class:`FullyAssociativeCache`; selected with
    ``SegmentCacheConfig(layout="dict")``.
    """

    def __init__(self, entries: int, stats: CacheStats | None = None):
        if entries <= 0:
            raise ConfigurationError("cache must have at least one entry")
        self.entries = entries
        self._data: OrderedDict[int, int] = OrderedDict()
        self.stats = stats if stats is not None else CacheStats()

    def lookup(self, hsn: int) -> int | None:
        """Return the cached DSN for ``hsn`` or ``None`` on a miss."""
        if hsn in self._data:
            self._data.move_to_end(hsn)
            self.stats.hits += 1
            return self._data[hsn]
        self.stats.misses += 1
        return None

    def insert(self, hsn: int, dsn: int) -> tuple[int, int] | None:
        """Insert a mapping; returns the evicted ``(hsn, dsn)`` if any."""
        evicted = None
        if hsn not in self._data and len(self._data) >= self.entries:
            evicted = self._data.popitem(last=False)
        self._data[hsn] = dsn
        self._data.move_to_end(hsn)
        return evicted

    def invalidate(self, hsn: int) -> bool:
        """Drop the mapping for ``hsn``; returns True if it was present."""
        if hsn in self._data:
            del self._data[hsn]
            self.stats.invalidations += 1
            return True
        return False

    def touch(self, hsn: int) -> bool:
        """Refresh ``hsn``'s LRU position without touching the stats."""
        if hsn in self._data:
            self._data.move_to_end(hsn)
            return True
        return False

    def hsns(self) -> list[int]:
        """HSNs currently cached (LRU first)."""
        return list(self._data)

    def items(self) -> list[tuple[int, int]]:
        """``(hsn, dsn)`` pairs currently cached."""
        return list(self._data.items())

    def __contains__(self, hsn: int) -> bool:
        return hsn in self._data

    def __len__(self) -> int:
        return len(self._data)

    def state_dict(self) -> dict:
        """Cached pairs in LRU order (OrderedDict order *is* the state)."""
        return {"data": list(self._data.items())}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        self._data = OrderedDict(state["data"])


class DictSetAssociativeCache:
    """OrderedDict-backed set-associative LRU cache (legacy layout)."""

    def __init__(self, entries: int, ways: int,
                 stats: CacheStats | None = None):
        if entries <= 0 or ways <= 0:
            raise ConfigurationError("entries and ways must be positive")
        if entries % ways:
            raise ConfigurationError(
                f"entries ({entries}) must be a multiple of ways ({ways})")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(self.sets)]
        self.stats = stats if stats is not None else CacheStats()

    def _set_for(self, hsn: int) -> OrderedDict[int, int]:
        return self._sets[hsn % self.sets]

    def lookup(self, hsn: int) -> int | None:
        """Return the cached DSN for ``hsn`` or ``None`` on a miss."""
        cache_set = self._set_for(hsn)
        if hsn in cache_set:
            cache_set.move_to_end(hsn)
            self.stats.hits += 1
            return cache_set[hsn]
        self.stats.misses += 1
        return None

    def insert(self, hsn: int, dsn: int) -> tuple[int, int] | None:
        """Insert a mapping; returns the evicted ``(hsn, dsn)`` if any."""
        cache_set = self._set_for(hsn)
        evicted = None
        if hsn not in cache_set and len(cache_set) >= self.ways:
            evicted = cache_set.popitem(last=False)
        cache_set[hsn] = dsn
        cache_set.move_to_end(hsn)
        return evicted

    def invalidate(self, hsn: int) -> bool:
        """Drop the mapping for ``hsn``; returns True if it was present."""
        cache_set = self._set_for(hsn)
        if hsn in cache_set:
            del cache_set[hsn]
            self.stats.invalidations += 1
            return True
        return False

    def hsns(self) -> list[int]:
        """HSNs currently cached (set by set, LRU first within a set)."""
        return [hsn for cache_set in self._sets for hsn in cache_set]

    def items(self) -> list[tuple[int, int]]:
        """``(hsn, dsn)`` pairs currently cached."""
        return [pair for cache_set in self._sets
                for pair in cache_set.items()]

    def __contains__(self, hsn: int) -> bool:
        return hsn in self._set_for(hsn)

    def __len__(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    def state_dict(self) -> dict:
        """Per-set cached pairs in LRU order."""
        return {"sets": [list(cache_set.items())
                         for cache_set in self._sets]}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (same set count required)."""
        if len(state["sets"]) != self.sets:
            raise ValueError("L2 SMC set-count mismatch")
        self._sets = [OrderedDict(items) for items in state["sets"]]


@dataclass(frozen=True)
class SegmentCacheConfig:
    """SMC sizing (Table 3 defaults).

    ``layout`` selects the cache implementation: ``"soa"`` (default) uses
    the structure-of-arrays classes with the fully vectorised batch
    datapath; ``"dict"`` uses the legacy OrderedDict classes with the
    chunked per-distinct replay, kept for differential testing.
    """

    l1_entries: int = 64
    l2_entries: int = 1024
    l2_ways: int = 4
    clock_ghz: float = CONTROLLER_CLOCK_GHZ
    l1_hit_cycles: int = L1_SMC_HIT_CYCLES
    l2_hit_cycles: int = L2_SMC_HIT_CYCLES
    layout: str = "soa"

    @property
    def l1_hit_ns(self) -> float:
        """L1 SMC hit latency in nanoseconds."""
        return cycles_to_ns(self.l1_hit_cycles, self.clock_ghz)

    @property
    def l2_hit_ns(self) -> float:
        """L2 SMC hit latency in nanoseconds."""
        return cycles_to_ns(self.l2_hit_cycles, self.clock_ghz)

    @property
    def miss_probe_ns(self) -> float:
        """Cache-side cost of a full miss: both levels probed, no hit.

        The table-walk penalty (2 SRAM + 1 DRAM access) is charged
        separately by the translation engine; keeping the probe cost here
        and the walk cost there is what prevents double counting.
        """
        return self.l1_hit_ns + self.l2_hit_ns


@dataclass
class LookupResult:
    """Outcome of one SMC lookup."""

    dsn: int | None
    l1_hit: bool
    l2_hit: bool

    @property
    def full_miss(self) -> bool:
        """True when neither level held the mapping."""
        return not (self.l1_hit or self.l2_hit)


class _SetState:
    """Per-L2-set fill state for one batch chunk (SoA datapath).

    Built lazily, only for sets that actually take a fill — promotion
    traffic never touches numpy per set.  Construction snapshots the
    set's LRU ``pool`` and free-way list from the start-of-chunk arrays
    (they are not mutated until commit, so a lazy build still observes
    chunk-entry state).  Victim scans skip tags the chunk has already
    promoted, filled, or evicted (the caller's ``consumed`` set): their
    stamps in the array are stale, and the scalar sequence would never
    pick them.
    """

    __slots__ = ("pool", "ptr", "free_ways")

    def __init__(self, l2: SetAssociativeCache, set_index: int):
        row = l2._tags[set_index].tolist()
        stamps = l2._stamps[set_index].tolist()
        dsns = l2._dsns[set_index].tolist()
        live = sorted((way for way in range(l2.ways) if row[way] != l2.EMPTY),
                      key=stamps.__getitem__)
        self.pool = [(row[way], dsns[way], way) for way in live]
        self.ptr = 0
        self.free_ways = [way for way in range(l2.ways)
                          if row[way] == l2.EMPTY]

    def next_victim(self, consumed: set[int]) -> tuple[int, int, int]:
        """Peek the next evictable initial entry (does not consume it)."""
        pool = self.pool
        ptr = self.ptr
        while True:
            if ptr >= len(pool):
                raise RuntimeError(
                    "SMC batch invariant violated: L2 set out of victims")
            entry = pool[ptr]
            if entry[0] in consumed:
                ptr += 1
                continue
            self.ptr = ptr
            return entry


class SegmentMappingCache:
    """The two-level SMC: inclusive L1 over L2, both LRU.

    Inclusion is enforced on the only path that can break it: when
    :meth:`fill` evicts an entry from L2, the same HSN is back-invalidated
    from L1, so no L1 entry ever outlives its L2 copy.
    """

    def __init__(self, config: SegmentCacheConfig | None = None,
                 registry: MetricsRegistry | None = None,
                 trace: EventTrace | None = None):
        self.config = config or SegmentCacheConfig()
        layout = getattr(self.config, "layout", "soa")
        if layout not in ("soa", "dict"):
            raise ConfigurationError(
                f"unknown cache layout {layout!r} (expected 'soa' or 'dict')")
        self.layout = layout
        registry = registry if registry is not None else MetricsRegistry()
        # A permanently-disabled trace (the telemetry fast path) is
        # dropped here so fill/invalidate skip the record call outright.
        self._trace = trace if trace is not None and trace.enabled else None
        l1_stats = CacheStats(registry=registry, prefix="smc.l1")
        l2_stats = CacheStats(registry=registry, prefix="smc.l2")
        if layout == "soa":
            self.l1 = FullyAssociativeCache(self.config.l1_entries,
                                            stats=l1_stats)
            self.l2 = SetAssociativeCache(self.config.l2_entries,
                                          self.config.l2_ways,
                                          stats=l2_stats)
        else:
            self.l1 = DictFullyAssociativeCache(self.config.l1_entries,
                                                stats=l1_stats)
            self.l2 = DictSetAssociativeCache(self.config.l2_entries,
                                              self.config.l2_ways,
                                              stats=l2_stats)
        self._back_invalidations = registry.counter("smc.back_invalidations")

    @property
    def back_invalidations(self) -> int:
        """L1 entries purged because their L2 copy was evicted."""
        return self._back_invalidations.value

    def lookup(self, hsn: int) -> LookupResult:
        """Look up ``hsn`` in L1 then L2, promoting L2 hits into L1."""
        dsn = self.l1.lookup(hsn)
        if dsn is not None:
            return LookupResult(dsn=dsn, l1_hit=True, l2_hit=False)
        dsn = self.l2.lookup(hsn)
        if dsn is not None:
            # Promotion keeps inclusion: the entry is (still) in L2 here,
            # and any L1 eviction it causes only shrinks L1.
            self.l1.insert(hsn, dsn)
            return LookupResult(dsn=dsn, l1_hit=False, l2_hit=True)
        return LookupResult(dsn=None, l1_hit=False, l2_hit=False)

    def fill(self, hsn: int, dsn: int) -> None:
        """Install a mapping fetched from the tables into both levels."""
        evicted = self.l2.insert(hsn, dsn)
        if evicted is not None:
            # Back-invalidate: the L2 victim must not survive in L1, or a
            # later migration invalidating L2 would leave a stale L1 hit.
            if self.l1.invalidate(evicted[0]):
                self._back_invalidations.inc()
            if self._trace is not None:
                self._trace.record(EventKind.SMC_EVICT, hsn=evicted[0],
                                   dsn=evicted[1], level="l2")
        self.l1.insert(hsn, dsn)
        if self._trace is not None:
            self._trace.record(EventKind.SMC_FILL, hsn=hsn, dsn=dsn)

    def invalidate(self, hsn: int) -> bool:
        """Drop a mapping from both levels (used after migration)."""
        in_l1 = self.l1.invalidate(hsn)
        in_l2 = self.l2.invalidate(hsn)
        if (in_l1 or in_l2) and self._trace is not None:
            self._trace.record(EventKind.SMC_INVALIDATE, hsn=hsn)
        return in_l1 or in_l2

    # -- serialisation --------------------------------------------------------

    def state_dict(self) -> dict:
        """Both levels' contents and LRU state, as plain data.

        The hit/miss counters live in the registry and restore through
        :meth:`~repro.telemetry.MetricsRegistry.load_state_dict`.
        """
        return {"layout": self.layout,
                "l1": self.l1.state_dict(),
                "l2": self.l2.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (same layout required)."""
        if state["layout"] != self.layout:
            raise ValueError(
                f"SMC layout mismatch: checkpoint has {state['layout']!r}, "
                f"this cache is {self.layout!r}")
        self.l1.load_state_dict(state["l1"])
        self.l2.load_state_dict(state["l2"])

    # -- batch datapath -------------------------------------------------------

    def lookup_batch(self, hsns: np.ndarray,
                     resolve: Callable[[int], int],
                     resolve_batch: Callable[[np.ndarray], np.ndarray]
                     | None = None,
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resolve a whole HSN array with scalar-identical effects.

        Returns ``(dsns, l1_hits, l2_hits)`` arrays; hit/miss counters,
        LRU states, fills, evictions, and trace events end up identical
        to :meth:`lookup` + :meth:`fill` called per access in order
        (trace event identity holds for fills/evictions; see
        docs/PERF.md for the ordering contract).

        Full misses resolve through ``resolve_batch`` (one vectorised
        table walk per chunk) when given; ``resolve(hsn)`` serves the
        rare mid-chunk eviction of a pre-chunk resident.

        The SoA layout classifies each chunk against the tag arrays and
        simulates only the *insertion* events in order; the dict layout
        replays the scalar path per distinct HSN (see
        :meth:`_lookup_batch_replay`).
        """
        hsns = np.asarray(hsns, dtype=np.int64)
        if self.layout == "soa":
            return self._lookup_batch_soa(hsns, resolve, resolve_batch)
        return self._lookup_batch_replay(hsns, resolve, resolve_batch)

    # -- SoA batch datapath ---------------------------------------------------

    def _lookup_batch_soa(self, hsns: np.ndarray,
                          resolve: Callable[[int], int],
                          resolve_batch) -> tuple[np.ndarray, np.ndarray,
                                                  np.ndarray]:
        """Vectorised lookup over the SoA arrays.

        One stable sort of the whole batch yields, for every position,
        its previous occurrence and a dense distinct ID (uid); both
        cache levels are then probed **once per uid** for the whole
        batch, and the per-uid residency snapshot (``uid_in_l1``,
        ``uid_slot``, ``uid_in_l2``, ``uid_way``) is kept current
        incrementally as each chunk commits.  Chunks cut along the same
        three invariants as the replay planner (:meth:`_plan_chunk`
        documents them); within a chunk the DSN value, hit class, and
        final LRU stamp of every distinct are computed from the
        start-of-chunk state, and only *insertions* (L2 promotions and
        fills, the rare events) run through a small ordered event loop.
        That loop also absorbs the corner cases the replay path punted
        to scalar code: entries evicted from L1 or L2 by an earlier
        in-chunk insertion are reclassified on the fly (L2 hit, or full
        miss with a fresh table walk) exactly as the scalar sequence
        would have produced.
        """
        n = len(hsns)
        out_dsns = np.empty(n, dtype=np.int64)
        out_l1 = np.empty(n, dtype=bool)
        out_l2 = np.empty(n, dtype=bool)
        if not n:
            return out_dsns, out_l1, out_l2
        l1: FullyAssociativeCache = self.l1
        l2: SetAssociativeCache = self.l2
        order = np.argsort(hsns, kind="stable")
        sorted_hsns = hsns[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        if n > 1:
            new_group[1:] = sorted_hsns[1:] != sorted_hsns[:-1]
        uid = np.empty(n, dtype=np.int64)
        uid[order] = np.cumsum(new_group) - 1
        prev = np.full(n, -1, dtype=np.int64)
        if n > 1:
            repeat = ~new_group[1:]
            prev[order[1:][repeat]] = order[:-1][repeat]
        # One residency probe per distinct HSN for the entire batch;
        # chunk commits below keep the snapshot exact.
        unique_hsns = sorted_hsns[new_group]
        num_uids = len(unique_hsns)
        unique_list = unique_hsns.tolist()
        uid_map = {h: k for k, h in enumerate(unique_list)}
        uid_slot = np.fromiter(
            (l1._slot_of.get(h, -1) for h in unique_list),
            dtype=np.int64, count=num_uids)
        uid_in_l1 = uid_slot >= 0
        uid_set = unique_hsns % l2.sets
        eq = l2._tags[uid_set] == unique_hsns[:, None]
        uid_in_l2 = eq.any(axis=1)
        uid_way = np.argmax(eq, axis=1)
        # Scratch: uid -> chunk distinct index.  Only entries written by
        # the current chunk are ever read back.
        uid_to_d = np.empty(num_uids, dtype=np.int64)
        max_window = 4 * self.config.l2_entries
        arange = np.arange(min(n, max_window) + 1)
        ctx = (uid_map, uid_slot, uid_in_l1, uid_set, uid_in_l2, uid_way,
               arange)
        window = min(n, max_window)
        start = 0
        while start < n:
            end = self._soa_chunk(hsns, uid, prev, start,
                                  min(window, n - start), uid_to_d, ctx,
                                  out_dsns, out_l1, out_l2,
                                  resolve, resolve_batch)
            # Adapt the plan window to the workload so the plan scan
            # stays proportional to the chunk actually consumed.
            window = min(max_window, max(256, 4 * (end - start)))
            start = end
        return out_dsns, out_l1, out_l2

    def _soa_chunk(self, hsns, uid, prev, start, window, uid_to_d, ctx,
                   out_dsns, out_l1, out_l2, resolve, resolve_batch) -> int:
        l1: FullyAssociativeCache = self.l1
        l2: SetAssociativeCache = self.l2
        (uid_map, uid_slot, uid_in_l1, uid_set, uid_in_l2, uid_way,
         arange) = ctx
        slot_of = l1._slot_of
        # -- plan: distincts and invariant cuts -------------------------------
        first = prev[start:start + window] < start
        d_rel = np.flatnonzero(first)
        if len(d_rel) > l1.entries:
            # L1 capacity: the chunk ends where the (entries+1)-th
            # distinct would appear.
            window = int(d_rel[l1.entries])
            first = first[:window]
            d_rel = d_rel[:l1.entries]
        d_uid = uid[start + d_rel]
        num_d = len(d_uid)
        in_l1 = uid_in_l1[d_uid]
        l1_slots = uid_slot[d_uid]
        all_l1 = bool(in_l1.all())
        if not all_l1:
            d_hsns = hsns[start + d_rel]
            set_idx = uid_set[d_uid]
            in_l2 = uid_in_l2[d_uid]
            l2_way = uid_way[d_uid]
            not_l2 = ~in_l2
            cut_d = num_d
            if num_d > 1:
                # L2 associativity: > ways distincts in one set.  The
                # bincount screen skips the sort on clean chunks.
                counts = np.bincount(set_idx)
                if int(counts.max()) > l2.ways:
                    order_s = np.argsort(set_idx, kind="stable")
                    sorted_sets = set_idx[order_s]
                    rank_in_set = arange[:num_d] - np.searchsorted(
                        sorted_sets, sorted_sets, side="left")
                    over = rank_in_set >= l2.ways
                    cut_d = int(order_s[over].min())
                # Back-invalidation hazard: one set collecting both an
                # L1-resident distinct and a distinct absent from L2.
                # The isin screen (set overlap between the two kinds)
                # is a necessary condition for the ordered formula.
                l1_sets = set_idx[in_l1]
                if len(l1_sets):
                    miss_sets = set_idx[not_l2]
                    if len(miss_sets) and np.isin(miss_sets, l1_sets).any():
                        arange_d = arange[:num_d]
                        first_l1 = np.full(l2.sets, num_d, dtype=np.int64)
                        np.minimum.at(first_l1, l1_sets, arange_d[in_l1])
                        first_miss = np.full(l2.sets, num_d, dtype=np.int64)
                        np.minimum.at(first_miss, miss_sets,
                                      arange_d[not_l2])
                        hazard = (((first_l1[set_idx] < arange_d) & not_l2)
                                  | ((first_miss[set_idx] < arange_d)
                                     & in_l1))
                        if hazard.any():
                            cut_d = min(cut_d, int(np.argmax(hazard)))
            if cut_d < num_d:
                window = int(d_rel[cut_d])
                first = first[:window]
                num_d = cut_d
                d_rel = d_rel[:num_d]
                d_uid = d_uid[:num_d]
                d_hsns = d_hsns[:num_d]
                l1_slots = l1_slots[:num_d]
                in_l1 = in_l1[:num_d]
                set_idx = set_idx[:num_d]
                in_l2 = in_l2[:num_d]
                l2_way = l2_way[:num_d]
                not_l2 = not_l2[:num_d]
        # -- values and static classification ---------------------------------
        d_val = np.empty(num_d, dtype=np.int64)
        if in_l1.any():
            d_val[in_l1] = l1._dsns[l1_slots[in_l1]]
        if all_l1:
            d_l1 = in_l1
            d_l2 = np.zeros(num_d, dtype=bool)
            events: list[int] = []
        else:
            d_l1 = in_l1.copy()
            # Inclusion (L1 subset of L2) makes ~in_l2 exactly the full
            # misses and in_l2 & ~in_l1 the L2 hits.
            hit2 = in_l2 & ~in_l1
            if hit2.any():
                d_val[hit2] = l2._dsns[set_idx[hit2], l2_way[hit2]]
            d_l2 = hit2
            if not_l2.any():
                candidates = d_hsns[not_l2]
                if resolve_batch is not None:
                    d_val[not_l2] = resolve_batch(candidates)
                else:
                    d_val[not_l2] = np.fromiter(
                        (resolve(int(h)) for h in candidates),
                        dtype=np.int64, count=len(candidates))
            # flatnonzero yields ascending order: already a valid heap.
            events = np.flatnonzero(~in_l1).tolist()
        # -- event loop: insertions in first-occurrence order ------------------
        num_promote = num_fill = bi_count = 0
        removed_l1: list[tuple[int, int]] = []
        trace_ops: list[tuple[str, int, int]] | None = (
            [] if self._trace is not None else None)
        promo_idx: list[int] = []
        fill_idx: list[int] = []
        pushed: list[int] = []
        l2_removed: list[tuple[int, int, int]] = []
        l2_fills: list[tuple[int, int, int, int, int]] = []
        l2_promos: list[tuple[int, int, int]] = []
        dyn_cut = -1
        if events:
            d_hsns_list = d_hsns.tolist()
            set_list = set_idx.tolist()
            in_l1_list = in_l1.tolist()
            in_l2_list = in_l2.tolist()
            way_list = l2_way.tolist()
            rel_list = d_rel.tolist()
            chunk_pos = dict(zip(d_hsns_list, range(num_d)))
            cp_get = chunk_pos.get
            consumed: set[int] = set()
            l1_removed: set[int] = set()
            set_states: dict[int, _SetState] = {}
            free_l1 = len(l1._free)
            pool_tags: list[int] | None = None
            pool_slots: list[int] | None = None
            pool_ptr = 0
            heappop = heapq.heappop
            heappush = heapq.heappush
            while events:
                i = heappop(events)
                h = d_hsns_list[i]
                if in_l2_list[i] and h not in consumed:
                    # L2 hit (possibly a reclassified pre-turn L1
                    # eviction): promote into L1.
                    num_promote += 1
                    promo_idx.append(i)
                    s = set_list[i]
                    if in_l1_list[i]:
                        # Pushed event: take the value from the L2 copy
                        # (static hit2 distincts were gathered already).
                        d_val[i] = l2._dsns[s, way_list[i]]
                        pushed.append(i)
                    consumed.add(h)
                    l2_promos.append((s, way_list[i], rel_list[i]))
                else:
                    # Full miss: pick the fill slot first — evicting the
                    # L2 copy of a chunk distinct that already hit in L1
                    # (its L2 stamp is stale) would falsify the bulk
                    # repeat accounting, so the chunk ends before it.
                    s = set_list[i]
                    state = set_states.get(s)
                    if state is None:
                        state = _SetState(l2, s)
                        set_states[s] = state
                    victim = None
                    if state.free_ways:
                        way = state.free_ways.pop()
                    else:
                        victim = state.next_victim(consumed)
                        tag = victim[0]
                        j = cp_get(tag)
                        if (j is not None and j < i and tag in slot_of
                                and tag not in l1_removed):
                            dyn_cut = rel_list[i]
                            break
                        way = victim[2]
                    num_fill += 1
                    fill_idx.append(i)
                    if in_l1_list[i]:
                        pushed.append(i)
                    if in_l2_list[i]:
                        # Planned as an L2 hit but evicted pre-turn: the
                        # scalar sequence walks the tables here.
                        d_val[i] = resolve(h)
                    if victim is not None:
                        state.ptr += 1
                        tag, vdsn, _vway = victim
                        consumed.add(tag)
                        l2_removed.append((s, tag, _vway))
                        if trace_ops is not None:
                            trace_ops.append(("evict", tag, vdsn))
                        vslot = slot_of.get(tag)
                        if vslot is not None and tag not in l1_removed:
                            # Back-invalidation (scalar: l1.invalidate).
                            l1_removed.add(tag)
                            removed_l1.append((tag, vslot))
                            bi_count += 1
                            free_l1 += 1
                            j = cp_get(tag)
                            if j is not None:
                                # A later chunk distinct lost both its
                                # copies: replan it as a full miss.
                                heappush(events, j)
                    consumed.add(h)
                    l2_fills.append((s, h, int(d_val[i]), way, rel_list[i]))
                    if trace_ops is not None:
                        trace_ops.append(("fill", h, int(d_val[i])))
                # L1 insertion (promotions and fills alike).
                if free_l1 > 0:
                    free_l1 -= 1
                else:
                    if pool_tags is None:
                        occ = np.flatnonzero(l1._tags != l1.EMPTY)
                        lru = occ[np.argsort(l1._stamps[occ])]
                        pool_tags = l1._tags[lru].tolist()
                        pool_slots = lru.tolist()
                    while True:
                        if pool_ptr >= len(pool_tags):
                            raise RuntimeError(
                                "SMC batch invariant violated: L1 out of "
                                "victims")
                        tag = pool_tags[pool_ptr]
                        slot = pool_slots[pool_ptr]
                        pool_ptr += 1
                        if tag in l1_removed:
                            continue
                        j = cp_get(tag)
                        if j is not None and j < i:
                            continue  # touched this chunk: LRU-protected
                        break
                    l1_removed.add(tag)
                    removed_l1.append((tag, slot))
                    if j is not None:
                        # Pre-turn L1 eviction of a later chunk distinct:
                        # its lookup becomes an L2 hit (hazard invariant
                        # keeps its L2 copy safe from in-chunk fills).
                        heappush(events, j)
            if dyn_cut >= 0:
                window = dyn_cut
                first = first[:window]
                num_d = int(np.searchsorted(d_rel, window, side="left"))
                d_rel = d_rel[:num_d]
                d_uid = d_uid[:num_d]
                d_hsns = d_hsns[:num_d]
                d_l1 = d_l1[:num_d]
                d_l2 = d_l2[:num_d]
                d_val = d_val[:num_d]
                in_l1 = in_l1[:num_d]
                l1_slots = l1_slots[:num_d]
            if promo_idx:
                d_l1[promo_idx] = False
                d_l2[promo_idx] = True
            if fill_idx:
                d_l1[fill_idx] = False
                d_l2[fill_idx] = False
        # -- commit ------------------------------------------------------------
        end = start + window
        uid_to_d[d_uid] = arange[:num_d]
        d_of_pos = uid_to_d[uid[start:end]]
        out_dsns[start:end] = d_val[d_of_pos]
        out_l1[start:end] = np.where(first, d_l1[d_of_pos], True)
        out_l2[start:end] = np.where(first, d_l2[d_of_pos], False)
        num_events = num_promote + num_fill
        l1.stats.hits += window - num_events
        if num_events:
            l1.stats.misses += num_events
            l2.stats.hits += num_promote
            l2.stats.misses += num_fill
        if bi_count:
            l1.stats.invalidations += bi_count
            self._back_invalidations.inc(bi_count)
        # L1: remove, then insert and restamp with one scatter each.  The
        # scatter stamps every distinct at its last-occurrence position,
        # which is exactly the scalar end-of-chunk LRU order; slot choice
        # for new entries is free (slot identity is invisible to LRU).
        last_of_d = np.empty(num_d, dtype=np.int64)
        last_of_d[d_of_pos] = arange[:window]
        base = l1._clock
        l1._clock = base + window
        tags1, dsns1, stamps1 = l1._tags, l1._dsns, l1._stamps
        for tag, slot in removed_l1:
            del slot_of[tag]
            tags1[slot] = l1.EMPTY
            l1._free.append(slot)
            u = uid_map.get(tag)
            if u is not None:
                uid_in_l1[u] = False
        stamp_vals = base + 1 + last_of_d
        if num_events:
            need_new = ~in_l1
            if pushed:
                need_new[pushed] = True
            new_idx = np.flatnonzero(need_new)
            free = l1._free
            new_slots = np.asarray(free[-num_events:], dtype=np.int64)
            del free[-num_events:]
            tags1[new_slots] = d_hsns[new_idx]
            dsns1[new_slots] = d_val[new_idx]
            slots_all = np.empty(num_d, dtype=np.int64)
            slots_all[new_idx] = new_slots
            keep_idx = np.flatnonzero(~need_new)
            slots_all[keep_idx] = l1_slots[keep_idx]
            slot_of.update(zip(d_hsns[new_idx].tolist(), new_slots.tolist()))
            stamps1[slots_all] = stamp_vals
            uid_in_l1[d_uid] = True
            uid_slot[d_uid] = slots_all
        else:
            stamps1[l1_slots] = stamp_vals
        # L2: removals, then fills, then promotion restamps — scattered
        # per kind ((set, way) pairs never collide within a kind because
        # filled and promoted tags are chunk-touched, hence unevictable).
        if num_events:
            base2 = l2._clock
            l2._clock = base2 + window
            way_of = l2._way_of
            if l2_removed:
                r_set, r_tag, r_way = zip(*l2_removed)
                for tag in r_tag:
                    del way_of[tag]
                    u = uid_map.get(tag)
                    if u is not None:
                        uid_in_l2[u] = False
                l2._tags[r_set, r_way] = l2.EMPTY
                np.subtract.at(l2._sizes, list(r_set), 1)
            if l2_fills:
                f_set, f_tag, f_val, f_way, f_pos = zip(*l2_fills)
                way_of.update(zip(f_tag, f_way))
                l2._tags[f_set, f_way] = f_tag
                l2._dsns[f_set, f_way] = f_val
                l2._stamps[f_set, f_way] = np.asarray(f_pos) + (base2 + 1)
                np.add.at(l2._sizes, list(f_set), 1)
                fill_uids = d_uid[fill_idx]
                uid_in_l2[fill_uids] = True
                uid_way[fill_uids] = f_way
            if l2_promos:
                p_set, p_way, p_pos = zip(*l2_promos)
                l2._stamps[p_set, p_way] = np.asarray(p_pos) + (base2 + 1)
        if trace_ops:
            trace = self._trace
            for kind, hsn_v, dsn_v in trace_ops:
                if kind == "evict":
                    trace.record(EventKind.SMC_EVICT, hsn=hsn_v, dsn=dsn_v,
                                 level="l2")
                else:
                    trace.record(EventKind.SMC_FILL, hsn=hsn_v, dsn=dsn_v)
        return end

    # -- replay batch datapath (dict layout) ----------------------------------

    def _plan_chunk(self, hsns: np.ndarray, start: int, window: int,
                    ) -> tuple[int, np.ndarray, np.ndarray, np.ndarray,
                               list[int]]:
        """Greedy one-pass chunk plan upholding the replay invariants.

        Walks the window's distinct HSNs in first-occurrence order and
        cuts the chunk just before the first HSN that would break one of
        three invariants:

        * **L1 capacity** — at most ``l1_entries`` distinct HSNs, so no
          in-chunk entry, once touched, can be the L1 LRU victim;
        * **L2 associativity** — at most ``l2_ways`` distinct HSNs per
          L2 set, so touched in-chunk entries cannot be L2 victims;
        * **back-invalidation hazard** — an L1 hit refreshes L1 recency
          but *not* L2 recency, so a chunk HSN already resident in L1
          keeps its pre-chunk L2 age; a fill by another chunk HSN in
          the same L2 set could then evict it from L2 and
          back-invalidate it out of L1 mid-chunk, making a later repeat
          a full miss where the bulk accounting assumed an L1 hit.  The
          hazard needs, in one set, a chunk HSN resident in L1 plus a
          different chunk HSN absent from L2 (by inclusion never the
          same HSN), so a set may not collect both.

        Within such a chunk every repeat occurrence is an L1 hit and
        per-distinct replay in first-occurrence order reproduces the
        scalar cache state exactly.

        Returns ``(end, uniq, first_idx, inverse, miss_candidates)``
        with the unique data restricted to the chunk;
        ``miss_candidates`` are the distinct HSNs absent from both
        levels at plan time (their replay lookups will walk the
        tables).
        """
        segment = hsns[start:start + window]
        uniq, first_idx, inverse = np.unique(
            segment, return_index=True, return_inverse=True)
        sets = self.l2.sets
        per_set: dict[int, int] = {}
        l1_sets: set[int] = set()
        miss_sets: set[int] = set()
        miss_candidates: list[int] = []
        cut = window
        for position, k in enumerate(np.argsort(first_idx, kind="stable")):
            if position >= self.config.l1_entries:
                cut = int(first_idx[k])
                break
            hsn = int(uniq[k])
            set_index = hsn % sets
            count = per_set.get(set_index, 0) + 1
            in_l1 = hsn in self.l1
            not_in_l2 = hsn not in self.l2
            if (count > self.l2.ways
                    or ((in_l1 or set_index in l1_sets)
                        and (not_in_l2 or set_index in miss_sets))):
                cut = int(first_idx[k])
                break
            per_set[set_index] = count
            if in_l1:
                l1_sets.add(set_index)
            if not_in_l2:
                miss_sets.add(set_index)
                miss_candidates.append(hsn)
        if cut < window:
            keep = first_idx < cut
            remap = np.cumsum(keep) - 1
            inverse = remap[inverse[:cut]]
            uniq = uniq[keep]
            first_idx = first_idx[keep]
        return start + cut, uniq, first_idx, inverse, miss_candidates

    def _lookup_batch_replay(self, hsns: np.ndarray,
                             resolve: Callable[[int], int],
                             resolve_batch) -> tuple[np.ndarray, np.ndarray,
                                                     np.ndarray]:
        """Chunked per-distinct scalar replay (legacy dict layout).

        The batch is cut into chunks (see :meth:`_plan_chunk`); inside a
        chunk only the distinct HSNs go through the sequential
        lookup/fill path (``np.unique`` collapses repeats), repeats are
        accounted as L1 hits in bulk, and the final L1 LRU order is
        restored by re-touching distinct HSNs in last-occurrence order.
        """
        n = len(hsns)
        dsns = np.empty(n, dtype=np.int64)
        l1_hits = np.empty(n, dtype=bool)
        l2_hits = np.empty(n, dtype=bool)
        max_window = 4 * self.config.l2_entries
        window = min(n, max_window)
        start = 0
        while start < n:
            end, uniq, first_idx, inverse, candidates = self._plan_chunk(
                hsns, start, min(window, n - start))
            # Adapt the plan window to the workload: chunks bounded by
            # the invariants keep the np.unique cost proportional to the
            # chunk actually consumed; unbounded chunks grow it back.
            chunk_len = end - start
            window = min(max_window,
                         max(64, 4 * chunk_len))
            resolved: dict[int, int] = {}
            if resolve_batch is not None and candidates:
                walked = resolve_batch(
                    np.asarray(candidates, dtype=np.int64))
                resolved = dict(zip(candidates, (int(d) for d in walked)))
            d_dsn = np.empty(len(uniq), dtype=np.int64)
            d_l1 = np.empty(len(uniq), dtype=bool)
            d_l2 = np.empty(len(uniq), dtype=bool)
            for k in np.argsort(first_idx, kind="stable"):
                hsn = int(uniq[k])
                result = self.lookup(hsn)
                if result.dsn is None:
                    dsn = resolved.get(hsn)
                    if dsn is None:
                        dsn = resolve(hsn)
                    self.fill(hsn, dsn)
                else:
                    dsn = result.dsn
                d_dsn[k] = dsn
                d_l1[k] = result.l1_hit
                d_l2[k] = result.l2_hit
            repeats = chunk_len - len(uniq)
            if repeats:
                # Every repeat is an L1 hit (chunk invariant); their LRU
                # effect is replayed below, their counting lands here.
                self.l1.stats.hits += repeats
                last_idx = np.empty(len(uniq), dtype=np.int64)
                last_idx[inverse] = np.arange(chunk_len)
                for k in np.argsort(last_idx, kind="stable"):
                    self.l1.touch(int(uniq[k]))
            is_first = np.zeros(chunk_len, dtype=bool)
            is_first[first_idx] = True
            dsns[start:end] = d_dsn[inverse]
            l1_hits[start:end] = np.where(is_first, d_l1[inverse], True)
            l2_hits[start:end] = np.where(is_first, d_l2[inverse], False)
            start = end
        return dsns, l1_hits, l2_hits

    def latency_ns_batch(self, l1_hits: np.ndarray,
                         l2_hits: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`hit_latency_ns` over hit-class arrays."""
        config = self.config
        return np.where(
            l1_hits, config.l1_hit_ns,
            np.where(l2_hits, config.l1_hit_ns + config.l2_hit_ns,
                     config.miss_probe_ns))

    def hit_latency_ns(self, result: LookupResult) -> float:
        """Latency contribution of the cache portion of a lookup."""
        if result.l1_hit:
            return self.config.l1_hit_ns
        if result.l2_hit:
            return self.config.l1_hit_ns + self.config.l2_hit_ns
        # Full miss: both levels were probed and neither hit; the table
        # walk itself is charged by TranslationEngine.miss_penalty_ns.
        return self.config.miss_probe_ns

    def check_inclusion(self) -> list[int]:
        """HSNs present in L1 but missing from L2 (empty when inclusive)."""
        l2_hsns = set(self.l2.hsns())
        return [hsn for hsn in self.l1.hsns() if hsn not in l2_hsns]


__all__ = [
    "CONTROLLER_CLOCK_GHZ",
    "L1_SMC_HIT_CYCLES",
    "L2_SMC_HIT_CYCLES",
    "cycles_to_ns",
    "CacheStats",
    "FullyAssociativeCache",
    "SetAssociativeCache",
    "DictFullyAssociativeCache",
    "DictSetAssociativeCache",
    "SegmentCacheConfig",
    "LookupResult",
    "SegmentMappingCache",
]
