"""Tests for the CXL link and device wrapper."""

import pytest

from repro.core.config import DtlConfig
from repro.cxl import CxlLinkConfig, CxlMemoryDevice
from repro.dram import DramGeometry, PowerState
from repro.dram.timing import CXL_MEMORY_LATENCY_NS, NATIVE_DRAM_LATENCY_NS
from repro.units import GIB, MIB


@pytest.fixture
def device():
    return CxlMemoryDevice(config=DtlConfig(
        geometry=DramGeometry(rank_bytes=256 * MIB), au_bytes=64 * MIB))


class TestLink:
    def test_default_end_to_end_matches_table1(self):
        link = CxlLinkConfig()
        assert link.end_to_end_latency_ns == pytest.approx(
            CXL_MEMORY_LATENCY_NS)

    def test_access_latency_composition(self):
        link = CxlLinkConfig()
        assert link.access_latency_ns() == pytest.approx(
            CXL_MEMORY_LATENCY_NS)

    def test_larger_payloads_take_longer(self):
        link = CxlLinkConfig()
        assert link.access_latency_ns(payload_bytes=4096) > \
            link.access_latency_ns(payload_bytes=64)

    def test_custom_base_latency(self):
        link = CxlLinkConfig(base_latency_ns=50.0)
        assert link.end_to_end_latency_ns == pytest.approx(
            50.0 + NATIVE_DRAM_LATENCY_NS)


class TestDevice:
    def test_allocate_and_load(self, device):
        vm = device.allocate_vm(0, 128 * MIB)
        hpa = device.controller.hpa_of(vm.au_ids[0], 0)
        result = device.load(0, hpa)
        assert result.latency_ns >= CXL_MEMORY_LATENCY_NS

    def test_store_goes_through_migration_check(self, device):
        vm = device.allocate_vm(0, 64 * MIB)
        hpa = device.controller.hpa_of(vm.au_ids[0], 1)
        result = device.store(0, hpa)
        assert not result.routed_to_new_dsn

    def test_deallocate_powers_down(self, device):
        vm = device.allocate_vm(0, 64 * MIB)
        device.deallocate_vm(vm)
        summary = device.power_summary()
        assert summary["ranks_mpsm"] > 0

    def test_power_summary_keys(self, device):
        summary = device.power_summary()
        assert set(summary) == {
            "background_power_rsu",
            f"ranks_{PowerState.STANDBY.value}",
            f"ranks_{PowerState.SELF_REFRESH.value}",
            f"ranks_{PowerState.MPSM.value}",
        }
