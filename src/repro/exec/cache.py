"""On-disk (and in-memory) cache of experiment results.

Results are keyed by :func:`repro.exec.hashing.task_key` — a stable hash
of the experiment name plus its whole config dataclass — so a cache hit
is only possible for a bit-identical configuration.  Entries are pickled
result objects; a corrupt or unreadable entry degrades to a miss, never
an error.

The default directory comes from ``REPRO_EXEC_CACHE_DIR``; when unset
the cache is memory-only (it still deduplicates work within one
process, e.g. across the ``repro all`` subcommands).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

_MISS = object()

#: Environment variable naming the on-disk cache directory.
CACHE_DIR_ENV = "REPRO_EXEC_CACHE_DIR"


class ResultCache:
    """Two-level result store: a dict in front of an optional directory."""

    def __init__(self, directory: str | Path | None = None):
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV) or None
        self.directory = Path(directory) if directory is not None else None
        self._memory: dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, Any]:
        """Look up ``key``; returns ``(hit, value)``."""
        if key in self._memory:
            self.hits += 1
            return True, self._memory[key]
        if self.directory is not None:
            path = self._path(key)
            try:
                with path.open("rb") as handle:
                    value = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError):
                pass  # missing or corrupt entry -> miss
            else:
                self._memory[key] = value
                self.hits += 1
                return True, value
        self.misses += 1
        return False, None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (memory, then disk if enabled)."""
        self._memory[key] = value
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so readers never see a partial pickle.
        fd, temp_name = tempfile.mkstemp(dir=self.directory,
                                         suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, self._path(key))
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass

    def clear(self) -> None:
        """Drop every entry (memory and disk)."""
        self._memory.clear()
        if self.directory is not None and self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        known = set(self._memory)
        if self.directory is not None and self.directory.is_dir():
            known.update(path.stem for path in self.directory.glob("*.pkl"))
        return len(known)


__all__ = ["ResultCache", "CACHE_DIR_ENV"]
