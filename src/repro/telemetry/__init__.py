"""Telemetry: the DTL's metrics + event-tracing subsystem.

* :class:`MetricsRegistry` — named counters, gauges, and fixed-bucket
  latency histograms shared by every DTL subsystem.
* :class:`EventTrace` — a bounded ring buffer of typed datapath events
  (:class:`EventKind`).
* :class:`Snapshot` — a JSON-ready export of everything at once.

The controller owns one registry and one trace and hands them to each
subsystem; see ``docs/TELEMETRY.md`` for the metric names and the
snapshot schema.
"""

from repro.telemetry.events import (DEFAULT_TRACE_CAPACITY, EventKind,
                                    EventTrace, NullEventTrace, TraceEvent)
from repro.telemetry.registry import (DEFAULT_LATENCY_BUCKETS_NS, Counter,
                                      Gauge, Histogram, MetricsRegistry,
                                      NullMetricsRegistry, Snapshot)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_NS",
    "DEFAULT_TRACE_CAPACITY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Snapshot",
    "EventKind",
    "TraceEvent",
    "EventTrace",
    "NullEventTrace",
]
