"""Putting it all together: total savings from both mechanisms (Figure 15).

Figure 15 reports, per allocated-capacity point, the total DRAM energy
saving over the all-8-ranks baseline when rank-level power-down and
hotness-aware self-refresh are applied together:

* power-down alone parks the unused rank-groups in MPSM (the paper's
  20.2 % for one powered-down rank-group);
* where each channel's unallocated memory reaches half a rank-pair, the
  self-refresh mechanism adds its stable-phase savings on top
  (25.6-32.3 % combined);
* the 8-rank configuration cannot power down at all, so only self-refresh
  contributes (14.9 % at 304 GB).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.power import DramPowerModel, PowerState
from repro.sim.selfrefresh_sim import (SelfRefreshResult, SelfRefreshSimulator,
                                       config_for_point)


@dataclass
class CombinedSavings:
    """Energy-saving decomposition for one capacity point."""

    point: str
    active_ranks_per_channel: int
    powerdown_savings: float
    selfrefresh_additional: float
    total_savings: float
    sr_result: SelfRefreshResult

    def row(self) -> str:
        """One formatted Figure 15 row."""
        return (f"{self.point:>7s}  active={self.active_ranks_per_channel}/ch  "
                f"power-down={100 * self.powerdown_savings:5.1f}%  "
                f"+self-refresh={100 * self.selfrefresh_additional:5.1f}%  "
                f"total={100 * self.total_savings:5.1f}%")


def _mean_power(result: SelfRefreshResult) -> float:
    """Mean total power over the stable (trailing-third) phase."""
    steps = result.steps
    tail = max(1, len(steps) // 3)
    return sum(step.total_power for step in steps[-tail:]) / tail


def combined_savings(point: str, seed: int = 0,
                     duration_s: float = 60.0,
                     run=None) -> CombinedSavings:
    """Run the SR simulation for ``point`` and fold in power-down savings.

    The 8-rank baseline has every rank in standby; the power-down
    configuration parks the idle rank-groups in MPSM; the combined
    configuration additionally holds the SR simulation's stable-phase rank
    states.

    ``run`` (optional) overrides how the SR simulation executes — a
    callable taking the :class:`SelfRefreshSimConfig` and returning a
    :class:`SelfRefreshResult`.  The CLI passes a cache-backed runner so
    ``repro all`` computes each capacity point once across fig14/fig15.
    """
    config = config_for_point(point, seed=seed, duration_s=duration_s)
    if run is None:
        result = SelfRefreshSimulator(config).run()
    else:
        result = run(config)
    geometry = config.geometry
    power_model = DramPowerModel(geometry=geometry)
    active = result.active_ranks_per_channel
    idle = geometry.ranks_per_channel - active
    bandwidth_power = power_model.active_power(
        config.aggregate_bandwidth_gbs)

    baseline_8rank = power_model.background_power(
        {PowerState.STANDBY: geometry.total_ranks}) + bandwidth_power
    counts_powerdown = {
        PowerState.STANDBY: active * geometry.channels,
        PowerState.MPSM: idle * geometry.channels,
    }
    powerdown_power = power_model.background_power(
        counts_powerdown) + bandwidth_power
    combined_power = _mean_power(result)

    powerdown_savings = 1.0 - powerdown_power / baseline_8rank
    total_savings = 1.0 - combined_power / baseline_8rank
    return CombinedSavings(
        point=point,
        active_ranks_per_channel=active,
        powerdown_savings=powerdown_savings,
        selfrefresh_additional=max(0.0, total_savings - powerdown_savings),
        total_savings=total_savings,
        sr_result=result)


def figure15_summary(points: tuple[str, ...] = ("208gb", "224gb", "240gb",
                                                "304gb"),
                     seed: int = 0,
                     duration_s: float = 60.0,
                     run=None) -> list[CombinedSavings]:
    """Compute the full Figure 15 table (``run`` as in
    :func:`combined_savings`)."""
    return [combined_savings(point, seed=seed, duration_s=duration_s,
                             run=run)
            for point in points]


__all__ = ["CombinedSavings", "combined_savings", "figure15_summary"]
