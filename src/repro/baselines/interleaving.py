"""Conventional DRAM address mapping baselines.

The paper's baseline server interleaves channel, rank, and bank bits at a
fine (cacheline/page) granularity to maximise parallelism — which is
exactly what prevents rank-level power management (Section 2).  This
module provides that mapping so experiments and tests can contrast it
with the DTL's segment-interleaved layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.addressing import SegmentLocation
from repro.dram.geometry import DramGeometry
from repro.errors import AddressError
from repro.units import CACHELINE_BYTES, log2_int


@dataclass(frozen=True)
class InterleavedMapping:
    """Fine-grained channel+rank interleaved physical address mapping.

    Bits from the LSB: ``line offset | channel | rank | remainder``, i.e.
    consecutive cachelines rotate over channels and then ranks, spreading
    any contiguous region across every rank in the system.

    Attributes:
        geometry: Device structure.
        interleave_bytes: Rotation granularity (one cacheline by default).
    """

    geometry: DramGeometry
    interleave_bytes: int = CACHELINE_BYTES

    @property
    def _offset_bits(self) -> int:
        return log2_int(self.interleave_bytes)

    def locate(self, address: int) -> SegmentLocation:
        """Map a flat physical address to ``(channel, rank, index)``.

        The index is the segment index the address would fall into within
        its (channel, rank) slice.
        """
        if not 0 <= address < self.geometry.total_bytes:
            raise AddressError(f"address {address:#x} out of range")
        geo = self.geometry
        block = address >> self._offset_bits
        channel = block % geo.channels
        block //= geo.channels
        rank = block % geo.ranks_per_channel
        block //= geo.ranks_per_channel
        bytes_within_slice = block << self._offset_bits
        index = bytes_within_slice // geo.segment_bytes
        return SegmentLocation(channel=channel, rank=rank,
                               index=min(index, geo.segments_per_rank - 1))

    def ranks_touched(self, start: int, length: int) -> int:
        """Distinct ranks a contiguous region touches (why power-down is
        impossible under interleaving: even small regions touch them all).
        """
        geo = self.geometry
        blocks = min(length // self.interleave_bytes + 1,
                     geo.channels * geo.ranks_per_channel)
        seen = set()
        address = start
        for _ in range(blocks):
            location = self.locate(address)
            seen.add((location.channel, location.rank))
            address += self.interleave_bytes
            if address >= geo.total_bytes:
                break
        return len(seen)


@dataclass(frozen=True)
class SequentialMapping:
    """No-interleaving baseline: flat addresses fill rank after rank.

    The opposite extreme of :class:`InterleavedMapping`; it concentrates
    load on one channel at a time and is used by tests to bracket the
    DTL's segment-granular channel interleaving between the two.
    """

    geometry: DramGeometry

    def locate(self, address: int) -> SegmentLocation:
        """Map a flat physical address to ``(channel, rank, index)``."""
        if not 0 <= address < self.geometry.total_bytes:
            raise AddressError(f"address {address:#x} out of range")
        geo = self.geometry
        rank_global = address // geo.rank_bytes
        channel = rank_global // geo.ranks_per_channel
        rank = rank_global % geo.ranks_per_channel
        index = (address % geo.rank_bytes) // geo.segment_bytes
        return SegmentLocation(channel=channel, rank=rank, index=index)


__all__ = ["InterleavedMapping", "SequentialMapping"]
