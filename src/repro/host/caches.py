"""Host-side cache hierarchy simulator.

Generates *post-cache* memory traces the way the paper does (Section 5.2,
Table 3): every host load/store is filtered through an inclusive
L1d -> L2 -> LLC hierarchy of set-associative LRU caches; only LLC misses
(and dirty evictions) reach the CXL memory device.

Defaults match Table 3:

=====  ======  ======  ===========
Level  Size    Ways    Replacement
=====  ======  ======  ===========
L1-d   32 KiB  8       LRU
L2     1 MiB   8       LRU
LLC    8 MiB   16      LRU
=====  ======  ======  ===========
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import CACHELINE_BYTES, KIB, MIB, is_power_of_two


@dataclass(frozen=True)
class CacheLevelConfig:
    """Sizing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = CACHELINE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ConfigurationError(
                f"{self.name}: size must divide into ways x line size")
        if not is_power_of_two(self.num_sets):
            raise ConfigurationError(f"{self.name}: set count must be 2^n")

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass
class CacheLevelStats:
    """Hit/miss/writeback counters for one level."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses / accesses (0.0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0


class CacheLevel:
    """One set-associative, write-back, write-allocate LRU cache."""

    def __init__(self, config: CacheLevelConfig):
        self.config = config
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.num_sets)]
        self.stats = CacheLevelStats()

    def _locate(self, line_addr: int) -> OrderedDict[int, bool]:
        return self._sets[line_addr % self.config.num_sets]

    def access(self, line_addr: int, is_write: bool) -> bool:
        """Look up one line; returns True on hit (updates LRU/dirty)."""
        cache_set = self._locate(line_addr)
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            if is_write:
                cache_set[line_addr] = True
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, line_addr: int, dirty: bool) -> tuple[int, bool] | None:
        """Install a line; returns the evicted ``(line_addr, dirty)`` if any."""
        cache_set = self._locate(line_addr)
        victim = None
        if line_addr not in cache_set and len(cache_set) >= self.config.ways:
            victim = cache_set.popitem(last=False)
            if victim[1]:
                self.stats.writebacks += 1
        cache_set[line_addr] = dirty or cache_set.get(line_addr, False)
        cache_set.move_to_end(line_addr)
        return victim

    def invalidate(self, line_addr: int) -> tuple[bool, bool]:
        """Drop a line (back-invalidation for inclusion).

        Returns:
            ``(was_present, was_dirty)``.
        """
        cache_set = self._locate(line_addr)
        if line_addr in cache_set:
            dirty = cache_set.pop(line_addr)
            return True, dirty
        return False, False

    def __len__(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)


#: Table 3 host-side cache configuration.
PAPER_CACHE_LEVELS = (
    CacheLevelConfig("L1-d", 32 * KIB, 8),
    CacheLevelConfig("L2", 1 * MIB, 8),
    CacheLevelConfig("LLC", 8 * MIB, 16),
)


@dataclass
class MemoryRequest:
    """A post-cache request that reached the memory device."""

    line_addr: int
    is_write: bool

    @property
    def address(self) -> int:
        """Byte address of the cacheline."""
        return self.line_addr * CACHELINE_BYTES


class CacheHierarchy:
    """Inclusive multi-level hierarchy producing post-cache traces."""

    def __init__(self, levels: tuple[CacheLevelConfig, ...] = PAPER_CACHE_LEVELS):
        if not levels:
            raise ConfigurationError("hierarchy needs at least one level")
        self.levels = [CacheLevel(config) for config in levels]

    def access(self, address: int, is_write: bool) -> list[MemoryRequest]:
        """Run one host access; returns requests that reach memory.

        The returned list contains at most one demand fill (the LLC miss)
        plus any dirty writebacks evicted along the way.
        """
        line_addr = address // CACHELINE_BYTES
        requests: list[MemoryRequest] = []
        hit_level = -1
        for index, level in enumerate(self.levels):
            if level.access(line_addr, is_write and index == 0):
                hit_level = index
                break
        if hit_level == -1:
            requests.append(MemoryRequest(line_addr=line_addr, is_write=False))
            hit_level = len(self.levels)
        # Allocate the line into every level it missed in, outermost first,
        # so inner fills never evict the line an outer fill just installed.
        for index in range(hit_level - 1, -1, -1):
            self._install(index, line_addr, dirty=is_write and index == 0,
                          requests=requests)
        return requests

    def _install(self, index: int, line_addr: int, dirty: bool,
                 requests: list[MemoryRequest]) -> None:
        """Fill one level, handling the resulting eviction."""
        level = self.levels[index]
        victim = level.fill(line_addr, dirty)
        if victim is None:
            return
        victim_addr, victim_dirty = victim
        if index == len(self.levels) - 1:
            # LLC eviction: back-invalidate inner copies (inclusion) and
            # write back to memory if any copy was dirty.
            for inner in self.levels[:-1]:
                _, inner_dirty = inner.invalidate(victim_addr)
                victim_dirty = victim_dirty or inner_dirty
            if victim_dirty:
                requests.append(MemoryRequest(line_addr=victim_addr,
                                              is_write=True))
        elif victim_dirty:
            # Dirty eviction from an inner level lands in the next outer
            # level; a miss there allocates (and may evict recursively).
            outer = self.levels[index + 1]
            if not outer.access(victim_addr, is_write=True):
                self._install(index + 1, victim_addr, dirty=True,
                              requests=requests)

    def stats(self) -> dict[str, CacheLevelStats]:
        """Per-level statistics keyed by level name."""
        return {level.config.name: level.stats for level in self.levels}

    def llc_miss_ratio(self) -> float:
        """LLC miss ratio (fraction of LLC lookups that went to memory)."""
        return self.levels[-1].stats.miss_ratio


__all__ = [
    "CacheLevelConfig",
    "CacheLevelStats",
    "CacheLevel",
    "PAPER_CACHE_LEVELS",
    "MemoryRequest",
    "CacheHierarchy",
]
