"""Section 6.1: CXL memory access latency with the DTL in the path.

Paper: the hardware-automated translation adds only 4.2 ns on average
(AMAT 214.2 ns vs 210 ns vanilla CXL; max +123.7 ns, min +0.67 ns),
inflating execution time by 0.18 %.  L1/L2 SMC miss ratios are
14.7 % / 15.4 %.
"""

import numpy as np
import pytest

from repro.analysis.amat import AmatModel
from repro.core.addressing import HostAddressLayout
from repro.core.translation import TranslationEngine
from repro.dram.geometry import DramGeometry
from repro.units import GIB, MIB
from repro.workloads.cloudsuite import PROFILES, TraceGenerator

from conftest import report


def test_sec61_amat_equations(benchmark):
    model = benchmark.pedantic(AmatModel, rounds=1, iterations=1)
    report("Section 6.1: AMAT model", [
        ("translation overhead", f"{model.translation_overhead_ns():.2f} ns",
         "4.2 ns"),
        ("AMAT", f"{model.amat_ns():.1f} ns", "214.2 ns"),
        ("max increase", f"{model.max_overhead_ns():.1f} ns", "123.7 ns"),
        ("min increase", f"{model.min_overhead_ns():.2f} ns", "0.67 ns"),
        ("exec-time overhead",
         f"{model.execution_time_overhead():.2%}", "0.18%"),
    ], header=("metric", "measured", "paper"))
    assert model.amat_ns() == pytest.approx(214.2, abs=1.0)
    assert model.translation_overhead_ns() == pytest.approx(4.2, abs=0.3)
    assert model.max_overhead_ns() == pytest.approx(123.7, abs=5.0)
    assert model.min_overhead_ns() == pytest.approx(0.67, abs=0.02)
    assert model.execution_time_overhead() == pytest.approx(0.0018,
                                                            abs=0.0004)


def simulate_smc(num_accesses: int = 120_000):
    """Drive the real SMC with a synthetic post-cache trace and measure
    the hit ratios the paper reports from its own SMC simulation."""
    geometry = DramGeometry(rank_bytes=4 * GIB)
    layout = HostAddressLayout(geometry, au_bytes=2 * GIB)
    engine = TranslationEngine(layout)
    generator = TraceGenerator(PROFILES["data-caching"],
                               footprint_bytes=4 * GIB, seed=0)
    trace = generator.generate(num_accesses)
    hsn_offset = trace.addresses // np.uint64(geometry.segment_bytes)
    segments_per_au = layout.segments_per_au
    for au_id in range(4 * GIB // (2 * GIB)):
        engine.tables.allocate_au(0, au_id)
    mapped = set()
    for raw in hsn_offset:
        local = int(raw)
        hsn = layout.pack_hsn(0, local // segments_per_au,
                              local % segments_per_au)
        if hsn not in mapped:
            engine.tables.map_segment(hsn, len(mapped))
            mapped.add(hsn)
        engine.translate_hsn(hsn)
    return engine


def test_sec61_smc_simulation(benchmark):
    engine = benchmark.pedantic(simulate_smc, rounds=1, iterations=1)
    l1_miss = engine.smc.l1.stats.miss_ratio
    l2_miss = engine.smc.l2.stats.miss_ratio
    measured_amat = engine.measured_amat_ns()
    report("Section 6.1: SMC simulation", [
        ("L1 SMC miss ratio", f"{l1_miss:.1%}", "14.7%"),
        ("L2 SMC miss ratio", f"{l2_miss:.1%}", "15.4%"),
        ("mean translation", f"{engine.mean_observed_latency_ns():.2f} ns",
         "4.2 ns"),
        ("AMAT-formula value", f"{measured_amat:.2f} ns", "4.2 ns"),
    ], header=("metric", "measured", "paper"))
    # Shape: the two-level SMC filters nearly every table walk (the L2
    # catches what the tiny L1 spills), so the measured mean translation
    # latency lands within a few ns of the paper's 4.2 ns — far below the
    # 123.7 ns worst case.
    assert l2_miss < 0.2
    assert engine.mean_observed_latency_ns() < 10.0
    # The paper's AMAT equation evaluated on measured ratios agrees with
    # the directly accumulated latency.
    assert measured_amat == pytest.approx(
        engine.mean_observed_latency_ns(), rel=0.35)
