"""The load generator: request accounting, percentiles, determinism."""

import asyncio
import json

import pytest

from repro.server import (DtlServer, LoadgenConfig, LoadgenReport,
                          ServerConfig, run_loadgen)


def inproc_report(config: LoadgenConfig) -> LoadgenReport:
    async def scenario() -> LoadgenReport:
        server = DtlServer(ServerConfig())
        await server.start(serve_tcp=False)
        report = await run_loadgen(config,
                                   request_fn=server.handle_request)
        await server.drain()
        return report
    return asyncio.run(scenario())


class TestLoadgenCampaign:
    def test_request_accounting(self):
        config = LoadgenConfig(tenants=3, requests_per_tenant=4, batch=16,
                               vms_per_tenant=2, churn_every=0)
        report = inproc_report(config)
        # open + N allocs + M accesses + close, per tenant.
        assert report.requests == 3 * (1 + 2 + 4 + 1)
        assert report.accesses == 3 * 4 * 16
        assert report.ok == report.requests
        assert report.rejected == {}
        # Every request's wall latency is measured.
        assert len(report.latency_us) == report.requests

    def test_churn_adds_free_and_realloc(self):
        churned = inproc_report(LoadgenConfig(
            tenants=1, requests_per_tenant=4, batch=8, vms_per_tenant=2,
            churn_every=2))
        flat = inproc_report(LoadgenConfig(
            tenants=1, requests_per_tenant=4, batch=8, vms_per_tenant=2,
            churn_every=0))
        assert churned.requests == flat.requests + 2 * 2

    def test_exactly_one_target_required(self):
        with pytest.raises(ValueError, match="request_fn or host"):
            asyncio.run(run_loadgen(LoadgenConfig(tenants=1)))

        async def sink(request):
            return {"ok": True}
        with pytest.raises(ValueError, match="request_fn or host"):
            asyncio.run(run_loadgen(LoadgenConfig(tenants=1),
                                    request_fn=sink, host="127.0.0.1",
                                    port=1))


class TestLoadgenReport:
    def test_rates_and_percentiles(self):
        report = LoadgenReport(tenants=1, requests=100, accesses=1000,
                               ok=100, elapsed_s=2.0,
                               latency_us=[1.0, 2.0, 3.0])
        assert report.requests_per_s == 50.0
        assert report.accesses_per_s == 500.0
        assert report.percentile(50.0) == 2.0
        counts = report.histogram()
        assert sum(counts.values()) == 3
        assert counts["<=10us"] == 3

    def test_histogram_overflow_bucket(self):
        report = LoadgenReport(tenants=1,
                               latency_us=[5.0, 1e9])
        counts = report.histogram()
        assert counts["<=10us"] == 1
        assert counts["inf"] == 1

    def test_empty_report_is_safe(self):
        report = LoadgenReport(tenants=0)
        assert report.requests_per_s == 0.0
        assert report.percentile(99.0) == 0.0
        assert sum(report.histogram().values()) == 0

    def test_to_json_round_trips(self):
        report = inproc_report(LoadgenConfig(
            tenants=1, requests_per_tenant=1, batch=4, vms_per_tenant=1,
            churn_every=0))
        document = json.loads(report.to_json())
        assert document["requests"] == report.requests
        assert document["accesses"] == report.accesses
        assert document["latency_us"]["p50"] >= 0.0
