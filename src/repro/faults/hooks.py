"""Named fault-injection hook points and their registry.

Every place the datapath consults the :class:`~repro.faults.injector.
FaultInjector` is a *hook point* with a stable name.  The catalog below
is the single source of truth: the lint guard in
``tests/faults/test_hook_registry.py`` fails the build when a hook point
exists without a catalog entry, or a catalog entry points at a module
that no longer calls its injector method.  Adding a hook therefore means
adding it in three places — the enum, the catalog, and the datapath —
and the guard keeps the three in sync.

Hook calls are guarded by ``if self._faults is not None:`` at every
site, so an unarmed datapath pays one attribute load and a branch — the
vectorised batch path keeps its zero-overhead guarantee (and skips even
that by checking once per batch).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class HookPoint(enum.Enum):
    """Every named place the datapath can consult the fault injector."""

    #: One CXL.mem transaction (scalar access path); link errors and
    #: stalls add retry/backoff latency here.
    CXL_ACCESS = "cxl.access"
    #: One SMC lookup; corruption faults drop the cached entry (parity
    #: detection) and force a table re-walk on the next access.
    SMC_LOOKUP = "smc.lookup"
    #: One DRAM access with the target rank resolved; ECC single/multi
    #: bit errors are accounted against that rank.
    DRAM_ACCESS = "dram.access"
    #: One migration-engine copy step on an in-flight request whose
    #: completion bit is clear; abort faults fire by progress counter.
    MIGRATION_COPY = "migration.copy"
    #: One rank-group MPSM exit (reactivation); delayed/failed exits
    #: inflate the wake penalty.
    MPSM_EXIT = "power.mpsm_exit"
    #: One self-refresh exit (victim block wake); delayed/failed exits
    #: inflate the per-access wake penalty.
    SR_EXIT = "sr.exit"


@dataclass(frozen=True)
class HookInfo:
    """Catalog entry for one hook point.

    Attributes:
        point: The hook point this entry describes.
        method: The :class:`~repro.faults.injector.FaultInjector` method
            the datapath calls at this point.
        module: Repository-relative path of the module that calls it
            (the lint guard greps this file for ``method``).
        description: One line for ``docs/FAULTS.md``.
    """

    point: HookPoint
    method: str
    module: str
    description: str


#: Hook point -> where and how it is wired.  Keep in sync with the
#: datapath; the lint guard enforces exact coverage of :class:`HookPoint`.
HOOK_CATALOG: dict[HookPoint, HookInfo] = {
    HookPoint.CXL_ACCESS: HookInfo(
        HookPoint.CXL_ACCESS, "on_cxl_access",
        "src/repro/core/controller.py",
        "per-access CXL link error/stall with bounded retry + backoff"),
    HookPoint.SMC_LOOKUP: HookInfo(
        HookPoint.SMC_LOOKUP, "on_smc_lookup",
        "src/repro/core/controller.py",
        "SMC entry corruption: parity detection drops the entry"),
    HookPoint.DRAM_ACCESS: HookInfo(
        HookPoint.DRAM_ACCESS, "on_dram_access",
        "src/repro/core/controller.py",
        "per-rank DRAM ECC single/multi-bit error accounting"),
    HookPoint.MIGRATION_COPY: HookInfo(
        HookPoint.MIGRATION_COPY, "on_migration_copy",
        "src/repro/core/migration.py",
        "abort an in-flight segment copy at a chosen progress counter"),
    HookPoint.MPSM_EXIT: HookInfo(
        HookPoint.MPSM_EXIT, "on_power_exit",
        "src/repro/core/power_down.py",
        "delayed or failed MPSM exit on rank-group reactivation"),
    HookPoint.SR_EXIT: HookInfo(
        HookPoint.SR_EXIT, "on_power_exit",
        "src/repro/core/self_refresh.py",
        "delayed or failed self-refresh exit on victim-block wake"),
}


__all__ = ["HookPoint", "HookInfo", "HOOK_CATALOG"]
