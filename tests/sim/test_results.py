"""Tests for result records, serialisation, and table rendering."""

import json

import pytest

from repro.host.scheduler import SchedulerConfig
from repro.sim.powerdown_sim import PowerDownSimConfig, PowerDownSimulator
from repro.sim.results import (ExperimentRecord, flatten_powerdown,
                               flatten_selfrefresh, load_records,
                               render_table, save_records)
from repro.workloads.azure import AzureTraceConfig


class TestRecords:
    def test_roundtrip(self, tmp_path):
        records = [ExperimentRecord("fig1", {"x": 1.5}, {"x": "<2"}),
                   ExperimentRecord("fig2", {"y": [1, 2]})]
        path = save_records(records, tmp_path / "out.json")
        loaded = load_records(path)
        assert [r.experiment for r in loaded] == ["fig1", "fig2"]
        assert loaded[0].metrics == {"x": 1.5}
        assert loaded[0].paper == {"x": "<2"}

    def test_json_is_valid(self, tmp_path):
        path = save_records([ExperimentRecord("e", {"a": 1})],
                            tmp_path / "r.json")
        parsed = json.loads(path.read_text())
        assert parsed[0]["experiment"] == "e"


class TestFlattening:
    def test_flatten_powerdown(self):
        config = PowerDownSimConfig(
            azure=AzureTraceConfig(num_vms=10, duration_s=1200.0),
            scheduler=SchedulerConfig(duration_s=1200.0))
        result = PowerDownSimulator(config).run()
        flat = flatten_powerdown(result)
        assert flat["intervals"] == 4
        assert flat["total_energy_rsu_s"] > 0
        json.dumps(flat)  # everything is JSON-serialisable

    def test_flatten_selfrefresh_keys(self):
        from repro.dram.geometry import DramGeometry
        from repro.sim.selfrefresh_sim import (SelfRefreshSimConfig,
                                               SelfRefreshSimulator)
        from repro.units import MIB
        config = SelfRefreshSimConfig(
            geometry=DramGeometry(channels=2, ranks_per_channel=4,
                                  rank_bytes=128 * MIB),
            allocated_bytes=544 * MIB,
            workloads=("data-caching",),
            aggregate_bandwidth_gbs=0.2, duration_s=2.0,
            au_bytes=32 * MIB, group_granularity=1)
        flat = flatten_selfrefresh(SelfRefreshSimulator(config).run())
        assert {"stable_savings", "warmup_s", "sr_entries"} <= set(flat)
        json.dumps(flat)


class TestRenderTable:
    def test_alignment(self):
        text = render_table([("a", "1"), ("long", "22")],
                            header=("k", "v"))
        lines = text.splitlines()
        assert len(lines) == 3
        assert len({len(line) for line in lines}) == 1  # equal width

    def test_markdown(self):
        text = render_table([("a", "1")], header=("k", "v"), markdown=True)
        lines = text.splitlines()
        assert lines[0].startswith("|")
        assert set(lines[1]) <= {"|", "-"}

    def test_empty(self):
        assert render_table([]) == ""

    def test_ragged_rows_padded(self):
        text = render_table([("a",), ("b", "c")])
        assert "c" in text
