"""Exception hierarchy for the DTL reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class AddressError(ReproError):
    """Raised for malformed or out-of-range addresses."""


class TranslationError(ReproError):
    """Raised when an HPA has no valid HPA-to-DPA mapping."""


class AllocationError(ReproError):
    """Raised when a memory allocation request cannot be satisfied."""


class MigrationError(ReproError):
    """Raised for invalid migration requests or protocol violations."""


class PowerStateError(ReproError):
    """Raised for illegal DRAM power-state transitions."""


class PerformanceWarning(UserWarning):
    """Warns when a caller uses a slow path with a faster batch equivalent.

    Emitted (once per controller) when scalar ``DtlController.access``
    is looped past 10^5 requests; ``access_batch`` serves such traces
    orders of magnitude faster.  See ``docs/PERF.md``.
    """
