"""The task runner: ordering, retries, timeouts, caching, fallback.

The task functions live at module level so the parallel path can pickle
them; coordination between attempts/processes goes through files in
``tmp_path`` (shared by fork and spawn alike).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.exec import (EXEC_METRICS, ExecConfig, NESTED_ENV, ResultCache,
                        TaskSpec, WORKERS_ENV, default_workers, run_tasks)
from repro.telemetry import MetricsRegistry


def _square(x):
    return x * x


def _boom():
    raise ValueError("boom")


def _sleep(seconds):
    time.sleep(seconds)
    return seconds


def _pid():
    return os.getpid()


def _touch_and_count(path):
    """Append one line per invocation; returns the invocation count."""
    with open(path, "a") as handle:
        handle.write("x\n")
    with open(path) as handle:
        return len(handle.readlines())


def _flaky(marker_path):
    """Fail on the first attempt, succeed once the marker exists."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w"):
            pass
        raise RuntimeError("transient failure")
    return "recovered"


def test_serial_values_in_submission_order():
    outcomes = run_tasks([TaskSpec(fn=_square, args=(x,), label=f"sq-{x}")
                          for x in range(6)])
    assert [o.value for o in outcomes] == [x * x for x in range(6)]
    assert all(o.ok and o.attempts == 1 and not o.from_cache
               for o in outcomes)
    assert outcomes[0].worker_pid == os.getpid()


def test_parallel_matches_serial():
    tasks = lambda: [TaskSpec(fn=_square, args=(x,)) for x in range(8)]
    serial = run_tasks(tasks(), config=ExecConfig(workers=1))
    parallel = run_tasks(tasks(), config=ExecConfig(workers=2))
    assert [o.value for o in serial] == [o.value for o in parallel]


def test_parallel_runs_in_worker_processes():
    outcomes = run_tasks([TaskSpec(fn=_pid) for _ in range(4)],
                         config=ExecConfig(workers=2))
    pids = {o.worker_pid for o in outcomes}
    assert os.getpid() not in pids


def test_retry_recovers_serial(tmp_path):
    marker = str(tmp_path / "marker")
    [outcome] = run_tasks([TaskSpec(fn=_flaky, args=(marker,))],
                          config=ExecConfig(retries=1))
    assert outcome.ok and outcome.value == "recovered"
    assert outcome.attempts == 2


def test_retry_recovers_parallel(tmp_path):
    marker = str(tmp_path / "marker")
    outcomes = run_tasks([TaskSpec(fn=_flaky, args=(marker,)),
                          TaskSpec(fn=_square, args=(3,))],
                         config=ExecConfig(workers=2, retries=1))
    assert outcomes[0].ok and outcomes[0].value == "recovered"
    assert outcomes[1].value == 9


def test_retry_budget_exhausted():
    [outcome] = run_tasks([TaskSpec(fn=_boom, label="doomed")],
                          config=ExecConfig(retries=2))
    assert not outcome.ok
    assert outcome.attempts == 3
    assert "ValueError: boom" in outcome.error
    with pytest.raises(RuntimeError, match="doomed"):
        outcome.unwrap()


def test_timeout_reported(tmp_path):
    outcomes = run_tasks(
        [TaskSpec(fn=_sleep, args=(5.0,), label="hang"),
         TaskSpec(fn=_square, args=(2,))],
        config=ExecConfig(workers=2, timeout_s=0.2, retries=0))
    assert not outcomes[0].ok
    assert "timeout" in outcomes[0].error
    assert outcomes[1].ok and outcomes[1].value == 4


def test_cache_hit_skips_execution(tmp_path):
    counter = str(tmp_path / "count")
    cache = ResultCache()
    task = TaskSpec(fn=_touch_and_count, args=(counter,), key="count-key")
    [first] = run_tasks([task], cache=cache)
    [second] = run_tasks([task], cache=cache)
    assert first.value == 1 and not first.from_cache
    assert second.value == 1 and second.from_cache  # did not run again
    assert cache.hits == 1


def test_failures_are_not_cached(tmp_path):
    marker = str(tmp_path / "marker")
    cache = ResultCache()
    task = TaskSpec(fn=_flaky, args=(marker,), key="flaky-key")
    [first] = run_tasks([task], cache=cache, config=ExecConfig(retries=0))
    assert not first.ok
    [second] = run_tasks([task], cache=cache, config=ExecConfig(retries=0))
    assert second.ok and not second.from_cache  # re-ran, marker now exists


def test_workers_env_default(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    monkeypatch.delenv(NESTED_ENV, raising=False)
    assert default_workers() == 1
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert default_workers() == 3
    assert ExecConfig().resolved_workers() == 3
    assert ExecConfig(workers=2).resolved_workers() == 2
    monkeypatch.setenv(WORKERS_ENV, "not-a-number")
    assert default_workers() == 1


def test_nested_marker_forces_serial(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "4")
    monkeypatch.setenv(NESTED_ENV, "1")
    assert default_workers() == 1
    assert ExecConfig().resolved_workers() == 1


def test_metrics_accounting():
    metrics = MetricsRegistry()
    run_tasks([TaskSpec(fn=_square, args=(2,)),
               TaskSpec(fn=_boom)],
              config=ExecConfig(retries=1), metrics=metrics)
    counters = metrics.counter_values()
    assert counters["exec.tasks.completed"] == 1
    assert counters["exec.tasks.failed"] == 1
    assert counters["exec.tasks.retries"] == 1
    assert metrics.gauge_values()["exec.workers"] == 1
    assert metrics.gauge_values()["exec.last_batch_wall_s"] >= 0.0


def test_default_registry_receives_accounting():
    before = EXEC_METRICS.counter("exec.tasks.completed").value
    run_tasks([TaskSpec(fn=_square, args=(5,))])
    assert EXEC_METRICS.counter("exec.tasks.completed").value == before + 1


def test_empty_batch():
    assert run_tasks([]) == []


def test_chunked_parallel_matches_serial():
    tasks = lambda: [TaskSpec(fn=_square, args=(x,)) for x in range(9)]
    serial = run_tasks(tasks(), config=ExecConfig(workers=1))
    chunked = run_tasks(tasks(), config=ExecConfig(workers=2, chunk_size=3))
    assert [o.value for o in serial] == [o.value for o in chunked]
    assert all(o.ok for o in chunked)


def test_chunked_retry_and_failure_reporting(tmp_path):
    marker = str(tmp_path / "marker")
    outcomes = run_tasks(
        [TaskSpec(fn=_flaky, args=(marker,)),
         TaskSpec(fn=_boom, label="doomed"),
         TaskSpec(fn=_square, args=(4,))],
        config=ExecConfig(workers=2, retries=1, chunk_size=3))
    assert outcomes[0].ok and outcomes[0].value == "recovered"
    assert outcomes[0].attempts == 2
    assert not outcomes[1].ok and "ValueError: boom" in outcomes[1].error
    assert outcomes[2].value == 16


def test_cost_hint_pool_skip():
    metrics = MetricsRegistry()
    outcomes = run_tasks(
        [TaskSpec(fn=_square, args=(x,), cost_hint_s=0.001)
         for x in range(4)],
        config=ExecConfig(workers=2), metrics=metrics)
    assert [o.value for o in outcomes] == [0, 1, 4, 9]
    assert metrics.counter_values()["exec.pool_skips"] == 1
    # Cheap batches run in-process: no worker pids.
    assert all(o.worker_pid == os.getpid() for o in outcomes)


def test_cost_hint_above_threshold_uses_pool():
    metrics = MetricsRegistry()
    run_tasks([TaskSpec(fn=_square, args=(x,), cost_hint_s=10.0)
               for x in range(4)],
              config=ExecConfig(workers=2), metrics=metrics)
    assert "exec.pool_skips" not in metrics.counter_values()


def test_cpu_bound_skips_pool_on_single_core(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    metrics = MetricsRegistry()
    outcomes = run_tasks(
        [TaskSpec(fn=_square, args=(x,), cpu_bound=True) for x in range(4)],
        config=ExecConfig(workers=2), metrics=metrics)
    assert [o.value for o in outcomes] == [0, 1, 4, 9]
    assert metrics.counter_values()["exec.pool_skips"] == 1
    assert all(o.worker_pid == os.getpid() for o in outcomes)


def test_cpu_bound_uses_pool_on_multicore(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    outcomes = run_tasks(
        [TaskSpec(fn=_pid, cpu_bound=True) for _ in range(4)],
        config=ExecConfig(workers=2))
    assert os.getpid() not in {o.worker_pid for o in outcomes}
