"""Policy tournament: sweep registered policies across workload mixes.

Every registered :mod:`repro.policies` plug-in is a drop-in replacement
for the paper's CLOCK/static behaviour, so the natural question is which
one wins *where*.  :class:`PolicyTournament` answers it empirically: it
fans ``policies x workload mixes`` self-refresh simulations out through
the cached parallel executor, reads each cell's energy savings and
performance overhead, and reports the Pareto front of the two axes.

The two axes per cell:

* **savings** — stable fractional background-power savings
  (``SelfRefreshResult.stable_savings``), the paper's Figure 14 metric.
* **overhead** — the fraction of simulated time spent paying for the
  policy's aggression: cumulative SR exit penalty plus the wall time the
  migration traffic would occupy on the mix's post-cache bandwidth.

A cell is Pareto-optimal when no other cell has savings at least as
high *and* overhead at least as low, with one of the two strict.

The module deliberately imports nothing from
:mod:`repro.sim.experiments` at module level — the registry imports
*this* module to register the ``tournament`` experiment, so the fan-out
import happens lazily inside :meth:`PolicyTournament.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.base import SeededConfig
from repro.sim.selfrefresh_sim import SelfRefreshResult, SelfRefreshSimConfig
from repro.workloads.cloudsuite import TRACED_BENCHMARKS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec import ExecConfig, ResultCache


@dataclass(frozen=True)
class TournamentConfig(SeededConfig):
    """Which policies meet which workload mixes, and for how long.

    Attributes:
        policies: Registered policy names to enter (see
            :func:`repro.policies.available_policies`).
        workloads: Workload mixes; each inner tuple is one
            ``SelfRefreshSimConfig.workloads`` value.  Cells are labelled
            ``mix0``, ``mix1``, ... in declaration order.
        duration_s: Simulated seconds per cell.
        seed: Shared RNG seed so cells differ only in policy/workloads.
    """

    policies: tuple[str, ...] = ("paper", "rank_aware", "dream", "adaptive")
    workloads: tuple[tuple[str, ...], ...] = (
        TRACED_BENCHMARKS[:3], TRACED_BENCHMARKS[3:6])
    duration_s: float = 20.0
    seed: int = 0


def quick_tournament_config(seed: int = 0) -> TournamentConfig:
    """Seconds-scale tournament for smoke tests and ``--quick`` runs."""
    return TournamentConfig(duration_s=2.0, seed=seed)


@dataclass(frozen=True)
class TournamentCell:
    """One (policy, workload mix) outcome on the savings/overhead plane."""

    policy: str
    workload: str
    savings: float
    overhead: float
    sr_entries: int
    sr_exits: int
    migrated_bytes: int
    exit_penalty_ns: float

    def dominates(self, other: "TournamentCell") -> bool:
        """True when this cell is at least as good on both axes and
        strictly better on one."""
        at_least = (self.savings >= other.savings
                    and self.overhead <= other.overhead)
        strict = (self.savings > other.savings
                  or self.overhead < other.overhead)
        return at_least and strict


def cell_from_result(policy: str, workload: str,
                     result: SelfRefreshResult) -> TournamentCell:
    """Project one self-refresh run onto the tournament's two axes."""
    config = result.config
    migration_s = (result.migrated_bytes
                   / (config.aggregate_bandwidth_gbs * 1e9))
    overhead = ((result.exit_penalty_ns / 1e9 + migration_s)
                / config.duration_s)
    return TournamentCell(
        policy=policy,
        workload=workload,
        savings=result.stable_savings,
        overhead=overhead,
        sr_entries=result.sr_entries,
        sr_exits=result.sr_exits,
        migrated_bytes=result.migrated_bytes,
        exit_penalty_ns=result.exit_penalty_ns)


@dataclass
class TournamentResult:
    """All cells plus the derived Pareto front and per-policy means."""

    config: TournamentConfig
    cells: list[TournamentCell]
    #: ``(policy, workload, error message)`` for cells whose simulation
    #: failed; the surviving cells still rank.
    failures: list[tuple[str, str, str]] = field(default_factory=list)

    def pareto_front(self) -> list[TournamentCell]:
        """Non-dominated cells, sorted by descending savings."""
        front = [cell for cell in self.cells
                 if not any(other.dominates(cell) for other in self.cells)]
        return sorted(front, key=lambda cell: (-cell.savings, cell.overhead,
                                               cell.policy, cell.workload))

    def policy_means(self) -> dict[str, tuple[float, float]]:
        """Per-policy ``(mean savings, mean overhead)`` across mixes."""
        means: dict[str, tuple[float, float]] = {}
        for policy in self.config.policies:
            mine = [cell for cell in self.cells if cell.policy == policy]
            if not mine:
                continue
            means[policy] = (
                sum(cell.savings for cell in mine) / len(mine),
                sum(cell.overhead for cell in mine) / len(mine))
        return means

    def to_record(self):
        """Flatten into an :class:`~repro.sim.results.ExperimentRecord`."""
        from repro.sim.results import ExperimentRecord, flatten_tournament
        return ExperimentRecord("tournament", flatten_tournament(self))


class PolicyTournament:
    """Experiment wrapper: run the full grid through the executor."""

    name = "tournament"

    def __init__(self, config: TournamentConfig | None = None):
        self.config = config or TournamentConfig()

    def cell_configs(self) -> list[tuple[str, str, SelfRefreshSimConfig]]:
        """The grid as ``(policy, mix label, sim config)`` triples."""
        grid = []
        for policy in self.config.policies:
            for index, mix in enumerate(self.config.workloads):
                sim = SelfRefreshSimConfig(
                    workloads=tuple(mix),
                    duration_s=self.config.duration_s,
                    policy=policy,
                    seed=self.config.seed)
                grid.append((policy, f"mix{index}", sim))
        return grid

    def run(self, exec_config: "ExecConfig | None" = None,
            cache: "ResultCache | None" = None) -> TournamentResult:
        """Fan the grid out and collect the Pareto-ranked result.

        Failed cells land in ``result.failures`` rather than raising, so
        one pathological policy cannot sink the whole tournament.
        """
        # Imported lazily: repro.sim.experiments imports this module to
        # register the "tournament" spec.
        from repro.sim.experiments import run_experiments

        grid = self.cell_configs()
        outcomes = run_experiments(
            [("selfrefresh", sim) for _, _, sim in grid],
            exec_config=exec_config, cache=cache)
        cells: list[TournamentCell] = []
        failures: list[tuple[str, str, str]] = []
        for (policy, label, _), outcome in zip(grid, outcomes):
            if outcome.error is not None:
                failures.append((policy, label, outcome.error))
                continue
            cells.append(cell_from_result(policy, label, outcome.value))
        return TournamentResult(config=self.config, cells=cells,
                                failures=failures)

    # -- stepped execution -----------------------------------------------------
    # One grid cell per advance, through the same ``run_experiments``
    # entry point (serially) so failed cells produce the exact error
    # strings the fan-out would record.

    def begin(self) -> "TournamentRunState":
        """Materialise the grid; no cells have run yet."""
        return TournamentRunState(grid=self.cell_configs())

    def advance(self, state: "TournamentRunState") -> bool:
        """Run one pending cell; True while more remain after."""
        if state.index >= len(state.grid):
            return False
        from repro.exec import ExecConfig
        from repro.sim.experiments import run_experiments

        policy, label, sim = state.grid[state.index]
        outcome = run_experiments([("selfrefresh", sim)],
                                  exec_config=ExecConfig(workers=1))[0]
        if outcome.error is not None:
            state.failures.append((policy, label, outcome.error))
        else:
            state.cells.append(
                cell_from_result(policy, label, outcome.value))
        state.index += 1
        return state.index < len(state.grid)

    def finish(self, state: "TournamentRunState") -> TournamentResult:
        """Assemble the Pareto-ranked result from the completed cells."""
        return TournamentResult(config=self.config, cells=state.cells,
                                failures=state.failures)


@dataclass
class TournamentRunState:
    """Cell progress of one stepped tournament."""

    grid: list[tuple[str, str, SelfRefreshSimConfig]]
    cells: list[TournamentCell] = field(default_factory=list)
    failures: list[tuple[str, str, str]] = field(default_factory=list)
    index: int = 0


__all__ = [
    "TournamentConfig",
    "TournamentCell",
    "TournamentResult",
    "TournamentRunState",
    "PolicyTournament",
    "cell_from_result",
    "quick_tournament_config",
]
