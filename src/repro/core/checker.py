"""Cross-structure invariant checker.

The DTL keeps the same facts in several places — the segment mapping
table, the reverse mapping table, the allocator's free/allocated queues,
the SMC, and the rank power states.  :class:`ConsistencyChecker` audits
that they agree:

1. forward/reverse mapping tables are exact inverses;
2. every mapped DSN is allocated and every allocated DSN is mapped;
3. allocated + free segments partition the device;
4. MPSM ranks hold no data (MPSM does not retain!);
5. every SMC entry agrees with the tables;
6. channel occupancy is balanced across channels (modulo retirement).

Tests call :func:`check` after every mutation sequence; long-running
simulations can enable periodic audits.  Violations raise
:class:`ConsistencyError` with a description of every failed invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.controller import DtlController
from repro.dram.power import PowerState
from repro.errors import ReproError


class ConsistencyError(ReproError):
    """One or more DTL invariants are violated."""


@dataclass
class AuditReport:
    """Outcome of one consistency audit."""

    violations: list[str] = field(default_factory=list)
    checked_mappings: int = 0
    checked_smc_entries: int = 0

    @property
    def ok(self) -> bool:
        """True when no invariant failed."""
        return not self.violations


class ConsistencyChecker:
    """Audits a :class:`~repro.core.controller.DtlController`."""

    def __init__(self, controller: DtlController):
        self.controller = controller

    # -- individual invariants ---------------------------------------------------

    def check_mapping_inverse(self, report: AuditReport) -> None:
        """Forward and reverse tables must be exact inverses."""
        tables = self.controller.tables
        for dsn in tables.live_dsns():
            hsn = tables.hsn_of_dsn(dsn)
            forward = tables.try_walk(hsn)
            report.checked_mappings += 1
            if forward != dsn:
                report.violations.append(
                    f"reverse map says DSN {dsn:#x} -> HSN {hsn:#x}, but "
                    f"forward walk gives {forward}")

    def check_allocation_agreement(self, report: AuditReport) -> None:
        """Mapped segments and allocated segments are the same set.

        Destinations of in-flight migrations are exempt from the
        "allocated implies mapped" direction: the engine reserves the
        target segment at submission but the mapping only moves at
        retirement (Section 4.2), so allocated-but-unmapped is the legal
        mid-flight state — :meth:`check_migration_tracking` audits it.
        """
        tables = self.controller.tables
        allocator = self.controller.allocator
        mapped = set(tables.live_dsns())
        allocated = set()
        geometry = self.controller.geometry
        for channel in range(geometry.channels):
            for rank in range(geometry.ranks_per_channel):
                allocated.update(
                    allocator.allocated_in_rank((channel, rank)))
        inflight_targets = {
            request.new_dsn
            for request in self.controller.migration.tracked_requests()}
        for dsn in mapped - allocated:
            report.violations.append(
                f"DSN {dsn:#x} is mapped but not allocated")
        for dsn in (allocated - mapped) - inflight_targets:
            report.violations.append(
                f"DSN {dsn:#x} is allocated but not mapped")

    def check_segment_conservation(self, report: AuditReport) -> None:
        """allocated + free == capacity, per rank."""
        allocator = self.controller.allocator
        geometry = self.controller.geometry
        for channel in range(geometry.channels):
            for rank in range(geometry.ranks_per_channel):
                usage = allocator.usage((channel, rank))
                if usage.capacity != geometry.segments_per_rank:
                    report.violations.append(
                        f"rank ({channel},{rank}): allocated {usage.allocated}"
                        f" + free {usage.free} != "
                        f"{geometry.segments_per_rank}")

    def check_mpsm_ranks_empty(self, report: AuditReport) -> None:
        """MPSM loses data, so MPSM ranks must hold no live segments."""
        allocator = self.controller.allocator
        for rank_id, rank in self.controller.device.ranks.items():
            if rank.state is PowerState.MPSM:
                held = allocator.usage(rank_id).allocated
                if held:
                    report.violations.append(
                        f"rank {rank_id} is in MPSM but holds {held} "
                        "live segments")

    def check_smc_coherence(self, report: AuditReport) -> None:
        """Every cached translation must match the tables."""
        tables = self.controller.tables
        smc = self.controller.translation.smc
        entries = []
        for hsn, dsn in smc.l1.items():
            entries.append(("L1", hsn, dsn))
        for hsn, dsn in smc.l2.items():
            entries.append(("L2", hsn, dsn))
        for level, hsn, dsn in entries:
            report.checked_smc_entries += 1
            actual = tables.try_walk(hsn)
            if actual != dsn:
                report.violations.append(
                    f"{level} SMC caches HSN {hsn:#x} -> DSN {dsn:#x}, "
                    f"tables say {actual}")

    def check_migration_tracking(self, report: AuditReport) -> None:
        """Every tracked migration references a consistent world.

        For each queued or in-flight request: the source is still the
        live mapping of its HSN, the reserved destination is allocated
        but not yet mapped, both live on one channel, and the progress
        counter is in range (with the completion bit only ever set at
        full progress) — the state an abort/retry must restore exactly.
        """
        tables = self.controller.tables
        allocator = self.controller.allocator
        migration = self.controller.migration
        for request in migration.tracked_requests():
            tag = f"migration {request.old_dsn:#x}->{request.new_dsn:#x}"
            if tables.try_walk(request.hsn) != request.old_dsn:
                report.violations.append(
                    f"{tag}: HSN {request.hsn:#x} no longer maps to the "
                    "source DSN")
            if not allocator.is_allocated(request.new_dsn):
                report.violations.append(
                    f"{tag}: destination is not reserved")
            if tables.is_dsn_live(request.new_dsn):
                report.violations.append(
                    f"{tag}: destination is already mapped mid-flight")
            if (migration.channel_of(request.old_dsn)
                    != migration.channel_of(request.new_dsn)):
                report.violations.append(f"{tag}: crosses channels")
            if not 0 <= request.lines_done <= request.lines_total:
                report.violations.append(
                    f"{tag}: progress {request.lines_done} out of range "
                    f"0..{request.lines_total}")
            if (request.completion
                    and request.lines_done != request.lines_total):
                report.violations.append(
                    f"{tag}: completion bit set at progress "
                    f"{request.lines_done}/{request.lines_total}")

    def check_channel_balance(self, report: AuditReport,
                              tolerance: int = 0) -> None:
        """Per-channel occupancy stays balanced (Section 4.3)."""
        allocator = self.controller.allocator
        geometry = self.controller.geometry
        counts = [allocator.channel_allocated(channel)
                  for channel in range(geometry.channels)]
        if max(counts) - min(counts) > tolerance:
            report.violations.append(
                f"channel occupancy unbalanced: {counts}")

    # -- entry points ----------------------------------------------------------------

    def audit(self, balance_tolerance: int = 0) -> AuditReport:
        """Run every invariant; returns the report."""
        report = AuditReport()
        self.check_mapping_inverse(report)
        self.check_allocation_agreement(report)
        self.check_segment_conservation(report)
        self.check_mpsm_ranks_empty(report)
        self.check_smc_coherence(report)
        self.check_migration_tracking(report)
        self.check_channel_balance(report, balance_tolerance)
        return report

    def assert_consistent(self, balance_tolerance: int = 0) -> AuditReport:
        """Audit and raise :class:`ConsistencyError` on any violation."""
        report = self.audit(balance_tolerance)
        if not report.ok:
            summary = "\n  ".join(report.violations[:10])
            raise ConsistencyError(
                f"{len(report.violations)} invariant violation(s):\n"
                f"  {summary}")
        return report


def check(controller: DtlController, balance_tolerance: int = 0) -> AuditReport:
    """Convenience one-shot audit."""
    return ConsistencyChecker(controller).assert_consistent(
        balance_tolerance)


__all__ = ["ConsistencyError", "AuditReport", "ConsistencyChecker", "check"]
