"""CXL link latency/bandwidth model.

The paper emulates CXL memory by injecting extra latency on top of native
DRAM access (Quartz, Section 5.1): 121 ns native vs 210 ns via CXL.  This
module models that delta plus a simple serialisation term so experiments
can sweep link parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import CXL_MEMORY_LATENCY_NS, NATIVE_DRAM_LATENCY_NS
from repro.units import CACHELINE_BYTES


@dataclass(frozen=True)
class CxlLinkConfig:
    """CXL.mem link parameters.

    Attributes:
        base_latency_ns: One-way protocol + controller latency added on top
            of the DRAM access itself (defaults reproduce Table 1's
            210 ns end-to-end with 121 ns native DRAM).
        bandwidth_gbs: Usable link bandwidth (x8 PCIe 5.0-class link).
    """

    base_latency_ns: float = CXL_MEMORY_LATENCY_NS - NATIVE_DRAM_LATENCY_NS
    bandwidth_gbs: float = 32.0

    def access_latency_ns(self, dram_latency_ns: float = NATIVE_DRAM_LATENCY_NS,
                          payload_bytes: int = CACHELINE_BYTES) -> float:
        """End-to-end latency of one load through the link."""
        serialisation_ns = payload_bytes / self.bandwidth_gbs
        return self.base_latency_ns + dram_latency_ns + serialisation_ns - (
            CACHELINE_BYTES / self.bandwidth_gbs)

    @property
    def end_to_end_latency_ns(self) -> float:
        """Table 1's CXL memory access latency (210 ns by default)."""
        return self.base_latency_ns + NATIVE_DRAM_LATENCY_NS

    def replay_latency_ns(self, retries: int,
                          backoff_ns: float = 0.0) -> float:
        """Extra latency of ``retries`` link-layer replays.

        CXL.mem recovers from link errors by replaying the transaction:
        each replay re-pays the protocol latency, plus an exponential
        backoff starting at ``backoff_ns`` and doubling per attempt
        (the bounded retry+backoff model the fault injector charges).
        """
        if retries <= 0:
            return 0.0
        backoff = sum(backoff_ns * 2 ** attempt
                      for attempt in range(retries))
        return retries * self.base_latency_ns + backoff


__all__ = ["CxlLinkConfig"]
