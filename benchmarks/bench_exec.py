"""Before/after benchmark of the parallel experiment executor.

Writes ``BENCH_exec.json`` at the repository root with three
comparisons:

* **overlap** — a batch of sleep-bound tasks, where the pool's fan-out
  is visible regardless of the host's core count (sleeping tasks
  overlap even on one core);
* **fleet** — the real CPU-bound workload: an 8-node
  :class:`~repro.sim.fleet.FleetSimulator` through the sharded
  streaming datapath, serial vs 4 workers.  The speedup ceiling is
  ``min(workers, cores)``; on a single-core host the runner's
  cpu-bound heuristic keeps the batch in-process, so the recorded
  "speedup" is parity (the old flat fan-out recorded 0.81x there —
  pickling whole result payloads through a pool that could not
  overlap anything);
* **result_bytes** — what the fan-out ships per node: the old flat
  shape (one task per node, full comparison result crosses the
  process boundary) against the sharded shape (worker-side reduction
  to :class:`~repro.sim.fleet.NodeSummary`).  This is the payload
  reduction that made the streaming 10k-node soak fit under a fixed
  memory ceiling;
* **warm_start** — a tournament-shaped self-refresh grid (policies x
  duration ladder) where every cell shares >=85% of its work with its
  class's shortest cell: cold runs every cell from step 0, warm
  simulates each distinct prefix once, snapshots it, and forks the
  cells from the snapshot (:mod:`repro.exec.warmstart`).  Both legs
  run serial (one worker), so the recorded speedup is purely prefix
  sharing, not pool overlap, and holds on any host.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_exec.py

``--check-warm-speedup X`` exits non-zero unless the recorded
warm-start speedup is at least ``X`` (the CI gate asserts 2x).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.exec import (ExecConfig, TaskSpec, clear_prefix_memo, run_tasks,
                        run_warm_task)
from repro.host.scheduler import SchedulerConfig
from repro.sim.fleet import FleetConfig, FleetSimulator
from repro.sim.powerdown_sim import ComparisonSimulator, PowerDownSimConfig
from repro.telemetry import MetricsRegistry
from repro.workloads.azure import AzureTraceConfig

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_exec.json"

SLEEP_TASKS = 8
SLEEP_S = 0.5
FLEET_NODES = 16
SHARD_SIZE = 4
WORKERS = 4
WARM_POLICIES = ("paper", "adaptive")
WARM_DURATIONS_S = (2.0, 2.1, 2.2, 2.3)


def _sleep(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _node_config() -> PowerDownSimConfig:
    return PowerDownSimConfig(
        azure=AzureTraceConfig(num_vms=4, duration_s=600.0),
        scheduler=SchedulerConfig(duration_s=600.0))


def _run_node(node: PowerDownSimConfig, seed: int):
    """Flat-shape unit of work: the full comparison result ships back."""
    return ComparisonSimulator(node.with_seed(seed)).run()


def bench_overlap() -> dict:
    """Sleep-bound batch: fan-out overlap independent of core count."""
    tasks = lambda: [TaskSpec(fn=_sleep, args=(SLEEP_S,))
                     for _ in range(SLEEP_TASKS)]
    _, serial_s = _timed(lambda: run_tasks(tasks(),
                                           config=ExecConfig(workers=1)))
    _, parallel_s = _timed(
        lambda: run_tasks(tasks(), config=ExecConfig(workers=WORKERS)))
    return {
        "tasks": SLEEP_TASKS,
        "sleep_per_task_s": SLEEP_S,
        "workers": WORKERS,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
    }


def bench_fleet(repeats: int = 5) -> dict:
    """Sharded 8-node fleet, serial vs 4 workers (no result cache).

    Each leg takes the best of ``repeats`` runs: on a single-core host
    both legs execute the identical in-process path (the runner skips
    the pool for cpu-bound batches there), so a single sample's ~10%
    scheduler jitter could flap the recorded ratio either side of the
    true 1.0.
    """
    config = FleetConfig(num_nodes=FLEET_NODES, node=_node_config(),
                         shard_size=SHARD_SIZE)
    serial = None
    serial_s = parallel_s = float("inf")
    for _ in range(repeats):
        result, wall = _timed(
            lambda: FleetSimulator(config, ExecConfig(workers=1)).run())
        serial, serial_s = result, min(serial_s, wall)
        _, wall = _timed(
            lambda: FleetSimulator(config,
                                   ExecConfig(workers=WORKERS)).run())
        parallel_s = min(parallel_s, wall)
    shipped = serial.exec_telemetry["counters"].get("exec.result_bytes", 0)
    return {
        "nodes": FLEET_NODES,
        "shard_size": SHARD_SIZE,
        "workers": WORKERS,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        # One decimal: the ratio's run-to-run noise on a virtualised
        # host is a few percent, and on a single-core host the two legs
        # execute the identical in-process path (true ratio 1.0).
        "speedup": round(serial_s / parallel_s, 1),
        "result_bytes_per_node": round(shipped / FLEET_NODES, 1),
    }


def bench_result_bytes() -> dict:
    """Shipped bytes per node: flat payloads vs worker-side reduction."""
    node = _node_config()
    metrics = MetricsRegistry()
    flat_tasks = [TaskSpec(fn=_run_node, args=(node, seed))
                  for seed in range(FLEET_NODES)]
    run_tasks(flat_tasks, config=ExecConfig(workers=1), metrics=metrics)
    flat = metrics.counter_values()["exec.result_bytes"]

    config = FleetConfig(num_nodes=FLEET_NODES, node=node,
                         shard_size=SHARD_SIZE)
    result = FleetSimulator(config, ExecConfig(workers=1)).run()
    sharded = result.exec_telemetry["counters"]["exec.result_bytes"]
    return {
        "nodes": FLEET_NODES,
        "flat_bytes_per_node": round(flat / FLEET_NODES, 1),
        "sharded_bytes_per_node": round(sharded / FLEET_NODES, 1),
        "reduction_factor": round(flat / sharded, 1),
    }


def bench_warm_start(repeats: int = 3) -> dict:
    """Cold grid vs checkpoint/fork warm start, both strictly serial.

    The grid is tournament-shaped: every policy runs a ladder of
    durations on an otherwise identical config, so each policy's cells
    form one prefix equivalence class whose shared span is the shortest
    duration (>=85% of every cell here).  Cold simulates each cell from
    step 0; warm simulates each class prefix once, snapshots it, and
    forks the cells.  Best-of-``repeats`` per leg, like the fleet leg.
    """
    from repro.sim.experiments import EXPERIMENTS, run_experiment
    from repro.sim.warm import plan_selfrefresh_grid
    base = EXPERIMENTS["selfrefresh"].tiny_config()
    cells = [dataclasses.replace(base, policy=policy, duration_s=duration)
             for policy in WARM_POLICIES
             for duration in WARM_DURATIONS_S]
    plan = plan_selfrefresh_grid(cells)

    def cold_leg():
        return run_tasks([TaskSpec(fn=run_experiment,
                                   args=("selfrefresh", cell))
                          for cell in cells],
                         config=ExecConfig(workers=1))

    def warm_leg():
        clear_prefix_memo()
        return run_tasks(plan.tasks(), config=ExecConfig(workers=1))

    cold = warm = None
    cold_s = warm_s = float("inf")
    for _ in range(repeats):
        result, wall = _timed(cold_leg)
        cold, cold_s = result, min(cold_s, wall)
        result, wall = _timed(warm_leg)
        warm, warm_s = result, min(warm_s, wall)
    for a, b in zip(cold, warm):
        if a.value.to_record().metrics != b.value.to_record().metrics:
            raise AssertionError("warm-started cell diverged from cold run")
    shortest, longest = min(WARM_DURATIONS_S), max(WARM_DURATIONS_S)
    return {
        "cells": len(cells),
        "classes": plan.num_classes,
        "shared_prefix_fraction": round(shortest / longest, 3),
        "workers": 1,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check-warm-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless warm-start speedup >= X")
    options = parser.parse_args(argv)
    cores = os.cpu_count() or 1
    print(f"host: {cores} core(s); overlap batch "
          f"({SLEEP_TASKS} x {SLEEP_S}s sleep)...")
    overlap = bench_overlap()
    print(f"  serial {overlap['serial_s']}s  parallel "
          f"{overlap['parallel_s']}s  speedup {overlap['speedup']}x")
    print(f"fleet ({FLEET_NODES} nodes, shard size {SHARD_SIZE}, "
          f"{WORKERS} workers)...")
    fleet = bench_fleet()
    print(f"  serial {fleet['serial_s']}s  parallel "
          f"{fleet['parallel_s']}s  speedup {fleet['speedup']}x")
    print("result bytes (flat payloads vs worker-side reduction)...")
    payload = bench_result_bytes()
    print(f"  flat {payload['flat_bytes_per_node']} B/node  sharded "
          f"{payload['sharded_bytes_per_node']} B/node  "
          f"reduction {payload['reduction_factor']}x")
    print(f"warm start ({len(WARM_POLICIES)} policies x "
          f"{len(WARM_DURATIONS_S)} durations, serial both legs)...")
    warm = bench_warm_start()
    print(f"  cold {warm['cold_s']}s  warm {warm['warm_s']}s  "
          f"speedup {warm['speedup']}x")
    document = {
        "host": {
            "cpu_count": cores,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": ("CPU-bound speedup is capped by min(workers, cores); a "
                 "single-core host records parity because the runner "
                 "skips the pool for cpu-bound batches there.  The "
                 "overlap benchmark shows the fan-out machinery even on "
                 "one core; result_bytes shows the sharded datapath's "
                 "payload reduction."),
        "overlap": overlap,
        "fleet": fleet,
        "result_bytes": payload,
        "warm_start": warm,
    }
    OUTPUT.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    if (options.check_warm_speedup is not None
            and warm["speedup"] < options.check_warm_speedup):
        print(f"FAIL: warm-start speedup {warm['speedup']}x < "
              f"required {options.check_warm_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
