"""Virtual machine descriptors used by the scheduler and simulators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import GIB


@dataclass(frozen=True)
class VmSpec:
    """A VM request, as found in the Azure VM trace (Figure 1 methodology).

    Attributes:
        vm_name: Stable identifier within one trace.
        vcpus: Virtual CPU count.
        memory_bytes: Reserved vMemory (a multiple of the 2 GiB AU).
        lifetime_s: Requested lifetime (a multiple of 5 minutes, as in the
            Azure dataset).
        arrival_s: Submission time relative to trace start.
        workload: Name of the CloudSuite-like workload the VM runs.
    """

    vm_name: str
    vcpus: int
    memory_bytes: int
    lifetime_s: float
    arrival_s: float
    workload: str = "data-caching"

    @property
    def memory_gib(self) -> float:
        """Reserved memory in GiB."""
        return self.memory_bytes / GIB

    @property
    def departure_s(self) -> float:
        """Time the VM frees its resources (if admitted at arrival)."""
        return self.arrival_s + self.lifetime_s


@dataclass
class VmEvent:
    """One scheduler event: a VM starting or stopping."""

    time_s: float
    kind: str  # "start" | "stop"
    spec: VmSpec

    def __lt__(self, other: "VmEvent") -> bool:
        # Stops sort before starts at equal times so capacity frees first.
        order = {"stop": 0, "start": 1}
        return (self.time_s, order[self.kind]) < (other.time_s,
                                                  order[other.kind])


__all__ = ["VmSpec", "VmEvent"]
