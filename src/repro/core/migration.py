"""Atomic segment-migration engine (Section 4.2).

A segment migration is internally broken into cacheline-sized copies.  Each
channel has a *foreground request queue* and a *migration queue*; migration
lines are issued only when the channel's foreground queue is empty, so
foreground traffic always has priority.

Write-conflict protocol (verbatim from the paper):

* Foreground write to a segment **not** being migrated — proceeds normally.
* Write to a migrating segment whose **completion bit is set** — routed to
  the new DSN (the copy is finished, only the mapping update is pending).
* Write to a line **not yet copied** — proceeds with the original DSN.
* Write to a line **already copied** — the whole in-progress request is
  aborted, its counter reset, and the copy retried.  After
  ``max_retries`` aborts the request is moved to the tail of the
  migration queue for re-execution.

Correctness holds because foreground requests always outrank migration
requests.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.addressing import DeviceAddressLayout
from repro.dram.geometry import DramGeometry
from repro.errors import MigrationError
from repro.telemetry import EventKind, EventTrace, MetricsRegistry
from repro.units import CACHELINE_BYTES

DEFAULT_MAX_RETRIES = 3


class WriteRouting(enum.Enum):
    """Where a foreground write to a migrating segment must go."""

    OLD_DSN = "old"
    NEW_DSN = "new"


@dataclass
class MigrationRequest:
    """One in-flight segment copy.

    Attributes:
        hsn: Host segment whose mapping will move.
        old_dsn: Source segment.
        new_dsn: Destination segment (already reserved in the allocator).
        lines_total: Cachelines in one segment.
        lines_done: Progress counter.
        completion: Set once all lines are copied; the mapping update is
            still pending at that point.
        retries: Abort count for the current execution attempt.
    """

    hsn: int
    old_dsn: int
    new_dsn: int
    lines_total: int
    lines_done: int = 0
    completion: bool = False
    retries: int = 0
    requeues: int = 0

    @property
    def bytes_total(self) -> int:
        """Segment size in bytes."""
        return self.lines_total * CACHELINE_BYTES

    def reset_progress(self) -> None:
        """Restart the copy from the first line (after an abort)."""
        self.lines_done = 0
        self.completion = False


class MigrationStats:
    """Aggregate counters for the engine.

    A thin view over registry-backed counters (see
    :class:`~repro.core.segment_cache.CacheStats` for the pattern): the
    public attribute names are unchanged, but the numbers live in a
    :class:`~repro.telemetry.MetricsRegistry` so the controller's snapshot
    sees the same values.
    """

    _FIELDS = ("segments_migrated", "lines_copied", "aborts", "requeues",
               "foreground_redirects")

    def __init__(self, segments_migrated: int = 0, lines_copied: int = 0,
                 aborts: int = 0, requeues: int = 0,
                 foreground_redirects: int = 0,
                 registry: MetricsRegistry | None = None,
                 prefix: str = "migration"):
        registry = registry if registry is not None else MetricsRegistry()
        initial = (segments_migrated, lines_copied, aborts, requeues,
                   foreground_redirects)
        for name, value in zip(self._FIELDS, initial):
            counter = registry.counter(f"{prefix}.{name}")
            if value:
                counter.inc(value)
            object.__setattr__(self, f"_{name}", counter)

    def __getattr__(self, name: str):
        if name in MigrationStats._FIELDS:
            return getattr(self, f"_{name}").value
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        if name in self._FIELDS:
            getattr(self, f"_{name}").set(value)
        else:
            object.__setattr__(self, name, value)

    @property
    def bytes_copied(self) -> int:
        """Total bytes moved (including aborted partial copies)."""
        return self.lines_copied * CACHELINE_BYTES

    def __repr__(self) -> str:
        fields = ", ".join(f"{name}={getattr(self, name)}"
                           for name in self._FIELDS)
        return f"MigrationStats({fields})"


#: Callback invoked when a request's copy and mapping update complete:
#: ``on_complete(request)``.
CompletionCallback = Callable[[MigrationRequest], None]


class MigrationEngine:
    """Per-channel migration queues with the atomic write-conflict protocol."""

    def __init__(self, geometry: DramGeometry,
                 on_complete: CompletionCallback | None = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 registry: MetricsRegistry | None = None,
                 trace: EventTrace | None = None):
        self.geometry = geometry
        self.layout = DeviceAddressLayout(geometry)
        self.max_retries = max_retries
        self.on_complete = on_complete
        self.lines_per_segment = geometry.segment_bytes // CACHELINE_BYTES
        self._queues: dict[int, deque[MigrationRequest]] = {
            channel: deque() for channel in range(geometry.channels)}
        # The "outstanding migration registers" of Section 4.2: at most one
        # in-flight request per channel.
        self._inflight: dict[int, MigrationRequest | None] = {
            channel: None for channel in range(geometry.channels)}
        # old_dsn -> request, for O(1) foreground conflict checks.
        self._by_old_dsn: dict[int, MigrationRequest] = {}
        self._trace = trace
        self.stats = MigrationStats(registry=registry)
        # Armed fault injector (None = zero-overhead no-op hooks).
        self._faults = None

    def arm_faults(self, injector) -> None:
        """Attach (or with ``None`` detach) a fault injector."""
        self._faults = injector

    # -- submission --------------------------------------------------------------

    def channel_of(self, dsn: int) -> int:
        """Channel owning segment ``dsn``."""
        return self.layout.channel_of_dsn(dsn)

    def submit(self, hsn: int, old_dsn: int, new_dsn: int) -> MigrationRequest:
        """Queue a copy of segment ``old_dsn`` to ``new_dsn``.

        Both DSNs must live on the same channel — migration never crosses
        channels because channel capacity is balanced by construction.
        """
        src_channel = self.channel_of(old_dsn)
        if src_channel != self.channel_of(new_dsn):
            raise MigrationError(
                f"cross-channel migration {old_dsn:#x} -> {new_dsn:#x}")
        if old_dsn in self._by_old_dsn:
            raise MigrationError(f"DSN {old_dsn:#x} is already migrating")
        request = MigrationRequest(hsn=hsn, old_dsn=old_dsn, new_dsn=new_dsn,
                                   lines_total=self.lines_per_segment)
        self._queues[src_channel].append(request)
        self._by_old_dsn[old_dsn] = request
        if self._trace is not None:
            self._trace.record(EventKind.MIGRATION_SUBMIT, hsn=hsn,
                               old_dsn=old_dsn, new_dsn=new_dsn,
                               channel=src_channel)
        return request

    def pending_count(self) -> int:
        """Requests queued or in flight."""
        inflight = sum(1 for request in self._inflight.values() if request)
        return inflight + sum(len(queue) for queue in self._queues.values())

    def request_for(self, dsn: int) -> MigrationRequest | None:
        """The migration request whose source is ``dsn``, if any."""
        return self._by_old_dsn.get(dsn)

    @property
    def has_tracked_requests(self) -> bool:
        """True when any segment has a queued or in-flight migration.

        The batch datapath uses this to skip write routing entirely; the
        tracked set only changes from the engine's own step/abort paths,
        never from a read access, so it is stable across one batch.
        """
        return bool(self._by_old_dsn)

    def tracked_dsns(self) -> list[int]:
        """Source DSNs of all queued or in-flight migrations."""
        return list(self._by_old_dsn)

    def tracked_requests(self) -> list[MigrationRequest]:
        """All queued or in-flight migration requests."""
        return list(self._by_old_dsn.values())

    # -- foreground interface -------------------------------------------------------

    def on_foreground_write(self, dsn: int, line_index: int) -> WriteRouting:
        """Apply the write-conflict protocol for a foreground write.

        Args:
            dsn: Segment the write targets (pre-migration mapping).
            line_index: Cacheline index within the segment.

        Returns:
            Which copy of the segment the write must be issued to.
        """
        request = self._by_old_dsn.get(dsn)
        if request is None:
            return WriteRouting.OLD_DSN
        if not 0 <= line_index < request.lines_total:
            raise MigrationError(f"line index {line_index} out of range")
        if request.completion:
            self.stats.foreground_redirects += 1
            return WriteRouting.NEW_DSN
        if line_index >= request.lines_done:
            # Not migrated yet; the copy will pick up the new value later.
            return WriteRouting.OLD_DSN
        # Already-migrated line is being overwritten: abort and retry.
        self._abort(request)
        return WriteRouting.OLD_DSN

    def on_foreground_write_batch(self, dsns: np.ndarray,
                                  line_indices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`on_foreground_write` over paired arrays.

        Equivalent to calling the scalar protocol once per element in
        order; returns a bool array — True where the write must be
        issued to the NEW_DSN copy.  The order-sensitivity of the scalar
        loop collapses per request: a request with its completion bit
        set redirects *every* write to it (an abort is unreachable once
        the copy is complete), and an incomplete request aborts at most
        once per batch — the first conflicting write resets
        ``lines_done`` to zero, after which no later line index can
        conflict.  Aborts are applied in first-conflict order so requeue
        ordering matches the scalar sequence.
        """
        dsns = np.asarray(dsns, dtype=np.int64)
        line_indices = np.asarray(line_indices, dtype=np.int64)
        routed_new = np.zeros(len(dsns), dtype=bool)
        if not len(dsns) or not self._by_old_dsn:
            return routed_new
        aborts: list[tuple[int, MigrationRequest]] = []
        for dsn in np.unique(dsns).tolist():
            request = self._by_old_dsn.get(dsn)
            if request is None:
                continue
            positions = np.nonzero(dsns == dsn)[0]
            lines = line_indices[positions]
            bad = (lines < 0) | (lines >= request.lines_total)
            if bad.any():
                # Reproduce the scalar error position: apply nothing for
                # this request past the first invalid write.  (Earlier
                # valid writes to *other* requests have already been or
                # will be applied — their effects are order-free.)
                first_bad = int(positions[int(np.argmax(bad))])
                raise MigrationError(
                    f"line index {int(line_indices[first_bad])} "
                    "out of range")
            if request.completion:
                self.stats.foreground_redirects += len(positions)
                routed_new[positions] = True
                continue
            conflicts = lines < request.lines_done
            if conflicts.any():
                first = int(positions[int(np.argmax(conflicts))])
                aborts.append((first, request))
        for _, request in sorted(aborts, key=lambda item: item[0]):
            self._abort(request)
        return routed_new

    def _abort(self, request: MigrationRequest) -> None:
        request.reset_progress()
        request.retries += 1
        self.stats.aborts += 1
        if self._trace is not None:
            self._trace.record(EventKind.MIGRATION_ABORT, hsn=request.hsn,
                               old_dsn=request.old_dsn,
                               retries=request.retries)
        if request.retries > self.max_retries:
            # Move to the tail of its channel's migration queue.
            channel = self.channel_of(request.old_dsn)
            if self._inflight[channel] is request:
                self._inflight[channel] = None
            else:
                try:
                    self._queues[channel].remove(request)
                except ValueError:
                    pass
            request.retries = 0
            request.requeues += 1
            self.stats.requeues += 1
            self._queues[channel].append(request)
            if self._trace is not None:
                self._trace.record(EventKind.MIGRATION_REQUEUE,
                                   hsn=request.hsn, old_dsn=request.old_dsn,
                                   requeues=request.requeues,
                                   channel=channel)

    # -- progress --------------------------------------------------------------------

    def step_channel(self, channel: int, foreground_busy: bool = False,
                     lines: int = 1) -> int:
        """Copy up to ``lines`` cachelines on ``channel``.

        Migration only uses idle bandwidth: nothing happens when
        ``foreground_busy`` is True.

        Retirement is a separate step from the copy: when the last line of
        a request lands, only its completion bit is set and the step ends.
        The mapping update (:meth:`_retire`) happens at the start of the
        *next* step on this channel.  This is the Section 4.2 window in
        which a foreground write sees "completion bit set, mapping update
        pending" and must be routed to the new DSN.

        Returns:
            Number of lines actually copied.
        """
        if foreground_busy:
            return 0
        copied = 0
        while copied < lines:
            request = self._inflight[channel]
            if request is None:
                if not self._queues[channel]:
                    break
                request = self._queues[channel].popleft()
                self._inflight[channel] = request
            if request.completion:
                # Deferred from the step that copied the last line.
                self._retire(channel, request)
                continue
            # Injected abort (hook: migration.copy).  Only legal while the
            # completion bit is clear — past it, foreground writes are
            # already redirected to the new DSN and an abort would lose
            # them.  The abort may requeue the request, so stop stepping.
            if (self._faults is not None
                    and self._faults.on_migration_copy(request, channel)):
                self._abort(request)
                break
            remaining = request.lines_total - request.lines_done
            take = min(lines - copied, remaining)
            request.lines_done += take
            copied += take
            self.stats.lines_copied += take
            if request.lines_done == request.lines_total:
                request.completion = True
                break
        return copied

    def step_all(self, busy_channels: set[int] | None = None,
                 lines: int = 1) -> int:
        """Copy up to ``lines`` lines on every non-busy channel."""
        busy = busy_channels or set()
        return sum(self.step_channel(channel, channel in busy, lines)
                   for channel in self._queues)

    def drain(self) -> int:
        """Run all queued migrations to completion.

        Returns:
            Cumulative count of segments migrated by this engine.
        """
        for channel in self._queues:
            while self._inflight[channel] or self._queues[channel]:
                self.step_channel(channel, lines=self.lines_per_segment)
        return self.stats.segments_migrated

    def _retire(self, channel: int, request: MigrationRequest) -> None:
        """Finish a request: mapping update then removal from registers."""
        self._inflight[channel] = None
        del self._by_old_dsn[request.old_dsn]
        self.stats.segments_migrated += 1
        if self._trace is not None:
            self._trace.record(EventKind.MIGRATION_RETIRE, hsn=request.hsn,
                               old_dsn=request.old_dsn,
                               new_dsn=request.new_dsn, channel=channel)
        if self.on_complete is not None:
            self.on_complete(request)

    # -- serialisation ------------------------------------------------------------------

    _REQUEST_FIELDS = ("hsn", "old_dsn", "new_dsn", "lines_total",
                       "lines_done", "completion", "retries", "requeues")

    def state_dict(self) -> dict:
        """Queues, in-flight registers, and the conflict index, as data.

        Each :class:`MigrationRequest` is serialised exactly once and
        referenced by index everywhere it appears, because one request
        object is *shared* between its channel queue (or in-flight
        register) and ``_by_old_dsn`` — restoring per-container copies
        would break the abort/retire protocol.  The stats counters live
        in the registry and restore through
        :meth:`~repro.telemetry.MetricsRegistry.load_state_dict`.
        """
        requests: list[dict] = []
        refs: dict[int, int] = {}

        def ref(request: MigrationRequest) -> int:
            key = id(request)
            if key not in refs:
                refs[key] = len(requests)
                requests.append({name: getattr(request, name)
                                 for name in self._REQUEST_FIELDS})
            return refs[key]

        state = {
            "queues": {channel: [ref(request) for request in queue]
                       for channel, queue in self._queues.items()},
            "inflight": {channel: None if request is None else ref(request)
                         for channel, request in self._inflight.items()},
            "by_old_dsn": {dsn: ref(request)
                           for dsn, request in self._by_old_dsn.items()},
        }
        state["requests"] = requests
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output, preserving request sharing."""
        requests = [MigrationRequest(**fields)
                    for fields in state["requests"]]
        self._queues = {channel: deque(requests[index] for index in indices)
                        for channel, indices in state["queues"].items()}
        self._inflight = {
            channel: None if index is None else requests[index]
            for channel, index in state["inflight"].items()}
        self._by_old_dsn = {dsn: requests[index]
                            for dsn, index in state["by_old_dsn"].items()}

    # -- cost model ---------------------------------------------------------------------

    def migration_time_s(self, num_bytes: int, spare_bandwidth_gbs: float) -> float:
        """Wall time to move ``num_bytes`` using spare channel bandwidth.

        Section 5.1 measures this with a bandwidth-throttled ``memcpy``; we
        compute it directly from the spare bandwidth.
        """
        if spare_bandwidth_gbs <= 0:
            raise MigrationError("no spare bandwidth for migration")
        return num_bytes / (spare_bandwidth_gbs * 1e9)


__all__ = [
    "DEFAULT_MAX_RETRIES",
    "WriteRouting",
    "MigrationRequest",
    "MigrationStats",
    "MigrationEngine",
]
