"""Figure 11: DRAM power vs active ranks and bandwidth.

Paper: (a) background power (including refresh) falls steeply as ranks
per channel drop from eight to two; (b) active power scales near-linearly
with bandwidth utilisation.
"""

from repro.dram.geometry import DramGeometry
from repro.dram.power import DramPowerModel, PowerState
from repro.units import GIB

from conftest import report


def build_model():
    return DramPowerModel(geometry=DramGeometry(rank_bytes=16 * GIB))


def test_fig11a_background_power_vs_ranks(benchmark):
    model = benchmark.pedantic(build_model, rounds=1, iterations=1)
    full = model.background_power_active_ranks(8)
    rows = []
    values = {}
    for active in (8, 6, 4, 2):
        power = model.background_power_active_ranks(active)
        values[active] = power / full
        rows.append((f"{active} ranks/ch", f"{power / full:.2f}x"))
    report("Figure 11(a): normalised background power", rows,
           header=("config", "vs 8-rank"))
    # Shape: monotone decline; 2-rank config sits well below half-ish of
    # the 8-rank background (the paper measures a steep drop).
    assert values[8] == 1.0
    assert values[6] < 1.0
    assert values[2] < values[4] < values[6]
    assert values[2] < 0.6


def test_fig11a_mpsm_vs_self_refresh_gap():
    """MPSM parks ranks far deeper than self-refresh (Table 2)."""
    model = build_model()
    mpsm = model.background_power_active_ranks(2, PowerState.MPSM)
    sr = model.background_power_active_ranks(2, PowerState.SELF_REFRESH)
    assert mpsm < sr


def test_fig11b_active_power_linear_in_bandwidth(benchmark):
    model = build_model()

    def measure():
        return [model.active_power(gbs) for gbs in (0, 10, 20, 30, 40)]

    powers = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [(f"{10 * i} GB/s", f"{p:.2f} RSU")
            for i, p in enumerate(powers)]
    report("Figure 11(b): active power vs bandwidth", rows,
           header=("bandwidth", "active power"))
    # Near-linear scaling: equal increments.
    increments = [b - a for a, b in zip(powers, powers[1:])]
    assert max(increments) - min(increments) < 1e-9
