"""Tests for HPA/DPA address codecs (Figures 4 and 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.addressing import (DeviceAddressLayout, HostAddressLayout,
                                   SegmentLocation)
from repro.dram.geometry import DramGeometry, PAPER_1TB_GEOMETRY
from repro.errors import AddressError, ConfigurationError
from repro.units import GIB, MIB


@pytest.fixture
def geometry():
    return DramGeometry(rank_bytes=1 * GIB)


@pytest.fixture
def host_layout(geometry):
    return HostAddressLayout(geometry, au_bytes=256 * MIB)


@pytest.fixture
def device_layout(geometry):
    return DeviceAddressLayout(geometry)


class TestHostLayoutWidths:
    def test_paper_au_offset_is_10_bits(self):
        """2 GiB AU of 2 MiB segments -> 1024 segments -> 10 bits."""
        layout = HostAddressLayout(PAPER_1TB_GEOMETRY)
        assert layout.au_offset_bits == 10
        assert layout.segments_per_au == 1024

    def test_host_id_bits_for_16_hosts(self):
        layout = HostAddressLayout(PAPER_1TB_GEOMETRY)
        assert layout.host_id_bits == 4

    def test_au_must_be_segment_multiple(self, geometry):
        with pytest.raises(ConfigurationError):
            HostAddressLayout(geometry, au_bytes=3 * MIB)

    def test_hosts_power_of_two(self, geometry):
        with pytest.raises(ConfigurationError):
            HostAddressLayout(geometry, max_hosts=10)


class TestHsnCodec:
    def test_pack_unpack_roundtrip(self, host_layout):
        hsn = host_layout.pack_hsn(host_id=3, au_id=17, au_offset=99)
        assert host_layout.unpack_hsn(hsn) == (3, 17, 99)

    @given(st.data())
    def test_roundtrip_property(self, data):
        layout = HostAddressLayout(DramGeometry(rank_bytes=1 * GIB),
                                   au_bytes=256 * MIB)
        host = data.draw(st.integers(0, layout.max_hosts - 1))
        au = data.draw(st.integers(0, layout.max_aus_per_host - 1))
        off = data.draw(st.integers(0, layout.segments_per_au - 1))
        assert layout.unpack_hsn(layout.pack_hsn(host, au, off)) == \
            (host, au, off)

    def test_field_range_checks(self, host_layout):
        with pytest.raises(AddressError):
            host_layout.pack_hsn(host_layout.max_hosts, 0, 0)
        with pytest.raises(AddressError):
            host_layout.pack_hsn(0, host_layout.max_aus_per_host, 0)
        with pytest.raises(AddressError):
            host_layout.pack_hsn(0, 0, host_layout.segments_per_au)

    def test_hsn_of_hpa(self, host_layout):
        hpa = 5 * 2 * MIB + 1234
        assert host_layout.hsn_of_hpa(hpa) == 5
        assert host_layout.offset_of_hpa(hpa) == 1234

    def test_negative_hpa_rejected(self, host_layout):
        with pytest.raises(AddressError):
            host_layout.hsn_of_hpa(-1)

    def test_hpa_reconstruction(self, host_layout):
        assert host_layout.hpa_of(7, 42) == 7 * 2 * MIB + 42

    def test_hpa_offset_range(self, host_layout):
        with pytest.raises(AddressError):
            host_layout.hpa_of(0, 2 * MIB)


class TestDsnCodec:
    def test_pack_unpack_roundtrip(self, device_layout):
        location = SegmentLocation(channel=2, rank=5, index=300)
        dsn = device_layout.pack_dsn(location)
        assert device_layout.unpack_dsn(dsn) == location

    @given(st.data())
    def test_roundtrip_property(self, data):
        layout = DeviceAddressLayout(DramGeometry(rank_bytes=1 * GIB))
        geo = layout.geometry
        location = SegmentLocation(
            channel=data.draw(st.integers(0, geo.channels - 1)),
            rank=data.draw(st.integers(0, geo.ranks_per_channel - 1)),
            index=data.draw(st.integers(0, geo.segments_per_rank - 1)))
        assert layout.unpack_dsn(layout.pack_dsn(location)) == location

    def test_out_of_range_fields(self, device_layout):
        with pytest.raises(AddressError):
            device_layout.pack_dsn(SegmentLocation(4, 0, 0))
        with pytest.raises(AddressError):
            device_layout.pack_dsn(SegmentLocation(0, 8, 0))
        with pytest.raises(AddressError):
            device_layout.pack_dsn(SegmentLocation(0, 0, 512))

    def test_consecutive_dsns_interleave_channels(self, device_layout):
        """Figure 6: channel bits sit just above the segment offset."""
        channels = [device_layout.channel_of_dsn(dsn) for dsn in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_rank_bits_are_most_significant(self, device_layout):
        """Figure 6: the top bits select the rank, so a rank's segments
        form one contiguous DSN block."""
        geo = device_layout.geometry
        per_rank_block = geo.total_segments // geo.ranks_per_channel
        for rank in range(geo.ranks_per_channel):
            dsn = device_layout.pack_dsn(SegmentLocation(0, rank, 0))
            assert device_layout.rank_of_dsn(dsn) == rank
            assert dsn // per_rank_block == rank

    def test_dpa_roundtrip(self, device_layout):
        dsn = device_layout.pack_dsn(SegmentLocation(1, 2, 3))
        dpa = device_layout.dpa_of(dsn, offset=4096)
        assert device_layout.dsn_of_dpa(dpa) == dsn

    def test_dpa_range_check(self, device_layout):
        with pytest.raises(AddressError):
            device_layout.dsn_of_dpa(device_layout.geometry.total_bytes)

    def test_rank_id_helper(self):
        assert SegmentLocation(1, 2, 3).rank_id == (1, 2)


class TestCrossLayoutProperties:
    @given(st.integers(min_value=0))
    def test_every_dsn_maps_to_valid_location(self, seed):
        layout = DeviceAddressLayout(DramGeometry(rank_bytes=1 * GIB))
        geo = layout.geometry
        dsn = seed % geo.total_segments
        location = layout.unpack_dsn(dsn)
        assert 0 <= location.channel < geo.channels
        assert 0 <= location.rank < geo.ranks_per_channel
        assert 0 <= location.index < geo.segments_per_rank

    def test_dsn_space_is_dense(self, device_layout):
        """Every DSN in [0, total) is reachable exactly once."""
        geo = device_layout.geometry
        seen = set()
        for channel in range(geo.channels):
            for rank in range(geo.ranks_per_channel):
                for index in range(0, geo.segments_per_rank,
                                   geo.segments_per_rank // 8):
                    seen.add(device_layout.pack_dsn(
                        SegmentLocation(channel, rank, index)))
        assert len(seen) == geo.channels * geo.ranks_per_channel * 8
