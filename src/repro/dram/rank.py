"""Per-rank power-state machine with residency and energy accounting.

Each :class:`Rank` tracks its power state over (simulated) time, the number
of accesses it served, and how long it spent in each state.  Ranks are
identified by ``(channel, index)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.power import (PowerState, check_transition,
                              transition_exit_penalty_ns)
from repro.errors import PowerStateError


@dataclass
class Rank:
    """One DRAM rank and its power-state history.

    Attributes:
        channel: Channel the rank belongs to.
        index: Rank index within the channel.
        state: Current power state.
    """

    channel: int
    index: int
    state: PowerState = PowerState.STANDBY
    _state_entered_at_s: float = 0.0
    residency_s: dict[PowerState, float] = field(
        default_factory=lambda: {state: 0.0 for state in PowerState})
    access_count: int = 0
    transition_count: int = 0
    exit_penalty_total_ns: float = 0.0

    @property
    def rank_id(self) -> tuple[int, int]:
        """Stable ``(channel, index)`` identifier."""
        return (self.channel, self.index)

    def set_state(self, new_state: PowerState, now_s: float) -> float:
        """Transition to ``new_state`` at simulated time ``now_s``.

        Returns:
            The exit penalty in nanoseconds paid by the transition (0.0 for
            entering a low-power state or a no-op transition).

        Raises:
            PowerStateError: on an illegal transition or time running
                backwards.
        """
        if now_s < self._state_entered_at_s:
            raise PowerStateError(
                f"time moved backwards: {now_s} < {self._state_entered_at_s}")
        if new_state is self.state:
            return 0.0
        check_transition(self.state, new_state)
        self.residency_s[self.state] += now_s - self._state_entered_at_s
        penalty_ns = transition_exit_penalty_ns(self.state, new_state)
        self.exit_penalty_total_ns += penalty_ns
        self.state = new_state
        self._state_entered_at_s = now_s
        self.transition_count += 1
        return penalty_ns

    def record_access(self, count: int = 1) -> None:
        """Count ``count`` DRAM accesses served by this rank.

        Raises:
            PowerStateError: if the rank is in MPSM (it cannot serve data).
        """
        if self.state is PowerState.MPSM:
            raise PowerStateError(
                f"rank {self.rank_id} accessed while in MPSM")
        self.access_count += count

    def finalize(self, now_s: float) -> None:
        """Close the open residency interval at the end of a simulation."""
        if now_s < self._state_entered_at_s:
            raise PowerStateError(
                f"time moved backwards: {now_s} < {self._state_entered_at_s}")
        self.residency_s[self.state] += now_s - self._state_entered_at_s
        self._state_entered_at_s = now_s

    def residency_snapshot(self, now_s: float | None = None,
                           ) -> dict[str, float]:
        """Seconds spent per power state, without mutating the rank.

        Args:
            now_s: When given, the still-open interval for the current
                state is counted up to this time (it must not precede the
                state entry time).
        """
        snapshot = {state.name.lower(): seconds
                    for state, seconds in self.residency_s.items()}
        if now_s is not None:
            if now_s < self._state_entered_at_s:
                raise PowerStateError(
                    f"time moved backwards: {now_s} < "
                    f"{self._state_entered_at_s}")
            snapshot[self.state.name.lower()] += (
                now_s - self._state_entered_at_s)
        return snapshot

    def background_energy(self, state_power: dict[PowerState, float]) -> float:
        """Background energy over recorded residencies (power-units x s)."""
        return sum(state_power[state] * seconds
                   for state, seconds in self.residency_s.items())

    # -- serialisation --------------------------------------------------------

    def state_dict(self) -> dict:
        """Power state, residency history, and counters as plain data."""
        return {"state": self.state.name,
                "state_entered_at_s": self._state_entered_at_s,
                "residency_s": {state.name: seconds
                                for state, seconds in
                                self.residency_s.items()},
                "access_count": self.access_count,
                "transition_count": self.transition_count,
                "exit_penalty_total_ns": self.exit_penalty_total_ns}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        self.state = PowerState[state["state"]]
        self._state_entered_at_s = state["state_entered_at_s"]
        self.residency_s = {PowerState[name]: seconds
                            for name, seconds in
                            state["residency_s"].items()}
        self.access_count = state["access_count"]
        self.transition_count = state["transition_count"]
        self.exit_penalty_total_ns = state["exit_penalty_total_ns"]


__all__ = ["Rank"]
