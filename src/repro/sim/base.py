"""The unified experiment surface every simulator conforms to.

An *experiment* is anything with a ``name``, a ``config`` dataclass, and
a ``run()`` that returns a result exposing ``to_record()`` — the shape
both the CLI and :mod:`repro.exec` dispatch through.  The protocols here
are structural (``typing.Protocol``): simulators do not inherit from
them, they simply fit.

:class:`SeededConfig` is the config-side counterpart: a mixin for frozen
config dataclasses that derives variants via :func:`dataclasses.replace`
so fan-out code (fleet nodes, sweeps) can never hand-copy fields and
silently drop a newly added one.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class ExperimentResult(Protocol):
    """Anything an experiment's ``run()`` may return."""

    def to_record(self) -> Any:
        """Flatten into an :class:`~repro.sim.results.ExperimentRecord`."""
        ...


@runtime_checkable
class Experiment(Protocol):
    """The canonical ``run(config) -> Result`` surface."""

    name: str
    config: Any

    def run(self) -> ExperimentResult:
        """Execute the experiment for ``self.config``."""
        ...


class SeededConfig:
    """Mixin for frozen config dataclasses with a ``seed`` field."""

    def replace(self, **changes: Any):
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)  # type: ignore[type-var]

    def with_seed(self, seed: int):
        """A copy of this config that only differs in its ``seed``."""
        return dataclasses.replace(self, seed=seed)  # type: ignore[type-var]


__all__ = ["Experiment", "ExperimentResult", "SeededConfig"]
