"""Six-hour VM-schedule simulation of rank-level power-down.

Reproduces the Section 6.2 methodology: an Azure-like VM trace is
scheduled onto one memory-pool node for six hours; every VM allocation/
deallocation flows through the DTL controller, which consolidates
segments and powers rank-groups up/down.  Power is integrated per
5-minute interval exactly as the paper does (Section 5.1):

* background power from each rank's power-state residency,
* active power proportional to the live VMs' aggregate bandwidth,
* a short migration-power pulse after deallocations (the paper's red
  line in Figure 12(a)), sized by the spare bandwidth available to the
  migration engine.

The baseline is the same schedule with power-down disabled (every rank in
standby), matching the paper's 8-rank baseline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DtlConfig
from repro.core.controller import DtlController, VmHandle
from repro.dram.geometry import DramGeometry
from repro.dram.power import EnergyAccumulator, PowerState
from repro.host.scheduler import SchedulerConfig, VmScheduler
from repro.host.vm import VmSpec
from repro.sim.base import SeededConfig
from repro.sim.perf_model import (INTERLEAVING_OFF_PENALTY_CXL,
                                  PerformanceModel, TRANSLATION_OVERHEAD)
from repro.units import GIB
from repro.workloads.azure import AzureTraceConfig, generate_vm_trace
from repro.workloads.cloudsuite import PROFILES


@dataclass(frozen=True)
class PowerDownSimConfig(SeededConfig):
    """Parameters of the schedule-level simulation.

    The default geometry is a 512 GiB device (4 channels x 8 ranks x
    16 GiB) of which the scheduler uses up to 384 GB — mirroring the
    paper's 1 TB-installed / 384 GB-used setup (Section 5.1).
    """

    geometry: DramGeometry = field(
        default_factory=lambda: DramGeometry(rank_bytes=16 * GIB))
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    azure: AzureTraceConfig = field(default_factory=AzureTraceConfig)
    enable_power_down: bool = True
    group_granularity: int = 2  # CKE pairs (Section 5.1)
    spare_migration_bandwidth_gbs: float = 18.0
    #: Registered policy name driving victim selection / demotion depth
    #: (see repro.policies.available_policies()).
    policy: str = "paper"
    seed: int = 0
    #: Keep the per-interval timeseries (`intervals`, `window_snapshots`)
    #: on the result.  Fleet shards turn this off: the records dominate
    #: the result's pickled size, and every scalar the fleet aggregates
    #: (energies, mean bandwidth/occupancy, final counters) is computed
    #: identically either way.
    keep_timeseries: bool = True


@dataclass
class IntervalRecord:
    """State of the device over one 5-minute interval."""

    time_s: float
    duration_s: float
    reserved_bytes: int
    live_vms: int
    active_ranks_per_channel: int
    background_power: float
    active_power: float
    migration_power: float
    bandwidth_gbs: float

    @property
    def total_power(self) -> float:
        """Total power over the interval (RSU)."""
        return self.background_power + self.active_power + self.migration_power


@dataclass
class PowerDownResult:
    """Everything one simulation run produced."""

    config: PowerDownSimConfig
    intervals: list[IntervalRecord]
    energy: EnergyAccumulator
    migrated_bytes: int
    migration_time_s: float
    power_transitions: int
    execution_time_factor: float
    mean_active_ranks: float
    #: Time-weighted means over the whole run — computed from running
    #: sums, so they are present (and bit-identical) whether or not the
    #: interval timeseries was kept.
    mean_bandwidth_gbs: float = 0.0
    mean_reserved_bytes: float = 0.0
    telemetry: dict = field(default_factory=dict)
    window_snapshots: list[dict] = field(default_factory=list)

    @property
    def total_energy(self) -> float:
        """Total DRAM energy including the execution-time stretch."""
        return self.energy.total_j * self.execution_time_factor

    def power_timeseries(self) -> tuple[np.ndarray, np.ndarray]:
        """(time_s, total_power) samples for Figure 12(a)."""
        times = np.array([record.time_s for record in self.intervals])
        powers = np.array([record.total_power for record in self.intervals])
        return times, powers

    def to_record(self):
        """Flatten into an :class:`~repro.sim.results.ExperimentRecord`."""
        from repro.sim.results import ExperimentRecord, flatten_powerdown
        return ExperimentRecord("powerdown", flatten_powerdown(self))


def energy_savings(baseline: PowerDownResult, dtl: PowerDownResult) -> float:
    """Fractional DRAM energy saving of ``dtl`` over ``baseline``."""
    return 1.0 - dtl.total_energy / baseline.total_energy


def power_savings(baseline: PowerDownResult, dtl: PowerDownResult) -> float:
    """Fractional DRAM *power* saving (no execution-time stretch)."""
    return 1.0 - dtl.energy.total_j / baseline.energy.total_j


def background_power_savings(baseline: PowerDownResult,
                             dtl: PowerDownResult) -> float:
    """Fractional background-power saving (Figure 13)."""
    return 1.0 - dtl.energy.background_j / baseline.energy.background_j


@dataclass
class PowerDownRunState:
    """Loop state of one schedule replay — one interval per advance.

    Picklable as a single graph (the controller keeps its internal
    sharing through the pickle memo), so a checkpoint taken between
    intervals resumes bit-identically.
    """

    controller: DtlController
    events: list
    event_index: int
    handles: dict[str, VmHandle]
    energy: EnergyAccumulator
    intervals: list[IntervalRecord]
    window_snapshots: list[dict]
    active_rank_samples: list[int]
    interval_s: float
    end_s: float
    time_s: float = 0.0
    bandwidth_gbs: float = 0.0
    migrated_bytes_total: int = 0
    migration_time_total: float = 0.0
    bandwidth_weighted: float = 0.0
    reserved_weighted: float = 0.0
    duration_total: float = 0.0
    #: Pending migration work spills into the interval it occurred in.
    pending_migration_bytes: float = 0.0


class PowerDownSimulator:
    """Replays a VM schedule through the DTL controller."""

    name = "powerdown"

    def __init__(self, config: PowerDownSimConfig | None = None):
        self.config = config or PowerDownSimConfig()
        self.perf_model = PerformanceModel()

    def _make_controller(self) -> DtlController:
        config = self.config
        return DtlController(DtlConfig(
            geometry=config.geometry,
            enable_power_down=config.enable_power_down,
            enable_self_refresh=False,
            group_granularity=config.group_granularity,
            policy=config.policy))

    def _vm_bandwidth_gbs(self, spec: VmSpec) -> float:
        profile = PROFILES[spec.workload]
        return profile.bandwidth_gbs(spec.vcpus)

    def begin(self, specs: list[VmSpec] | None = None) -> PowerDownRunState:
        """Schedule the trace and build the controller; interval-0 state."""
        config = self.config
        if specs is None:
            specs = generate_vm_trace(config.azure, seed=config.seed)
        schedule = VmScheduler(config.scheduler).run(specs)
        return PowerDownRunState(
            controller=self._make_controller(),
            events=list(schedule.events), event_index=0, handles={},
            energy=EnergyAccumulator(), intervals=[], window_snapshots=[],
            active_rank_samples=[],
            interval_s=config.scheduler.sample_interval_s,
            end_s=config.scheduler.duration_s)

    def _apply_events_until(self, state: PowerDownRunState,
                            limit_s: float) -> None:
        config = self.config
        controller = state.controller
        while state.event_index < len(state.events) and \
                state.events[state.event_index].time_s <= limit_s:
            event = state.events[state.event_index]
            state.event_index += 1
            spec = event.spec
            if event.kind == "start":
                state.handles[spec.vm_name] = controller.allocate_vm(
                    0, spec.memory_bytes, now_s=event.time_s)
                state.bandwidth_gbs += self._vm_bandwidth_gbs(spec)
            else:
                handle = state.handles.pop(spec.vm_name)
                state.bandwidth_gbs -= self._vm_bandwidth_gbs(spec)
                transitions = controller.deallocate_vm(
                    handle, now_s=event.time_s)
                moved = sum(t.migrated_bytes for t in transitions)
                state.migrated_bytes_total += moved
                state.pending_migration_bytes += moved
                if moved:
                    state.migration_time_total += moved / (
                        config.spare_migration_bandwidth_gbs * 1e9)

    def advance(self, state: PowerDownRunState) -> bool:
        """Simulate one interval if any remain; True while more remain."""
        if state.time_s >= state.end_s:
            return False
        config = self.config
        controller = state.controller
        device = controller.device
        power_model = device.power_model

        time_s = state.time_s
        interval_end = min(time_s + state.interval_s, state.end_s)
        self._apply_events_until(state, interval_end)
        duration = interval_end - time_s
        counts = device.state_counts()
        background = power_model.background_power(counts)
        # bandwidth_gbs is a +=/-= accumulator over VM rates, so on
        # a node that empties it can drift to ~-1e-16; clamp only
        # at the observation point (the accumulator itself must
        # stay untouched to keep non-drifted schedules bit-stable).
        observed_gbs = max(0.0, state.bandwidth_gbs)
        active = power_model.active_power(observed_gbs)
        # Migration pulse: the pending bytes move at the spare
        # bandwidth; the pulse is much shorter than the interval, so we
        # spread its energy over the interval (same integral).
        migration_time = state.pending_migration_bytes / (
            config.spare_migration_bandwidth_gbs * 1e9)
        migration_energy = (power_model.active_power(
            config.spare_migration_bandwidth_gbs) * migration_time)
        migration_power = migration_energy / duration if duration else 0.0
        state.pending_migration_bytes = 0.0
        state.energy.add_interval(duration, background, active,
                                  migration_power)
        if config.enable_power_down and controller.power_down is not None:
            active_ranks = controller.power_down.active_ranks_per_channel()
        else:
            active_ranks = config.geometry.ranks_per_channel
        state.active_rank_samples.append(active_ranks)
        reserved = controller.reserved_bytes()
        state.bandwidth_weighted += observed_gbs * duration
        state.reserved_weighted += reserved * duration
        state.duration_total += duration
        if config.keep_timeseries:
            state.intervals.append(IntervalRecord(
                time_s=time_s, duration_s=duration,
                reserved_bytes=reserved,
                live_vms=len(state.handles),
                active_ranks_per_channel=active_ranks,
                background_power=background, active_power=active,
                migration_power=migration_power,
                bandwidth_gbs=observed_gbs))
        controller.end_window()
        if config.keep_timeseries:
            state.window_snapshots.append({
                "time_s": interval_end,
                "counters": controller.metrics.counter_values()})
        state.time_s = interval_end
        return state.time_s < state.end_s

    def finish(self, state: PowerDownRunState) -> PowerDownResult:
        """Summarise a fully-advanced state into the experiment result."""
        config = self.config
        controller = state.controller
        mean_active = float(np.mean(state.active_rank_samples))
        execution_factor = self._execution_time_factor(mean_active)
        transitions = 0
        if controller.power_down is not None:
            transitions = len(controller.power_down.transitions)
        telemetry = controller.telemetry_snapshot(
            now_s=state.end_s).to_dict()
        return PowerDownResult(
            config=config, intervals=state.intervals, energy=state.energy,
            migrated_bytes=state.migrated_bytes_total,
            migration_time_s=state.migration_time_total,
            power_transitions=transitions,
            execution_time_factor=execution_factor,
            mean_active_ranks=mean_active,
            mean_bandwidth_gbs=(state.bandwidth_weighted
                                / state.duration_total
                                if state.duration_total else 0.0),
            mean_reserved_bytes=(state.reserved_weighted
                                 / state.duration_total
                                 if state.duration_total else 0.0),
            telemetry=telemetry,
            window_snapshots=state.window_snapshots)

    def run(self, specs: list[VmSpec] | None = None) -> PowerDownResult:
        """Simulate the schedule; returns interval records and energy.

        Implemented as ``finish(drive(begin()))`` so the stepped path
        and the one-shot path are the same code.
        """
        state = self.begin(specs)
        while self.advance(state):
            pass
        return self.finish(state)

    def _execution_time_factor(self, mean_active_ranks: float) -> float:
        """Section 5.1 post-processing of the execution time.

        The DTL run pays for (i) disabled rank interleaving, (ii) address
        translation, and (iii) reduced active-rank parallelism; the
        baseline pays nothing.
        """
        if not self.config.enable_power_down:
            return 1.0
        low = int(np.floor(mean_active_ranks))
        high = int(np.ceil(mean_active_ranks))
        low = max(1, min(low, self.config.geometry.ranks_per_channel))
        high = max(1, min(high, self.config.geometry.ranks_per_channel))
        slow_low = self.perf_model.mean_rank_sweep_slowdown(low)
        slow_high = self.perf_model.mean_rank_sweep_slowdown(high)
        if high == low:
            rank_penalty = slow_low
        else:
            frac = mean_active_ranks - low
            rank_penalty = slow_low + (slow_high - slow_low) * frac
        return (1.0 + INTERLEAVING_OFF_PENALTY_CXL + TRANSLATION_OVERHEAD
                + rank_penalty)


@dataclass
class PowerDownComparisonResult:
    """Paired baseline/DTL runs on the same VM trace."""

    config: PowerDownSimConfig
    baseline: PowerDownResult
    dtl: PowerDownResult

    @property
    def energy_savings(self) -> float:
        """Fractional DRAM energy saving of the DTL run."""
        return energy_savings(self.baseline, self.dtl)

    @property
    def power_savings(self) -> float:
        """Fractional DRAM power saving (no execution-time stretch)."""
        return power_savings(self.baseline, self.dtl)

    @property
    def background_savings(self) -> float:
        """Fractional background-power saving (Figure 13)."""
        return background_power_savings(self.baseline, self.dtl)

    def as_tuple(self) -> tuple[PowerDownResult, PowerDownResult]:
        """The legacy ``(baseline, dtl)`` pair."""
        return self.baseline, self.dtl

    def to_record(self):
        """Flatten into an :class:`~repro.sim.results.ExperimentRecord`."""
        from repro.sim.results import ExperimentRecord, flatten_powerdown
        return ExperimentRecord(
            "powerdown_comparison",
            {"energy_savings": self.energy_savings,
             "power_savings": self.power_savings,
             "background_savings": self.background_savings,
             "baseline_total_energy_rsu_s": self.baseline.total_energy,
             **{f"dtl_{key}": value
                for key, value in flatten_powerdown(self.dtl).items()}})


@dataclass
class ComparisonRunState:
    """Both legs of a baseline-vs-DTL pair, advanced one interval at a
    time: the baseline leg runs to completion first (matching the serial
    order of :meth:`ComparisonSimulator.run`), then the DTL leg."""

    baseline_sim: PowerDownSimulator
    baseline_state: PowerDownRunState
    dtl_sim: PowerDownSimulator
    dtl_state: PowerDownRunState
    baseline_done: bool = False


class ComparisonSimulator:
    """Baseline-vs-DTL pair on one VM trace — the fleet's unit of work.

    The baseline config is derived with :func:`dataclasses.replace`, so
    any field added to :class:`PowerDownSimConfig` automatically carries
    over instead of silently reverting to its default.
    """

    name = "powerdown_comparison"

    def __init__(self, config: PowerDownSimConfig | None = None):
        self.config = config or PowerDownSimConfig()

    def begin(self) -> ComparisonRunState:
        """Generate the shared VM trace and open both legs."""
        config = self.config
        specs = generate_vm_trace(config.azure, seed=config.seed)
        baseline_config = dataclasses.replace(config,
                                              enable_power_down=False)
        baseline_sim = PowerDownSimulator(baseline_config)
        dtl_sim = PowerDownSimulator(config)
        return ComparisonRunState(
            baseline_sim=baseline_sim,
            baseline_state=baseline_sim.begin(specs),
            dtl_sim=dtl_sim, dtl_state=dtl_sim.begin(specs))

    def advance(self, state: ComparisonRunState) -> bool:
        """One interval of whichever leg is currently running."""
        if not state.baseline_done:
            if not state.baseline_sim.advance(state.baseline_state):
                state.baseline_done = True
            return True  # the DTL leg still has work
        return state.dtl_sim.advance(state.dtl_state)

    def finish(self, state: ComparisonRunState) -> PowerDownComparisonResult:
        """Pair both fully-advanced legs into the comparison result."""
        return PowerDownComparisonResult(
            config=self.config,
            baseline=state.baseline_sim.finish(state.baseline_state),
            dtl=state.dtl_sim.finish(state.dtl_state))

    def run(self) -> PowerDownComparisonResult:
        """Run both configurations on the same generated VM trace."""
        state = self.begin()
        while self.advance(state):
            pass
        return self.finish(state)


__all__ = [
    "PowerDownSimConfig",
    "IntervalRecord",
    "PowerDownResult",
    "PowerDownComparisonResult",
    "PowerDownRunState",
    "PowerDownSimulator",
    "ComparisonRunState",
    "ComparisonSimulator",
    "energy_savings",
    "power_savings",
    "background_power_savings",
]
