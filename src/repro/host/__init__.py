"""Host substrate: cache hierarchy, VM model, and node scheduler."""

from repro.host.caches import (CacheHierarchy, CacheLevel, CacheLevelConfig,
                               CacheLevelStats, MemoryRequest,
                               PAPER_CACHE_LEVELS)
from repro.host.scheduler import (FIVE_MINUTES_S, ScheduleResult,
                                  SchedulerConfig, UsageSample, VmScheduler)
from repro.host.tracing import TraceRecorder
from repro.host.vm import VmEvent, VmSpec

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "CacheLevelConfig",
    "CacheLevelStats",
    "MemoryRequest",
    "PAPER_CACHE_LEVELS",
    "FIVE_MINUTES_S",
    "ScheduleResult",
    "SchedulerConfig",
    "UsageSample",
    "VmScheduler",
    "TraceRecorder",
    "VmEvent",
    "VmSpec",
]
