"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints a paper-vs-measured report (run with ``pytest benchmarks/
--benchmark-only -s`` to see the tables).  Shape assertions — who wins,
by roughly what factor, where crossovers fall — are enforced; absolute
numbers are reported, not asserted, since the substrate is a simulator
rather than the authors' testbed.
"""

from __future__ import annotations

import pytest


def report(title: str, rows: list[tuple], header: tuple = ()) -> None:
    """Print a small fixed-width comparison table."""
    print(f"\n=== {title} ===")
    if header:
        print("  ".join(f"{column:>16s}" for column in header))
    for row in rows:
        print("  ".join(f"{str(cell):>16s}" for cell in row))


@pytest.fixture
def table_report():
    return report
