"""Before/after benchmark of the parallel experiment executor.

Writes ``BENCH_exec.json`` at the repository root with two comparisons:

* **overlap** — a batch of sleep-bound tasks, where the pool's fan-out
  is visible regardless of the host's core count (sleeping tasks
  overlap even on one core);
* **fleet** — the real CPU-bound workload: an 8-node
  :class:`~repro.sim.fleet.FleetSimulator` run serially and on
  4 workers.  The speedup ceiling here is ``min(workers, cores)``; a
  single-core CI container shows ~1x (pool and pickling overhead
  included, honestly), a 4-core host approaches 4x.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_exec.py
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.exec import ExecConfig, TaskSpec, run_tasks
from repro.host.scheduler import SchedulerConfig
from repro.sim.fleet import FleetConfig, FleetSimulator
from repro.sim.powerdown_sim import PowerDownSimConfig
from repro.workloads.azure import AzureTraceConfig

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_exec.json"

SLEEP_TASKS = 8
SLEEP_S = 0.5
FLEET_NODES = 8
WORKERS = 4


def _sleep(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def bench_overlap() -> dict:
    """Sleep-bound batch: fan-out overlap independent of core count."""
    tasks = lambda: [TaskSpec(fn=_sleep, args=(SLEEP_S,))
                     for _ in range(SLEEP_TASKS)]
    serial_s = _timed(lambda: run_tasks(tasks(),
                                        config=ExecConfig(workers=1)))
    parallel_s = _timed(lambda: run_tasks(tasks(),
                                          config=ExecConfig(workers=WORKERS)))
    return {
        "tasks": SLEEP_TASKS,
        "sleep_per_task_s": SLEEP_S,
        "workers": WORKERS,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
    }


def bench_fleet() -> dict:
    """CPU-bound 8-node fleet, serial vs 4 workers (no result cache)."""
    node = PowerDownSimConfig(
        azure=AzureTraceConfig(num_vms=4, duration_s=600.0),
        scheduler=SchedulerConfig(duration_s=600.0))
    config = FleetConfig(num_nodes=FLEET_NODES, node=node)
    serial_s = _timed(
        lambda: FleetSimulator(config, ExecConfig(workers=1)).run())
    parallel_s = _timed(
        lambda: FleetSimulator(config, ExecConfig(workers=WORKERS)).run())
    return {
        "nodes": FLEET_NODES,
        "workers": WORKERS,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
    }


def main() -> int:
    cores = os.cpu_count() or 1
    print(f"host: {cores} core(s); overlap batch "
          f"({SLEEP_TASKS} x {SLEEP_S}s sleep)...")
    overlap = bench_overlap()
    print(f"  serial {overlap['serial_s']}s  parallel "
          f"{overlap['parallel_s']}s  speedup {overlap['speedup']}x")
    print(f"fleet ({FLEET_NODES} nodes, {WORKERS} workers)...")
    fleet = bench_fleet()
    print(f"  serial {fleet['serial_s']}s  parallel "
          f"{fleet['parallel_s']}s  speedup {fleet['speedup']}x")
    document = {
        "host": {
            "cpu_count": cores,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": ("CPU-bound speedup is capped by min(workers, cores); "
                 "the overlap benchmark shows the fan-out machinery "
                 "even on a single core."),
        "overlap": overlap,
        "fleet": fleet,
    }
    OUTPUT.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
