"""Fleet-level study: many pool nodes, one datacenter.

Scales the Figure 12 experiment out: a fleet of memory-pool nodes each
runs its own Azure-like VM schedule through a DTL device, and the
per-node DRAM savings aggregate into the datacenter-level power/TCO
numbers the paper's introduction motivates (DRAM ~38 % of server power,
savings -> TCO).

Node heterogeneity comes from independent trace seeds: some nodes run
hot (little to power down), others sit half-empty — the fleet mean is
what a capacity planner sees.

The nodes are independent simulations, so the fleet fans out through
:mod:`repro.exec`: node ``i`` becomes one task running the paired
baseline/DTL comparison on ``config.node.with_seed(base_seed + i)``.
Results are ordered by node index and each node is fully determined by
its seed, so a fleet run is bit-identical whether it executed serially
or on workers.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tco import TcoModel
from repro.exec import ExecConfig, TaskSpec, run_tasks, task_key
from repro.host.scheduler import SchedulerConfig
from repro.sim.powerdown_sim import (ComparisonSimulator,
                                     PowerDownComparisonResult,
                                     PowerDownResult, PowerDownSimConfig,
                                     energy_savings)
from repro.telemetry import MetricsRegistry
from repro.workloads.azure import AzureTraceConfig


@dataclass(frozen=True)
class FleetConfig:
    """A fleet of identical pool nodes with independent schedules.

    Attributes:
        num_nodes: Pool nodes simulated (each gets its own VM trace).
        node: Per-node simulation configuration template.
        base_seed: Node ``i`` uses seed ``base_seed + i``.
        tco: Cost model for the datacenter roll-up.
    """

    num_nodes: int = 8
    node: PowerDownSimConfig = field(default_factory=PowerDownSimConfig)
    base_seed: int = 0
    tco: TcoModel = field(default_factory=TcoModel)


@dataclass
class NodeOutcome:
    """One node's paired baseline/DTL results."""

    seed: int
    baseline: PowerDownResult
    dtl: PowerDownResult

    @property
    def energy_savings(self) -> float:
        """This node's DRAM energy saving."""
        return energy_savings(self.baseline, self.dtl)


@dataclass
class NodeFailure:
    """A node whose simulation task did not produce a result."""

    seed: int
    error: str


@dataclass
class FleetResult:
    """Aggregate of every node's outcome."""

    config: FleetConfig
    nodes: list[NodeOutcome]
    failures: list[NodeFailure] = field(default_factory=list)
    #: Executor accounting for the fan-out (per-task wall times etc.);
    #: not part of :meth:`to_record` so records stay deterministic.
    exec_telemetry: dict = field(default_factory=dict)

    @property
    def per_node_savings(self) -> np.ndarray:
        """Each node's DRAM energy saving."""
        return np.array([node.energy_savings for node in self.nodes])

    @property
    def fleet_savings(self) -> float:
        """Energy-weighted fleet-level DRAM saving."""
        baseline = sum(node.baseline.total_energy for node in self.nodes)
        dtl = sum(node.dtl.total_energy for node in self.nodes)
        return 1.0 - dtl / baseline

    def tco_report(self) -> dict[str, float]:
        """Datacenter-level roll-up through the TCO model."""
        return self.config.tco.report(self.fleet_savings)

    def telemetry_totals(self) -> dict[str, float]:
        """Fleet-wide sums of every node's DTL telemetry counters.

        Counters (accesses, SMC hits, migrated segments, power
        transitions, ...) add across nodes; gauges and residency do not,
        so only counters are aggregated here.

        A node with no telemetry snapshot (e.g. produced by an older
        serialised result) is *skipped*, not silently folded in as
        zeros; the ``fleet.*`` meta-counters make the difference between
        "no events" and "no data" visible:

        * ``fleet.nodes_reporting`` — nodes whose counters were summed,
        * ``fleet.nodes_missing_telemetry`` — nodes skipped for lack of
          a snapshot,
        * ``fleet.nodes_failed`` — nodes whose simulation task failed
          outright (they appear in :attr:`failures`, not
          :attr:`nodes`).
        """
        totals: dict[str, float] = {}
        reporting = 0
        missing = 0
        for node in self.nodes:
            counters = (node.dtl.telemetry or {}).get("counters")
            if not counters:
                missing += 1
                continue
            reporting += 1
            for name, value in counters.items():
                totals[name] = totals.get(name, 0.0) + value
        totals["fleet.nodes_reporting"] = float(reporting)
        totals["fleet.nodes_missing_telemetry"] = float(missing)
        totals["fleet.nodes_failed"] = float(len(self.failures))
        return totals

    def summary_rows(self) -> list[tuple]:
        """Per-node + fleet rows for reporting."""
        rows = [(f"node {node.seed}", f"{node.energy_savings:.1%}",
                 f"{node.dtl.mean_active_ranks:.2f}")
                for node in self.nodes]
        rows.extend((f"node {failure.seed}", "FAILED", failure.error)
                    for failure in self.failures)
        rows.append(("fleet", f"{self.fleet_savings:.1%}", ""))
        return rows

    def to_record(self):
        """Flatten into an :class:`~repro.sim.results.ExperimentRecord`."""
        from repro.sim.results import ExperimentRecord
        return ExperimentRecord("fleet", {
            "fleet_savings": self.fleet_savings,
            "per_node": self.per_node_savings.tolist(),
            "node_seeds": [node.seed for node in self.nodes],
            "failed_seeds": [failure.seed for failure in self.failures],
            **{f"tco_{key}": value
               for key, value in self.tco_report().items()}})


def _run_node(config: PowerDownSimConfig) -> PowerDownComparisonResult:
    """One fleet node's paired comparison (module-level: picklable)."""
    return ComparisonSimulator(config).run()


class FleetSimulator:
    """Run the node-level comparison across the whole fleet."""

    name = "fleet"

    def __init__(self, config: FleetConfig | None = None,
                 exec_config: ExecConfig | None = None):
        self.config = config or FleetConfig()
        self.exec_config = exec_config

    def node_configs(self) -> list[PowerDownSimConfig]:
        """The per-node configs (template + derived seed)."""
        return [self.config.node.with_seed(self.config.base_seed + index)
                for index in range(self.config.num_nodes)]

    def run(self) -> FleetResult:
        """Simulate every node; returns the aggregate.

        Nodes run through :func:`repro.exec.run_tasks` — serially by
        default, in parallel when the exec config (or
        ``REPRO_EXEC_WORKERS``) asks for workers.  A node whose task
        fails after its retry budget lands in ``FleetResult.failures``
        instead of aborting the surviving nodes.
        """
        node_configs = self.node_configs()
        tasks = [TaskSpec(fn=_run_node, args=(node_config,),
                          key=task_key("powerdown_comparison", node_config),
                          label=f"fleet-node-{node_config.seed}",
                          cpu_bound=True)
                 for node_config in node_configs]
        metrics = MetricsRegistry()
        outcomes = run_tasks(tasks, config=self.exec_config, metrics=metrics)
        nodes: list[NodeOutcome] = []
        failures: list[NodeFailure] = []
        for node_config, outcome in zip(node_configs, outcomes):
            if outcome.ok:
                pair = outcome.value
                nodes.append(NodeOutcome(seed=node_config.seed,
                                         baseline=pair.baseline,
                                         dtl=pair.dtl))
            else:
                failures.append(NodeFailure(seed=node_config.seed,
                                            error=outcome.error))
        return FleetResult(config=self.config, nodes=nodes,
                           failures=failures,
                           exec_telemetry=metrics.snapshot().to_dict())


def quick_fleet(num_nodes: int = 4, duration_s: float = 3600.0,
                num_vms: int = 60, base_seed: int = 0) -> FleetResult:
    """Deprecated: build a :class:`FleetConfig` and run
    :class:`FleetSimulator` directly.

    A small fleet on one-hour schedules (for tests and examples).
    """
    warnings.warn("quick_fleet() is deprecated; use "
                  "FleetSimulator(FleetConfig(...)).run()",
                  DeprecationWarning, stacklevel=2)
    node = PowerDownSimConfig(
        azure=AzureTraceConfig(num_vms=num_vms, duration_s=duration_s),
        scheduler=SchedulerConfig(duration_s=duration_s))
    return FleetSimulator(FleetConfig(num_nodes=num_nodes, node=node,
                                      base_seed=base_seed)).run()


__all__ = [
    "FleetConfig",
    "NodeOutcome",
    "NodeFailure",
    "FleetResult",
    "FleetSimulator",
    "quick_fleet",
]
