"""Datacenter roll-up: from rank power-down to annual dollars.

Runs the Figure 12 experiment across a small rack-organised fleet of
heterogeneous pool nodes — consecutive nodes share one pooled-memory
fabric whose contention is modelled per rack — then pushes the
fleet-level DRAM saving through the TCO model the paper's introduction
motivates (DRAM ~38 % of server power).

Run:  python examples/datacenter_tco.py [num_nodes]

``REPRO_EXEC_WORKERS=N`` (or an explicit ``ExecConfig``) runs the node
shards on a process pool; the result is bit-identical either way.
"""

import sys

from repro.analysis.tco import TcoModel
from repro.host.scheduler import SchedulerConfig
from repro.sim.fleet import FleetSimulator, RackConfig
from repro.sim.powerdown_sim import PowerDownSimConfig
from repro.workloads.azure import AzureTraceConfig

def main() -> None:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"Simulating {num_nodes} pool nodes (1-hour schedules)...\n")
    node = PowerDownSimConfig(
        azure=AzureTraceConfig(num_vms=60, duration_s=3600.0),
        scheduler=SchedulerConfig(duration_s=3600.0))
    fleet = FleetSimulator(RackConfig(num_nodes=num_nodes, node=node,
                                      shard_size=2,
                                      hosts_per_rack=2)).run()

    print(f"{'node':<8s} {'DRAM savings':>13s} {'mean ranks/ch':>14s}")
    for row in fleet.summary_rows():
        print(f"{row[0]:<8s} {row[1]:>13s} {row[2]:>14s}")

    rack = fleet.rack_report()
    print(f"\nShared-fabric contention across {rack['num_racks']:.0f} "
          f"rack(s):")
    print(f"  mean pool slowdown:   {rack['mean_pool_slowdown']:.4f}x "
          f"(max utilization {rack['max_pool_utilization']:.1%})")
    print(f"  contended savings:    {rack['contended_fleet_savings']:.1%} "
          f"(uncontended {rack['fleet_savings']:.1%})")

    tco = TcoModel()  # 10k servers, 38% DRAM share, PUE 1.2, $0.08/kWh
    report = fleet.tco_report()
    print(f"\nTCO roll-up for a {tco.num_servers:,}-server fleet "
          f"(DRAM = {tco.dram_power_share:.0%} of server power, "
          f"PUE {tco.pue}):")
    print(f"  per-server wall power saved: "
          f"{report['server_power_saved_w']:.1f} W "
          f"({report['server_share_saved']:.1%} of server power)")
    print(f"  facility power saved:        "
          f"{report['fleet_power_saved_kw']:.0f} kW")
    print(f"  annual energy saved:         "
          f"{report['annual_energy_saved_mwh']:.0f} MWh")
    print(f"  annual cost saved:           "
          f"${report['annual_cost_saved_usd']:,.0f}")
    print("\n(The paper's headline 31.6% DRAM saving corresponds to "
          f"~{TcoModel().server_share_saved(0.316):.0%} of total server "
          "power — Section 1's TCO motivation.)")

if __name__ == "__main__":
    main()
