"""The server-soak experiment: phases, stepping, and the record."""

from repro.server.soak import (PHASES, ServerSoakConfig,
                               ServerSoakExperiment, ServerSoakState,
                               quick_server_soak_config)
from repro.sim.experiments import EXPERIMENTS


def tiny_config(**changes) -> ServerSoakConfig:
    """The quick soak shrunk further for unit-test latency."""
    config = quick_server_soak_config(
        tenants=16, requests_per_tenant=2, batch=16, monitor_scans=2,
        script_tenants=2, script_requests=6, script_batch=12)
    return config.replace(**changes) if changes else config


class TestRegistration:
    def test_registered_with_quick_config(self):
        spec = EXPERIMENTS["server-soak"]
        assert spec.factory is ServerSoakExperiment
        assert spec.config_type is ServerSoakConfig
        quick = spec.tiny_config()
        assert quick.tenants >= 16  # the acceptance bar stays

    def test_config_protocol(self):
        config = ServerSoakConfig()
        assert config.with_seed(9).seed == 9
        assert config.replace(tenants=32).tenants == 32
        assert config.tenants == 16  # frozen original untouched


class TestSteppedSoak:
    def test_phases_advance_one_at_a_time(self):
        experiment = ServerSoakExperiment(tiny_config())
        state = experiment.begin()
        assert state.phase == 0
        assert experiment.advance(state)  # concurrent
        assert state.phase == 1 and state.concurrent
        assert not state.drain_restore
        assert experiment.advance(state)  # drain_restore
        assert state.phase == 2 and state.drain_restore
        assert not experiment.advance(state)  # isolation: last phase
        assert state.phase == len(PHASES) and state.isolation
        assert not experiment.advance(state)  # past the end is safe
        result = experiment.finish(state)
        assert result.ok

    def test_state_is_plain_data(self):
        state = ServerSoakState(phase=1, concurrent={"ok": True})
        assert isinstance(state.concurrent, dict)
        assert state.drain_restore == {} and state.isolation == {}


class TestSoakVerdict:
    def test_full_run_holds_every_invariant(self):
        result = ServerSoakExperiment(tiny_config()).run()
        concurrent = result.concurrent
        assert concurrent["violations"] == 0
        assert concurrent["leaks"] == 0
        assert concurrent["faults_injected"] > 0  # chaos really armed
        assert concurrent["requests"] > 0
        replay = result.drain_restore
        assert replay["tail_mismatches"] == 0
        assert replay["restore_match"] and replay["final_match"]
        assert replay["counters_match"]
        isolation = result.isolation
        assert isolation["disjoint"] and isolation["rejections_pure"]
        assert result.ok

    def test_record_shape(self):
        result = ServerSoakExperiment(tiny_config()).run()
        record = result.to_record()
        assert record.experiment == "server-soak"
        assert record.metrics["ok"] is True
        assert record.metrics["violations"] == 0
        assert record.paper == {"violations": 0, "leaks": 0,
                                "tail_mismatches": 0}

    def test_same_seed_same_summary(self):
        first = ServerSoakExperiment(tiny_config()).run()
        second = ServerSoakExperiment(tiny_config()).run()
        assert first.concurrent["fingerprints"] \
            == second.concurrent["fingerprints"]
        assert first.concurrent["requests"] \
            == second.concurrent["requests"]
        assert first.drain_restore == second.drain_restore
