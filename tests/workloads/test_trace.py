"""Tests for the trace container and its analyses."""

import numpy as np
import pytest

from repro.workloads.trace import Trace, concatenate, mix


def make_trace(addresses, is_write=None, deltas=None, name="t"):
    n = len(addresses)
    return Trace(
        addresses=np.asarray(addresses, dtype=np.uint64),
        is_write=np.asarray(is_write if is_write is not None
                            else [False] * n),
        instr_deltas=np.asarray(deltas if deltas is not None else [100] * n,
                                dtype=np.uint32),
        name=name)


class TestBasics:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(addresses=np.zeros(2, dtype=np.uint64),
                  is_write=np.zeros(3, dtype=bool),
                  instr_deltas=np.zeros(2, dtype=np.uint32))

    def test_mapki(self):
        trace = make_trace([0, 64, 128], deltas=[500, 500, 500])
        assert trace.mapki == pytest.approx(2.0)

    def test_mapki_empty_instructions(self):
        trace = make_trace([0], deltas=[0])
        assert trace.mapki == 0.0

    def test_write_fraction(self):
        trace = make_trace([0, 64], is_write=[True, False])
        assert trace.write_fraction == pytest.approx(0.5)

    def test_footprint(self):
        trace = make_trace([0, 10, 64, 4096])
        assert trace.footprint_bytes() == 3 * 64

    def test_segments(self):
        trace = make_trace([0, 2 * 2 ** 21 + 5])
        assert list(trace.segments(2 ** 21)) == [0, 2]


class TestTransforms:
    def test_rebase(self):
        trace = make_trace([0, 64]).rebase(1 << 30)
        assert trace.addresses[0] == 1 << 30

    def test_slice(self):
        trace = make_trace([0, 64, 128]).slice(1, 3)
        assert len(trace) == 2
        assert trace.addresses[0] == 64

    def test_concatenate(self):
        combined = concatenate([make_trace([0]), make_trace([64])])
        assert len(combined) == 2

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate([])


class TestMix:
    def test_mix_preserves_length_and_multiset(self):
        rng = np.random.default_rng(0)
        a = make_trace([1, 2, 3], name="a")
        b = make_trace([10, 20], name="b")
        mixed = mix([a, b], rng)
        assert len(mixed) == 5
        assert sorted(mixed.addresses.tolist()) == [1, 2, 3, 10, 20]

    def test_mix_preserves_per_trace_order(self):
        rng = np.random.default_rng(1)
        a = make_trace([1, 2, 3, 4], name="a")
        b = make_trace([100, 200, 300], name="b")
        mixed = mix([a, b], rng)
        a_positions = [list(mixed.addresses).index(x) for x in (1, 2, 3, 4)]
        assert a_positions == sorted(a_positions)

    def test_mix_deterministic_given_seed(self):
        a = make_trace([1, 2, 3])
        b = make_trace([10, 20])
        m1 = mix([a, b], np.random.default_rng(7))
        m2 = mix([a, b], np.random.default_rng(7))
        assert np.array_equal(m1.addresses, m2.addresses)


class TestStrideDistribution:
    def test_buckets_sum_to_one(self):
        trace = make_trace([0, 64, 8192, 1 << 23, (1 << 23) + 64])
        dist = trace.stride_distribution()
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_large_stride_classified(self):
        trace = make_trace([0, 1 << 23])
        dist = trace.stride_distribution()
        assert dist[">=4194304"] == pytest.approx(1.0)

    def test_short_trace(self):
        assert make_trace([0]).stride_distribution() == {}


class TestColdSegments:
    SEG = 1 << 21

    def test_burst_does_not_heat_segment(self):
        """Consecutive accesses to the same segment form one visit."""
        trace = make_trace([0, 64, 128], deltas=[100, 100, 100])
        assert trace.cold_segment_fraction(self.SEG) == 1.0

    def test_fast_revisit_is_hot(self):
        trace = make_trace([0, self.SEG, 0], deltas=[100, 100, 100])
        # Segment 0 revisited after 200 instructions: hot at threshold 250.
        assert trace.cold_segment_fraction(
            self.SEG, threshold_instructions=250) == pytest.approx(0.5)

    def test_slow_revisit_is_cold(self):
        trace = make_trace([0, self.SEG, 0],
                           deltas=[100, 20_000_000, 100])
        assert trace.cold_segment_fraction(self.SEG) == 1.0

    def test_total_segments_denominator(self):
        trace = make_trace([0], deltas=[100])
        assert trace.cold_segment_fraction(
            self.SEG, total_segments=10) == pytest.approx(1.0)
        trace_hot = make_trace([0, self.SEG, 0], deltas=[100, 100, 100])
        assert trace_hot.cold_segment_fraction(
            self.SEG, threshold_instructions=250,
            total_segments=10) == pytest.approx(0.9)

    def test_denominator_validation(self):
        trace = make_trace([0, self.SEG])
        with pytest.raises(ValueError):
            trace.cold_segment_fraction(self.SEG, total_segments=1)

    def test_reuse_distances(self):
        trace = make_trace([0, self.SEG, 0], deltas=[10, 20, 30])
        distances = trace.segment_reuse_distances(self.SEG)
        assert distances.tolist() == [50]
