"""Figure 2: performance with a varying number of active ranks.

Paper: shrinking from eight to two ranks per channel (channels and banks
constant) costs CloudSuite only ~0.7 % on average.
"""

import numpy as np
import pytest

from repro.sim.perf_model import PerformanceModel
from repro.workloads.cloudsuite import PROFILES

from conftest import report

PAPER_MEAN_LOSS_AT_2_RANKS = 0.007


def sweep():
    model = PerformanceModel()
    return {ranks: {name: model.rank_sweep_slowdown(profile, ranks)
                    for name, profile in PROFILES.items()}
            for ranks in (8, 6, 4, 2)}


def test_fig02_rank_sweep(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for ranks, by_workload in results.items():
        mean = float(np.mean(list(by_workload.values())))
        rows.append((f"{ranks} ranks", f"{mean:+.2%}"))
    rows.append(("paper @2 ranks", f"+{PAPER_MEAN_LOSS_AT_2_RANKS:.1%}"))
    report("Figure 2: slowdown vs active ranks per channel", rows,
           header=("config", "mean slowdown"))
    means = {ranks: float(np.mean(list(by_workload.values())))
             for ranks, by_workload in results.items()}
    # Shape: monotone, small, and within ~2x of the paper's 0.7 %.
    assert means[8] == 0.0
    assert means[8] <= means[6] <= means[4] <= means[2]
    assert means[2] < 2.5 * PAPER_MEAN_LOSS_AT_2_RANKS
    assert means[2] > 0.2 * PAPER_MEAN_LOSS_AT_2_RANKS


def test_fig02_memory_bound_workloads_most_sensitive():
    results = sweep()[2]
    assert results["graph-analytics"] == max(results.values())
    assert results["web-search"] < results["graph-analytics"]


def test_fig02_trace_driven_crosscheck(benchmark):
    """Independent method: replay synthetic post-cache traces against the
    bank-level substrate (measured imbalance + row-buffer mix) instead of
    the analytical queueing model.  Both must agree that the 2-rank loss
    is sub-percent."""
    from repro.sim.rank_sweep import mean_trace_driven_slowdown

    def measure():
        return {ranks: mean_trace_driven_slowdown(ranks,
                                                  num_accesses=20_000)
                for ranks in (8, 4, 2)}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [(f"{ranks} ranks", f"{value:+.2%}")
            for ranks, value in results.items()]
    report("Figure 2 (trace-driven cross-check)", rows,
           header=("config", "mean slowdown"))
    assert results[8] == pytest.approx(0.0)
    assert results[8] <= results[4] <= results[2]
    assert results[2] < 0.02
