"""Sensitivity of the headline savings to the calibrated power constants.

The power model has exactly two fitted constants (everything else is a
published number): the per-channel fixed overhead and the active power
per GB/s.  This module recomputes the Figure 12 energy savings across a
grid of both constants *without re-simulating* — the simulation's
interval records (active ranks, bandwidth, duration) fully determine the
energy under any constants — so the robustness of the 31.6 % headline can
be quantified cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.power import STATE_POWER, PowerState
from repro.exec import ExecConfig, TaskSpec, run_tasks
from repro.sim.powerdown_sim import PowerDownResult


@dataclass(frozen=True)
class SensitivityPoint:
    """Savings under one pair of power-model constants."""

    channel_fixed_overhead: float
    active_power_per_gbs: float
    energy_savings: float


def recompute_savings(baseline: PowerDownResult, dtl: PowerDownResult,
                      channel_fixed_overhead: float,
                      active_power_per_gbs: float) -> float:
    """Re-evaluate the energy saving under different constants.

    Uses each interval's recorded active-rank count and bandwidth; the
    background power for ``N`` active ranks per channel is
    ``channels x (fixed + N + mpsm x (R - N))``.
    """
    geometry = dtl.config.geometry
    channels = geometry.channels
    total_ranks_per_channel = geometry.ranks_per_channel
    mpsm = STATE_POWER[PowerState.MPSM]

    reference_coefficient = _reference_active_coefficient()

    def energy(result: PowerDownResult) -> float:
        total = 0.0
        for record in result.intervals:
            active = record.active_ranks_per_channel
            background = channels * (channel_fixed_overhead + active
                                     + mpsm * (total_ranks_per_channel
                                               - active))
            active_power = active_power_per_gbs * record.bandwidth_gbs
            # The recorded migration power used the reference coefficient;
            # rescale it to the coefficient under evaluation.
            migration_power = record.migration_power * (
                active_power_per_gbs / reference_coefficient)
            total += (background + active_power
                      + migration_power) * record.duration_s
        return total

    baseline_energy = energy(baseline)
    dtl_energy = energy(dtl) * dtl.execution_time_factor
    return 1.0 - dtl_energy / baseline_energy


def _reference_active_coefficient() -> float:
    """The coefficient the recorded migration power was computed with."""
    from repro.dram.power import DramPowerModel
    from repro.dram.geometry import DramGeometry
    return DramPowerModel.__dataclass_fields__[
        "active_power_per_gbs"].default


def _grid_point(baseline: PowerDownResult, dtl: PowerDownResult,
                fixed: float, coefficient: float) -> SensitivityPoint:
    """One grid cell (module-level: picklable for the executor)."""
    return SensitivityPoint(
        channel_fixed_overhead=fixed,
        active_power_per_gbs=coefficient,
        energy_savings=recompute_savings(baseline, dtl, fixed, coefficient))


def sensitivity_grid(baseline: PowerDownResult, dtl: PowerDownResult,
                     fixed_overheads: tuple[float, ...] = (
                         0.0, 1.2, 2.4, 3.6, 4.8),
                     active_coefficients: tuple[float, ...] = (
                         0.05, 0.125, 0.25, 0.5),
                     exec_config: ExecConfig | None = None,
                     ) -> list[SensitivityPoint]:
    """Savings across the constants grid.

    The cells are independent re-evaluations of the recorded intervals,
    so they fan out through :mod:`repro.exec` (serial unless the exec
    config or ``REPRO_EXEC_WORKERS`` asks for workers); cell order is
    row-major over ``(fixed_overheads, active_coefficients)`` either
    way.
    """
    pairs = [(fixed, coefficient) for fixed in fixed_overheads
             for coefficient in active_coefficients]
    outcomes = run_tasks(
        [TaskSpec(fn=_grid_point, args=(baseline, dtl, fixed, coefficient),
                  label=f"sensitivity-{fixed}-{coefficient}")
         for fixed, coefficient in pairs],
        config=exec_config)
    return [outcome.unwrap() for outcome in outcomes]


def savings_range(points: list[SensitivityPoint]) -> tuple[float, float]:
    """(min, max) savings over the grid."""
    values = [point.energy_savings for point in points]
    return min(values), max(values)


__all__ = [
    "SensitivityPoint",
    "recompute_savings",
    "sensitivity_grid",
    "savings_range",
]
