"""A rack-level pooled-memory deployment with failure handling.

Demonstrates the two extension layers built on top of the paper's DTL:

* a multi-device :class:`~repro.cxl.pool.MemoryPool` whose "pack"
  placement applies the DTL philosophy one level up (idle devices power
  their ranks down wholesale), and
* transparent rank retirement — a failing rank is evacuated and fenced
  while its tenants keep running.

Run:  python examples/pooled_rack.py
"""

from repro.core.config import DtlConfig
from repro.cxl.pool import MemoryPool
from repro.dram import DramGeometry
from repro.units import GIB, MIB

def show(pool: MemoryPool, label: str) -> None:
    stats = pool.stats()
    print(f"{label:<36s} reserved {stats.reserved_bytes / GIB:5.1f} GiB "
          f"({stats.utilization:5.1%})  power {stats.background_power_rsu:6.1f} RSU  "
          f"ranks: {stats.ranks_standby} standby / "
          f"{stats.ranks_self_refresh} SR / {stats.ranks_mpsm} MPSM")

def main() -> None:
    device_config = DtlConfig(geometry=DramGeometry(rank_bytes=1 * GIB),
                              au_bytes=512 * MIB, group_granularity=2)
    pool = MemoryPool([device_config] * 4, placement="pack")
    print(f"Pool: 4 devices x 32 GiB = {pool.total_bytes / GIB:.0f} GiB\n")
    show(pool, "empty pool")

    # Tenants arrive; pack placement concentrates them.
    tenants = [pool.allocate_vm(host_id=index % 4,
                                reserved_bytes=(4 + 2 * index) * GIB,
                                now_s=float(index))
               for index in range(5)]
    show(pool, "5 tenants placed (packed)")
    used_devices = {vm.device_index for vm in tenants}
    print(f"  -> tenants occupy device(s) {sorted(used_devices)}; "
          "the rest stay dark\n")

    # A tenant leaves; that device consolidates and powers ranks down.
    pool.deallocate_vm(tenants.pop(2), now_s=10.0)
    show(pool, "one tenant departed")

    # A rank on a busy device starts throwing correctable errors: retire
    # it live.
    victim_device = pool.devices[sorted(used_devices)[0]]
    record = victim_device.controller.retire_rank(0, 0, now_s=20.0)
    print(f"\nRetired rank (ch0, r0) on device "
          f"{sorted(used_devices)[0]}: migrated "
          f"{record.migrated_segments} segments "
          f"({record.migrated_bytes / MIB:.0f} MiB) transparently")
    usable = victim_device.controller.retirement.usable_bytes()
    print(f"Device usable capacity now {usable / GIB:.0f} GiB "
          f"(was {victim_device.config.geometry.total_bytes / GIB:.0f})")
    show(pool, "after rank retirement")

    # Every surviving tenant's memory is still reachable.
    for vm in tenants:
        controller = pool.devices[vm.device_index].controller
        result = controller.access(
            vm.handle.host_id, controller.hpa_of(vm.handle.au_ids[0], 0))
        assert result.latency_ns > 0
    print("\nAll surviving tenants verified reachable after retirement.")

if __name__ == "__main__":
    main()
