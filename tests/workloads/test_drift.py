"""Tests for hot-set drift."""

import numpy as np
import pytest

from repro.units import GIB
from repro.workloads.cloudsuite import PROFILES, TraceGenerator
from repro.workloads.drift import DriftConfig, DriftingWorkload


@pytest.fixture
def workload():
    return DriftingWorkload(PROFILES["data-caching"],
                            footprint_bytes=1 * GIB,
                            drift=DriftConfig(period_s=10.0, fraction=0.2),
                            seed=0)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriftConfig(period_s=0.0)
        with pytest.raises(ValueError):
            DriftConfig(fraction=1.5)


class TestDriftMechanics:
    def test_no_drift_before_period(self, workload):
        assert workload.advance_to(9.9) == 0
        assert workload.drift_events == 0

    def test_single_event(self, workload):
        assert workload.advance_to(10.0) == 1

    def test_catches_up_multiple_periods(self, workload):
        assert workload.advance_to(35.0) == 3

    def test_tier_sizes_preserved(self, workload):
        generator = workload.generator
        sizes = (len(generator.hot_segments), len(generator.warm_segments),
                 len(generator.frozen_segments))
        workload.advance_to(50.0)
        assert (len(generator.hot_segments), len(generator.warm_segments),
                len(generator.frozen_segments)) == sizes

    def test_membership_actually_rotates(self, workload):
        before = set(workload.generator.hot_segments.tolist())
        workload.advance_to(10.0)
        after = set(workload.generator.hot_segments.tolist())
        assert before != after
        expected_moved = round(0.2 * len(before))
        assert len(before - after) == expected_moved

    def test_tiers_stay_disjoint(self, workload):
        workload.advance_to(100.0)
        generator = workload.generator
        hot = set(generator.hot_segments.tolist())
        warm = set(generator.warm_segments.tolist())
        frozen = set(generator.frozen_segments.tolist())
        assert not hot & warm and not hot & frozen and not warm & frozen
        deep = set(generator.deep_cold_segments.tolist())
        shallow = set(generator.shallow_frozen_segments.tolist())
        assert deep | shallow == frozen

    def test_rates_follow_membership(self, workload):
        workload.advance_to(10.0)
        rates = workload.segment_access_rates()
        assert rates.sum() == pytest.approx(1.0)
        hot_rates = rates[workload.generator.hot_segments]
        frozen_rates = rates[workload.generator.frozen_segments]
        assert hot_rates.min() > 0
        assert frozen_rates.max() == 0.0

    def test_wrap_reuses_generator(self):
        generator = TraceGenerator(PROFILES["web-search"],
                                   footprint_bytes=1 * GIB, seed=1)
        wrapped = DriftingWorkload.wrap(generator,
                                        DriftConfig(period_s=1.0),
                                        np.random.default_rng(0))
        assert wrapped.generator is generator
        wrapped.advance_to(1.0)
        assert wrapped.drift_events == 1
