"""Rank-level power-down policy (Section 3.3).

At every VM deallocation the DTL checks whether the unallocated capacity
among the *active* ranks exceeds the size of one rank-group (one rank per
channel, same index — or a CKE pair of them on hardware where two ranks
share a clock-enable pin, Section 5.1).  If so, the live segments of the
least-allocated victim group are consolidated into the other active ranks
and the victim group enters Maximum Power Saving Mode (MPSM).

When a later allocation does not fit into the active ranks, the policy
reactivates powered-down groups (``MPSM_exit``).  The exit penalty overlaps
with the new VM's initialisation, so running VMs never observe it
(paper, Section 3.3 walk-through).

Because hotness-aware self-refresh migrates at segment granularity, rank
utilisation inside a group can drift apart across channels; the policy then
forms a *virtual rank-group* from the least-allocated rank of each channel
(Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.allocator import RankId, SegmentAllocator
from repro.core.migration import MigrationEngine
from repro.core.tables import TranslationTables
from repro.dram.device import DramDevice
from repro.dram.power import PowerState
from repro.errors import AllocationError
from repro.telemetry import EventTrace, MetricsRegistry


@dataclass
class PowerTransition:
    """Record of one rank-group power transition."""

    time_s: float
    rank_ids: tuple[RankId, ...]
    new_state: PowerState
    migrated_segments: int
    migrated_bytes: int
    exit_penalty_ns: float


@dataclass
class PendingPowerDown:
    """A consolidation still copying in the background.

    The victim ranks are already fenced from new allocations; the MPSM
    transition happens once the migration engine drains (the paper copies
    "in background by utilizing unused DRAM bandwidth").
    """

    victims: tuple[RankId, ...]
    started_s: float
    migrated_segments: int
    migrated_bytes: int


class RankPowerDownPolicy:
    """Consolidate-and-power-down controller for rank groups."""

    def __init__(self, device: DramDevice, allocator: SegmentAllocator,
                 tables: TranslationTables, migration: MigrationEngine,
                 group_granularity: int = 1,
                 min_active_groups: int = 1,
                 background_migration: bool = False,
                 registry: MetricsRegistry | None = None,
                 trace: EventTrace | None = None):
        geometry = device.geometry
        if geometry.ranks_per_channel % group_granularity:
            raise ValueError("group_granularity must divide ranks_per_channel")
        if min_active_groups < 1:
            raise ValueError("at least one rank-group must stay active")
        self.device = device
        self.geometry = geometry
        self.allocator = allocator
        self.tables = tables
        self.migration = migration
        self.group_granularity = group_granularity
        self.min_active_groups = min_active_groups
        # Active ranks, tracked per channel so virtual groups are possible.
        self._active: dict[int, set[int]] = {
            channel: set(range(geometry.ranks_per_channel))
            for channel in range(geometry.channels)}
        # Quarantined (retired) ranks: never reactivated, never allocated.
        self._quarantined: set[RankId] = set()
        #: When True, consolidation copies proceed only as idle bandwidth
        #: is granted via :meth:`pump`, and MPSM entry waits for them.
        self.background_migration = background_migration
        self._pending: list[PendingPowerDown] = []
        self.transitions: list[PowerTransition] = []
        registry = registry if registry is not None else MetricsRegistry()
        self._trace = trace
        self._mpsm_entries = registry.counter("power.mpsm_entries")
        self._reactivations = registry.counter("power.reactivations")
        self._consolidated_segments = registry.counter(
            "power.consolidated_segments")
        self._consolidated_bytes = registry.counter(
            "power.consolidated_bytes")
        # Armed fault injector (None = zero-overhead no-op hooks).
        self._faults = None

    def arm_faults(self, injector) -> None:
        """Attach (or with ``None`` detach) a fault injector."""
        self._faults = injector

    # -- queries --------------------------------------------------------------

    def active_rank_ids(self) -> set[RankId]:
        """All ranks currently in standby (allocatable)."""
        return {(channel, rank)
                for channel, ranks in self._active.items()
                for rank in ranks}

    def active_ranks_per_channel(self) -> int:
        """Minimum standby ranks over all channels.

        Channels stay balanced under normal operation; rank retirement can
        leave one channel a rank short, in which case the minimum governs
        both victim selection and capacity planning.
        """
        return min(len(ranks) for ranks in self._active.values())

    def powered_down_ranks(self) -> set[RankId]:
        """Ranks currently in MPSM."""
        all_ranks = {(channel, rank)
                     for channel in range(self.geometry.channels)
                     for rank in range(self.geometry.ranks_per_channel)}
        return all_ranks - self.active_rank_ids()

    def free_segments_in_active(self) -> int:
        """Unallocated segments among active ranks."""
        return self.allocator.free_count(self.active_rank_ids())

    # -- victim selection -------------------------------------------------------

    def _migration_busy_ranks(self) -> set[RankId]:
        """Ranks touched by an in-flight migration (source or target).

        Such a rank cannot be a consolidation victim: its in-flight
        *target* segments are allocated but not yet mapped (nothing to
        evacuate, data still arriving) and its *source* segments are
        already being migrated (a second submit would conflict).
        """
        busy: set[RankId] = set()
        for request in self.migration.tracked_requests():
            busy.add(self.allocator.rank_of_dsn(request.old_dsn))
            busy.add(self.allocator.rank_of_dsn(request.new_dsn))
        return busy

    def _victim_group(self) -> list[RankId] | None:
        """Pick the virtual rank-group with the least allocated data.

        Returns ``group_granularity`` ranks per channel — the least-allocated
        active ranks of each channel — or ``None`` if too few groups would
        remain active.
        """
        active_groups = self.active_ranks_per_channel() // self.group_granularity
        if active_groups - 1 < self.min_active_groups:
            return None
        busy = self._migration_busy_ranks()
        victims: list[RankId] = []
        for channel in range(self.geometry.channels):
            # Only standby ranks qualify: a self-refreshed rank holds cold
            # data and would need waking + evacuation first.  Ranks with
            # in-flight migrations are skipped until those drain.
            standby = [rank for rank in self._active[channel]
                       if self.device.rank(channel, rank).state
                       is PowerState.STANDBY
                       and (channel, rank) not in busy]
            if len(standby) < self.group_granularity:
                return None
            ranked = sorted(
                standby,
                key=lambda rank: self.allocator.usage((channel, rank)).allocated)
            victims.extend((channel, rank)
                           for rank in ranked[:self.group_granularity])
        return victims

    def _victim_live_segments(self, victims: list[RankId]) -> dict[RankId, list[int]]:
        return {rank_id: self.allocator.allocated_in_rank(rank_id)
                for rank_id in victims}

    # -- power-down ---------------------------------------------------------------

    def maybe_power_down(self, now_s: float) -> list[PowerTransition]:
        """Power down as many victim groups as the free capacity allows.

        Called after every VM deallocation (and opportunistically by the
        simulator at interval boundaries).
        """
        performed: list[PowerTransition] = []
        while True:
            transition = self._try_power_down_once(now_s)
            if transition is None:
                return performed
            performed.append(transition)

    def _try_power_down_once(self, now_s: float) -> PowerTransition | None:
        victims = self._victim_group()
        if victims is None:
            return None
        group_segments = (self.geometry.rank_group_segments
                          * self.group_granularity)
        if self.free_segments_in_active() < group_segments:
            return None
        live = self._victim_live_segments(victims)
        victim_set = set(victims)
        remaining_active = self.active_rank_ids() - victim_set
        total_live = sum(len(dsns) for dsns in live.values())
        # The remaining active ranks must absorb every live segment, channel
        # by channel (migration never crosses channels).
        for channel in range(self.geometry.channels):
            need = sum(len(dsns) for rank_id, dsns in live.items()
                       if rank_id[0] == channel)
            have = sum(self.allocator.free_in_rank(rank_id)
                       for rank_id in remaining_active if rank_id[0] == channel)
            if have < need:
                return None
        migrated_bytes = self._consolidate(live, remaining_active, now_s)
        per_channel: dict[int, list[int]] = {}
        for channel, rank in victims:
            self._active[channel].discard(rank)
            per_channel.setdefault(channel, []).append(rank)
        if self.background_migration and self.migration.pending_count():
            # Victims are fenced (no new allocations) but stay in standby
            # until their evacuation copies finish in the background.
            pending = PendingPowerDown(
                victims=tuple(victims), started_s=now_s,
                migrated_segments=total_live,
                migrated_bytes=migrated_bytes)
            self._pending.append(pending)
            return PowerTransition(
                time_s=now_s, rank_ids=tuple(victims),
                new_state=PowerState.STANDBY,  # not yet MPSM
                migrated_segments=total_live,
                migrated_bytes=migrated_bytes, exit_penalty_ns=0.0)
        # Transition one virtual rank-group (one rank per channel) per
        # granularity step so the balance invariant is checked each time.
        penalty = 0.0
        for step in range(self.group_granularity):
            group = [(channel, per_channel[channel][step])
                     for channel in range(self.geometry.channels)]
            penalty = max(penalty, self.device.set_virtual_rank_group_state(
                group, PowerState.MPSM, now_s))
        transition = PowerTransition(
            time_s=now_s, rank_ids=tuple(victims), new_state=PowerState.MPSM,
            migrated_segments=total_live, migrated_bytes=migrated_bytes,
            exit_penalty_ns=penalty)
        self.transitions.append(transition)
        self._mpsm_entries.inc(len(victims))
        return transition

    def _consolidate(self, live: dict[RankId, list[int]],
                     remaining_active: set[RankId], now_s: float) -> int:
        """Copy every live segment off the victim ranks.

        Targets are chosen with the allocator's most-utilised-first policy
        restricted to the surviving active ranks of the same channel.
        """
        migrated_bytes = 0
        for rank_id, dsns in live.items():
            channel = rank_id[0]
            allowed = {other for other in remaining_active
                       if other[0] == channel}
            for old_dsn in dsns:
                new_dsn = self._reserve_target(channel, allowed, now_s)
                hsn = self.tables.hsn_of_dsn(old_dsn)
                self.migration.submit(hsn, old_dsn, new_dsn)
                migrated_bytes += self.geometry.segment_bytes
                self._consolidated_segments.inc()
        self._consolidated_bytes.inc(migrated_bytes)
        if not self.background_migration:
            self.migration.drain()
        return migrated_bytes

    def _reserve_target(self, channel: int, allowed: set[RankId],
                        now_s: float) -> int:
        best: RankId | None = None
        best_util = -1.0
        for rank_id in allowed:
            if not self.allocator.free_in_rank(rank_id):
                continue
            util = self.allocator.usage(rank_id).utilization
            if util > best_util:
                best, best_util = rank_id, util
        if best is None:
            raise AllocationError(
                f"no free target segments on channel {channel}")
        # Writing into a self-refreshed rank wakes it (the DRAM cannot
        # accept commands in SR).
        if self.device.ranks[best].state is PowerState.SELF_REFRESH:
            self.device.set_rank_state(best, PowerState.STANDBY, now_s)
        return self.allocator.allocate_in_rank(best, 1)[0]

    # -- reactivation ------------------------------------------------------------------

    def ensure_capacity(self, num_segments: int,
                        now_s: float) -> list[PowerTransition]:
        """Reactivate rank-groups until ``num_segments`` fit in active ranks.

        Raises:
            AllocationError: when even the fully powered-on device cannot
                hold the allocation.
        """
        performed: list[PowerTransition] = []
        while self.free_segments_in_active() < num_segments:
            transition = self._reactivate_group(now_s)
            if transition is None:
                raise AllocationError(
                    f"device cannot hold {num_segments} more segments")
            performed.append(transition)
        return performed

    # -- background migration -------------------------------------------------------

    def pump(self, now_s: float, lines: int = 1,
             busy_channels: set[int] | None = None) -> int:
        """Grant idle bandwidth to in-flight consolidations.

        Copies up to ``lines`` cachelines per non-busy channel, then
        finishes any pending power-down whose copies have drained.

        Returns:
            Cachelines copied this call.
        """
        copied = self.migration.step_all(busy_channels, lines)
        if self._pending and self.migration.pending_count() == 0:
            for pending in self._pending:
                self._finish_pending(pending, now_s)
            self._pending.clear()
        return copied

    def _finish_pending(self, pending: PendingPowerDown,
                        now_s: float) -> None:
        per_channel: dict[int, list[int]] = {}
        for channel, rank in pending.victims:
            # A reactivation may have reclaimed the rank meanwhile.
            if rank in self._active[channel]:
                continue
            per_channel.setdefault(channel, []).append(rank)
        penalty = 0.0
        for channel, ranks in per_channel.items():
            for rank in ranks:
                if self.device.rank(channel, rank).state \
                        is PowerState.STANDBY:
                    penalty = max(penalty, self.device.set_rank_state(
                        (channel, rank), PowerState.MPSM, now_s))
        self.transitions.append(PowerTransition(
            time_s=now_s, rank_ids=pending.victims,
            new_state=PowerState.MPSM,
            migrated_segments=pending.migrated_segments,
            migrated_bytes=pending.migrated_bytes,
            exit_penalty_ns=penalty))
        self._mpsm_entries.inc(
            sum(len(ranks) for ranks in per_channel.values()))

    def pending_power_downs(self) -> list[PendingPowerDown]:
        """Consolidations still copying in the background."""
        return list(self._pending)

    # -- quarantine (rank retirement support) -------------------------------------

    def quarantine(self, rank_id: RankId) -> None:
        """Remove a rank from service permanently (used by retirement).

        The rank leaves the active set and is excluded from every future
        reactivation; the caller is responsible for evacuating its data
        first.
        """
        self._quarantined.add(rank_id)
        self._active[rank_id[0]].discard(rank_id[1])

    def quarantined_ranks(self) -> set[RankId]:
        """Ranks permanently removed from service."""
        return set(self._quarantined)

    def ensure_capacity_on_channel(self, channel: int, num_segments: int,
                                   exclude: set[RankId],
                                   now_s: float = 0.0) -> None:
        """Wake ranks on one channel until ``num_segments`` fit.

        Used by rank retirement to make room for an evacuation without
        disturbing the other channels' balance more than necessary.

        Raises:
            AllocationError: when the channel cannot absorb the segments.
        """
        def free_on_channel() -> int:
            return sum(self.allocator.free_in_rank((channel, rank))
                       for rank in self._active[channel]
                       if (channel, rank) not in exclude)

        while free_on_channel() < num_segments:
            idle = sorted(rank
                          for rank in range(self.geometry.ranks_per_channel)
                          if rank not in self._active[channel]
                          and (channel, rank) not in self._quarantined
                          and (channel, rank) not in exclude)
            if not idle:
                raise AllocationError(
                    f"channel {channel} cannot absorb {num_segments} "
                    "evacuated segments")
            rank_id = (channel, idle[0])
            self.device.set_rank_state(rank_id, PowerState.STANDBY, now_s)
            self._active[channel].add(idle[0])

    def _reactivate_group(self, now_s: float) -> PowerTransition | None:
        """Wake the next powered-down rank(s), one group step at a time."""
        woken: list[RankId] = []
        for channel in range(self.geometry.channels):
            idle = sorted(rank for rank in
                          set(range(self.geometry.ranks_per_channel))
                          - self._active[channel]
                          if (channel, rank) not in self._quarantined)
            woken.extend((channel, rank)
                         for rank in idle[:self.group_granularity])
        if not woken:
            return None
        penalty = 0.0
        for rank_id in woken:
            penalty = max(penalty, self.device.set_rank_state(
                rank_id, PowerState.STANDBY, now_s))
            self._active[rank_id[0]].add(rank_id[1])
        # Injected delayed/failed MPSM exit (hook: power.mpsm_exit).
        if self._faults is not None:
            penalty += self._faults.on_power_exit("mpsm", penalty)
        transition = PowerTransition(
            time_s=now_s, rank_ids=tuple(woken),
            new_state=PowerState.STANDBY, migrated_segments=0,
            migrated_bytes=0, exit_penalty_ns=penalty)
        self.transitions.append(transition)
        self._reactivations.inc(len(woken))
        return transition


__all__ = ["PowerTransition", "RankPowerDownPolicy"]
