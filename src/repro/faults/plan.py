"""Declarative fault plans: what to inject, where, and on which visits.

A :class:`FaultPlan` is a frozen, hashable schedule of
:class:`FaultSpec` entries.  Determinism is the design constraint:
no spec consults a clock or an RNG at fire time.  Instead every spec
counts its own *eligible events* (hook visits that pass its filters) and
fires on pure counter arithmetic::

    fires on eligible event v  iff  start <= v
                                and (stop == 0 or v < stop)
                                and (v - start) % period == 0
                                and (max_fires == 0 or fired < max_fires)

Replaying the same plan over the same workload therefore injects the
same faults at the same points, bit for bit — the property the
determinism suite (``tests/faults/test_determinism.py``) locks in.

Plans are plain nested frozen dataclasses, so
:func:`repro.exec.hashing.canonical` hashes them with no special
casing; an armed plan folds into the executor's cache keys through
:func:`repro.faults.arming.hashing_context`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.faults.hooks import HookPoint


@dataclass(frozen=True)
class FaultSpec:
    """Base schedule shared by every fault kind.

    Attributes:
        start: First eligible-event index (0-based) that may fire.
        period: Fire every ``period`` eligible events from ``start``.
        stop: Eligible-event index to stop at (exclusive); 0 = never.
        max_fires: Cap on total fires of this spec; 0 = unlimited.
    """

    start: int = 0
    period: int = 1
    stop: int = 0
    max_fires: int = 0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError(f"start must be >= 0, got {self.start}")
        if self.period < 1:
            raise ConfigurationError(
                f"period must be >= 1, got {self.period}")
        if self.stop and self.stop <= self.start:
            raise ConfigurationError(
                f"stop {self.stop} must exceed start {self.start} (or be 0)")
        if self.max_fires < 0:
            raise ConfigurationError(
                f"max_fires must be >= 0, got {self.max_fires}")

    def matches(self, visit: int, fired: int = 0) -> bool:
        """True when eligible event ``visit`` should fire this fault."""
        if visit < self.start:
            return False
        if self.stop and visit >= self.stop:
            return False
        if self.max_fires and fired >= self.max_fires:
            return False
        return (visit - self.start) % self.period == 0


@dataclass(frozen=True)
class CxlLinkFault(FaultSpec):
    """CXL.mem link error (bounded retry + backoff) or stall.

    Attributes:
        kind: ``"error"`` — the transaction is replayed ``retries``
            times with exponential backoff before succeeding;
            ``"stall"`` — the link stalls for a fixed ``stall_ns``.
        retries: Replays needed before the transaction succeeds.
        backoff_ns: Initial backoff before the first replay; doubles
            per replay (see :meth:`CxlLinkConfig.replay_latency_ns`).
        stall_ns: Stall duration for ``kind="stall"``.
    """

    kind: str = "error"
    retries: int = 1
    backoff_ns: float = 50.0
    stall_ns: float = 500.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kind not in ("error", "stall"):
            raise ConfigurationError(
                f"CxlLinkFault kind must be 'error' or 'stall', "
                f"got {self.kind!r}")
        if self.retries < 1:
            raise ConfigurationError(
                f"retries must be >= 1, got {self.retries}")


@dataclass(frozen=True)
class EccFault(FaultSpec):
    """DRAM ECC error on one rank (or any rank).

    Attributes:
        channel: Restrict to this channel (-1 = any).
        rank: Restrict to this rank index (-1 = any).
        bits: 1 = correctable single-bit error; >= 2 = detected
            uncorrectable error (accounted, never silently dropped).
    """

    channel: int = -1
    rank: int = -1
    bits: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.bits < 1:
            raise ConfigurationError(f"bits must be >= 1, got {self.bits}")

    def applies_to(self, channel: int, rank: int) -> bool:
        """True when an access to ``(channel, rank)`` is eligible."""
        return ((self.channel < 0 or self.channel == channel)
                and (self.rank < 0 or self.rank == rank))


@dataclass(frozen=True)
class MigrationAbortFault(FaultSpec):
    """Abort an in-flight segment copy at a chosen progress counter.

    The abort is injected *before* the copy step, only while the
    request's completion bit is clear — aborting after completion would
    lose foreground writes already redirected to the new DSN, which the
    hardware protocol makes impossible by construction.

    Attributes:
        at_lines_done: Fire when the request's progress counter equals
            this value (-1 = any progress).
        channel: Restrict to one channel (-1 = any).
    """

    #: Bounded by default: an unbounded every-visit abort at progress 0
    #: would starve ``MigrationEngine.drain`` forever (each abort resets
    #: the counter back into the spec's own match window).
    max_fires: int = 16
    at_lines_done: int = -1
    channel: int = -1

    def applies_to(self, lines_done: int, channel: int) -> bool:
        """True when a copy step at this progress/channel is eligible."""
        return ((self.at_lines_done < 0
                 or self.at_lines_done == lines_done)
                and (self.channel < 0 or self.channel == channel))


@dataclass(frozen=True)
class PowerExitFault(FaultSpec):
    """Delayed or failed MPSM / self-refresh exit.

    Attributes:
        target: ``"mpsm"`` (rank-group reactivation) or ``"sr"``
            (victim-block wake).
        kind: ``"delay"`` — the exit takes ``delay_ns`` longer;
            ``"fail"`` — ``failures`` exit attempts fail before one
            succeeds, each costing ``delay_ns``.
        delay_ns: Extra wake penalty per delayed/failed attempt.
        failures: Failed attempts for ``kind="fail"``.
    """

    target: str = "mpsm"
    kind: str = "delay"
    delay_ns: float = 1000.0
    failures: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.target not in ("mpsm", "sr"):
            raise ConfigurationError(
                f"PowerExitFault target must be 'mpsm' or 'sr', "
                f"got {self.target!r}")
        if self.kind not in ("delay", "fail"):
            raise ConfigurationError(
                f"PowerExitFault kind must be 'delay' or 'fail', "
                f"got {self.kind!r}")
        if self.failures < 1:
            raise ConfigurationError(
                f"failures must be >= 1, got {self.failures}")

    @property
    def extra_penalty_ns(self) -> float:
        """Wake-penalty inflation one fire adds."""
        if self.kind == "delay":
            return self.delay_ns
        return self.delay_ns * self.failures


@dataclass(frozen=True)
class SmcCorruptionFault(FaultSpec):
    """Corrupt the SMC entry of the segment being translated.

    The model follows SRAM parity protection: the corrupted entry is
    detected at lookup time and dropped (invalidated), so the next
    access to that segment re-walks the mapping table.  Injected,
    detected, and recovered in one step — never silent.
    """


def hook_point_of(spec: FaultSpec) -> HookPoint:
    """The hook point a spec fires at (by spec type, and target)."""
    if isinstance(spec, CxlLinkFault):
        return HookPoint.CXL_ACCESS
    if isinstance(spec, EccFault):
        return HookPoint.DRAM_ACCESS
    if isinstance(spec, MigrationAbortFault):
        return HookPoint.MIGRATION_COPY
    if isinstance(spec, PowerExitFault):
        return (HookPoint.MPSM_EXIT if spec.target == "mpsm"
                else HookPoint.SR_EXIT)
    if isinstance(spec, SmcCorruptionFault):
        return HookPoint.SMC_LOOKUP
    raise ConfigurationError(
        f"no hook point for fault spec type {type(spec).__name__}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative schedule of fault specs.

    The seed does not drive fire decisions (those are pure counter
    arithmetic) — it names the plan variant and feeds workload RNGs in
    experiments that derive their trace from the plan, so one integer
    reproduces a whole chaos run.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()
    name: str = "plan"

    def __post_init__(self) -> None:
        for spec in self.specs:
            hook_point_of(spec)  # every spec must map to a hook

    @property
    def active(self) -> bool:
        """True when the plan schedules at least one fault."""
        return bool(self.specs)

    def by_hook(self) -> dict[HookPoint, tuple[tuple[int, FaultSpec], ...]]:
        """Specs grouped by hook point, keyed to their plan index."""
        grouped: dict[HookPoint, list[tuple[int, FaultSpec]]] = {
            point: [] for point in HookPoint}
        for index, spec in enumerate(self.specs):
            grouped[hook_point_of(spec)].append((index, spec))
        return {point: tuple(entries) for point, entries in grouped.items()}

    def escalated(self, level: int) -> "FaultPlan":
        """A harsher variant: fire periods shrink by ``2**level``.

        Level 0 is the plan itself; each level halves every spec's
        period (floored at 1), so an escalating soak doubles the fault
        rate per level without touching the schedule's phase.
        """
        if level < 0:
            raise ConfigurationError(f"level must be >= 0, got {level}")
        if level == 0:
            return self
        specs = tuple(
            dataclasses.replace(spec,
                                period=max(1, spec.period >> level))
            for spec in self.specs)
        return dataclasses.replace(self, specs=specs,
                                   name=f"{self.name}@L{level}")


__all__ = [
    "FaultSpec",
    "CxlLinkFault",
    "EccFault",
    "MigrationAbortFault",
    "PowerExitFault",
    "SmcCorruptionFault",
    "FaultPlan",
    "hook_point_of",
]
