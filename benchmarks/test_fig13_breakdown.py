"""Figure 13: DRAM power breakdown, baseline vs rank-level power-down.

Paper: the power-down scheme cuts background power by 35.3 % while active
power barely moves (the same foreground VMs run either way), for a 32.7 %
total power reduction.
"""

import pytest

from repro.sim.powerdown_sim import (ComparisonSimulator,
                                     background_power_savings, power_savings)

from conftest import report

PAPER_BACKGROUND_SAVINGS = 0.353
PAPER_TOTAL_SAVINGS = 0.327


@pytest.fixture(scope="module")
def results():
    return ComparisonSimulator().run().as_tuple()


def test_fig13_power_breakdown(benchmark, results):
    baseline, dtl = benchmark.pedantic(lambda: results, rounds=1,
                                       iterations=1)
    duration = sum(record.duration_s for record in dtl.intervals)
    rows = [
        ("background", f"{baseline.energy.background_j / duration:.1f}",
         f"{dtl.energy.background_j / duration:.1f}"),
        ("active", f"{baseline.energy.active_j / duration:.1f}",
         f"{dtl.energy.active_j / duration:.1f}"),
        ("migration", f"{baseline.energy.migration_j / duration:.2f}",
         f"{dtl.energy.migration_j / duration:.2f}"),
    ]
    report("Figure 13: mean power breakdown (RSU)", rows,
           header=("component", "baseline", "power-down"))

    bg_savings = background_power_savings(baseline, dtl)
    total_savings = power_savings(baseline, dtl)
    report("Figure 13: savings", [
        ("background", f"{bg_savings:.1%}",
         f"(paper {PAPER_BACKGROUND_SAVINGS:.1%})"),
        ("total", f"{total_savings:.1%}",
         f"(paper {PAPER_TOTAL_SAVINGS:.1%})"),
    ], header=("component", "measured", "paper"))

    # Shape: background dominates the savings; active power is unchanged.
    assert 0.6 * PAPER_BACKGROUND_SAVINGS < bg_savings \
        < 1.5 * PAPER_BACKGROUND_SAVINGS
    assert dtl.energy.active_j == pytest.approx(baseline.energy.active_j,
                                                rel=1e-9)
    assert bg_savings > total_savings - 0.02


def test_fig13_background_dominates_baseline(results):
    baseline, _ = results
    assert baseline.energy.background_j > 3 * baseline.energy.active_j
