"""Rank-level power-down policy (Section 3.3).

At every VM deallocation the DTL checks whether the unallocated capacity
among the *active* ranks exceeds the size of one rank-group (one rank per
channel, same index — or a CKE pair of them on hardware where two ranks
share a clock-enable pin, Section 5.1).  If so, the live segments of the
victim group are consolidated into the other active ranks and the victim
group enters a parked power state (MPSM in the paper).

When a later allocation does not fit into the active ranks, the policy
reactivates powered-down groups (``MPSM_exit``).  The exit penalty overlaps
with the new VM's initialisation, so running VMs never observe it
(paper, Section 3.3 walk-through).

Because hotness-aware self-refresh migrates at segment granularity, rank
utilisation inside a group can drift apart across channels; the policy then
forms a *virtual rank-group* from one rank per channel (Section 4.3).

*Which* ranks become victims, *where* their data goes, and *how deep* the
group parks are delegated to a pluggable :class:`repro.policies.Policy`;
the default :class:`~repro.policies.PaperPolicy` reproduces the published
behaviour bit-for-bit (least-allocated victims, most-utilised targets,
static MPSM).  This class owns everything policies must not touch:
capacity invariants, migration submission, fencing, device transitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocator import RankId, SegmentAllocator
from repro.core.migration import MigrationEngine
from repro.core.tables import TranslationTables
from repro.dram.device import DramDevice
from repro.dram.power import PowerState
from repro.errors import AllocationError
from repro.policies import (
    DemotionLevel,
    Policy,
    PolicyConfig,
    RankStats,
    make_policy,
)
from repro.telemetry import EventTrace, MetricsRegistry


@dataclass
class PowerTransition:
    """Record of one rank-group power transition."""

    time_s: float
    rank_ids: tuple[RankId, ...]
    new_state: PowerState
    migrated_segments: int
    migrated_bytes: int
    exit_penalty_ns: float


@dataclass
class PendingPowerDown:
    """A consolidation still copying in the background.

    The victim ranks are already fenced from new allocations; the park
    transition happens once the migration engine drains (the paper copies
    "in background by utilizing unused DRAM bandwidth").
    """

    victims: tuple[RankId, ...]
    started_s: float
    migrated_segments: int
    migrated_bytes: int
    park_state: PowerState = PowerState.MPSM


class RankPowerDownPolicy:
    """Consolidate-and-power-down controller for rank groups."""

    def __init__(self, device: DramDevice, allocator: SegmentAllocator,
                 tables: TranslationTables, migration: MigrationEngine,
                 config: PolicyConfig | None = None, *,
                 policy: Policy | None = None,
                 registry: MetricsRegistry | None = None,
                 trace: EventTrace | None = None):
        if config is None:
            config = PolicyConfig()
        geometry = device.geometry
        if geometry.ranks_per_channel % config.group_granularity:
            raise ValueError("group_granularity must divide ranks_per_channel")
        if config.min_active_groups < 1:
            raise ValueError("at least one rank-group must stay active")
        self.device = device
        self.geometry = geometry
        self.allocator = allocator
        self.tables = tables
        self.migration = migration
        self.config = config
        self.policy = policy if policy is not None else make_policy(config)
        self.group_granularity = config.group_granularity
        self.min_active_groups = config.min_active_groups
        # Active ranks, tracked per channel so virtual groups are possible.
        self._active: dict[int, set[int]] = {
            channel: set(range(geometry.ranks_per_channel))
            for channel in range(geometry.channels)}
        # Quarantined (retired) ranks: never reactivated, never allocated.
        self._quarantined: set[RankId] = set()
        #: When True, consolidation copies proceed only as idle bandwidth
        #: is granted via :meth:`pump`, and the park waits for them.
        self.background_migration = config.background_migration
        self._pending: list[PendingPowerDown] = []
        self.transitions: list[PowerTransition] = []
        # Park timestamps feeding the policy's idle-gap observations.
        self._parked_at: dict[RankId, tuple[float, PowerState]] = {}
        registry = registry if registry is not None else MetricsRegistry()
        self._trace = trace
        self._mpsm_entries = registry.counter("power.mpsm_entries")
        self._sr_parks = registry.counter("power.sr_parks")
        self._reactivations = registry.counter("power.reactivations")
        self._consolidated_segments = registry.counter(
            "power.consolidated_segments")
        self._consolidated_bytes = registry.counter(
            "power.consolidated_bytes")
        self._demotion_counters = {
            level: registry.counter(f"policy.demotion.{level.value}")
            for level in DemotionLevel}
        self._idle_gap_hist = registry.histogram("policy.rank_idle_gap_ns")
        # Armed fault injector (None = zero-overhead no-op hooks).
        self._faults = None

    def arm_faults(self, injector) -> None:
        """Attach (or with ``None`` detach) a fault injector."""
        self._faults = injector

    # -- queries --------------------------------------------------------------

    def active_rank_ids(self) -> set[RankId]:
        """All ranks currently in standby (allocatable)."""
        return {(channel, rank)
                for channel, ranks in self._active.items()
                for rank in ranks}

    def active_ranks_per_channel(self) -> int:
        """Minimum standby ranks over all channels.

        Channels stay balanced under normal operation; rank retirement can
        leave one channel a rank short, in which case the minimum governs
        both victim selection and capacity planning.
        """
        return min(len(ranks) for ranks in self._active.values())

    def powered_down_ranks(self) -> set[RankId]:
        """Ranks currently parked (MPSM or policy-chosen self-refresh)."""
        all_ranks = {(channel, rank)
                     for channel in range(self.geometry.channels)
                     for rank in range(self.geometry.ranks_per_channel)}
        return all_ranks - self.active_rank_ids()

    def free_segments_in_active(self) -> int:
        """Unallocated segments among active ranks."""
        return self.allocator.free_count(self.active_rank_ids())

    def _rank_stats(self, channel: int, rank: int) -> RankStats:
        """Snapshot one rank for a policy decision."""
        usage = self.allocator.usage((channel, rank))
        rank_obj = self.device.rank(channel, rank)
        return RankStats(
            channel=channel, rank=rank,
            allocated=usage.allocated,
            free=usage.capacity - usage.allocated,
            utilization=usage.utilization,
            access_count=rank_obj.access_count,
            window_count=0, last_window_count=0,
            state=rank_obj.state)

    # -- victim selection -------------------------------------------------------

    def _migration_busy_ranks(self) -> set[RankId]:
        """Ranks touched by an in-flight migration (source or target).

        Such a rank cannot be a consolidation victim: its in-flight
        *target* segments are allocated but not yet mapped (nothing to
        evacuate, data still arriving) and its *source* segments are
        already being migrated (a second submit would conflict).
        """
        busy: set[RankId] = set()
        for request in self.migration.tracked_requests():
            busy.add(self.allocator.rank_of_dsn(request.old_dsn))
            busy.add(self.allocator.rank_of_dsn(request.new_dsn))
        return busy

    def _victim_group(self) -> list[RankId] | None:
        """Ask the policy for a virtual victim rank-group.

        Returns ``group_granularity`` ranks per channel — chosen by the
        policy from each channel's standby, migration-free ranks — or
        ``None`` if too few groups would remain active (or the policy
        declines).
        """
        active_groups = self.active_ranks_per_channel() // self.group_granularity
        if active_groups - 1 < self.min_active_groups:
            return None
        busy = self._migration_busy_ranks()
        victims: list[RankId] = []
        for channel in range(self.geometry.channels):
            # Only standby ranks qualify: a self-refreshed rank holds cold
            # data and would need waking + evacuation first.  Ranks with
            # in-flight migrations are skipped until those drain.
            candidates = [self._rank_stats(channel, rank)
                          for rank in self._active[channel]
                          if self.device.rank(channel, rank).state
                          is PowerState.STANDBY
                          and (channel, rank) not in busy]
            if len(candidates) < self.group_granularity:
                return None
            chosen = self.policy.powerdown_victims(
                channel, candidates, self.group_granularity)
            if chosen is None:
                return None
            valid = {stats.rank for stats in candidates}
            if len(chosen) != self.group_granularity \
                    or not set(chosen) <= valid:
                raise ValueError(
                    f"policy {self.policy.name!r} returned invalid victims "
                    f"{chosen} for channel {channel}")
            victims.extend((channel, rank) for rank in chosen)
        return victims

    def _victim_live_segments(self, victims: list[RankId]) -> dict[RankId, list[int]]:
        return {rank_id: self.allocator.allocated_in_rank(rank_id)
                for rank_id in victims}

    # -- power-down ---------------------------------------------------------------

    def maybe_power_down(self, now_s: float) -> list[PowerTransition]:
        """Power down as many victim groups as the free capacity allows.

        Called after every VM deallocation (and opportunistically by the
        simulator at interval boundaries).
        """
        performed: list[PowerTransition] = []
        while True:
            transition = self._try_power_down_once(now_s)
            if transition is None:
                return performed
            performed.append(transition)

    def _try_power_down_once(self, now_s: float) -> PowerTransition | None:
        victims = self._victim_group()
        if victims is None:
            return None
        group_segments = (self.geometry.rank_group_segments
                          * self.group_granularity)
        if self.free_segments_in_active() < group_segments:
            return None
        live = self._victim_live_segments(victims)
        victim_set = set(victims)
        remaining_active = self.active_rank_ids() - victim_set
        total_live = sum(len(dsns) for dsns in live.values())
        # The remaining active ranks must absorb every live segment, channel
        # by channel (migration never crosses channels).
        for channel in range(self.geometry.channels):
            need = sum(len(dsns) for rank_id, dsns in live.items()
                       if rank_id[0] == channel)
            have = sum(self.allocator.free_in_rank(rank_id)
                       for rank_id in remaining_active if rank_id[0] == channel)
            if have < need:
                return None
        # How deep to park — decided *before* any data moves, so a
        # STAY_ACTIVE answer costs nothing.
        level = self.policy.demotion_level(
            "powerdown", [self._rank_stats(*rank_id) for rank_id in victims])
        self._demotion_counters[level].inc()
        park_state = level.park_state()
        if park_state is None:
            return None
        migrated_bytes = self._consolidate(live, remaining_active, now_s)
        per_channel: dict[int, list[int]] = {}
        for channel, rank in victims:
            self._active[channel].discard(rank)
            per_channel.setdefault(channel, []).append(rank)
        if self.background_migration and self.migration.pending_count():
            # Victims are fenced (no new allocations) but stay in standby
            # until their evacuation copies finish in the background.
            pending = PendingPowerDown(
                victims=tuple(victims), started_s=now_s,
                migrated_segments=total_live,
                migrated_bytes=migrated_bytes,
                park_state=park_state)
            self._pending.append(pending)
            return PowerTransition(
                time_s=now_s, rank_ids=tuple(victims),
                new_state=PowerState.STANDBY,  # not yet parked
                migrated_segments=total_live,
                migrated_bytes=migrated_bytes, exit_penalty_ns=0.0)
        # Transition one virtual rank-group (one rank per channel) per
        # granularity step so the balance invariant is checked each time.
        penalty = 0.0
        for step in range(self.group_granularity):
            group = [(channel, per_channel[channel][step])
                     for channel in range(self.geometry.channels)]
            penalty = max(penalty, self.device.set_virtual_rank_group_state(
                group, park_state, now_s))
        for rank_id in victims:
            self._parked_at[rank_id] = (now_s, park_state)
        transition = PowerTransition(
            time_s=now_s, rank_ids=tuple(victims), new_state=park_state,
            migrated_segments=total_live, migrated_bytes=migrated_bytes,
            exit_penalty_ns=penalty)
        self.transitions.append(transition)
        self._count_parks(park_state, len(victims))
        return transition

    def _count_parks(self, park_state: PowerState, ranks: int) -> None:
        if park_state is PowerState.MPSM:
            self._mpsm_entries.inc(ranks)
        else:
            self._sr_parks.inc(ranks)

    def _consolidate(self, live: dict[RankId, list[int]],
                     remaining_active: set[RankId], now_s: float) -> int:
        """Copy every live segment off the victim ranks.

        Targets are scored by the policy (the paper's: most-utilised
        first) restricted to the surviving active ranks of the same
        channel.
        """
        migrated_bytes = 0
        for rank_id, dsns in live.items():
            channel = rank_id[0]
            allowed = {other for other in remaining_active
                       if other[0] == channel}
            for old_dsn in dsns:
                new_dsn = self._reserve_target(channel, allowed, now_s)
                hsn = self.tables.hsn_of_dsn(old_dsn)
                self.migration.submit(hsn, old_dsn, new_dsn)
                migrated_bytes += self.geometry.segment_bytes
                self._consolidated_segments.inc()
        self._consolidated_bytes.inc(migrated_bytes)
        if not self.background_migration:
            self.migration.drain()
        return migrated_bytes

    def _reserve_target(self, channel: int, allowed: set[RankId],
                        now_s: float) -> int:
        candidates = [self._rank_stats(*rank_id) for rank_id in allowed
                      if self.allocator.free_in_rank(rank_id)]
        chosen = (self.policy.consolidation_target(candidates)
                  if candidates else None)
        if chosen is None:
            raise AllocationError(
                f"no free target segments on channel {channel}")
        best = chosen.rank_id
        # Writing into a self-refreshed rank wakes it (the DRAM cannot
        # accept commands in SR).
        if self.device.ranks[best].state is PowerState.SELF_REFRESH:
            self.device.set_rank_state(best, PowerState.STANDBY, now_s)
        return self.allocator.allocate_in_rank(best, 1)[0]

    # -- reactivation ------------------------------------------------------------------

    def ensure_capacity(self, num_segments: int,
                        now_s: float) -> list[PowerTransition]:
        """Reactivate rank-groups until ``num_segments`` fit in active ranks.

        Raises:
            AllocationError: when even the fully powered-on device cannot
                hold the allocation.
        """
        performed: list[PowerTransition] = []
        while self.free_segments_in_active() < num_segments:
            transition = self._reactivate_group(now_s)
            if transition is None:
                raise AllocationError(
                    f"device cannot hold {num_segments} more segments")
            performed.append(transition)
        return performed

    # -- background migration -------------------------------------------------------

    def pump(self, now_s: float, lines: int = 1,
             busy_channels: set[int] | None = None) -> int:
        """Grant idle bandwidth to in-flight consolidations.

        Copies up to ``lines`` cachelines per non-busy channel, then
        finishes any pending power-down whose copies have drained.

        Returns:
            Cachelines copied this call.
        """
        copied = self.migration.step_all(busy_channels, lines)
        if self._pending and self.migration.pending_count() == 0:
            for pending in self._pending:
                self._finish_pending(pending, now_s)
            self._pending.clear()
        return copied

    def _finish_pending(self, pending: PendingPowerDown,
                        now_s: float) -> None:
        per_channel: dict[int, list[int]] = {}
        for channel, rank in pending.victims:
            # A reactivation may have reclaimed the rank meanwhile.
            if rank in self._active[channel]:
                continue
            per_channel.setdefault(channel, []).append(rank)
        penalty = 0.0
        for channel, ranks in per_channel.items():
            for rank in ranks:
                if self.device.rank(channel, rank).state \
                        is PowerState.STANDBY:
                    penalty = max(penalty, self.device.set_rank_state(
                        (channel, rank), pending.park_state, now_s))
                    self._parked_at[(channel, rank)] = (
                        now_s, pending.park_state)
        self.transitions.append(PowerTransition(
            time_s=now_s, rank_ids=pending.victims,
            new_state=pending.park_state,
            migrated_segments=pending.migrated_segments,
            migrated_bytes=pending.migrated_bytes,
            exit_penalty_ns=penalty))
        self._count_parks(
            pending.park_state,
            sum(len(ranks) for ranks in per_channel.values()))

    def pending_power_downs(self) -> list[PendingPowerDown]:
        """Consolidations still copying in the background."""
        return list(self._pending)

    # -- serialisation ------------------------------------------------------------

    def state_dict(self) -> dict:
        """Active sets, fences, pending parks, and history as plain data.

        Registry-backed counters (park/reactivation tallies, demotion
        counts, the idle-gap histogram) restore through
        :meth:`~repro.telemetry.MetricsRegistry.load_state_dict`; the
        shared plug-in policy's state restores through the controller's
        single ``policy`` entry.
        """
        return {
            "active": {channel: sorted(ranks)
                       for channel, ranks in self._active.items()},
            "quarantined": sorted(self._quarantined),
            "pending": [{"victims": list(pending.victims),
                         "started_s": pending.started_s,
                         "migrated_segments": pending.migrated_segments,
                         "migrated_bytes": pending.migrated_bytes,
                         "park_state": pending.park_state.name}
                        for pending in self._pending],
            "transitions": [{"time_s": t.time_s,
                             "rank_ids": list(t.rank_ids),
                             "new_state": t.new_state.name,
                             "migrated_segments": t.migrated_segments,
                             "migrated_bytes": t.migrated_bytes,
                             "exit_penalty_ns": t.exit_penalty_ns}
                            for t in self.transitions],
            "parked_at": {rank_id: (time_s, state.name)
                          for rank_id, (time_s, state)
                          in self._parked_at.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        self._active = {channel: set(ranks)
                        for channel, ranks in state["active"].items()}
        self._quarantined = {tuple(rank_id)
                             for rank_id in state["quarantined"]}
        self._pending = [
            PendingPowerDown(victims=tuple(tuple(r) for r in p["victims"]),
                             started_s=p["started_s"],
                             migrated_segments=p["migrated_segments"],
                             migrated_bytes=p["migrated_bytes"],
                             park_state=PowerState[p["park_state"]])
            for p in state["pending"]]
        self.transitions = [
            PowerTransition(time_s=t["time_s"],
                            rank_ids=tuple(tuple(r) for r in t["rank_ids"]),
                            new_state=PowerState[t["new_state"]],
                            migrated_segments=t["migrated_segments"],
                            migrated_bytes=t["migrated_bytes"],
                            exit_penalty_ns=t["exit_penalty_ns"])
            for t in state["transitions"]]
        self._parked_at = {tuple(rank_id): (time_s, PowerState[name])
                           for rank_id, (time_s, name)
                           in state["parked_at"].items()}

    # -- quarantine (rank retirement support) -------------------------------------

    def quarantine(self, rank_id: RankId) -> None:
        """Remove a rank from service permanently (used by retirement).

        The rank leaves the active set and is excluded from every future
        reactivation; the caller is responsible for evacuating its data
        first.
        """
        self._quarantined.add(rank_id)
        self._active[rank_id[0]].discard(rank_id[1])
        self._parked_at.pop(rank_id, None)

    def quarantined_ranks(self) -> set[RankId]:
        """Ranks permanently removed from service."""
        return set(self._quarantined)

    def ensure_capacity_on_channel(self, channel: int, num_segments: int,
                                   exclude: set[RankId],
                                   now_s: float = 0.0) -> None:
        """Wake ranks on one channel until ``num_segments`` fit.

        Used by rank retirement to make room for an evacuation without
        disturbing the other channels' balance more than necessary.

        Raises:
            AllocationError: when the channel cannot absorb the segments.
        """
        def free_on_channel() -> int:
            return sum(self.allocator.free_in_rank((channel, rank))
                       for rank in self._active[channel]
                       if (channel, rank) not in exclude)

        while free_on_channel() < num_segments:
            idle = sorted(rank
                          for rank in range(self.geometry.ranks_per_channel)
                          if rank not in self._active[channel]
                          and (channel, rank) not in self._quarantined
                          and (channel, rank) not in exclude)
            if not idle:
                raise AllocationError(
                    f"channel {channel} cannot absorb {num_segments} "
                    "evacuated segments")
            rank_id = (channel, idle[0])
            self.device.set_rank_state(rank_id, PowerState.STANDBY, now_s)
            self._active[channel].add(idle[0])
            self._observe_wake(rank_id, now_s)

    def _observe_wake(self, rank_id: RankId, now_s: float) -> None:
        """Feed one completed park into the policy's idle histograms."""
        parked = self._parked_at.pop(rank_id, None)
        if parked is None:
            return
        gap_ns = (now_s - parked[0]) * 1e9
        self._idle_gap_hist.observe(gap_ns)
        self.policy.observe_idle_gap("powerdown", rank_id[0], rank_id[1],
                                     gap_ns)

    def _reactivate_group(self, now_s: float) -> PowerTransition | None:
        """Wake the next powered-down rank(s), one group step at a time."""
        woken: list[RankId] = []
        for channel in range(self.geometry.channels):
            idle = sorted(rank for rank in
                          set(range(self.geometry.ranks_per_channel))
                          - self._active[channel]
                          if (channel, rank) not in self._quarantined)
            woken.extend((channel, rank)
                         for rank in idle[:self.group_granularity])
        if not woken:
            return None
        # The fault hook kind reflects the state actually being exited;
        # PaperPolicy always parks in MPSM.
        exited_sr = any(
            self.device.ranks[rank_id].state is PowerState.SELF_REFRESH
            for rank_id in woken)
        penalty = 0.0
        for rank_id in woken:
            penalty = max(penalty, self.device.set_rank_state(
                rank_id, PowerState.STANDBY, now_s))
            self._active[rank_id[0]].add(rank_id[1])
            self._observe_wake(rank_id, now_s)
        # Injected delayed/failed park exit (hook: power.mpsm_exit).
        if self._faults is not None:
            penalty += self._faults.on_power_exit(
                "sr" if exited_sr else "mpsm", penalty)
        transition = PowerTransition(
            time_s=now_s, rank_ids=tuple(woken),
            new_state=PowerState.STANDBY, migrated_segments=0,
            migrated_bytes=0, exit_penalty_ns=penalty)
        self.transitions.append(transition)
        self._reactivations.inc(len(woken))
        return transition


__all__ = ["PowerTransition", "PendingPowerDown", "RankPowerDownPolicy"]
