"""Checkpoints taken at hostile moments: mid-migration, mid-phase,
armed fault plans, non-default policies.

The restore-at-k suite proves identity for arbitrary k; these tests pin
the specific states the checkpoint layer is most likely to get wrong —
snapshots taken while work is in flight — and *assert the hostile
condition actually held*, so the coverage cannot silently rot into
snapshots of quiescent states.
"""

from __future__ import annotations

import dataclasses

from repro.checkpoint import checkpoint_state, resume_state
from repro.exec.hashing import stable_hash
from repro.faults import ChaosSoakConfig, armed
from repro.sim.experiments import EXPERIMENTS
from repro.sim.stepping import make_stepper


def drive_from(stepper, state):
    while stepper.advance(state):
        pass
    return stepper.finish(state)


def resume_and_finish(name, config, checkpoint):
    resumer = make_stepper(name, config)
    return drive_from(resumer, resume_state(resumer, checkpoint))


def records_equal(a, b) -> bool:
    ra, rb = a.to_record(), b.to_record()
    return (ra.metrics == rb.metrics
            and stable_hash(ra.metrics) == stable_hash(rb.metrics))


def test_powerdown_snapshot_with_migration_in_flight():
    # The registry's tiny config never migrates; this one does (40 VMs
    # churning for half an hour forces rank-vacating moves by interval
    # 4 of 6, so the snapshot lands with intervals still to run).
    from repro.host.scheduler import SchedulerConfig
    from repro.sim.powerdown_sim import PowerDownSimConfig
    from repro.workloads.azure import AzureTraceConfig
    config = PowerDownSimConfig(
        azure=AzureTraceConfig(num_vms=40, duration_s=1800.0),
        scheduler=SchedulerConfig(duration_s=1800.0))
    cold = make_stepper("powerdown", config).run()
    assert cold.migrated_bytes > 0

    stepper = make_stepper("powerdown", config)
    state = stepper.begin()
    step = 0
    hostile_step = None
    checkpoint = None
    more = True
    while more:
        more = stepper.advance(state)
        step += 1
        if checkpoint is None and (state.pending_migration_bytes > 0
                                   or state.migrated_bytes_total > 0):
            hostile_step = step
            checkpoint = checkpoint_state(stepper, state, step)
    assert checkpoint is not None, \
        "tiny powerdown config never migrated; hostile coverage lost"
    assert hostile_step < step  # mid-run, not the final state

    resumed = resume_and_finish("powerdown", config, checkpoint)
    assert records_equal(cold, resumed)


def test_selfrefresh_snapshot_during_sr_phase_transitions():
    # Snapshot at the first step with ranks *currently in* self-refresh
    # while exits are still to come: the rank state machines, pending
    # swaps, and policy accumulators are all mid-flight.
    config = EXPERIMENTS["selfrefresh"].tiny_config()
    cold = make_stepper("selfrefresh", config).run()
    assert cold.sr_entries > 0 and cold.sr_exits > 0

    stepper = make_stepper("selfrefresh", config)
    state = stepper.begin()
    checkpoint = None
    more = True
    step = 0
    while more:
        more = stepper.advance(state)
        step += 1
        if (checkpoint is None and more
                and state.steps[-1].sr_ranks > 0):
            checkpoint = checkpoint_state(stepper, state, step)
    assert checkpoint is not None, \
        "never caught the run with a rank in self-refresh"

    resumed = resume_and_finish("selfrefresh", config, checkpoint)
    assert records_equal(cold, resumed)


def test_chaos_snapshot_with_armed_plan_partially_consumed():
    # The chaos soak arms a fault plan whose injectors carry countdown
    # state; a checkpoint between escalation levels captures partially
    # consumed counters.  Cold and resumed runs arm identically.
    config = ChaosSoakConfig(seed=3, levels=2, batches_per_phase=3,
                             batch_size=24)
    plan = config.base_plan()
    with armed(plan):
        cold = make_stepper("chaos", config).run()

        stepper = make_stepper("chaos", config)
        state = stepper.begin()
        assert stepper.advance(state)  # level 0 done, level 1 pending
        assert state.level == 1 and len(state.reports) == 1
        assert state.reports[0].injected_total > 0, \
            "level 0 injected nothing; armed-counter coverage lost"
        checkpoint = checkpoint_state(stepper, state, 1)

        resumed = resume_and_finish("chaos", config, checkpoint)
    assert records_equal(cold, resumed)
    assert resumed.report.injected_total == cold.report.injected_total


def test_restore_identity_under_every_policy():
    base = EXPERIMENTS["selfrefresh"].tiny_config()
    from repro.policies import POLICIES
    for policy in sorted(POLICIES):
        config = dataclasses.replace(base, policy=policy, duration_s=1.0)
        cold = make_stepper("selfrefresh", config).run()

        stepper = make_stepper("selfrefresh", config)
        state = stepper.begin()
        for _ in range(3):
            stepper.advance(state)
        checkpoint = checkpoint_state(stepper, state, 3)
        resumed = resume_and_finish("selfrefresh", config, checkpoint)
        assert records_equal(cold, resumed), f"policy {policy!r} diverged"


def test_comparison_snapshot_between_legs():
    # powerdown_comparison runs baseline then DTL; step k=1 on the tiny
    # config is inside the baseline leg, and the snapshot must carry
    # the not-yet-started DTL leg's full begin() state.
    config = EXPERIMENTS["powerdown_comparison"].tiny_config()
    cold = make_stepper("powerdown_comparison", config).run()

    stepper = make_stepper("powerdown_comparison", config)
    state = stepper.begin()
    while not state.baseline_done:
        stepper.advance(state)
    checkpoint = checkpoint_state(stepper, state, 0)
    resumed = resume_and_finish("powerdown_comparison", config, checkpoint)
    ca, cb = cold.baseline.to_record(), cold.dtl.to_record()
    ra, rb = resumed.baseline.to_record(), resumed.dtl.to_record()
    assert ca.metrics == ra.metrics and cb.metrics == rb.metrics
