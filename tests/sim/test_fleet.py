"""Tests for the fleet-level study."""

import numpy as np
import pytest

from repro.analysis.tco import TcoModel
from repro.host.scheduler import SchedulerConfig
from repro.sim.fleet import FleetConfig, FleetSimulator
from repro.sim.powerdown_sim import PowerDownSimConfig
from repro.workloads.azure import AzureTraceConfig


@pytest.fixture(scope="module")
def fleet():
    node = PowerDownSimConfig(
        azure=AzureTraceConfig(num_vms=30, duration_s=1800.0),
        scheduler=SchedulerConfig(duration_s=1800.0))
    return FleetSimulator(FleetConfig(num_nodes=3, node=node)).run()


class TestFleet:
    def test_all_nodes_simulated(self, fleet):
        assert len(fleet.nodes) == 3
        assert [node.seed for node in fleet.nodes] == [0, 1, 2]

    def test_nodes_are_heterogeneous(self, fleet):
        savings = fleet.per_node_savings
        assert len(np.unique(np.round(savings, 4))) > 1

    def test_fleet_savings_is_energy_weighted(self, fleet):
        baseline = sum(node.baseline_energy_j for node in fleet.nodes)
        dtl = sum(node.dtl_energy_j for node in fleet.nodes)
        assert fleet.fleet_savings == pytest.approx(1 - dtl / baseline)

    def test_fleet_saves_energy(self, fleet):
        assert fleet.fleet_savings > 0.1

    def test_fleet_savings_within_node_range(self, fleet):
        savings = fleet.per_node_savings
        assert savings.min() - 1e-9 <= fleet.fleet_savings \
            <= savings.max() + 1e-9

    def test_tco_rollup(self, fleet):
        report = fleet.tco_report()
        assert report["dram_savings"] == pytest.approx(fleet.fleet_savings)
        assert report["annual_cost_saved_usd"] > 0

    def test_summary_rows(self, fleet):
        rows = fleet.summary_rows()
        assert len(rows) == 4
        assert rows[-1][0] == "fleet"

    def test_custom_tco_model(self):
        config = FleetConfig(num_nodes=1, tco=TcoModel(num_servers=100))
        simulator = FleetSimulator(config)
        assert simulator.config.tco.num_servers == 100
