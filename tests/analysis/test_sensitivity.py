"""Tests for the power-constant sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (recompute_savings, savings_range,
                                        sensitivity_grid)
from repro.dram.power import DramPowerModel
from repro.host.scheduler import SchedulerConfig
from repro.sim.powerdown_sim import (ComparisonSimulator, PowerDownSimConfig,
                                     energy_savings)
from repro.workloads.azure import AzureTraceConfig


@pytest.fixture(scope="module")
def results():
    config = PowerDownSimConfig(
        azure=AzureTraceConfig(num_vms=50, duration_s=3600.0),
        scheduler=SchedulerConfig(duration_s=3600.0), seed=4)
    return ComparisonSimulator(config).run().as_tuple()


class TestRecompute:
    def test_reference_constants_match_simulation(self, results):
        """Re-evaluating at the calibrated constants reproduces the
        simulator's own savings figure."""
        baseline, dtl = results
        fields = DramPowerModel.__dataclass_fields__
        recomputed = recompute_savings(
            baseline, dtl,
            channel_fixed_overhead=fields["channel_fixed_overhead"].default,
            active_power_per_gbs=fields["active_power_per_gbs"].default)
        assert recomputed == pytest.approx(energy_savings(baseline, dtl),
                                           abs=0.01)

    def test_more_fixed_overhead_less_savings(self, results):
        baseline, dtl = results
        low = recompute_savings(baseline, dtl, 0.0, 0.25)
        high = recompute_savings(baseline, dtl, 4.8, 0.25)
        assert high < low

    def test_more_active_share_less_savings(self, results):
        baseline, dtl = results
        low = recompute_savings(baseline, dtl, 2.4, 0.05)
        high = recompute_savings(baseline, dtl, 2.4, 0.5)
        assert high < low


class TestGrid:
    def test_grid_shape(self, results):
        baseline, dtl = results
        points = sensitivity_grid(baseline, dtl)
        assert len(points) == 20

    def test_headline_is_robust(self, results):
        """Across a 2x band around every calibrated constant, the savings
        stay within a plausible range of the paper's 31.6 %."""
        baseline, dtl = results
        points = sensitivity_grid(baseline, dtl)
        low, high = savings_range(points)
        assert low > 0.15          # never collapses
        assert high < 0.60         # never explodes
        # The calibrated point sits inside the grid's hull.
        assert low <= energy_savings(baseline, dtl) <= high
