"""DRAM substrate: geometry, timing, power states, and device model."""

from repro.dram.banks import (AddressDecoder, BankState, BankStats,
                              RowBufferAnalyzer, RowOutcome)
from repro.dram.device import DramDevice, RankId
from repro.dram.geometry import (DEFAULT_SEGMENT_BYTES, DramGeometry,
                                 PAPER_1TB_GEOMETRY, PAPER_4TB_GEOMETRY,
                                 geometry_for_capacity)
from repro.dram.power import (DramPowerModel, EnergyAccumulator, MPSM_EXIT_NS,
                              PowerState, SELF_REFRESH_EXIT_NS, STATE_POWER,
                              check_transition, transition_exit_penalty_ns)
from repro.dram.rank import Rank
from repro.dram.timing import (CXL_MEMORY_LATENCY_NS, DDR4_2933, DramTiming,
                               NATIVE_DRAM_LATENCY_NS)

__all__ = [
    "AddressDecoder",
    "BankState",
    "BankStats",
    "RowBufferAnalyzer",
    "RowOutcome",
    "DramDevice",
    "RankId",
    "DramGeometry",
    "DEFAULT_SEGMENT_BYTES",
    "PAPER_1TB_GEOMETRY",
    "PAPER_4TB_GEOMETRY",
    "geometry_for_capacity",
    "DramPowerModel",
    "EnergyAccumulator",
    "PowerState",
    "STATE_POWER",
    "SELF_REFRESH_EXIT_NS",
    "MPSM_EXIT_NS",
    "check_transition",
    "transition_exit_penalty_ns",
    "Rank",
    "DramTiming",
    "DDR4_2933",
    "NATIVE_DRAM_LATENCY_NS",
    "CXL_MEMORY_LATENCY_NS",
]
