"""Table 5: size of the DTL data structures for 16 hosts.

Paper: 384 GB and 4 TB columns; on-chip SRAM grows from ~0.5 MB to
~5.3 MB and reserved DRAM from ~1.9 MB to ~22.6 MB (0.0005 % of 4 TB).
"""

import pytest

from repro.analysis.structures import (MODEL_384GB, MODEL_4TB, PAPER_TABLE5,
                                       StructureSizingModel)
from repro.units import GIB, format_bytes

from conftest import report


def compute():
    return MODEL_384GB.report(), MODEL_4TB.report()


def test_tab05_structure_sizes(benchmark):
    small, large = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for name in small:
        rows.append((name,
                     f"{format_bytes(small[name])}"
                     f" ({format_bytes(PAPER_TABLE5['384GB'][name])})",
                     f"{format_bytes(large[name])}"
                     f" ({format_bytes(PAPER_TABLE5['4TB'][name])})"))
    report("Table 5: structure sizes, measured (paper)", rows,
           header=("structure", "384GB", "4TB"))
    for column, values in (("384GB", small), ("4TB", large)):
        for name, expected in PAPER_TABLE5[column].items():
            assert values[name] == pytest.approx(expected, rel=0.15), \
                f"{column}/{name}"


def test_tab05_totals(benchmark):
    def totals():
        return (MODEL_384GB.sram_total_bytes(), MODEL_4TB.sram_total_bytes(),
                MODEL_384GB.dram_total_bytes(), MODEL_4TB.dram_total_bytes())

    sram_s, sram_l, dram_s, dram_l = benchmark.pedantic(totals, rounds=1,
                                                        iterations=1)
    report("Table 5 / Section 6.6: totals", [
        ("SRAM", format_bytes(sram_s), format_bytes(sram_l),
         "0.5MB -> 5.3MB"),
        ("DRAM", format_bytes(dram_s), format_bytes(dram_l),
         "1.9MB -> 22.6MB"),
    ], header=("pool", "384GB", "4TB", "paper"))
    assert sram_s == pytest.approx(0.5 * 2 ** 20, rel=0.25)
    assert sram_l == pytest.approx(5.3 * 2 ** 20, rel=0.25)
    assert dram_s == pytest.approx(1.9 * 2 ** 20, rel=0.25)
    assert dram_l == pytest.approx(22.6 * 2 ** 20, rel=0.25)
    assert MODEL_4TB.dram_overhead_fraction() < 1e-5


def test_tab05_scaling_is_linearish():
    """Section 6.6: structures 'scale mostly linearly with capacity'."""
    sizes = [StructureSizingModel(capacity_bytes=c * GIB).sram_total_bytes()
             for c in (256, 512, 1024)]
    ratio_a = sizes[1] / sizes[0]
    ratio_b = sizes[2] / sizes[1]
    assert 1.6 < ratio_a < 2.4
    assert 1.6 < ratio_b < 2.4
