"""Fault-plan schedule arithmetic and validation."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.hooks import HookPoint
from repro.faults.plan import (CxlLinkFault, EccFault, FaultPlan, FaultSpec,
                               MigrationAbortFault, PowerExitFault,
                               SmcCorruptionFault, hook_point_of)


class TestFaultSpecSchedule:
    def test_default_fires_every_visit(self):
        spec = FaultSpec()
        assert all(spec.matches(v) for v in range(10))

    def test_start_and_period(self):
        spec = FaultSpec(start=3, period=4)
        fires = [v for v in range(20) if spec.matches(v)]
        assert fires == [3, 7, 11, 15, 19]

    def test_stop_is_exclusive(self):
        spec = FaultSpec(start=0, period=2, stop=6)
        fires = [v for v in range(12) if spec.matches(v)]
        assert fires == [0, 2, 4]

    def test_max_fires_caps(self):
        spec = FaultSpec(period=1, max_fires=3)
        assert spec.matches(5, fired=2)
        assert not spec.matches(5, fired=3)

    @pytest.mark.parametrize("kwargs", [
        {"start": -1}, {"period": 0}, {"stop": 2, "start": 5},
        {"max_fires": -1},
    ])
    def test_invalid_schedule_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultSpec(**kwargs)


class TestSpecValidation:
    def test_cxl_kind_checked(self):
        with pytest.raises(ConfigurationError):
            CxlLinkFault(kind="flap")
        with pytest.raises(ConfigurationError):
            CxlLinkFault(retries=0)

    def test_ecc_bits_checked(self):
        with pytest.raises(ConfigurationError):
            EccFault(bits=0)

    def test_power_exit_checked(self):
        with pytest.raises(ConfigurationError):
            PowerExitFault(target="dimm")
        with pytest.raises(ConfigurationError):
            PowerExitFault(kind="explode")
        with pytest.raises(ConfigurationError):
            PowerExitFault(failures=0)

    def test_ecc_rank_filter(self):
        spec = EccFault(channel=1, rank=2)
        assert spec.applies_to(1, 2)
        assert not spec.applies_to(0, 2)
        assert not spec.applies_to(1, 3)
        assert EccFault().applies_to(7, 7)

    def test_abort_progress_filter(self):
        spec = MigrationAbortFault(at_lines_done=5, channel=0)
        assert spec.applies_to(5, 0)
        assert not spec.applies_to(4, 0)
        assert not spec.applies_to(5, 1)

    def test_abort_is_fire_capped_by_default(self):
        # An unbounded every-visit abort would starve drain() forever.
        assert MigrationAbortFault().max_fires > 0

    def test_power_exit_penalty(self):
        assert PowerExitFault(kind="delay",
                              delay_ns=100.0).extra_penalty_ns == 100.0
        assert PowerExitFault(kind="fail", delay_ns=100.0,
                              failures=3).extra_penalty_ns == 300.0


class TestHookDispatch:
    def test_every_spec_type_maps(self):
        assert hook_point_of(CxlLinkFault()) is HookPoint.CXL_ACCESS
        assert hook_point_of(EccFault()) is HookPoint.DRAM_ACCESS
        assert hook_point_of(MigrationAbortFault()) \
            is HookPoint.MIGRATION_COPY
        assert hook_point_of(SmcCorruptionFault()) is HookPoint.SMC_LOOKUP
        assert hook_point_of(PowerExitFault(target="mpsm")) \
            is HookPoint.MPSM_EXIT
        assert hook_point_of(PowerExitFault(target="sr")) \
            is HookPoint.SR_EXIT

    def test_by_hook_groups_with_plan_indices(self):
        plan = FaultPlan(specs=(CxlLinkFault(), EccFault(),
                                CxlLinkFault(kind="stall")))
        grouped = plan.by_hook()
        assert [i for i, _ in grouped[HookPoint.CXL_ACCESS]] == [0, 2]
        assert [i for i, _ in grouped[HookPoint.DRAM_ACCESS]] == [1]
        assert grouped[HookPoint.SR_EXIT] == ()


class TestFaultPlan:
    def test_active(self):
        assert not FaultPlan().active
        assert FaultPlan(specs=(EccFault(),)).active

    def test_plan_is_hashable(self):
        plan = FaultPlan(seed=7, specs=(CxlLinkFault(), EccFault()))
        assert hash(plan) == hash(FaultPlan(seed=7, specs=(CxlLinkFault(),
                                                           EccFault())))

    def test_escalated_halves_periods(self):
        plan = FaultPlan(name="p", specs=(EccFault(period=8),
                                          CxlLinkFault(period=3)))
        harsher = plan.escalated(2)
        assert [spec.period for spec in harsher.specs] == [2, 1]
        assert harsher.name == "p@L2"

    def test_escalated_level_zero_is_identity(self):
        plan = FaultPlan(specs=(EccFault(period=8),))
        assert plan.escalated(0) is plan

    def test_escalated_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().escalated(-1)
