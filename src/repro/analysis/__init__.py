"""Analytical models: AMAT (6.1), structure sizing (Table 5), controller
power/area (Table 6)."""

from repro.analysis.amat import (AmatModel, PAPER_L1_SMC_MISS_RATIO,
                                 PAPER_L2_SMC_MISS_RATIO)
from repro.analysis.area_power import (CONTROLLER_384GB, CONTROLLER_4TB,
                                       ControllerModel, PAPER_TABLE6_384GB,
                                       PAPER_TABLE6_4TB,
                                       sanity_check_40nm_scaling,
                                       technology_scale)
from repro.analysis.sensitivity import (SensitivityPoint, recompute_savings,
                                        savings_range, sensitivity_grid)
from repro.analysis.tco import PAPER_DRAM_POWER_SHARE, TcoModel
from repro.analysis.structures import (MODEL_384GB, MODEL_4TB, PAPER_TABLE5,
                                       StructureSizingModel)

__all__ = [
    "SensitivityPoint",
    "recompute_savings",
    "savings_range",
    "sensitivity_grid",
    "PAPER_DRAM_POWER_SHARE",
    "TcoModel",
    "AmatModel",
    "PAPER_L1_SMC_MISS_RATIO",
    "PAPER_L2_SMC_MISS_RATIO",
    "ControllerModel",
    "CONTROLLER_384GB",
    "CONTROLLER_4TB",
    "PAPER_TABLE6_384GB",
    "PAPER_TABLE6_4TB",
    "technology_scale",
    "sanity_check_40nm_scaling",
    "StructureSizingModel",
    "MODEL_384GB",
    "MODEL_4TB",
    "PAPER_TABLE5",
]
