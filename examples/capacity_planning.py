"""Capacity planning: DTL overheads for a custom CXL device.

Uses the analytical models (paper Sections 6.1, 6.5, 6.6) to answer the
deployment questions a device architect would ask: how much SRAM/DRAM do
the DTL structures need, what do they cost in controller power and area,
and what latency does the translation layer add?

Run:  python examples/capacity_planning.py [capacity_gib]
"""

import sys

from repro.analysis import (AmatModel, ControllerModel, StructureSizingModel,
                            sanity_check_40nm_scaling)
from repro.units import GIB, format_bytes

def main() -> None:
    capacity_gib = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    capacity = capacity_gib * GIB

    print(f"=== DTL deployment study for a {capacity_gib} GiB CXL device ===")

    sizing = StructureSizingModel(capacity_bytes=capacity, channels=8,
                                  ranks_per_channel=8)
    print(f"\nAddress widths: HSN {sizing.hsn_bits} bits "
          f"(host {sizing.host_id_bits} + AU {sizing.au_id_bits} + "
          f"offset {sizing.au_offset_bits}), DSN {sizing.dsn_bits} bits")
    print(f"\n{'structure':<28s} {'size':>10s}  location")
    location = {
        "l1_smc": "SRAM", "l2_smc": "SRAM", "host_base_table": "SRAM",
        "au_base_table": "SRAM", "migration_table": "SRAM",
        "segment_mapping_table": "DRAM", "reverse_mapping_table": "DRAM",
        "free_segment_queues": "DRAM", "allocated_segment_queues": "DRAM",
        "free_au_queue": "DRAM",
    }
    for name, size in sizing.report().items():
        print(f"{name:<28s} {format_bytes(size):>10s}  {location[name]}")
    print(f"{'-- total on-chip SRAM':<28s} "
          f"{format_bytes(sizing.sram_total_bytes()):>10s}")
    print(f"{'-- total reserved DRAM':<28s} "
          f"{format_bytes(sizing.dram_total_bytes()):>10s} "
          f"({100 * sizing.dram_overhead_fraction():.4f}% of capacity)")

    controller = ControllerModel(sram_bytes=sizing.sram_total_bytes(),
                                 smc_bytes=sizing.l1_smc_bytes()
                                 + sizing.l2_smc_bytes())
    report = controller.report()
    print(f"\nController @7nm: {report['total_mw']:.1f} mW, "
          f"{report['total_mm2']:.3f} mm^2 "
          f"(CPU {report['cpu_mw']:.1f} mW, SRAM {report['sram_mw']:.1f} mW, "
          f"SMC {report['smc_mw']:.1f} mW)")
    power_40nm, area_40nm = sanity_check_40nm_scaling()
    print(f"Cross-check vs scaled 40nm synthesis: {power_40nm:.1f} mW, "
          f"{area_40nm:.3f} mm^2")

    amat = AmatModel()
    print(f"\nLatency: vanilla CXL {amat.cxl_latency_ns:.0f} ns; with DTL "
          f"{amat.amat_ns():.1f} ns "
          f"(+{amat.translation_overhead_ns():.1f} ns mean, "
          f"+{amat.max_overhead_ns():.1f} ns worst case)")
    print(f"Estimated execution-time overhead: "
          f"{100 * amat.execution_time_overhead():.2f}% (paper: 0.18%)")

if __name__ == "__main__":
    main()
