"""Stable hashing of config dataclasses and seed derivation."""

from dataclasses import dataclass, field

import pytest

from repro.exec.hashing import derive_seed, stable_hash, task_key
from repro.sim.powerdown_sim import PowerDownSimConfig


@dataclass(frozen=True)
class _Config:
    name: str = "x"
    seed: int = 0
    weights: tuple = (1.0, 2.0)
    extras: dict = field(default_factory=dict)


def test_equal_configs_hash_equal():
    assert stable_hash(_Config()) == stable_hash(_Config())
    assert stable_hash(_Config(extras={"a": 1, "b": 2})) == stable_hash(
        _Config(extras={"b": 2, "a": 1}))  # dict order must not matter


def test_any_field_change_changes_hash():
    base = stable_hash(_Config())
    assert stable_hash(_Config(seed=1)) != base
    assert stable_hash(_Config(name="y")) != base
    assert stable_hash(_Config(weights=(1.0,))) != base


def test_nested_dataclasses_hash():
    config = PowerDownSimConfig()
    assert stable_hash(config) == stable_hash(PowerDownSimConfig())
    assert stable_hash(config.with_seed(3)) != stable_hash(config)


def test_type_distinguishes_hash():
    @dataclass(frozen=True)
    class _Other:
        name: str = "x"
        seed: int = 0
        weights: tuple = (1.0, 2.0)
        extras: dict = field(default_factory=dict)

    assert stable_hash(_Other()) != stable_hash(_Config())


def test_unstable_values_rejected():
    with pytest.raises(TypeError):
        stable_hash(object())


def test_task_key_shape():
    key = task_key("fleet", _Config())
    assert key.startswith("fleet-")
    assert key == task_key("fleet", _Config())
    assert key != task_key("other", _Config())


def test_derive_seed_deterministic_and_bounded():
    seeds = {derive_seed(0, "node", i) for i in range(100)}
    assert len(seeds) == 100  # no collisions on a small fan-out
    assert all(0 <= seed < 2 ** 31 for seed in seeds)
    assert derive_seed(7, "node", 3) == derive_seed(7, "node", 3)
    assert derive_seed(7, "node", 3) != derive_seed(8, "node", 3)
