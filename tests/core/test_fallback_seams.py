"""Seam coverage for the vectorised fallbacks and SoA cache layouts.

The batch datapath has three "seams" where vectorised code hands work to
order-sensitive protocol code: replay-chunk boundaries in the SMC lookup,
migration write routing, and the self-refresh event loop.  These tests
pin the seams exactly — chunk-edge migration writes, PROFILING channels
with a rank dropping to MPSM mid-batch, rank decodes with non-zero
segment-index bits — under both the SoA and the legacy dict cache
layouts, plus the numba kernel flag on and off.
"""

from __future__ import annotations

import importlib
import warnings

import numpy as np
import pytest

from repro.core import _kernels
from repro.core.addressing import DeviceAddressLayout, SegmentLocation
from repro.core.controller import (SCALAR_ACCESS_WARN_THRESHOLD,
                                   DtlController)
from repro.core.segment_cache import (DictFullyAssociativeCache,
                                      DictSetAssociativeCache,
                                      FullyAssociativeCache,
                                      SegmentCacheConfig,
                                      SetAssociativeCache)
from repro.core.self_refresh import ChannelPhase
from repro.dram.geometry import DramGeometry
from repro.dram.power import PowerState
from repro.errors import PerformanceWarning, PowerStateError
from repro.units import MIB

from tests.core.test_batch_identity import (SMALL_GEOMETRY, assert_results_match,
                                            assert_state_match, build_pair,
                                            random_trace, run_scalar,
                                            small_config)

LAYOUTS = ("soa", "dict")


def layout_config(layout: str, **overrides):
    cache = SegmentCacheConfig(l1_entries=4, l2_entries=8, l2_ways=2,
                               layout=layout)
    return small_config(cache=cache, **overrides)


def submit_migrations(controller: DtlController, count: int = 3) -> list[int]:
    """Track ``count`` in-flight migrations; returns their old DSNs."""
    live = controller.tables.live_dsns()
    free = [dsn for dsn in range(controller.geometry.total_segments)
            if not controller.tables.is_dsn_live(dsn)]
    old_dsns = []
    for dsn in live:
        if len(old_dsns) >= count:
            break
        channel = controller.device_layout.channel_of_dsn(dsn)
        partner = next((f for f in free
                        if controller.device_layout.channel_of_dsn(f)
                        == channel), None)
        if partner is None:
            continue
        free.remove(partner)
        controller.migration.submit(
            controller.tables.hsn_of_dsn(dsn), dsn, partner)
        old_dsns.append(dsn)
    assert len(old_dsns) == count
    # Partial progress on the channel-0 queue: the first request gains a
    # lines_done watermark (abort fodder), later ones stay untouched.
    controller.migration.step_channel(0, lines=5)
    assert controller.migration.has_tracked_requests
    return old_dsns


# -- chunk-boundary migration writes (satellite: boundary-exact coverage) ----


@pytest.mark.parametrize("layout", LAYOUTS)
def test_migration_write_exactly_at_chunk_boundaries(layout):
    """Writes to a migrating segment at every replay-chunk edge.

    With ``l1_entries=4`` the SMC cuts a replay chunk every 4 distinct
    HSNs, so a trace cycling >4 distinct segments crosses a boundary
    every 4 distincts.  The migrating segment is planted as both the
    *last* distinct of one chunk and the *first* distinct of the next —
    the exact seam where the write-routing protocol and the vectorised
    lookup hand off — and every touch of it is a write.
    """
    config = layout_config(layout)
    scalar, batch = build_pair(config)
    hot_dsn = None
    for controller in (scalar, batch):
        old_dsns = submit_migrations(controller)
        if hot_dsn is None:
            hot_dsn = old_dsns[0]
        assert old_dsns[0] == hot_dsn, "twin controllers diverged"
    seg = config.geometry.segment_bytes
    hot_hsn = scalar.tables.hsn_of_dsn(hot_dsn)
    fillers = [hsn for hsn in (scalar.tables.hsn_of_dsn(dsn)
                               for dsn in scalar.tables.live_dsns())
               if hsn != hot_hsn]
    assert len(fillers) >= 7
    hsn_seq: list[int] = []
    writes: list[bool] = []
    for round_index in range(6):
        # Three fillers, then the migrating segment: it lands as the 4th
        # distinct (chunk edge) and again as the 1st of the next chunk.
        for k in range(3):
            hsn_seq.append(fillers[(3 * round_index + k) % len(fillers)])
            writes.append(False)
        hsn_seq.extend([hot_hsn, hot_hsn])
        writes.extend([True, True])
    hpas = np.array([hsn * seg for hsn in hsn_seq], dtype=np.int64)
    writes = np.array(writes, dtype=bool)
    scalar_results = run_scalar(scalar, hpas, writes)
    batch_result = batch.access_batch(0, hpas, writes)
    assert_results_match(scalar_results, batch_result)
    assert_state_match(scalar, batch)
    assert scalar.migration.stats.aborts == batch.migration.stats.aborts
    assert (scalar.migration.stats.foreground_redirects
            == batch.migration.stats.foreground_redirects)


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("seed", [0, 11])
def test_identity_with_migrations_random_trace_per_layout(layout, seed):
    config = layout_config(layout)
    scalar, batch = build_pair(config)
    for controller in (scalar, batch):
        submit_migrations(controller)
    hpas, writes = random_trace(config, 500, seed)
    scalar_results = run_scalar(scalar, hpas, writes)
    batch_result = batch.access_batch(0, hpas, writes)
    assert_results_match(scalar_results, batch_result)
    assert_state_match(scalar, batch)


# -- PROFILING channels and mid-batch MPSM (satellite: phase seams) ----------


def drive_to_profiling(*controllers: DtlController) -> None:
    for controller in controllers:
        controller.end_window()
        controller.tick(0.0)
        assert any(controller.self_refresh.phase(c) is ChannelPhase.PROFILING
                   for c in range(controller.geometry.channels))


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("seed", [0, 3])
def test_identity_while_profiling_per_layout(layout, seed):
    """CLOCK planner events fire mid-batch; identity must survive them."""
    config = layout_config(layout, window_ns=1000.0,
                          profiling_threshold_ns=5000.0)
    scalar, batch = build_pair(config)
    drive_to_profiling(scalar, batch)
    hpas, writes = random_trace(config, 400, seed)
    scalar_results = run_scalar(scalar, hpas, writes, now_ns=2000.0)
    batch_result = batch.access_batch(0, hpas, writes, now_ns=2000.0)
    assert_results_match(scalar_results, batch_result)
    assert_state_match(scalar, batch)
    # The trace must actually have exercised the planner seam: at least
    # one segment is planned out of identity on both sides.
    planned = scalar.self_refresh.planned
    assert (planned != np.arange(len(planned))).any()
    assert np.array_equal(planned, batch.self_refresh.planned)


def test_profiling_channel_rank_in_mpsm_raises_at_same_access():
    """A PROFILING channel whose rank drops to MPSM mid-batch.

    Accesses to an MPSM rank cannot be served; the scalar loop raises
    ``PowerStateError`` at the offending access, and the batch event
    loop must raise the same error (the MPSM rank is screened as an
    event and replayed at the exact scalar position, with every earlier
    access on the channel already applied).
    """
    config = small_config(window_ns=1000.0, profiling_threshold_ns=5000.0)
    # A footprint wider than one rank per channel, so the trace can mix
    # healthy-rank and MPSM-rank accesses on the same channel.
    scalar, batch = build_pair(config, num_aus=20)
    drive_to_profiling(scalar, batch)
    seg = config.geometry.segment_bytes
    live = scalar.tables.live_dsns()
    target_dsn = live[0]
    channel = scalar.device_layout.channel_of_dsn(target_dsn)
    rank = scalar.device_layout.rank_of_dsn(target_dsn)
    safe_hsns = [scalar.tables.hsn_of_dsn(dsn) for dsn in live
                 if scalar.device_layout.channel_of_dsn(dsn) == channel
                 and scalar.device_layout.rank_of_dsn(dsn) != rank][:3]
    assert safe_hsns, "need same-channel traffic on healthy ranks"
    for controller in (scalar, batch):
        controller.device.set_rank_state((channel, rank), PowerState.MPSM,
                                         0.0)
    bad_hsn = scalar.tables.hsn_of_dsn(target_dsn)
    hsn_seq = safe_hsns + [bad_hsn] + safe_hsns
    hpas = np.array([hsn * seg for hsn in hsn_seq], dtype=np.int64)
    writes = np.zeros(len(hpas), dtype=bool)
    with pytest.raises(PowerStateError):
        run_scalar(scalar, hpas, writes, now_ns=2000.0)
    with pytest.raises(PowerStateError):
        batch.access_batch(0, hpas, writes, now_ns=2000.0)
    # The healthy-rank prefix was applied on both sides before the raise.
    s_counts = {rank_id: r.access_count
                for rank_id, r in scalar.device.ranks.items()}
    b_counts = {rank_id: r.access_count
                for rank_id, r in batch.device.ranks.items()}
    assert s_counts == b_counts


# -- rank-mask decodes (satellite: phantom rank indices) ---------------------


def test_rank_decode_masks_stray_high_bits():
    layout = DeviceAddressLayout(SMALL_GEOMETRY)
    geo = SMALL_GEOMETRY
    dsn = layout.pack_dsn(SegmentLocation(
        channel=1, rank=geo.ranks_per_channel - 1,
        index=geo.segments_per_rank - 1))
    # A sentinel-tagged value carries garbage above the rank field; the
    # decode must not surface it as a phantom rank index.
    tagged = dsn | (1 << (geo.channel_bits + geo.segment_index_bits
                          + geo.rank_bits + 3))
    assert layout.rank_of_dsn(tagged) == layout.rank_of_dsn(dsn)
    assert layout.rank_of_dsn(tagged) == geo.ranks_per_channel - 1


def test_unpack_dsn_batch_matches_scalar_with_nonzero_segment_bits():
    layout = DeviceAddressLayout(SMALL_GEOMETRY)
    geo = SMALL_GEOMETRY
    # Every (channel, rank) with the *maximum* segment index: all the
    # bits below the rank field are set, which is exactly the shape that
    # leaked into rank decodes before masking.
    dsns = np.array([layout.pack_dsn(SegmentLocation(c, r,
                                                     geo.segments_per_rank - 1))
                     for c in range(geo.channels)
                     for r in range(geo.ranks_per_channel)], dtype=np.int64)
    channels, ranks, indices = layout.unpack_dsn_batch(dsns)
    for i, dsn in enumerate(dsns.tolist()):
        loc = layout.unpack_dsn(dsn)
        assert channels[i] == loc.channel
        assert ranks[i] == loc.rank
        assert indices[i] == loc.index
    assert int(ranks.max()) < geo.ranks_per_channel


def test_policy_batch_rank_decode_parity_nonzero_segment_bits():
    """Scalar-parity regression for the self-refresh batch decodes.

    DSNs with all segment-index bits set stress the batch-side
    ``dsns >> rank_shift`` decode: without the mask those bits cannot
    leak (the DSN is well-formed), but the per-rank counters prove the
    batch path bins accesses to the same rank the scalar path does.
    """
    config = small_config()
    scalar, batch = build_pair(config)
    geo = config.geometry
    layout = scalar.device_layout
    live = scalar.tables.live_dsns()
    picks = [dsn for dsn in live
             if layout.unpack_dsn(dsn).index == geo.segments_per_rank - 1]
    if not picks:  # footprint smaller than a rank: take max-index live DSNs
        by_rank = {}
        for dsn in live:
            loc = layout.unpack_dsn(dsn)
            key = (loc.channel, loc.rank)
            if key not in by_rank or loc.index > by_rank[key][1]:
                by_rank[key] = (dsn, loc.index)
        picks = [dsn for dsn, _ in by_rank.values()]
    dsns = np.array(picks * 5, dtype=np.int64)
    for dsn in dsns.tolist():
        scalar.self_refresh.on_access(dsn, 0.0)
    batch.self_refresh.on_access_batch(dsns, 0.0)
    s_counts = {rank_id: r.access_count
                for rank_id, r in scalar.device.ranks.items()}
    b_counts = {rank_id: r.access_count
                for rank_id, r in batch.device.ranks.items()}
    assert s_counts == b_counts
    assert np.array_equal(scalar.self_refresh.access_bits,
                          batch.self_refresh.access_bits)


# -- access-bit index space (satellite: raw-DSN scatter) ---------------------


def test_access_bits_set_at_packed_device_global_dsns():
    """``access_bits`` is indexed by packed DSN on every path.

    The batch scatter ``access_bits[dsns] = True`` uses raw packed DSNs;
    this is correct *because* the scalar path, the CLOCK sweep, and
    ``on_batch`` all index the same device-global space.  With the
    channel IDLE (no planner, no sweep) the set bits must be exactly
    the accessed DSNs, on both paths.
    """
    config = small_config()
    scalar, batch = build_pair(config)
    hpas, writes = random_trace(config, 300, 2)
    scalar_results = run_scalar(scalar, hpas, writes)
    batch_result = batch.access_batch(0, hpas, writes)
    for controller, dsns in ((scalar, [r.dsn for r in scalar_results]),
                             (batch, batch_result.dsns.tolist())):
        bits = controller.self_refresh.access_bits
        assert set(np.nonzero(bits)[0].tolist()) == set(dsns)
    assert np.array_equal(scalar.self_refresh.access_bits,
                          batch.self_refresh.access_bits)


# -- PerformanceWarning accounting (satellite: spurious warnings) ------------


def test_batch_path_never_counts_toward_scalar_warning():
    """Batch-internal scalar replays must not trip the access() warning.

    A batch with migrations in flight and PROFILING channels replays
    individual accesses through the scalar protocol internally; with
    the counter parked at the threshold, one such batch must raise no
    PerformanceWarning and leave the counter untouched.
    """
    config = small_config(window_ns=1000.0, profiling_threshold_ns=5000.0)
    controller = DtlController(config)
    controller.allocate_vm(0, 4 * config.au_bytes)
    submit_migrations(controller)
    controller.end_window()
    controller.tick(0.0)
    hpas, writes = random_trace(config, 400, 1)
    controller._scalar_access_calls = SCALAR_ACCESS_WARN_THRESHOLD
    with warnings.catch_warnings():
        warnings.simplefilter("error", PerformanceWarning)
        controller.access_batch(0, hpas, writes, now_ns=2000.0)
    assert controller._scalar_access_calls == SCALAR_ACCESS_WARN_THRESHOLD
    assert not controller._scalar_access_warned


# -- dict vs SoA cache classes (property test) -------------------------------


def _mirror_ops(soa, ref, hsn_space: int, seed: int, steps: int = 2000,
                with_touch: bool = True):
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        op = rng.integers(0, 4 if with_touch else 3)
        hsn = int(rng.integers(0, hsn_space))
        if op == 0:
            assert soa.lookup(hsn) == ref.lookup(hsn)
        elif op == 1:
            dsn = int(rng.integers(0, 1 << 16))
            assert soa.insert(hsn, dsn) == ref.insert(hsn, dsn)
        elif op == 2:
            assert soa.invalidate(hsn) == ref.invalidate(hsn)
        else:
            assert soa.touch(hsn) == ref.touch(hsn)
        assert (hsn in soa) == (hsn in ref)
        assert len(soa) == len(ref)
    assert soa.hsns() == ref.hsns()
    assert sorted(soa.items()) == sorted(ref.items())
    assert soa.stats.hits == ref.stats.hits
    assert soa.stats.misses == ref.stats.misses
    assert soa.stats.invalidations == ref.stats.invalidations


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fully_associative_soa_matches_dict(seed):
    _mirror_ops(FullyAssociativeCache(entries=8),
                DictFullyAssociativeCache(entries=8),
                hsn_space=32, seed=seed)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_set_associative_soa_matches_dict(seed):
    _mirror_ops(SetAssociativeCache(entries=16, ways=2),
                DictSetAssociativeCache(entries=16, ways=2),
                hsn_space=64, seed=seed, with_touch=False)


# -- numba kernel flag (satellite: optional compiled kernels) ----------------


def test_kernels_disabled_without_flag():
    assert not _kernels.NUMBA_ENABLED or _kernels.numba_requested()
    if not _kernels.NUMBA_ENABLED:
        assert _kernels.unpack_dsn_batch(np.zeros(1, dtype=np.int64),
                                         1, 5, 2, 256) is None
        assert _kernels.dpa_of_batch(np.zeros(1, dtype=np.int64),
                                     np.zeros(1, dtype=np.int64),
                                     21, 2 * MIB) is None
        assert _kernels.split_hpa_batch(np.zeros(1, dtype=np.int64),
                                        21, 2 * MIB - 1) is None


def test_flag_without_numba_degrades_gracefully(monkeypatch):
    """``REPRO_NUMBA=1`` with numba missing must fall back silently."""
    monkeypatch.setenv("REPRO_NUMBA", "1")
    assert _kernels.numba_requested()
    try:
        import numba  # noqa: F401
        has_numba = True
    except ImportError:
        has_numba = False
    module = importlib.reload(_kernels)
    try:
        assert module.NUMBA_ENABLED == has_numba
        if not has_numba:
            assert module.unpack_dsn_batch(np.zeros(1, dtype=np.int64),
                                           1, 5, 2, 256) is None
    finally:
        monkeypatch.delenv("REPRO_NUMBA")
        importlib.reload(_kernels)


def test_identity_with_numba_kernels():
    """Bit-identity with the compiled kernels active (CI numba leg)."""
    pytest.importorskip("numba")
    import os
    os.environ["REPRO_NUMBA"] = "1"
    try:
        importlib.reload(_kernels)
        assert _kernels.NUMBA_ENABLED
        config = small_config()
        scalar, batch = build_pair(config)
        hpas, writes = random_trace(config, 600, 0)
        scalar_results = run_scalar(scalar, hpas, writes)
        batch_result = batch.access_batch(0, hpas, writes)
        assert_results_match(scalar_results, batch_result)
        assert_state_match(scalar, batch)
    finally:
        del os.environ["REPRO_NUMBA"]
        importlib.reload(_kernels)
