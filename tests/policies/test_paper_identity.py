"""PaperPolicy is the seed behaviour, bit for bit.

The policy extraction is a refactor of the paper's hard-wired
decisions; these goldens pin the exact pre-refactor experiment records
(float-for-float, ``==`` not ``approx``) so any behavioural drift in
the default policy fails loudly.  The identity tests then drive every
*registered* policy through the scalar and batch datapaths — migrations
in flight, self-refresh phase transitions — because the batch event
screen must stay policy-independent, and a chaos smoke proves a
non-default policy survives fault injection with invariants intact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import armed
from repro.faults.chaos import ChaosSoakConfig
from repro.policies import available_policies
from repro.sim.experiments import get_spec, run_experiment

from tests.core.test_batch_identity import (assert_results_match,
                                            assert_state_match, build_pair,
                                            random_trace, run_scalar,
                                            small_config)

#: The seed repo's records for the registry tiny configs, captured
#: before the policy extraction.  Exact equality is the contract.
POWERDOWN_COMPARISON_GOLDEN = {
    "background_savings": 0.1792307692307692,
    "baseline_total_energy_rsu_s": 37860.4224,
    "dtl_active_energy_rsu_s": 420.42240000000004,
    "dtl_background_energy_rsu_s": 30729.600000000002,
    "dtl_execution_time_factor": 1.0164568963388119,
    "dtl_intervals": 3,
    "dtl_mean_active_ranks_per_channel": 6.0,
    "dtl_migrated_bytes": 0,
    "dtl_migration_energy_rsu_s": 0.0,
    "dtl_migration_time_s": 0.0,
    "dtl_power_transitions": 3,
    "dtl_segments_migrated": 0,
    "dtl_smc_l1_hit_ratio": 0.0,
    "dtl_total_energy_rsu_s": 31662.65508958847,
    "energy_savings": 0.16370042692422615,
    "power_savings": 0.17724049481286297,
}

SELFREFRESH_GOLDEN = {
    "active_ranks_per_channel": 6,
    "baseline_power_rsu": 34.769,
    "ever_stable": True,
    # New observability field; 5 SR exits paid the 500 ns penalty on
    # the access path in the seed run too — it just went unreported.
    "exit_penalty_ns": 2500.0,
    "mean_savings": 0.030705966349334136,
    "migrated_bytes": 6499074048,
    "sr_entries": 8,
    "sr_exits": 10,
    "stable_savings": 0.12736487790848164,
    "warmup_s": 1.25,
}


class TestSeedGoldens:
    def test_powerdown_comparison_record_is_bit_identical(self):
        spec = get_spec("powerdown_comparison")
        record = run_experiment(spec.name, spec.tiny_config()).to_record()
        assert record.metrics == POWERDOWN_COMPARISON_GOLDEN

    def test_selfrefresh_record_is_bit_identical(self):
        spec = get_spec("selfrefresh")
        record = run_experiment(spec.name, spec.tiny_config()).to_record()
        assert record.metrics == SELFREFRESH_GOLDEN


ALL_POLICIES = sorted(available_policies())


class TestScalarBatchIdentityPerPolicy:
    """The batch event screen reads live host state, never policy
    internals — so scalar/batch identity must hold for *every*
    registered policy, not just the default."""

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_identity_plain_trace(self, policy):
        config = small_config(policy=policy)
        scalar, batch = build_pair(config)
        hpas, writes = random_trace(config, 600, seed=0)
        scalar_results = run_scalar(scalar, hpas, writes)
        batch_result = batch.access_batch(0, hpas, writes)
        assert_results_match(scalar_results, batch_result)
        assert_state_match(scalar, batch)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_identity_with_migrations_in_flight(self, policy):
        config = small_config(policy=policy)
        scalar, batch = build_pair(config)
        for controller in (scalar, batch):
            live = controller.tables.live_dsns()
            free = [dsn
                    for dsn in range(controller.geometry.total_segments)
                    if not controller.tables.is_dsn_live(dsn)]
            submitted = 0
            for dsn in live:
                if submitted >= 3:
                    break
                channel = controller.device_layout.channel_of_dsn(dsn)
                partner = next(
                    (f for f in free
                     if controller.device_layout.channel_of_dsn(f)
                     == channel), None)
                if partner is None:
                    continue
                free.remove(partner)
                controller.migration.submit(
                    controller.tables.hsn_of_dsn(dsn), dsn, partner)
                submitted += 1
            assert submitted == 3
            controller.migration.step_channel(0, lines=5)
        hpas, writes = random_trace(config, 500, seed=11)
        scalar_results = run_scalar(scalar, hpas, writes)
        batch_result = batch.access_batch(0, hpas, writes)
        assert_results_match(scalar_results, batch_result)
        assert_state_match(scalar, batch)
        assert scalar.migration.stats.aborts == batch.migration.stats.aborts

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_identity_across_self_refresh_phases(self, policy):
        config = small_config(policy=policy, window_ns=1000.0,
                              profiling_threshold_ns=5000.0)
        scalar, batch = build_pair(config)
        hpas, writes = random_trace(config, 400, seed=3)
        for now_ns in (0.0, 2000.0, 10_000.0, 20_000.0):
            for controller in (scalar, batch):
                controller.end_window()
                controller.tick(now_ns)
            scalar_results = run_scalar(scalar, hpas, writes,
                                        now_ns=now_ns)
            batch_result = batch.access_batch(0, hpas, writes,
                                              now_ns=now_ns)
            assert_results_match(scalar_results, batch_result)
            assert_state_match(scalar, batch)
        phases = {scalar.self_refresh.phase(c).value
                  for c in range(config.geometry.channels)}
        assert phases != {"idle"}, "trace never left IDLE; tighten timers"


class TestChaosWithNonDefaultPolicy:
    def test_chaos_smoke_survives_adaptive_policy(self):
        """Fault injection and consistency audits hold when the armed
        run decides through a non-default policy."""
        config = ChaosSoakConfig(levels=1, batches_per_phase=4,
                                 batch_size=32, policy="adaptive")
        with armed(config.base_plan()):
            result = run_experiment("chaos", config)
        report = result.report
        assert report.injected_total > 0
        assert not report.checker_violations
        assert report.data_loss_events == 0
        assert result.config.policy == "adaptive"
