"""The DtlServer request surface, TCP layer, and lifecycle."""

import asyncio
import json

import pytest

from repro.server import (DtlServer, LoadgenConfig, ServerConfig,
                          run_loadgen)
from repro.server.protocol import MAX_LINE_BYTES, decode_line, encode


def quiet_config(**changes) -> ServerConfig:
    """A small chaos-armed server config for tests."""
    return ServerConfig(**changes)


def run(coroutine):
    return asyncio.run(coroutine)


async def started_server(config: ServerConfig | None = None,
                         tcp: bool = False) -> DtlServer:
    server = DtlServer(config if config is not None else quiet_config())
    await server.start(serve_tcp=tcp)
    return server


class TestRequestSurface:
    def test_open_allocate_access_free_close(self):
        async def scenario():
            server = await started_server()
            opened = await server.handle_request(
                {"op": "open_tenant", "tenant": "a", "t": 1.0})
            assert opened["ok"] and opened["shard"] in (0, 1)
            alloc = await server.handle_request(
                {"op": "allocate", "tenant": "a", "bytes": 1 << 20,
                 "t": 1.1})
            assert alloc["ok"] and alloc["segments"] > 0
            access = await server.handle_request(
                {"op": "access_batch", "tenant": "a", "vm": alloc["vm"],
                 "segments": [0, 1, 2, 1], "writes": [True, False, False,
                                                      True], "t": 1.2})
            assert access["ok"] and access["n"] == 4
            assert access["total_latency_ns"] > 0.0
            freed = await server.handle_request(
                {"op": "free", "tenant": "a", "vm": alloc["vm"],
                 "t": 1.3})
            assert freed["ok"] and freed["freed"] == alloc["bytes"]
            closed = await server.handle_request(
                {"op": "close", "tenant": "a", "t": 1.4})
            assert closed["ok"]
            assert not server.tenants
            await server.drain()
        run(scenario())

    def test_typed_errors(self):
        async def scenario():
            server = await started_server()
            no_op = await server.handle_request({"tenant": "a"})
            assert no_op["error"] == "bad_request"
            unknown = await server.handle_request({"op": "explode"})
            assert unknown["error"] == "unknown_op"
            ghost = await server.handle_request(
                {"op": "allocate", "tenant": "ghost", "bytes": 1,
                 "t": 0.0})
            assert ghost["error"] == "unknown_tenant"
            await server.handle_request(
                {"op": "open_tenant", "tenant": "a", "t": 0.0})
            bad_bytes = await server.handle_request(
                {"op": "allocate", "tenant": "a", "bytes": -5, "t": 0.1})
            assert bad_bytes["error"] == "bad_request"
            await server.drain()
        run(scenario())

    def test_capacity_rejection_is_typed(self):
        async def scenario():
            server = await started_server(quiet_config(
                admission=ServerConfig().admission.replace(
                    quota_bytes=1 << 40)))
            await server.handle_request(
                {"op": "open_tenant", "tenant": "a", "t": 0.0})
            # The small default geometry holds 2ch * 4 ranks * 16 MiB.
            huge = await server.handle_request(
                {"op": "allocate", "tenant": "a", "bytes": 1 << 32,
                 "t": 0.1})
            assert huge["error"] == "capacity"
            await server.drain()
        run(scenario())

    def test_draining_rejects_everything_but_stats(self):
        async def scenario():
            server = await started_server()
            await server.handle_request(
                {"op": "open_tenant", "tenant": "a", "t": 0.0})
            await server.drain()
            rejected = await server.handle_request(
                {"op": "allocate", "tenant": "a", "bytes": 1, "t": 0.1})
            assert rejected["error"] == "draining"
            stats = await server.handle_request({"op": "stats"})
            assert stats["ok"]
            assert stats["snapshot"]["gauges"]["server.draining"] == 1.0
        run(scenario())

    def test_rate_limit_end_to_end(self):
        async def scenario():
            server = await started_server(quiet_config(
                admission=ServerConfig().admission.replace(
                    rate_per_s=1.0, burst=1.0)))
            await server.handle_request(
                {"op": "open_tenant", "tenant": "a", "t": 0.0})
            first = await server.handle_request(
                {"op": "allocate", "tenant": "a", "bytes": 1 << 20,
                 "t": 0.0})
            assert first["ok"]
            second = await server.handle_request(
                {"op": "allocate", "tenant": "a", "bytes": 1 << 20,
                 "t": 0.0})
            assert second["error"] == "rate_limited"
            assert second["retry_after_s"] > 0.0
            await server.drain()
        run(scenario())

    def test_stats_snapshot_has_shard_detail(self):
        async def scenario():
            server = await started_server()
            stats = await server.handle_request({"op": "stats"})
            shards = stats["snapshot"]["detail"]["shards"]
            assert sorted(shards) == ["0", "1"]
            await server.drain()
        run(scenario())


class TestTcpLayer:
    def test_ndjson_round_trip_over_tcp(self):
        async def scenario():
            server = await started_server(tcp=True)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port, limit=MAX_LINE_BYTES)
            writer.write(encode({"op": "open_tenant", "tenant": "a",
                                 "id": 1, "t": 0.0}))
            writer.write(encode({"op": "allocate", "tenant": "a",
                                 "bytes": 1 << 20, "id": 2, "t": 0.1}))
            await writer.drain()
            first = decode_line(await reader.readline())
            second = decode_line(await reader.readline())
            assert first["ok"] and first["id"] == 1
            assert second["ok"] and second["id"] == 2
            # Junk gets a typed response, not a dropped connection.
            writer.write(b"this is not json\n")
            await writer.drain()
            junk = decode_line(await reader.readline())
            assert junk["error"] == "bad_request"
            writer.close()
            await writer.wait_closed()
            await server.drain()
        run(scenario())

    def test_loadgen_over_tcp(self):
        async def scenario():
            server = await started_server(tcp=True)
            report = await run_loadgen(
                LoadgenConfig(tenants=2, requests_per_tenant=2, batch=16,
                              vms_per_tenant=1, churn_every=0),
                host="127.0.0.1", port=server.port)
            assert report.requests == 2 * (1 + 1 + 2 + 1)
            assert report.ok == report.requests
            assert not report.rejected
            await server.drain()
        run(scenario())


class TestTelemetryExporter:
    def test_exporter_writes_render_snapshot_document(self, tmp_path):
        path = tmp_path / "telemetry.json"

        async def scenario():
            server = await started_server(quiet_config(
                telemetry_path=str(path), telemetry_interval_s=60.0))
            assert path.exists()  # written immediately at start
            await server.handle_request(
                {"op": "open_tenant", "tenant": "a", "t": 0.0})
            await server.drain()  # final write on drain
        run(scenario())
        document = json.loads(path.read_text())
        assert document["counters"]["server.requests"] == 1
        assert document["counters"]["server.telemetry_writes"] >= 1
        assert "shards" in document["detail"]

    def test_stats_op_shares_exporter_shape(self):
        async def scenario():
            server = await started_server()
            stats = await server.handle_request({"op": "stats"})
            assert set(stats["snapshot"]) == {
                "counters", "gauges", "histograms", "events", "detail"}
            await server.drain()
        run(scenario())


class TestBackpressure:
    def test_full_shard_queue_blocks_until_drained(self):
        async def scenario():
            server = await started_server(quiet_config(
                admission=ServerConfig().admission.replace(
                    queue_depth=1)))
            await server.handle_request(
                {"op": "open_tenant", "tenant": "a", "t": 0.0})
            alloc = await server.handle_request(
                {"op": "allocate", "tenant": "a", "bytes": 1 << 20,
                 "t": 0.1})
            requests = [server.handle_request(
                {"op": "access_batch", "tenant": "a", "vm": alloc["vm"],
                 "segments": [index], "t": 0.2 + index * 0.01})
                for index in range(8)]
            responses = await asyncio.gather(*requests)
            assert all(response["ok"] for response in responses)
            await server.drain()
        run(scenario())
