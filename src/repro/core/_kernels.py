"""Optional numba-compiled bit-math kernels for the batch datapath.

The vectorised datapath spends part of every batch in address bit
arithmetic: HPA→HSN splits, DSN field decodes, and DSN→DPA packing.
Each of those is two or three numpy ufunc dispatches over the same
array.  With numba present the whole decode fuses into a single pass
(one read of the input, one write per output), which removes the
intermediate temporaries and about halves the address-codec share of
``access_batch``.

numba is strictly optional — it is *not* a dependency of this package
and is absent from the default environment.  The kernels activate only
when **both** hold:

* the environment variable ``REPRO_NUMBA`` is set to ``1``/``true``/
  ``yes``/``on`` (checked once at import), and
* ``import numba`` succeeds.

Otherwise every public helper in this module returns ``None`` and the
callers in :mod:`repro.core.addressing` fall through to their plain
numpy implementations.  ``tests/core/test_batch_identity.py`` and
``tests/core/test_fallback_seams.py`` are the contract: results must be
bit-identical with the flag on or off, so CI runs the identity suite in
both configurations (numba installed on the runner, never vendored
here).
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "NUMBA_ENABLED",
    "numba_requested",
    "unpack_dsn_batch",
    "dpa_of_batch",
    "split_hpa_batch",
]


def numba_requested() -> bool:
    """True when the ``REPRO_NUMBA`` environment flag asks for kernels."""
    return os.environ.get("REPRO_NUMBA", "").strip().lower() in (
        "1", "true", "yes", "on")


NUMBA_ENABLED = False
if numba_requested():  # pragma: no cover - numba absent in CI base image
    try:
        import numba
    except ImportError:
        NUMBA_ENABLED = False
    else:
        NUMBA_ENABLED = True

if NUMBA_ENABLED:  # pragma: no cover - exercised only on numba CI leg

    @numba.njit(cache=True)
    def _unpack_dsn_kernel(dsns, channel_mask, channel_bits, index_mask,
                           index_bits, rank_mask, total_segments):
        n = dsns.shape[0]
        channels = np.empty(n, dtype=np.int64)
        ranks = np.empty(n, dtype=np.int64)
        indices = np.empty(n, dtype=np.int64)
        ok = True
        for i in range(n):
            dsn = dsns[i]
            if dsn < 0 or dsn >= total_segments:
                ok = False
            channels[i] = dsn & channel_mask
            indices[i] = (dsn >> channel_bits) & index_mask
            ranks[i] = (dsn >> (channel_bits + index_bits)) & rank_mask
        return channels, ranks, indices, ok

    @numba.njit(cache=True)
    def _dpa_kernel(dsns, offsets, offset_bits, segment_bytes):
        n = dsns.shape[0]
        dpas = np.empty(n, dtype=np.int64)
        ok = True
        for i in range(n):
            offset = offsets[i]
            if offset < 0 or offset >= segment_bytes:
                ok = False
            dpas[i] = (dsns[i] << offset_bits) | offset
        return dpas, ok

    @numba.njit(cache=True)
    def _split_hpa_kernel(hpas, offset_bits, offset_mask):
        n = hpas.shape[0]
        hsns = np.empty(n, dtype=np.int64)
        offsets = np.empty(n, dtype=np.int64)
        ok = True
        for i in range(n):
            hpa = hpas[i]
            if hpa < 0:
                ok = False
            hsns[i] = hpa >> offset_bits
            offsets[i] = hpa & offset_mask
        return hsns, offsets, ok


def unpack_dsn_batch(dsns: np.ndarray, channel_bits: int, index_bits: int,
                     rank_bits: int, total_segments: int):
    """Fused DSN field decode, or ``None`` when numba is unavailable.

    Returns ``(channels, ranks, indices, in_range)``.  The range check is
    folded into the same pass instead of a separate ``min``/``max``
    reduction; the caller raises on ``in_range == False`` to match the
    numpy path's :class:`~repro.errors.AddressError` behaviour.
    """
    if not NUMBA_ENABLED:
        return None
    return _unpack_dsn_kernel(  # pragma: no cover - numba leg only
        np.ascontiguousarray(dsns, dtype=np.int64),
        (1 << channel_bits) - 1, channel_bits,
        (1 << index_bits) - 1, index_bits,
        (1 << rank_bits) - 1, total_segments)


def dpa_of_batch(dsns: np.ndarray, offsets: np.ndarray, offset_bits: int,
                 segment_bytes: int):
    """Fused DSN+offset→DPA pack, or ``None`` when numba is unavailable."""
    if not NUMBA_ENABLED:
        return None
    return _dpa_kernel(  # pragma: no cover - numba leg only
        np.ascontiguousarray(dsns, dtype=np.int64),
        np.ascontiguousarray(offsets, dtype=np.int64),
        offset_bits, segment_bytes)


def split_hpa_batch(hpas: np.ndarray, offset_bits: int, offset_mask: int):
    """Fused HPA→(HSN, offset) split, or ``None`` when numba is absent."""
    if not NUMBA_ENABLED:
        return None
    return _split_hpa_kernel(  # pragma: no cover - numba leg only
        np.ascontiguousarray(hpas, dtype=np.int64), offset_bits, offset_mask)
