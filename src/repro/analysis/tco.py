"""Datacenter TCO impact of DRAM power savings.

The paper's motivation chain (Section 1): DRAM is ~38-40 % of datacenter
server power [Meta/TMO], disaggregation raises the memory-to-compute
ratio, so DRAM power savings translate into total-cost-of-ownership
savings.  This module closes that loop: given a DRAM energy-saving
fraction (e.g. Figure 12's 31.6 %), it estimates fleet-level power and
cost deltas.

The model is deliberately simple and fully parameterised — every constant
is a visible assumption, defaulting to the figures the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

#: "DRAM power consumption is expected to reach 38% of total power
#: consumption in their datacenter infrastructure" (Section 1, citing
#: Meta's TMO paper).
PAPER_DRAM_POWER_SHARE = 0.38


@dataclass(frozen=True)
class TcoModel:
    """Fleet-level cost model for DRAM power savings.

    Attributes:
        server_power_w: Mean wall power of one server.
        dram_power_share: DRAM's share of server power (0.38 per Meta).
        num_servers: Fleet size.
        electricity_cost_per_kwh: Energy price (USD).
        pue: Power usage effectiveness — each server watt costs
            ``pue`` watts at the facility level (cooling, distribution).
    """

    server_power_w: float = 400.0
    dram_power_share: float = PAPER_DRAM_POWER_SHARE
    num_servers: int = 10_000
    electricity_cost_per_kwh: float = 0.08
    pue: float = 1.2

    def __post_init__(self) -> None:
        if not 0.0 < self.dram_power_share < 1.0:
            raise ValueError("dram_power_share must be in (0, 1)")
        if self.pue < 1.0:
            raise ValueError("PUE cannot be below 1.0")

    # -- per-server ---------------------------------------------------------------

    def dram_power_w(self) -> float:
        """DRAM power of one server."""
        return self.server_power_w * self.dram_power_share

    def server_power_saved_w(self, dram_savings: float) -> float:
        """Wall-power reduction per server for a DRAM saving fraction."""
        if not 0.0 <= dram_savings <= 1.0:
            raise ValueError("dram_savings must be in [0, 1]")
        return self.dram_power_w() * dram_savings

    def server_share_saved(self, dram_savings: float) -> float:
        """Total server power reduction as a fraction."""
        return self.dram_power_share * dram_savings

    # -- fleet --------------------------------------------------------------------

    def fleet_power_saved_kw(self, dram_savings: float) -> float:
        """Facility-level power reduction (PUE included), in kW."""
        per_server = self.server_power_saved_w(dram_savings) * self.pue
        return per_server * self.num_servers / 1000.0

    def annual_energy_saved_mwh(self, dram_savings: float) -> float:
        """Fleet energy saved per year, in MWh."""
        return self.fleet_power_saved_kw(dram_savings) * 24 * 365 / 1000.0

    def annual_cost_saved_usd(self, dram_savings: float) -> float:
        """Fleet electricity cost saved per year, in USD."""
        return (self.annual_energy_saved_mwh(dram_savings) * 1000.0
                * self.electricity_cost_per_kwh)

    def report(self, dram_savings: float) -> dict[str, float]:
        """All derived quantities for one savings fraction."""
        return {
            "dram_savings": dram_savings,
            "server_power_saved_w": self.server_power_saved_w(dram_savings),
            "server_share_saved": self.server_share_saved(dram_savings),
            "fleet_power_saved_kw": self.fleet_power_saved_kw(dram_savings),
            "annual_energy_saved_mwh":
                self.annual_energy_saved_mwh(dram_savings),
            "annual_cost_saved_usd":
                self.annual_cost_saved_usd(dram_savings),
        }


__all__ = ["PAPER_DRAM_POWER_SHARE", "TcoModel"]
