"""Chaos soak experiment: escalating faults with consistency audits."""

from repro.faults import ChaosSoakConfig, ChaosSoakExperiment
from repro.sim import EXPERIMENTS


def tiny_config(seed: int = 0) -> ChaosSoakConfig:
    return ChaosSoakConfig(seed=seed, levels=2, batches_per_phase=3,
                           batch_size=24)


class TestChaosSoak:
    def test_soak_is_clean_and_report_is_non_empty(self):
        result = ChaosSoakExperiment(tiny_config()).run()
        assert result.ok
        report = result.report
        assert report.checker_violations == []
        assert report.data_loss_events == 0
        assert report.checker_audits > 0
        assert report.injected_total > 0
        # Every escalation level contributes a sub-report.
        assert len(result.level_reports) == 2
        assert result.snapshot  # telemetry snapshot captured

    def test_base_plan_covers_every_hook_family(self):
        from repro.faults.plan import (CxlLinkFault, EccFault,
                                       MigrationAbortFault, PowerExitFault,
                                       SmcCorruptionFault)

        specs = tiny_config().base_plan().specs
        types = {type(spec) for spec in specs}
        assert types == {CxlLinkFault, EccFault, MigrationAbortFault,
                         PowerExitFault, SmcCorruptionFault}
        targets = {spec.target for spec in specs
                   if isinstance(spec, PowerExitFault)}
        assert targets == {"mpsm", "sr"}

    def test_registered_in_experiment_registry(self):
        spec = EXPERIMENTS["chaos"]
        assert spec.config_type is ChaosSoakConfig
        assert isinstance(spec.factory(spec.tiny_config()),
                          ChaosSoakExperiment)

    def test_to_record_shapes_paper_metrics(self):
        result = ChaosSoakExperiment(tiny_config(seed=3)).run()
        record = result.to_record()
        assert record.experiment == "chaos"
        assert record.metrics["checker_violations"] == 0
        assert record.metrics["data_loss_events"] == 0
        assert record.metrics["faults_injected"] > 0
        assert record.paper["checker_violations"] == 0
