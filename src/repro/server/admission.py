"""Admission control: per-tenant token buckets and capacity quotas.

Two gates stand between a request and a shard:

* a **token bucket** per tenant — requests cost one token (an access
  batch costs one per :attr:`AdmissionConfig.batch_cost_divisor`
  accesses, so a 1024-access batch cannot ride in on the same budget as
  a ping), refilled at ``rate_per_s`` with a burst ceiling; an empty
  bucket yields a typed ``rate_limited`` rejection carrying
  ``retry_after_s``, and
* a **capacity quota** per tenant — reservations past ``quota_bytes``
  yield ``quota_exceeded`` before the allocator is ever consulted, so a
  rejected tenant's controller state is untouched (the isolation suite
  audits exactly this).

Refill is driven by the request's logical timestamp when present (see
:mod:`repro.server.protocol`), which keeps admission decisions a pure
function of the request stream — the property the drain/restore
bit-identity test leans on.  The whole module is plain arithmetic on
plain state, so it serialises into the server checkpoint unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.server.protocol import ErrorCode


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control knobs (one instance for the whole server).

    Attributes:
        max_tenants: Tenants the server will register at once.
        quota_bytes: Capacity quota per tenant (reserved bytes).
        rate_per_s: Token-bucket refill rate per tenant.
        burst: Token-bucket capacity (initial and maximum).
        batch_cost_divisor: One extra token per this many accesses in a
            batch (so request cost scales with the work it buys).
        queue_depth: Bound on each shard's apply queue.  A full queue
            blocks the submitting connection handler, which stops
            reading that client's socket — TCP backpressure, not
            unbounded buffering.
    """

    max_tenants: int = 64
    quota_bytes: int = 64 * 1024 * 1024
    rate_per_s: float = 2000.0
    burst: float = 200.0
    batch_cost_divisor: int = 256
    queue_depth: int = 128

    def replace(self, **changes: Any) -> "AdmissionConfig":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)


class TokenBucket:
    """A deterministic token bucket (refill computed, never scheduled)."""

    __slots__ = ("rate", "burst", "tokens", "updated_s")

    def __init__(self, rate: float, burst: float, now_s: float = 0.0):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated_s = float(now_s)

    def _refill(self, now_s: float) -> None:
        # Clocks never run backwards here: a stale timestamp simply
        # earns no refill, it does not revoke tokens already granted.
        if now_s > self.updated_s:
            self.tokens = min(self.burst,
                              self.tokens + (now_s - self.updated_s)
                              * self.rate)
            self.updated_s = now_s

    def admit(self, now_s: float, cost: float = 1.0) -> float:
        """Try to take ``cost`` tokens at ``now_s``.

        Returns 0.0 on admission (tokens consumed) or the seconds until
        the bucket will hold ``cost`` tokens (nothing consumed).
        """
        self._refill(now_s)
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        if self.rate <= 0.0:
            return float("inf")
        return (cost - self.tokens) / self.rate

    def state_dict(self) -> dict[str, float]:
        """Serialisable bucket state."""
        return {"rate": self.rate, "burst": self.burst,
                "tokens": self.tokens, "updated_s": self.updated_s}

    @classmethod
    def from_state(cls, state: dict[str, float]) -> "TokenBucket":
        """Rebuild a bucket from :meth:`state_dict` output."""
        bucket = cls(state["rate"], state["burst"])
        bucket.tokens = state["tokens"]
        bucket.updated_s = state["updated_s"]
        return bucket


@dataclass
class Rejection:
    """One typed admission rejection."""

    code: ErrorCode
    message: str
    retry_after_s: float | None = None


class AdmissionController:
    """Tracks every tenant's bucket and quota usage."""

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self._buckets: dict[str, TokenBucket] = {}
        self._reserved: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def tenant_count(self) -> int:
        """Tenants currently registered."""
        return len(self._buckets)

    def admit_open(self, tenant: str, now_s: float) -> Rejection | None:
        """Gate ``open_tenant``; registers the tenant on admission."""
        if tenant in self._buckets:
            return None  # re-attach is free
        if len(self._buckets) >= self.config.max_tenants:
            return Rejection(
                ErrorCode.TENANT_LIMIT,
                f"server is at its {self.config.max_tenants}-tenant limit")
        self._buckets[tenant] = TokenBucket(
            self.config.rate_per_s, self.config.burst, now_s)
        self._reserved[tenant] = 0
        return None

    def forget(self, tenant: str) -> None:
        """Drop a closed tenant's admission state."""
        self._buckets.pop(tenant, None)
        self._reserved.pop(tenant, None)

    # -- per-request gates -------------------------------------------------

    def batch_cost(self, accesses: int) -> float:
        """Token cost of an ``accesses``-element batch."""
        divisor = max(1, self.config.batch_cost_divisor)
        return 1.0 + accesses // divisor

    def admit_request(self, tenant: str, now_s: float,
                      cost: float = 1.0) -> Rejection | None:
        """Gate one request through the tenant's token bucket."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            return Rejection(ErrorCode.UNKNOWN_TENANT,
                             f"tenant {tenant!r} is not open")
        retry_after = bucket.admit(now_s, cost)
        if retry_after > 0.0:
            return Rejection(
                ErrorCode.RATE_LIMITED,
                f"tenant {tenant!r} exceeded {self.config.rate_per_s:g} "
                "req/s", retry_after_s=retry_after)
        return None

    def admit_reservation(self, tenant: str,
                          num_bytes: int) -> Rejection | None:
        """Gate an allocation against the tenant's capacity quota."""
        reserved = self._reserved.get(tenant, 0)
        if reserved + num_bytes > self.config.quota_bytes:
            return Rejection(
                ErrorCode.QUOTA_EXCEEDED,
                f"reservation of {num_bytes} bytes would exceed the "
                f"{self.config.quota_bytes}-byte quota "
                f"({reserved} already reserved)")
        return None

    def reserve(self, tenant: str, num_bytes: int) -> None:
        """Record an admitted reservation."""
        self._reserved[tenant] = self._reserved.get(tenant, 0) + num_bytes

    def release(self, tenant: str, num_bytes: int) -> None:
        """Record a freed reservation."""
        self._reserved[tenant] = max(
            0, self._reserved.get(tenant, 0) - num_bytes)

    def reserved_bytes(self, tenant: str) -> int:
        """The tenant's currently reserved bytes."""
        return self._reserved.get(tenant, 0)

    # -- serialisation -----------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Every tenant's bucket and quota usage, as plain data."""
        return {
            "buckets": {tenant: bucket.state_dict()
                        for tenant, bucket in self._buckets.items()},
            "reserved": dict(self._reserved),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output."""
        self._buckets = {tenant: TokenBucket.from_state(bucket)
                         for tenant, bucket in state["buckets"].items()}
        self._reserved = dict(state["reserved"])


__all__ = [
    "AdmissionConfig",
    "TokenBucket",
    "Rejection",
    "AdmissionController",
]
