"""Figure 12: rank-level power-down over the six-hour VM schedule.

Paper: (a) runtime DRAM power falls as VMs depart and rank-groups enter
MPSM, with short migration pulses at deallocations; (b) total DRAM energy
drops 31.6 % vs the 8-rank baseline at a 1.6 % execution-time cost.
"""

import numpy as np
import pytest

from repro.sim.powerdown_sim import (ComparisonSimulator, energy_savings,
                                     power_savings)

from conftest import report

PAPER_ENERGY_SAVINGS = 0.316
PAPER_EXEC_OVERHEAD = 0.016


@pytest.fixture(scope="module")
def results():
    return ComparisonSimulator().run().as_tuple()


def test_fig12b_energy_savings(benchmark, results):
    baseline, dtl = benchmark.pedantic(lambda: results, rounds=1,
                                       iterations=1)
    savings = energy_savings(baseline, dtl)
    report("Figure 12(b): DRAM energy vs baseline", [
        ("energy savings", f"{savings:.1%}",
         f"(paper {PAPER_ENERGY_SAVINGS:.1%})"),
        ("power savings", f"{power_savings(baseline, dtl):.1%}",
         "(paper 32.7%)"),
        ("exec-time cost", f"{dtl.execution_time_factor - 1:.2%}",
         f"(paper {PAPER_EXEC_OVERHEAD:.1%})"),
        ("mean ranks/ch", f"{dtl.mean_active_ranks:.2f}", "(of 8)"),
    ], header=("metric", "measured", "paper"))
    # Shape: savings land in the paper's band; overhead stays tiny.
    assert 0.6 * PAPER_ENERGY_SAVINGS < savings < 1.5 * PAPER_ENERGY_SAVINGS
    assert dtl.execution_time_factor - 1 < 2.0 * PAPER_EXEC_OVERHEAD


def test_fig12a_power_trace_shape(results):
    baseline, dtl = results
    _, base_power = baseline.power_timeseries()
    _, dtl_power = dtl.power_timeseries()
    # The DTL trace sits below the baseline essentially everywhere.
    assert float(np.mean(dtl_power < base_power + 1e-9)) > 0.9
    # Baseline background power never moves (all ranks standby).
    base_bg = [record.background_power for record in baseline.intervals]
    assert max(base_bg) - min(base_bg) < 1e-9
    # The DTL trace varies with occupancy.
    assert np.std(dtl_power) > 0


def test_fig12a_migration_pulses(results):
    _, dtl = results
    pulses = [record.migration_power for record in dtl.intervals]
    assert max(pulses) > 0  # deallocations triggered consolidation
    # Migration is a small transient, not a steady cost (Section 6.2).
    migration_energy = dtl.energy.migration_j
    assert migration_energy < 0.02 * dtl.energy.total_j


def test_fig12_migration_completes_quickly(results):
    """Paper: a 24 GB consolidation takes ~1.3 s, far below the 5-minute
    interval; check per-transition migration time stays short."""
    _, dtl = results
    if dtl.migrated_bytes == 0:
        pytest.skip("no migrations in this schedule")
    mean_time = dtl.migration_time_s / max(1, dtl.power_transitions)
    assert mean_time < 60.0


def test_fig12_sensitivity_to_calibration(benchmark, results):
    """Robustness: the savings figure across a 2x band around each of the
    two calibrated power constants (per-channel fixed overhead, active
    power per GB/s).  Only these two constants are fitted; everything else
    is a published number."""
    from repro.analysis.sensitivity import savings_range, sensitivity_grid

    baseline, dtl = results
    points = benchmark.pedantic(
        lambda: sensitivity_grid(baseline, dtl), rounds=1, iterations=1)
    low, high = savings_range(points)
    rows = [(f"f={p.channel_fixed_overhead:.1f} k={p.active_power_per_gbs}",
             f"{p.energy_savings:.1%}")
            for p in points[:: max(1, len(points) // 8)]]
    rows.append(("range", f"{low:.1%} .. {high:.1%} (paper 31.6%)"))
    report("Figure 12 sensitivity to calibrated constants", rows,
           header=("constants", "savings"))
    assert low > 0.15
    assert high < 0.60
