"""Tests for shard-granular fan-out and streaming aggregation.

Covers the slicing/plan helpers, the in-worker reduction loop (item
order, retries, failure isolation), the shard-task factory, the
``exec.result_bytes`` accounting, ``ExecConfig.force_pool``, and the
``run_tasks(stream=...)`` contract: strict submission-order emission,
payload release after each fold, and cache writes before the drop.
"""

from __future__ import annotations

import gc
import weakref
from dataclasses import dataclass, field

import pytest

from repro.exec import (ExecConfig, ResultCache, TaskSpec, run_shard,
                        run_tasks, shard_slices, shard_tasks)
from repro.telemetry import MetricsRegistry


# -- picklable helpers (pool workers cannot see test-local lambdas) ---------


def _square(index: int) -> int:
    return index * index


def _big_payload(index: int) -> bytes:
    return bytes([index % 256]) * 65536


@dataclass(frozen=True)
class _FlakyItem:
    """Fails the first ``failures_before_success`` calls per index.

    Frozen + a mutable shared dict so the instance stays hashable and
    picklable while still counting attempts (serial path only).
    """

    failures_before_success: int
    calls: dict = field(default_factory=dict, hash=False)

    def __call__(self, index: int) -> int:
        seen = self.calls.get(index, 0)
        self.calls[index] = seen + 1
        if seen < self.failures_before_success:
            raise ValueError(f"flaky {index}")
        return index


@dataclass(frozen=True)
class _AlwaysFails:
    def __call__(self, index: int) -> int:
        raise RuntimeError(f"boom {index}")


@dataclass(frozen=True)
class _SumReducer:
    """Reduces a shard to (sum of values, ordered indices, failures)."""

    def fresh(self):
        return {"total": 0, "order": [], "failures": []}

    def item(self, state, index, value):
        state["total"] += value
        state["order"].append(index)

    def failure(self, state, index, error):
        state["failures"].append((index, error))

    def finish(self, state):
        return state


class TestShardSlices:
    def test_even_split(self):
        assert shard_slices(6, 2) == [(0, 2), (2, 4), (4, 6)]

    def test_ragged_tail(self):
        assert shard_slices(5, 2) == [(0, 2), (2, 4), (4, 5)]

    def test_single_shard(self):
        assert shard_slices(3, 10) == [(0, 3)]

    def test_empty(self):
        assert shard_slices(0, 4) == []

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            shard_slices(4, 0)


class TestRunShard:
    def test_items_run_in_index_order(self):
        state = run_shard(_square, _SumReducer(), 2, 6)
        assert state["order"] == [2, 3, 4, 5]
        assert state["total"] == 4 + 9 + 16 + 25
        assert state["failures"] == []

    def test_item_retry_recovers(self):
        flaky = _FlakyItem(failures_before_success=1)
        state = run_shard(flaky, _SumReducer(), 0, 3, item_retries=1)
        assert state["order"] == [0, 1, 2]
        assert state["failures"] == []
        assert flaky.calls == {0: 2, 1: 2, 2: 2}

    def test_exhausted_retries_record_failure_not_abort(self):
        state = run_shard(_AlwaysFails(), _SumReducer(), 0, 2,
                          item_retries=1)
        assert state["order"] == []
        assert [index for index, _ in state["failures"]] == [0, 1]
        assert "RuntimeError: boom 0" in state["failures"][0][1]


class TestShardTasks:
    def test_plan_and_labels(self):
        plan, tasks = shard_tasks(_square, _SumReducer(), count=5,
                                  shard_size=2, label="demo")
        assert plan.num_shards == 3
        assert plan.slices == ((0, 2), (2, 4), (4, 5))
        assert [task.label for task in tasks] == \
            ["demo[0:2]", "demo[2:4]", "demo[4:5]"]

    def test_cost_hint_scales_with_shard_length(self):
        _, tasks = shard_tasks(_square, _SumReducer(), count=5,
                               shard_size=2, cost_hint_s=1.5)
        assert [task.cost_hint_s for task in tasks] == [3.0, 3.0, 1.5]

    def test_key_fn_wires_cache_keys(self):
        _, tasks = shard_tasks(
            _square, _SumReducer(), count=4, shard_size=2,
            key_fn=lambda start, stop: f"k{start}-{stop}")
        assert [task.key for task in tasks] == ["k0-2", "k2-4"]

    def test_serial_equals_sharded_equals_parallel(self):
        """The fold total is identical for every execution shape."""
        def totals(shard_size, exec_config):
            _, tasks = shard_tasks(_square, _SumReducer(), count=10,
                                   shard_size=shard_size)
            outcomes = run_tasks(tasks, config=exec_config,
                                 metrics=MetricsRegistry())
            return sum(outcome.unwrap()["total"] for outcome in outcomes)

        expected = sum(i * i for i in range(10))
        assert totals(10, ExecConfig(workers=1)) == expected
        assert totals(3, ExecConfig(workers=1)) == expected
        assert totals(3, ExecConfig(workers=2, chunk_size=1,
                                    force_pool=True)) == expected


class TestResultBytesAccounting:
    def test_serial_path_measures_payloads(self):
        metrics = MetricsRegistry()
        tasks = [TaskSpec(fn=_big_payload, args=(i,)) for i in range(3)]
        outcomes = run_tasks(tasks, config=ExecConfig(workers=1),
                             metrics=metrics)
        assert all(outcome.result_bytes > 65536 for outcome in outcomes)
        counted = metrics.counter_values()["exec.result_bytes"]
        assert counted == sum(o.result_bytes for o in outcomes)

    def test_pool_path_measures_payloads(self):
        metrics = MetricsRegistry()
        tasks = [TaskSpec(fn=_big_payload, args=(i,)) for i in range(3)]
        outcomes = run_tasks(
            tasks, config=ExecConfig(workers=2, force_pool=True),
            metrics=metrics)
        assert all(outcome.result_bytes > 65536 for outcome in outcomes)
        assert metrics.counter_values()["exec.result_bytes"] == \
            sum(o.result_bytes for o in outcomes)

    def test_failed_task_ships_nothing(self):
        metrics = MetricsRegistry()
        tasks = [TaskSpec(fn=_AlwaysFails(), args=(0,))]
        [outcome] = run_tasks(tasks, config=ExecConfig(workers=1,
                                                       retries=0),
                              metrics=metrics)
        assert not outcome.ok
        assert outcome.result_bytes == 0
        assert "exec.result_bytes" not in metrics.counter_values()

    def test_sharding_shrinks_shipped_bytes(self):
        """The point of worker-side reduction: a shard of reduced items
        ships far less than the same items' full payloads."""
        def shipped(tasks):
            outcomes = run_tasks(tasks, config=ExecConfig(workers=1),
                                 metrics=MetricsRegistry())
            return sum(outcome.result_bytes for outcome in outcomes)

        flat = [TaskSpec(fn=_big_payload, args=(i,)) for i in range(8)]
        _, sharded = shard_tasks(_len_of_payload, _SumReducer(),
                                 count=8, shard_size=4)
        assert shipped(flat) / shipped(sharded) > 10


def _len_of_payload(index: int) -> int:
    return len(_big_payload(index))


class TestForcePool:
    def test_force_pool_crosses_process_boundary(self):
        """cpu_bound tasks on a 1-CPU host would normally skip the pool;
        force_pool must still ship them to workers."""
        parent_pid_tasks = [TaskSpec(fn=_worker_pid, cpu_bound=True)
                            for _ in range(2)]
        outcomes = run_tasks(
            parent_pid_tasks,
            config=ExecConfig(workers=2, force_pool=True),
            metrics=MetricsRegistry())
        import os
        assert all(outcome.worker_pid != os.getpid()
                   for outcome in outcomes)

    def test_default_heuristics_still_apply_without_force(self):
        metrics = MetricsRegistry()
        tasks = [TaskSpec(fn=_square, args=(i,), cost_hint_s=0.0001)
                 for i in range(4)]
        run_tasks(tasks, config=ExecConfig(workers=2), metrics=metrics)
        assert metrics.counter_values().get("exec.pool_skips", 0) == 1


def _worker_pid() -> int:
    import os
    return os.getpid()


class TestStreaming:
    def test_stream_emits_in_submission_order(self):
        seen = []
        tasks = [TaskSpec(fn=_square, args=(i,), label=f"t{i}")
                 for i in range(5)]
        run_tasks(tasks, config=ExecConfig(workers=1),
                  metrics=MetricsRegistry(),
                  stream=lambda index, outcome: seen.append(
                      (index, outcome.value)))
        assert seen == [(i, i * i) for i in range(5)]

    def test_stream_emits_in_order_on_the_pool(self):
        seen = []
        tasks = [TaskSpec(fn=_square, args=(i,)) for i in range(6)]
        run_tasks(tasks,
                  config=ExecConfig(workers=2, chunk_size=1,
                                    force_pool=True),
                  metrics=MetricsRegistry(),
                  stream=lambda index, outcome: seen.append(index))
        assert seen == list(range(6))

    def test_values_released_after_stream(self):
        """After streaming, neither the outcomes nor the runner hold the
        payloads: the only strong reference dies with the callback."""
        refs = []
        gc.collect()

        def stream(index, outcome):
            refs.append(weakref.ref(outcome.value))
            # Every previously streamed payload must already be gone.
            gc.collect()
            assert all(ref() is None for ref in refs[:-1])

        tasks = [TaskSpec(fn=_payload_list, args=(i,)) for i in range(4)]
        outcomes = run_tasks(tasks, config=ExecConfig(workers=1),
                             metrics=MetricsRegistry(), stream=stream)
        assert all(outcome.value is None for outcome in outcomes)
        assert all(outcome.ok for outcome in outcomes)
        gc.collect()
        assert all(ref() is None for ref in refs)

    def test_streamed_outcomes_keep_accounting(self):
        tasks = [TaskSpec(fn=_big_payload, args=(0,))]
        [outcome] = run_tasks(tasks, config=ExecConfig(workers=1),
                              metrics=MetricsRegistry(),
                              stream=lambda index, o: None)
        assert outcome.value is None
        assert outcome.result_bytes > 65536
        assert outcome.wall_time_s >= 0.0

    def test_cache_written_before_value_dropped(self):
        cache = ResultCache()
        tasks = [TaskSpec(fn=_square, args=(7,), key="sq7")]
        run_tasks(tasks, config=ExecConfig(workers=1), cache=cache,
                  metrics=MetricsRegistry(), stream=lambda i, o: None)
        hit, value = cache.get("sq7")
        assert hit and value == 49

    def test_stream_sees_cache_hits_and_failures(self):
        cache = ResultCache()
        cache.put("warm", 123)
        seen = []
        tasks = [TaskSpec(fn=_square, args=(2,), key="warm"),
                 TaskSpec(fn=_AlwaysFails(), args=(0,))]
        run_tasks(tasks, config=ExecConfig(workers=1, retries=0),
                  cache=cache, metrics=MetricsRegistry(),
                  stream=lambda index, outcome: seen.append(
                      (index, outcome.from_cache, outcome.ok)))
        assert seen == [(0, True, True), (1, False, False)]


class _Payload:
    """Weakref-able result carrying a real chunk of data."""

    def __init__(self, index: int):
        self.data = list(range(index, index + 4096))


def _payload_list(index: int) -> _Payload:
    return _Payload(index)
