"""Tests for the workload calibration validator."""

import pytest

from repro.units import GIB
from repro.workloads.cloudsuite import PROFILES
from repro.workloads.validation import (NARROW_STRIDE_BENCHMARKS,
                                        ValidationReport, WorkloadCheck,
                                        check_workload, validate_workloads)


@pytest.fixture(scope="module")
def report():
    return validate_workloads(("data-caching", "graph-analytics",
                               "media-streaming", "web-search"),
                              footprint_bytes=1 * GIB,
                              target_instructions=40e6)


class TestSingleWorkload:
    def test_check_fields(self):
        check = check_workload(PROFILES["data-caching"],
                               footprint_bytes=1 * GIB,
                               target_instructions=20e6)
        assert check.name == "data-caching"
        assert check.mapki_error < 0.1
        assert 0.0 <= check.cold_2mb <= 1.0
        assert check.cold_4mb <= check.cold_2mb


class TestReport:
    def test_all_workloads_checked(self, report):
        assert len(report.checks) == 4

    def test_mapki_within_tolerance(self, report):
        assert report.max_mapki_error < 0.10

    def test_cold_fraction_averages(self, report):
        # Small sample: wide band, but the ordering must hold.
        assert report.mean_cold_2mb > report.mean_cold_4mb
        assert 0.4 < report.mean_cold_2mb < 0.8

    def test_calibrated_profiles_have_no_problems(self, report):
        # With a 4-workload sample the cold-fraction band is loose.
        assert report.problems(cold_band=0.2) == []

    def test_problem_detection(self):
        bad = ValidationReport(checks=[WorkloadCheck(
            name="data-caching", mapki=3.0, mapki_target=1.5,
            large_stride_share=0.9, cold_2mb=0.2, cold_4mb=0.1)])
        problems = bad.problems()
        assert any("MAPKI" in problem for problem in problems)
        # data-caching is wide-stride, so 0.9 is fine; cold fractions are
        # off though.
        assert any("cold@2MB" in problem for problem in problems)

    def test_narrow_stride_misclassification_detected(self):
        bad = ValidationReport(checks=[WorkloadCheck(
            name=NARROW_STRIDE_BENCHMARKS[0], mapki=4.2, mapki_target=4.2,
            large_stride_share=0.9, cold_2mb=0.6, cold_4mb=0.35)])
        assert any("narrow-stride" in problem
                   for problem in bad.problems(cold_band=0.2))
