"""Property-based tests on the trace generator's structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.units import MIB
from repro.workloads.cloudsuite import (PROFILES, SEGMENT_BYTES,
                                        TraceGenerator)

PROFILE_NAMES = sorted(PROFILES)


@st.composite
def generator_params(draw):
    name = draw(st.sampled_from(PROFILE_NAMES))
    footprint_mib = draw(st.sampled_from([8, 32, 128, 512]))
    seed = draw(st.integers(0, 2 ** 16))
    return name, footprint_mib * MIB, seed


class TestGeneratorInvariants:
    @given(generator_params())
    @settings(max_examples=30, deadline=None)
    def test_tiers_partition_footprint(self, params):
        name, footprint, seed = params
        generator = TraceGenerator(PROFILES[name], footprint_bytes=footprint,
                                   seed=seed)
        hot = set(generator.hot_segments.tolist())
        warm = set(generator.warm_segments.tolist())
        frozen = set(generator.frozen_segments.tolist())
        assert len(hot) + len(warm) + len(frozen) == generator.num_segments
        assert hot | warm | frozen == set(range(generator.num_segments))
        deep = set(generator.deep_cold_segments.tolist())
        shallow = set(generator.shallow_frozen_segments.tolist())
        assert deep | shallow == frozen and not deep & shallow

    @given(generator_params(), st.integers(100, 3000))
    @settings(max_examples=20, deadline=None)
    def test_trace_structural_bounds(self, params, accesses):
        name, footprint, seed = params
        generator = TraceGenerator(PROFILES[name], footprint_bytes=footprint,
                                   seed=seed)
        trace = generator.generate(accesses)
        assert len(trace) == accesses
        assert int(trace.addresses.max()) < footprint
        assert int(trace.addresses.min()) >= 0
        # Cacheline aligned.
        assert (trace.addresses % 64 == 0).all()
        # Positive instruction deltas (geometric >= 1).
        assert (trace.instr_deltas >= 1).all()

    @given(generator_params())
    @settings(max_examples=20, deadline=None)
    def test_rates_are_a_distribution(self, params):
        name, footprint, seed = params
        generator = TraceGenerator(PROFILES[name], footprint_bytes=footprint,
                                   seed=seed)
        rates = generator.segment_access_rates()
        assert len(rates) == generator.num_segments
        assert rates.sum() == pytest.approx(1.0)
        assert (rates >= 0).all()
        # Frozen segments carry no steady-state rate.
        assert rates[generator.frozen_segments].sum() == 0.0

    @given(st.integers(0, 2 ** 16))
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, seed):
        a = TraceGenerator(PROFILES["data-caching"],
                           footprint_bytes=64 * MIB, seed=seed).generate(500)
        b = TraceGenerator(PROFILES["data-caching"],
                           footprint_bytes=64 * MIB, seed=seed).generate(500)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.instr_deltas, b.instr_deltas)

    @given(generator_params())
    @settings(max_examples=15, deadline=None)
    def test_hot_set_receives_most_accesses(self, params):
        name, footprint, seed = params
        generator = TraceGenerator(PROFILES[name], footprint_bytes=footprint,
                                   seed=seed)
        trace = generator.generate(3000)
        segments = trace.segments(SEGMENT_BYTES)
        hot = set(generator.hot_segments.tolist())
        hot_share = float(np.mean([int(s) in hot for s in segments]))
        assert hot_share > 0.8
