"""Tests for the DRAM power model (Table 2 / Figure 11)."""

import pytest

from repro.dram.geometry import DramGeometry
from repro.dram.power import (DramPowerModel, EnergyAccumulator, MPSM_EXIT_NS,
                              PowerState, SELF_REFRESH_EXIT_NS, STATE_POWER,
                              check_transition, transition_exit_penalty_ns)
from repro.errors import PowerStateError
from repro.units import GIB


@pytest.fixture
def model():
    return DramPowerModel(geometry=DramGeometry(rank_bytes=1 * GIB))


class TestStatePowers:
    def test_table2_values(self):
        assert STATE_POWER[PowerState.STANDBY] == 1.0
        assert STATE_POWER[PowerState.SELF_REFRESH] == 0.2
        assert STATE_POWER[PowerState.MPSM] == 0.068

    def test_mpsm_loses_data(self):
        assert not PowerState.MPSM.retains_data()
        assert PowerState.SELF_REFRESH.retains_data()
        assert PowerState.STANDBY.retains_data()


class TestTransitions:
    @pytest.mark.parametrize("old,new", [
        (PowerState.STANDBY, PowerState.SELF_REFRESH),
        (PowerState.STANDBY, PowerState.MPSM),
        (PowerState.SELF_REFRESH, PowerState.STANDBY),
        (PowerState.MPSM, PowerState.STANDBY),
    ])
    def test_legal(self, old, new):
        check_transition(old, new)

    @pytest.mark.parametrize("old,new", [
        (PowerState.SELF_REFRESH, PowerState.MPSM),
        (PowerState.MPSM, PowerState.SELF_REFRESH),
    ])
    def test_illegal_between_low_power_states(self, old, new):
        with pytest.raises(PowerStateError):
            check_transition(old, new)

    def test_exit_penalties_hundreds_of_ns(self):
        sr = transition_exit_penalty_ns(PowerState.SELF_REFRESH,
                                        PowerState.STANDBY)
        mpsm = transition_exit_penalty_ns(PowerState.MPSM, PowerState.STANDBY)
        assert sr == SELF_REFRESH_EXIT_NS
        assert mpsm == MPSM_EXIT_NS
        assert 100 <= sr <= 1000
        assert 100 <= mpsm <= 1000

    def test_entering_low_power_is_free(self):
        assert transition_exit_penalty_ns(PowerState.STANDBY,
                                          PowerState.MPSM) == 0.0


class TestBackgroundPower:
    def test_all_standby(self, model):
        power = model.background_power({PowerState.STANDBY: 32})
        assert power == pytest.approx(32 + 4 * model.channel_fixed_overhead)

    def test_mpsm_reduces_power(self, model):
        full = model.background_power({PowerState.STANDBY: 32})
        half = model.background_power({PowerState.STANDBY: 16,
                                       PowerState.MPSM: 16})
        assert half < full
        assert half == pytest.approx(full - 16 * (1 - 0.068))

    def test_rank_count_must_match_geometry(self, model):
        with pytest.raises(ValueError):
            model.background_power({PowerState.STANDBY: 5})

    def test_figure11a_monotone_in_active_ranks(self, model):
        powers = [model.background_power_active_ranks(n) for n in range(9)]
        assert powers == sorted(powers)

    def test_figure11a_rejects_out_of_range(self, model):
        with pytest.raises(ValueError):
            model.background_power_active_ranks(9)


class TestActivePower:
    def test_linear_in_bandwidth(self, model):
        assert model.active_power(10.0) == pytest.approx(
            2 * model.active_power(5.0))

    def test_zero_bandwidth(self, model):
        assert model.active_power(0.0) == 0.0

    def test_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.active_power(-1.0)

    def test_total_power_composition(self, model):
        counts = {PowerState.STANDBY: 32}
        assert model.total_power(counts, 10.0) == pytest.approx(
            model.background_power(counts) + model.active_power(10.0))


class TestConversions:
    def test_to_watts(self, model):
        assert model.to_watts(2.0) == pytest.approx(
            2.0 * model.rank_standby_watts)

    def test_baseline(self, model):
        assert model.baseline_background_power() == pytest.approx(
            model.background_power({PowerState.STANDBY: 32}))


class TestEnergyAccumulator:
    def test_accumulates(self):
        acc = EnergyAccumulator()
        acc.add_interval(10.0, background_power=2.0, active_power=1.0,
                         migration_power=0.5)
        assert acc.background_j == pytest.approx(20.0)
        assert acc.active_j == pytest.approx(10.0)
        assert acc.migration_j == pytest.approx(5.0)
        assert acc.total_j == pytest.approx(35.0)

    def test_merge(self):
        a = EnergyAccumulator(background_j=1.0, active_j=2.0)
        b = EnergyAccumulator(background_j=3.0, migration_j=4.0)
        a.merge(b)
        assert a.background_j == pytest.approx(4.0)
        assert a.total_j == pytest.approx(10.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            EnergyAccumulator().add_interval(-1.0, 1.0, 0.0)
