"""Multi-device pooled-memory fabric.

The paper's deployment model (Figure 3) is a rack where "VMs on multiple
compute nodes share a CXL-attached pooled memory node".  A pool usually
holds several expander devices behind a fabric switch.  This module
models that level: a :class:`MemoryPool` owns several
:class:`~repro.cxl.device.CxlMemoryDevice` instances, places incoming VM
reservations onto a device, and aggregates power/occupancy statistics.

Placement policies:

* ``"pack"`` — fill the most-utilised device that still fits the VM.
  Concentrates load so whole devices' worth of ranks can power down
  (the DTL philosophy applied one level up).
* ``"spread"`` — place on the least-utilised device.  Balances bandwidth
  at the cost of power (every device stays partly occupied).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.config import DtlConfig
from repro.core.controller import VmHandle
from repro.cxl.device import CxlMemoryDevice
from repro.cxl.link import CxlLinkConfig
from repro.dram.timing import CXL_MEMORY_LATENCY_NS
from repro.errors import AllocationError, ConfigurationError


@dataclass(frozen=True)
class PoolVmHandle:
    """A VM's reservation within the pool: device index + device handle."""

    pool_vm_id: int
    device_index: int
    handle: VmHandle

    @property
    def reserved_bytes(self) -> int:
        """Reserved capacity of this VM."""
        return self.handle.reserved_bytes


@dataclass
class PoolStats:
    """Aggregate pool state at a point in time."""

    devices: int
    total_bytes: int
    reserved_bytes: int
    #: Power/rank-state fields default to 0 so rack-level aggregation
    #: (which tracks capacity and occupancy, not per-rank power states)
    #: can report pool stats through the same type.
    background_power_rsu: float = 0.0
    ranks_standby: int = 0
    ranks_self_refresh: int = 0
    ranks_mpsm: int = 0

    @property
    def utilization(self) -> float:
        """Reserved fraction of the pool."""
        return (self.reserved_bytes / self.total_bytes
                if self.total_bytes else 0.0)


class MemoryPool:
    """Several DTL-equipped expanders behind one fabric."""

    def __init__(self, device_configs: list[DtlConfig],
                 link: CxlLinkConfig | None = None,
                 placement: str = "pack",
                 initial_power_down: bool = True):
        if not device_configs:
            raise ConfigurationError("a pool needs at least one device")
        if placement not in ("pack", "spread"):
            raise ConfigurationError(f"unknown placement {placement!r}")
        link = link or CxlLinkConfig()
        self.devices = [CxlMemoryDevice(config=config, link=link)
                        for config in device_configs]
        self.placement = placement
        self._vm_ids = itertools.count(1)
        self._vms: dict[int, PoolVmHandle] = {}
        if initial_power_down:
            # A fresh, empty device has no data to retain: park everything
            # the policy allows right away instead of waiting for the
            # first deallocation.
            for device in self.devices:
                policy = device.controller.power_down
                if policy is not None:
                    policy.maybe_power_down(0.0)

    # -- capacity ----------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Pool capacity."""
        return sum(device.config.geometry.total_bytes
                   for device in self.devices)

    def reserved_bytes(self) -> int:
        """Total memory reserved across devices."""
        return sum(device.controller.reserved_bytes()
                   for device in self.devices)

    def device_utilization(self, index: int) -> float:
        """Reserved fraction of one device."""
        device = self.devices[index]
        return (device.controller.reserved_bytes()
                / device.config.geometry.total_bytes)

    # -- placement ----------------------------------------------------------------

    def _candidate_order(self) -> list[int]:
        utilisations = [(self.device_utilization(index), index)
                        for index in range(len(self.devices))]
        reverse = self.placement == "pack"
        return [index for _, index in
                sorted(utilisations, key=lambda item: item[0],
                       reverse=reverse)]

    def allocate_vm(self, host_id: int, reserved_bytes: int,
                    now_s: float = 0.0) -> PoolVmHandle:
        """Place a VM reservation on a device per the placement policy.

        Raises:
            AllocationError: when no device can hold the reservation.
        """
        last_error: AllocationError | None = None
        for index in self._candidate_order():
            try:
                handle = self.devices[index].allocate_vm(
                    host_id, reserved_bytes, now_s)
            except AllocationError as error:
                last_error = error
                continue
            pool_handle = PoolVmHandle(pool_vm_id=next(self._vm_ids),
                                       device_index=index, handle=handle)
            self._vms[pool_handle.pool_vm_id] = pool_handle
            return pool_handle
        raise AllocationError(
            f"no device in the pool can hold {reserved_bytes} bytes"
        ) from last_error

    def deallocate_vm(self, pool_handle: PoolVmHandle,
                      now_s: float = 0.0) -> None:
        """Release a VM's reservation (triggers that device's power-down)."""
        if pool_handle.pool_vm_id not in self._vms:
            raise AllocationError(
                f"pool VM {pool_handle.pool_vm_id} is not live")
        del self._vms[pool_handle.pool_vm_id]
        self.devices[pool_handle.device_index].deallocate_vm(
            pool_handle.handle, now_s)

    @property
    def live_vms(self) -> list[PoolVmHandle]:
        """Currently placed VMs."""
        return list(self._vms.values())

    # -- statistics ----------------------------------------------------------------

    def stats(self) -> PoolStats:
        """Aggregate occupancy and power across the pool."""
        background = 0.0
        standby = sr = mpsm = 0
        for device in self.devices:
            summary = device.power_summary()
            background += summary["background_power_rsu"]
            standby += int(summary["ranks_standby"])
            sr += int(summary["ranks_self_refresh"])
            mpsm += int(summary["ranks_mpsm"])
        return PoolStats(devices=len(self.devices),
                         total_bytes=self.total_bytes,
                         reserved_bytes=self.reserved_bytes(),
                         background_power_rsu=background,
                         ranks_standby=standby,
                         ranks_self_refresh=sr,
                         ranks_mpsm=mpsm)


# -- fabric contention ---------------------------------------------------------


@dataclass(frozen=True)
class PoolContentionConfig:
    """Shared-fabric contention parameters for one pooled-memory node.

    The rack's hosts all reach the pool through the same fabric ports,
    so their aggregate bandwidth demand contends for a fixed capacity.

    Attributes:
        bandwidth_gbs: Usable fabric bandwidth into the pool node
            (default: four x8 PCIe 5.0-class ports).
        service_ns: Mean service time of one pooled access — the
            uncontended CXL end-to-end latency (Table 1).
        max_utilization: Utilisation cap; demand beyond it queues at the
            cap instead of driving the M/D/1 delay to infinity (real
            fabrics throttle via credit backpressure first).
    """

    bandwidth_gbs: float = 128.0
    service_ns: float = CXL_MEMORY_LATENCY_NS
    max_utilization: float = 0.95

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ConfigurationError("bandwidth_gbs must be positive")
        if not 0.0 < self.max_utilization < 1.0:
            raise ConfigurationError(
                "max_utilization must be in (0, 1), got "
                f"{self.max_utilization}")


@dataclass(frozen=True)
class PoolContention:
    """Contention on a shared pool at a given aggregate demand.

    ``queue_delay_ns`` follows the M/D/1 mean waiting time
    ``service * rho / (2 * (1 - rho))`` — deterministic service (a
    fixed-size cacheline transfer), Poisson arrivals from many
    independent VMs.  ``slowdown`` is the contended-to-uncontended
    access-latency ratio, the factor a rack applies on top of each
    node's own execution-time stretch.
    """

    demand_gbs: float
    capacity_gbs: float
    utilization: float
    queue_delay_ns: float
    slowdown: float

    @property
    def saturated(self) -> bool:
        """True when demand was clipped at the utilisation cap."""
        return self.demand_gbs / self.capacity_gbs > self.utilization + 1e-12


def pool_contention(demand_gbs: float,
                    config: PoolContentionConfig | None = None,
                    ) -> PoolContention:
    """Contention stats for ``demand_gbs`` of aggregate pool traffic."""
    config = config or PoolContentionConfig()
    if demand_gbs < 0:
        raise ConfigurationError(
            f"demand_gbs must be non-negative, got {demand_gbs}")
    rho = min(demand_gbs / config.bandwidth_gbs, config.max_utilization)
    queue_delay_ns = config.service_ns * rho / (2.0 * (1.0 - rho))
    slowdown = (config.service_ns + queue_delay_ns) / config.service_ns
    return PoolContention(demand_gbs=demand_gbs,
                          capacity_gbs=config.bandwidth_gbs,
                          utilization=rho,
                          queue_delay_ns=queue_delay_ns,
                          slowdown=slowdown)


__all__ = ["PoolVmHandle", "PoolStats", "MemoryPool",
           "PoolContentionConfig", "PoolContention", "pool_contention"]
